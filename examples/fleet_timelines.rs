//! Fleet timelines: record a fleet of seeded VR sessions, one JSONL
//! file per session, ready for `movr-obs reduce`.
//!
//! ```sh
//! cargo run --release --example fleet_timelines -- OUT_DIR [SESSIONS] [DURATION_S]
//! ```
//!
//! Defaults: 8 sessions of 1 s each. Session `i` runs on seed `i`; see
//! `movr_system::fleet` for the exact scenario. Each timeline streams
//! through a `JsonlWriter` (bounded memory however long the session)
//! and is only reported once `finish()` confirmed every line reached
//! the file — a timeline with a silent hole would poison every rollup
//! built from it. The files are byte-identical to
//! `movr_system::fleet::session_jsonl`, which is what the golden-rollup
//! test pins.

use movr_obs::JsonlWriter;
use movr_system::fleet::run_fleet_session;

fn die(msg: &str) -> ! {
    eprintln!("fleet_timelines: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_dir = args
        .next()
        .unwrap_or_else(|| die("usage: fleet_timelines OUT_DIR [SESSIONS] [DURATION_S]"));
    let sessions: u64 = args.next().map_or(8, |s| {
        s.parse()
            .unwrap_or_else(|_| die(&format!("SESSIONS is not a number: {s}")))
    });
    let duration_s: f64 = args.next().map_or(1.0, |s| {
        s.parse()
            .unwrap_or_else(|_| die(&format!("DURATION_S is not a number: {s}")))
    });

    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| die(&format!("create {out_dir}: {e}")));

    let mut total_lines = 0u64;
    for id in 0..sessions {
        let path = format!("{out_dir}/session-{id}.jsonl");
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("create {path}: {e}")));
        let mut rec = JsonlWriter::new(std::io::BufWriter::new(file));
        let out = run_fleet_session(id, duration_s, &mut rec);
        let lines = rec.lines();
        rec.finish()
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        total_lines += lines;
        println!(
            "session {id}: {lines} events, {}/{} frames delivered, grade {:?} -> {path}",
            out.glitches.frames_delivered,
            out.glitches.frames_total,
            out.grade(),
        );
    }
    println!("wrote {total_lines} events across {sessions} session timeline(s) in {out_dir}");
}
