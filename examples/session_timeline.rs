//! Session timeline: run a MoVR session with the observability layer
//! attached, write every structured event as one JSONL line, and print
//! the final metrics table.
//!
//! ```sh
//! cargo run --release --example session_timeline [out.jsonl]
//! ```
//!
//! The timeline is deterministic: the same binary writes a byte-identical
//! file on every run (events are stamped with *simulation* time, and the
//! recorder never touches the simulation's RNG streams).

use movr::session::{run_session_recorded, RatePolicy, SessionConfig, Strategy};
use movr_math::Vec2;
use movr_motion::{HandRaise, PlayerState};
use movr_obs::JsonlWriter;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "session_timeline.jsonl".to_string());

    // The canonical §3 scenario: a player facing the AP raises a hand in
    // front of the headset from t=4 s to t=6 s of a 10 s session.
    let center = Vec2::new(4.0, 2.5);
    let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
    let trace = HandRaise {
        base: PlayerState::standing(center, yaw),
        raise_at_s: 4.0,
        lower_at_s: 6.0,
        duration_s: 10.0,
    };
    let mut cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    cfg.rate_policy = RatePolicy::HysteresisPolicy {
        up_margin_db: 1.0,
        up_count: 3,
        backoff_db: 0.5,
    };

    let file = std::fs::File::create(&path).expect("create timeline file");
    let mut rec = JsonlWriter::new(std::io::BufWriter::new(file));
    let out = run_session_recorded(&trace, &cfg, &mut rec);
    let lines = rec.lines();
    rec.finish().expect("timeline sink failed");

    println!("=== MoVR session timeline ===");
    println!("wrote {lines} events to {path}\n");
    println!(
        "frames: {}/{} delivered, {} glitch events, longest stall {:.0} ms, grade {:?}",
        out.glitches.frames_delivered,
        out.glitches.frames_total,
        out.glitches.glitch_events,
        out.glitches.longest_stall_ms(90.0),
        out.grade(),
    );
    println!(
        "link:   mean SNR {:.1} dB (min {:.1}), {} mode switches, {} realignments, {:.0}% via reflector\n",
        out.mean_snr_db,
        out.min_snr_db,
        out.mode_switches,
        out.realignments,
        100.0 * out.reflector_fraction,
    );
    println!("{}", out.metrics.render_table());
}
