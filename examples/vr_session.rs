//! A full VR play session: the player wanders the room for a minute,
//! turns, raises hands — and the frame-delivery quality of each link
//! strategy is accounted glitch by glitch.
//!
//! ```sh
//! cargo run --release --example vr_session
//! ```

use movr::session::{run_session, SessionConfig, Strategy};
use movr_math::Vec2;
use movr_motion::RandomWalk;
use movr_rfsim::Room;
use movr_vr::Battery;

fn main() {
    let room = Room::paper_office();
    let duration_s = 60.0;
    // The player strafes around the play area with her gaze on the game
    // scene (the AP side of the room), raising a hand now and then.
    let trace = RandomWalk::with_gaze(&room, 77, duration_s, Vec2::new(0.5, 2.5));

    println!("=== {duration_s:.0} s random-walk VR session (seed 77) ===\n");
    println!(
        "{:<22} {:>9} {:>9} {:>8} {:>11} {:>10} {:>9} {:>11}",
        "strategy", "delivered", "loss %", "glitches", "stall (ms)", "mean SNR", "on refl.", "experience"
    );
    println!("{}", "-".repeat(96));

    for (name, strategy) in [
        ("tethered (HDMI)", Strategy::Tethered),
        ("direct mmWave only", Strategy::DirectOnly),
        ("MoVR (sweep realign)", Strategy::Movr { tracking: false }),
        ("MoVR (tracking §6)", Strategy::Movr { tracking: true }),
    ] {
        let out = run_session(&trace, &SessionConfig::with_strategy(strategy));
        let r = &out.glitches;
        println!(
            "{:<22} {:>4}/{:<4} {:>9.2} {:>8} {:>11.0} {:>10} {:>8.0}% {:>11}",
            name,
            r.frames_delivered,
            r.frames_total,
            r.loss_rate * 100.0,
            r.glitch_events,
            r.longest_stall_ms(90.0),
            if out.mean_snr_db.is_finite() {
                format!("{:.1} dB", out.mean_snr_db)
            } else {
                "n/a".to_string()
            },
            out.reflector_fraction * 100.0,
            format!("{:?}", out.grade()),
        );
    }

    // §6: cutting the USB power cable too.
    let battery = Battery::anker_5200();
    println!(
        "\nBattery (§6): a {} mAh pack sustains the headset ~{:.1} h at typical\n\
         draw ({:.1} h at the 1500 mA maximum) — enough for an evening of play.",
        battery.capacity_mah,
        battery.runtime_hours(movr_vr::battery::VIVE_TYPICAL_DRAW_A),
        battery.runtime_hours(movr_vr::battery::VIVE_MAX_DRAW_A),
    );
}
