//! Quickstart: stand up the paper's deployment, block the line of sight,
//! and watch MoVR rescue the link.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use movr::session::{run_session, SessionConfig, Strategy};
use movr::system::{LinkMode, MovrSystem, SystemConfig};
use movr_math::Vec2;
use movr_motion::{HandRaise, PlayerState, WorldState};
use movr_radio::RateTable;

fn main() {
    println!("=== MoVR quickstart: 5m x 5m office, AP + one reflector ===\n");

    let mut sys = MovrSystem::paper_setup(SystemConfig::default());
    let rate = RateTable;

    // A player in the play area, facing the AP on the west wall.
    let center = Vec2::new(4.0, 2.5);
    let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
    let player = PlayerState::standing(center, yaw);

    // 1. Clear line of sight.
    let clear = sys.evaluate(&WorldState::player_only(player));
    println!("clear LOS      : mode={:?}", clear.mode);
    println!(
        "                 SNR {:>5.1} dB -> {:>7.1} Mb/s (VR needs {:.0})",
        clear.snr_db,
        clear.rate_mbps,
        movr_radio::VR_REQUIRED_RATE_MBPS
    );

    // 2. The player raises a hand in front of the headset (paper §3).
    let blocked_direct = sys.evaluate_direct(&WorldState::player_only(player.with_hand(true)));
    println!("\nhand raised, direct path only:");
    println!(
        "                 SNR {:>5.1} dB -> {:>7.1} Mb/s  ({})",
        blocked_direct,
        rate.rate_mbps(blocked_direct),
        if rate.supports_vr(blocked_direct) {
            "still VR-grade"
        } else {
            "BELOW VR REQUIREMENT — the screen glitches"
        }
    );

    // 3. Same blockage, MoVR allowed to react.
    let rescued = sys.evaluate(&WorldState::player_only(player.with_hand(true)));
    println!("\nhand raised, with MoVR:");
    println!(
        "                 mode={:?}, SNR {:>5.1} dB -> {:>7.1} Mb/s ({})",
        rescued.mode,
        rescued.snr_db,
        rescued.rate_mbps,
        if rescued.supports_vr { "VR-grade" } else { "degraded" }
    );
    assert!(matches!(rescued.mode, LinkMode::Reflector(_)));

    // 4. A whole 10-second session with a 2-second hand raise in the
    //    middle: frame-level glitch accounting, direct vs MoVR.
    let trace = HandRaise {
        base: player,
        raise_at_s: 4.0,
        lower_at_s: 6.0,
        duration_s: 10.0,
    };
    println!("\n=== 10 s session, hand raised from t=4 s to t=6 s ===");
    for (name, strategy) in [
        ("direct-only", Strategy::DirectOnly),
        ("MoVR        ", Strategy::Movr { tracking: true }),
    ] {
        let out = run_session(&trace, &SessionConfig::with_strategy(strategy));
        println!(
            "{name}: {}/{} frames delivered, {} glitch events, longest stall {:.0} ms",
            out.glitches.frames_delivered,
            out.glitches.frames_total,
            out.glitches.glitch_events,
            out.glitches.longest_stall_ms(90.0)
        );
    }
}
