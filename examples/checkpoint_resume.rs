//! Checkpoint/resume across two processes: run the first half of a VR
//! session in one invocation, snapshot it to a file, then resume from
//! those bytes in a *second* invocation — and get the byte-identical
//! JSONL timeline the uninterrupted run would have written.
//!
//! ```sh
//! cargo run --example checkpoint_resume -- part1 snap.bin part1.jsonl
//! cargo run --example checkpoint_resume -- part2 snap.bin part2.jsonl
//! cargo run --example checkpoint_resume -- full  full.jsonl
//! cat part1.jsonl part2.jsonl | cmp - full.jsonl   # identical
//! ```
//!
//! The snapshot carries the session's *mutable* state only (RNG streams,
//! link state, metrics, pending events); the config and motion trace are
//! reconstructed by the resuming process and must match — a mismatch is
//! rejected by the config fingerprint in the snapshot header. Recorder
//! state (the next span id) is not session state, so part1 leaves it in a
//! tiny sidecar file for part2 to continue the timeline's id sequence.

use movr::session::{RatePolicy, Session, SessionConfig, SessionOutcome, Strategy};
use movr_math::Vec2;
use movr_motion::{HandRaise, MotionTrace, PlayerState};
use movr_obs::JsonlWriter;

/// Frames processed before the part1 snapshot is taken.
const CUT_FRAMES: usize = 90;

/// The scenario both processes reconstruct: the §3 hand-raise blockage,
/// full MoVR with tracking, threshold rate control, seed 42.
fn scenario() -> (HandRaise, SessionConfig) {
    let center = Vec2::new(4.0, 2.5);
    let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
    let trace = HandRaise {
        base: PlayerState::standing(center, yaw),
        raise_at_s: 0.8,
        lower_at_s: 1.6,
        duration_s: 2.0,
    };
    let mut cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    cfg.rate_policy = RatePolicy::Threshold { backoff_db: 1.0 };
    cfg.system.seed = 42;
    (trace, cfg)
}

fn jsonl_writer(path: &str) -> JsonlWriter<std::io::BufWriter<std::fs::File>> {
    let file = std::fs::File::create(path)
        .unwrap_or_else(|e| die(&format!("create {path}: {e}")));
    JsonlWriter::new(std::io::BufWriter::new(file))
}

fn die(msg: &str) -> ! {
    eprintln!("checkpoint_resume: {msg}");
    std::process::exit(2);
}

fn report(label: &str, out: &SessionOutcome) {
    println!(
        "{label}: {}/{} frames delivered, mean SNR {:.1} dB, \
         {} mode switches, grade {:?}",
        out.glitches.frames_delivered,
        out.glitches.frames_total,
        out.mean_snr_db,
        out.mode_switches,
        out.grade(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace, cfg) = scenario();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["full", jsonl_path] => {
            let mut rec = jsonl_writer(jsonl_path);
            let mut session = Session::new(&cfg);
            while session.step_frame_recorded(&trace, &mut rec) {}
            rec.finish().unwrap_or_else(|e| die(&format!("timeline sink: {e}")));
            report("full run", &session.outcome(trace.duration_s()));
        }
        ["part1", snap_path, jsonl_path] => {
            let mut rec = jsonl_writer(jsonl_path);
            let mut session = Session::new(&cfg);
            for _ in 0..CUT_FRAMES {
                if !session.step_frame_recorded(&trace, &mut rec) {
                    die("session ended before the cut point");
                }
            }
            std::fs::write(snap_path, session.snapshot())
                .unwrap_or_else(|e| die(&format!("write {snap_path}: {e}")));
            std::fs::write(format!("{snap_path}.spanid"), rec.next_span_id().to_string())
                .unwrap_or_else(|e| die(&format!("write span-id sidecar: {e}")));
            rec.finish().unwrap_or_else(|e| die(&format!("timeline sink: {e}")));
            println!(
                "part1: stopped after {} frames at t={:.3} s; snapshot in {snap_path}",
                session.frames(),
                session.now().as_secs_f64(),
            );
        }
        ["part2", snap_path, jsonl_path] => {
            let bytes = std::fs::read(snap_path)
                .unwrap_or_else(|e| die(&format!("read {snap_path}: {e}")));
            let next_span_id: u64 = std::fs::read_to_string(format!("{snap_path}.spanid"))
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or_else(|| die("missing or unreadable span-id sidecar"));
            let mut session = Session::restore(&bytes, &cfg)
                .unwrap_or_else(|e| die(&format!("restore failed: {e}")));
            println!(
                "part2: resumed at frame {} (t={:.3} s) from {} snapshot bytes",
                session.frames(),
                session.now().as_secs_f64(),
                bytes.len(),
            );
            let file = std::fs::File::create(jsonl_path)
                .unwrap_or_else(|e| die(&format!("create {jsonl_path}: {e}")));
            let mut rec =
                JsonlWriter::with_next_span_id(std::io::BufWriter::new(file), next_span_id);
            while session.step_frame_recorded(&trace, &mut rec) {}
            rec.finish().unwrap_or_else(|e| die(&format!("timeline sink: {e}")));
            report("resumed run", &session.outcome(trace.duration_s()));
        }
        _ => {
            eprintln!(
                "usage: checkpoint_resume full <out.jsonl>\n\
                 \x20      checkpoint_resume part1 <snapshot.bin> <out.jsonl>\n\
                 \x20      checkpoint_resume part2 <snapshot.bin> <out.jsonl>"
            );
            std::process::exit(64);
        }
    }
}
