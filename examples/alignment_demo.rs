//! Watch the §4.1 backscatter alignment protocol work — and watch it fail
//! without the on/off modulation that separates the reflection from the
//! AP's own TX→RX leakage.
//!
//! ```sh
//! cargo run --release --example alignment_demo
//! ```

use movr::alignment::{estimate_incidence, AlignmentConfig};
use movr::gain_control::{run_gain_control, GainControlConfig};
use movr::reflector::MovrReflector;
use movr_math::{wrap_deg_180, SimRng, Vec2};
use movr_phased_array::Codebook;
use movr_radio::RadioEndpoint;
use movr_rfsim::Scene;

fn main() {
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 9);

    let truth_refl = reflector.position().bearing_deg_to(ap.position());
    let truth_ap = ap.position().bearing_deg_to(reflector.position());
    println!("ground truth: reflector→AP bearing {truth_refl:.1}°, AP→reflector {truth_ap:.1}°\n");

    // The paper's sweep: both codebooks at 1° steps around each node's
    // field of view.
    let config = AlignmentConfig {
        ap_codebook: Codebook::sweep(truth_ap - 25.0, truth_ap + 25.0, 1.0),
        reflector_codebook: Codebook::sweep(truth_refl - 25.0, truth_refl + 25.0, 1.0),
        ..Default::default()
    };

    let mut rng = SimRng::seed_from_u64(1);
    let r = estimate_incidence(&scene, ap, reflector.clone(), &config, &mut rng);
    println!("WITH modulation (the paper's protocol):");
    println!(
        "  estimate: reflector {:.1}° (err {:.1}°), AP {:.1}° (err {:.1}°)",
        r.reflector_angle_deg,
        wrap_deg_180(r.reflector_angle_deg - truth_refl).abs(),
        r.ap_angle_deg,
        wrap_deg_180(r.ap_angle_deg - truth_ap).abs(),
    );
    println!(
        "  {} measurements, sweep took {} (sideband peak {:.1} dBm)\n",
        r.measurements, r.elapsed, r.peak_power_dbm
    );

    let unmod = AlignmentConfig {
        modulated: false,
        ..config
    };
    let r2 = estimate_incidence(&scene, ap, reflector.clone(), &unmod, &mut rng);
    println!("WITHOUT modulation (ablation — leakage swamps the echo):");
    println!(
        "  estimate: reflector {:.1}° (err {:.1}°), AP {:.1}° (err {:.1}°)\n",
        r2.reflector_angle_deg,
        wrap_deg_180(r2.reflector_angle_deg - truth_refl).abs(),
        r2.ap_angle_deg,
        wrap_deg_180(r2.ap_angle_deg - truth_ap).abs(),
    );

    // With the angles known, run the §4.2 gain-control loop and show the
    // current trace the firmware saw.
    let mut dev = reflector;
    dev.steer_rx(truth_refl);
    dev.steer_tx(truth_refl + 40.0);
    let g = run_gain_control(&mut dev, &GainControlConfig::default());
    println!(
        "gain control at serving beams: chose {:.1} dB ({}), loop leakage is {:.1} dB",
        g.chosen_gain_db,
        if g.knee_detected {
            "stopped at the current knee"
        } else {
            "hit the amplifier ceiling"
        },
        dev.loop_attenuation_db()
    );
    println!("  last gain steps (gain dB -> supply current A):");
    for (gain, current) in g.trace.iter().rev().take(6).rev() {
        println!("    {gain:>5.1} -> {current:.3}");
    }
}
