//! Install day: what happens when you stick a MoVR reflector to the wall.
//!
//! Runs the full §4.1 installation — pairing, modulated backscatter
//! sweep, gain control — over the *real* Bluetooth-class control link
//! (latency, jitter, 1 % loss, stop-and-wait retries) and prints the
//! installer-facing report. Then repeats it over a badly lossy link to
//! show the protocol riding through.
//!
//! ```sh
//! cargo run --release --example install_day
//! ```

use movr::install::{install_reflector, InstallConfig};
use movr::alignment::AlignmentConfig;
use movr::reflector::MovrReflector;
use movr_control::{CommandSession, ControlChannel};
use movr_math::{wrap_deg_180, SimRng, Vec2};
use movr_phased_array::Codebook;
use movr_radio::RadioEndpoint;
use movr_rfsim::Scene;

fn run(label: &str, link: CommandSession, seed: u64) {
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let mut reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, seed);
    let truth = reflector.position().bearing_deg_to(ap.position());
    let truth_ap = ap.position().bearing_deg_to(reflector.position());

    let config = InstallConfig {
        alignment: AlignmentConfig {
            ap_codebook: Codebook::sweep(truth_ap - 15.0, truth_ap + 15.0, 1.0),
            reflector_codebook: Codebook::sweep(truth - 15.0, truth + 15.0, 1.0),
            ..Default::default()
        },
        ..Default::default()
    };

    let mut link = link;
    let mut rng = SimRng::seed_from_u64(seed);
    let report = install_reflector(&scene, &ap, &mut reflector, &mut link, &config, &mut rng);

    println!("\n=== {label} ===");
    println!(
        "incidence angle : {:.1}° estimated vs {truth:.1}° true (error {:.2}°)",
        report.alignment.reflector_angle_deg,
        wrap_deg_180(report.alignment.reflector_angle_deg - truth).abs()
    );
    println!(
        "safe gain       : {:.1} dB ({}), loop leakage {:.1} dB",
        report.gain.chosen_gain_db,
        if report.gain.knee_detected {
            "stopped at the current knee"
        } else {
            "amplifier ceiling"
        },
        reflector.loop_attenuation_db()
    );
    println!(
        "control traffic : {} commands, {} retries, converged: {}",
        report.commands,
        report.retries,
        if report.converged { "yes" } else { "NO" }
    );
    println!(
        "wall-clock      : {} (RF measurements: {})",
        report.elapsed, report.alignment.measurements
    );
    assert!(!reflector.is_saturated());
}

fn main() {
    println!("MoVR installation walkthrough — §4.1 + §4.2 over the control plane");

    run(
        "healthy Bluetooth link (1% loss)",
        CommandSession::bluetooth(7, 5),
        11,
    );

    let mut bad = ControlChannel::bluetooth(13);
    bad.loss_probability = 0.35;
    run(
        "degraded link (35% command loss)",
        CommandSession::new(bad, ControlChannel::bluetooth(14), 10),
        12,
    );

    println!(
        "\nThe stop-and-wait command layer turns a 35% lossy link into a\n\
         slower install, not a failed one — and the estimate lands within\n\
         the paper's 2° either way."
    );
}
