//! Blockage survey: reproduce the paper's §3 measurement campaign.
//!
//! Places the headset at random LOS positions in the office, measures the
//! SNR, then re-measures under each blockage scenario (hand, head, body)
//! and with the best non-line-of-sight beam pair — the experiment behind
//! Fig. 3.
//!
//! Headset positions are drawn sequentially from the seeded RNG (so the
//! campaign is the same regardless of parallelism), then the independent
//! runs are fanned out over the persistent pool with
//! [`movr_sim::pool_map`] and folded back in run order: the output is
//! byte-identical for any thread count.
//!
//! ```sh
//! cargo run --release --example blockage_survey
//! ```

use movr::baselines::{aligned_direct_snr, opt_nlos};
use movr_math::{SimRng, Summary, Vec2};
use movr_phased_array::Codebook;
use movr_radio::{RadioEndpoint, RateTable};
use movr_rfsim::{BodyPart, Obstacle, Scene};
use movr_sim::{available_threads, pool_map};

/// Per-run measurements: SNR (dB) for LOS, hand, head, body, best NLOS.
fn survey_run(hs_pos: Vec2) -> [f64; 5] {
    let mut scene = Scene::paper_office();
    let ap_pos = Vec2::new(0.5, 2.5);
    let mut ap = RadioEndpoint::paper_radio(ap_pos, 20.0);
    let mut hs = RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(ap_pos));

    let mid = ap_pos.lerp(hs_pos, 0.55);
    let scenarios: [Option<Obstacle>; 4] = [
        None,
        Some(Obstacle::new(BodyPart::Hand, mid)),
        Some(Obstacle::new(BodyPart::Head, mid)),
        Some(Obstacle::new(BodyPart::Torso, mid)),
    ];
    let mut snr = [0.0; 5];
    for (idx, obstacle) in scenarios.into_iter().enumerate() {
        scene.clear_obstacles();
        if let Some(o) = obstacle {
            scene.add_obstacle(o);
        }
        snr[idx] = aligned_direct_snr(&scene, &mut ap, &mut hs);
    }

    // Best NLOS: body blockage in place, sweep every beam pair.
    scene.clear_obstacles();
    scene.add_obstacle(Obstacle::new(BodyPart::Torso, mid));
    let cb_ap = Codebook::sweep(-50.0, 90.0, 2.0);
    let hs_bore = hs.array().boresight_deg();
    let cb_hs = Codebook::sweep(hs_bore - 50.0, hs_bore + 50.0, 2.0);
    snr[4] = opt_nlos(&scene, &ap, &hs, &cb_ap, &cb_hs, 7.0).snr_db;
    snr
}

fn main() {
    let mut rng = SimRng::seed_from_u64(2016);
    let rate = RateTable;
    let runs = 12;

    let mut stats: Vec<(&str, Summary, Summary)> = vec![
        ("LOS", Summary::new(), Summary::new()),
        ("LOS blocked by hand", Summary::new(), Summary::new()),
        ("LOS blocked by head", Summary::new(), Summary::new()),
        ("LOS blocked by body", Summary::new(), Summary::new()),
        ("best NLOS", Summary::new(), Summary::new()),
    ];

    // Random headset placements with a clear LOS, in the AP's scan —
    // drawn up-front so the RNG sequence matches the sequential survey.
    let positions: Vec<Vec2> = (0..runs)
        .map(|_| Vec2::new(rng.uniform(2.0, 4.5), rng.uniform(1.0, 4.0)))
        .collect();

    let results =
        pool_map(positions.clone(), available_threads(), |_, &hs_pos| survey_run(hs_pos));

    for (run, (hs_pos, snrs)) in positions.iter().zip(&results).enumerate() {
        for (idx, &snr) in snrs.iter().enumerate() {
            stats[idx].1.push(snr);
            stats[idx].2.push(rate.rate_mbps(snr) / 1000.0);
        }
        println!("run {run:>2}: headset at {hs_pos}");
    }

    println!("\n{:<22} {:>10} {:>12} {:>12}", "scenario", "SNR (dB)", "rate (Gb/s)", "VR-ok?");
    println!("{}", "-".repeat(60));
    for (name, snr, gbps) in &stats {
        println!(
            "{:<22} {:>10.1} {:>12.2} {:>12}",
            name,
            snr.mean(),
            gbps.mean(),
            if rate.supports_vr(snr.mean()) { "yes" } else { "NO" }
        );
    }
    println!(
        "\nVR requires {:.1} Gb/s (SNR ≥ {:.0} dB). Blocking the LOS or falling\n\
         back to wall reflections drops the link below the requirement — the\n\
         paper's motivation for a programmable reflector.",
        movr_radio::VR_REQUIRED_RATE_MBPS / 1000.0,
        movr_radio::VR_REQUIRED_SNR_DB
    );
}
