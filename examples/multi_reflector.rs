//! Multi-reflector coverage: "One or more MoVR reflectors can be
//! installed in a room by sticking them to the walls" (§4).
//!
//! A single reflector leaves dead zones — orientations where neither the
//! AP nor the reflector falls inside the headset's electronic scan range.
//! This example sweeps the player's heading through a full turn and maps
//! which link serves each heading, with one, two, and three reflectors.
//!
//! ```sh
//! cargo run --release --example multi_reflector
//! ```

use movr::reflector::MovrReflector;
use movr::system::{LinkMode, MovrSystem, SystemConfig};
use movr_math::Vec2;
use movr_motion::{PlayerState, WorldState};
use movr_radio::RateTable;
use movr_rfsim::Scene;

fn build_system(n_reflectors: usize) -> MovrSystem {
    let scene = Scene::paper_office();
    // AP mid-west wall facing straight into the room: every mount below
    // is inside its ±50° electronic scan.
    let ap = movr_radio::RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 0.0);
    let mut sys = MovrSystem::new(scene, ap, SystemConfig::default());
    // Each boresight splits the angle between "see the AP" and "see the
    // play area", keeping both inside the reflector's own scan.
    let mounts = [
        (Vec2::new(2.5, 4.75), -99.0),  // north wall, centre
        (Vec2::new(4.75, 4.0), -145.0), // east wall, north end (off the
                                        // player's AP axis, so its own AP
                                        // hop clears the player's head)
        (Vec2::new(2.5, 0.25), 99.0),   // south wall, centre
    ];
    for (i, &(pos, bore)) in mounts.iter().take(n_reflectors).enumerate() {
        sys.add_reflector(MovrReflector::wall_mounted(pos, bore, i as u64 + 1));
    }
    sys
}

fn main() {
    let rate = RateTable;
    let center = Vec2::new(3.5, 2.5);
    let headings: Vec<f64> = (0..24).map(|k| -180.0 + k as f64 * 15.0).collect();

    println!("player at {center}, full turn in 15° steps\n");
    println!(
        "{:>8} | {:^24} | {:^24} | {:^24}",
        "heading", "1 reflector", "2 reflectors", "3 reflectors"
    );
    println!("{}", "-".repeat(90));

    let mut vr_ok = [0usize; 3];
    for &heading in &headings {
        let mut cells = Vec::new();
        for n in 1..=3 {
            let mut sys = build_system(n);
            let world = WorldState::player_only(PlayerState::standing(center, heading));
            let d = sys.evaluate(&world);
            let ok = rate.supports_vr(d.snr_db);
            if ok {
                vr_ok[n - 1] += 1;
            }
            let served = match d.mode {
                LinkMode::Direct => "direct".to_string(),
                LinkMode::Reflector(i) => format!("refl#{i}"),
            };
            cells.push(format!(
                "{:>7} {:>5.1} dB {}",
                served,
                d.snr_db,
                if ok { "ok" } else { "--" }
            ));
        }
        println!(
            "{:>7}° | {:<24} | {:<24} | {:<24}",
            heading, cells[0], cells[1], cells[2]
        );
    }

    println!("\nheadings with VR-grade service:");
    for n in 1..=3 {
        println!(
            "  {n} reflector(s): {:>2}/{} ({:.0}%)",
            vr_ok[n - 1],
            headings.len(),
            vr_ok[n - 1] as f64 / headings.len() as f64 * 100.0
        );
    }
    println!("\nEach added wall reflector covers another arc of player headings —\nthe multi-reflector deployment §4 sketches.");
}
