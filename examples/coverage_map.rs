//! Coverage map: an ASCII heatmap of delivered SNR over the room, with
//! and without the reflector, for a player facing the AP — the spatial
//! picture behind Figs. 3 and 9.
//!
//! ```sh
//! cargo run --release --example coverage_map
//! ```

use movr::system::{MovrSystem, SystemConfig};
use movr_math::Vec2;
use movr_motion::{PlayerState, WorldState};
use movr_radio::{RateTable, VR_REQUIRED_SNR_DB};

/// Grid resolution, metres.
const STEP: f64 = 0.25;

fn snr_char(snr: f64) -> char {
    // One character per ~5 dB band.
    match snr {
        s if s >= 25.0 => '#',
        s if s >= VR_REQUIRED_SNR_DB => '+',
        s if s >= 8.0 => ':',
        s if s >= 0.0 => '.',
        _ => ' ',
    }
}

fn render(with_hand: bool) {
    let rate = RateTable;
    let mut rows = Vec::new();
    let mut vr_cells = 0usize;
    let mut cells = 0usize;

    // y from top (north) to bottom for natural map orientation.
    let steps = (5.0 / STEP) as i32;
    for gy in (1..steps).rev() {
        let mut row = String::new();
        for gx in 1..steps {
            let pos = Vec2::new(gx as f64 * STEP, gy as f64 * STEP);
            // Fresh system per cell: persistent beam state must not leak
            // between unrelated positions.
            let mut sys = MovrSystem::paper_setup(SystemConfig::default());
            let yaw = pos.bearing_deg_to(Vec2::new(0.5, 2.5));
            let player = PlayerState::standing(pos, yaw).with_hand(with_hand);
            let d = sys.evaluate(&WorldState::player_only(player));
            cells += 1;
            if rate.supports_vr(d.snr_db) {
                vr_cells += 1;
            }
            row.push(snr_char(d.snr_db));
        }
        rows.push(row);
    }

    println!(
        "\n=== player facing the AP{} ===",
        if with_hand { ", hand raised" } else { "" }
    );
    println!("legend: '#' ≥25 dB, '+' ≥{VR_REQUIRED_SNR_DB:.0} dB (VR-grade), ':' ≥8, '.' ≥0, ' ' outage");
    println!("A = AP (west wall), R = reflector (north wall)\n");
    for (i, row) in rows.iter().enumerate() {
        let mut line = row.clone();
        // Mark the AP and reflector rows approximately.
        if i == 0 {
            line.insert(3, 'R');
        }
        if i == rows.len() / 2 {
            line.insert(0, 'A');
        }
        println!("  {line}");
    }
    println!(
        "\nVR-grade cells: {vr_cells}/{cells} ({:.0}%)",
        vr_cells as f64 / cells as f64 * 100.0
    );
}

fn main() {
    println!("SNR coverage of the 5m x 5m office (player gaze toward the AP).");
    render(false);
    render(true);
    println!(
        "\nWith the hand raised the direct cone dies but the reflector keeps\n\
         most of the room VR-grade — the spatial version of the Fig. 9 CDFs."
    );
}
