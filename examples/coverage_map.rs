//! Coverage map: an ASCII heatmap of delivered SNR over the room, with
//! and without the reflector, for a player facing the AP — the spatial
//! picture behind Figs. 3 and 9.
//!
//! Cells are independent, so they are fanned out over the persistent
//! worker pool with [`movr_sim::pool_map`]; the map is byte-identical
//! for any thread count, and the second render reuses the first
//! render's threads.
//!
//! ```sh
//! cargo run --release --example coverage_map
//! ```

use movr::system::{MovrSystem, SystemConfig};
use movr_math::Vec2;
use movr_motion::{PlayerState, WorldState};
use movr_radio::{RateTable, VR_REQUIRED_SNR_DB};
use movr_sim::{available_threads, pool_map};

/// Grid resolution, metres.
const STEP: f64 = 0.25;

fn snr_char(snr: f64) -> char {
    // One character per ~5 dB band.
    match snr {
        s if s >= 25.0 => '#',
        s if s >= VR_REQUIRED_SNR_DB => '+',
        s if s >= 8.0 => ':',
        s if s >= 0.0 => '.',
        _ => ' ',
    }
}

fn render(with_hand: bool) {
    let rate = RateTable;

    // Enumerate cells in render order (north row first), then evaluate
    // them in parallel: every cell builds a fresh system, so persistent
    // beam state cannot leak between unrelated positions and the result
    // does not depend on evaluation order.
    let steps = (5.0 / STEP) as i32;
    let mut grid = Vec::new();
    for gy in (1..steps).rev() {
        for gx in 1..steps {
            grid.push(Vec2::new(f64::from(gx) * STEP, f64::from(gy) * STEP));
        }
    }
    let snrs = pool_map(grid, available_threads(), move |_, &pos| {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        let yaw = pos.bearing_deg_to(Vec2::new(0.5, 2.5));
        let player = PlayerState::standing(pos, yaw).with_hand(with_hand);
        sys.evaluate(&WorldState::player_only(player)).snr_db
    });

    let width = (steps - 1) as usize;
    let cells = snrs.len();
    let vr_cells = snrs.iter().filter(|&&s| rate.supports_vr(s)).count();
    let rows: Vec<String> = snrs
        .chunks(width)
        .map(|row| row.iter().map(|&s| snr_char(s)).collect())
        .collect();

    println!(
        "\n=== player facing the AP{} ===",
        if with_hand { ", hand raised" } else { "" }
    );
    println!("legend: '#' ≥25 dB, '+' ≥{VR_REQUIRED_SNR_DB:.0} dB (VR-grade), ':' ≥8, '.' ≥0, ' ' outage");
    println!("A = AP (west wall), R = reflector (north wall)\n");
    for (i, row) in rows.iter().enumerate() {
        let mut line = row.clone();
        // Mark the AP and reflector rows approximately.
        if i == 0 {
            line.insert(3, 'R');
        }
        if i == rows.len() / 2 {
            line.insert(0, 'A');
        }
        println!("  {line}");
    }
    println!(
        "\nVR-grade cells: {vr_cells}/{cells} ({:.0}%)",
        vr_cells as f64 / cells as f64 * 100.0
    );
}

fn main() {
    println!("SNR coverage of the 5m x 5m office (player gaze toward the AP).");
    render(false);
    render(true);
    println!(
        "\nWith the hand raised the direct cone dies but the reflector keeps\n\
         most of the room VR-grade — the spatial version of the Fig. 9 CDFs."
    );
}
