//! Workspace façade for the MoVR simulator.
//!
//! Re-exports every crate in the workspace under one roof so the
//! repository-level examples and integration tests can reach the whole
//! stack through a single dependency. Library users should depend on the
//! individual crates (`movr`, `movr-rfsim`, …) instead.

pub use movr;
pub use movr_analog as analog;
pub use movr_control as control;
pub use movr_math as math;
pub use movr_motion as motion;
pub use movr_obs as obs;
pub use movr_phased_array as phased_array;
pub use movr_radio as radio;
pub use movr_rfsim as rfsim;
pub use movr_sim as sim;
pub use movr_vr as vr;

pub mod fleet;
