//! Deterministic session fleets for the analytics pipeline.
//!
//! The `movr-obs reduce` tooling operates on *fleets* of recorded
//! sessions: many seeded VR sessions, each emitting one JSONL timeline
//! tagged with its session id. This module is the canonical generator —
//! the golden-rollup integration test, the `fleet_timelines` example,
//! and the verify-script stage all build their fleets here, so they
//! agree byte for byte.
//!
//! Session `i` of a fleet walks the paper's 5 m × 5 m office on RNG
//! seed `i` (gaze pinned to the AP wall, the posture of a real VR
//! player) under the full MoVR strategy with motion tracking, mirroring
//! the multi-seed fleet the `sweep` bench times. Timelines are stamped
//! with simulation time only, so a fleet is a pure function of
//! `(sessions, duration_s)`.

use movr::session::{run_session_recorded, SessionConfig, SessionOutcome, Strategy};
use movr_math::Vec2;
use movr_motion::RandomWalk;
use movr_obs::{Recorder, SessionTagged};
use movr_rfsim::Room;

/// The gaze focus every fleet session uses: the AP on the west wall.
pub const AP_FOCUS: Vec2 = Vec2 { x: 0.5, y: 2.5 };

/// Runs fleet session `session` (which is also its RNG seed) for
/// `duration_s` simulated seconds, recording its timeline — every event
/// tagged `"session": session` — into `rec`.
pub fn run_fleet_session(
    session: u64,
    duration_s: f64,
    rec: &mut dyn Recorder,
) -> SessionOutcome {
    let room = Room::paper_office();
    let trace = RandomWalk::with_gaze(&room, session, duration_s, AP_FOCUS);
    let cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    let mut tagged = SessionTagged::new(rec, session);
    run_session_recorded(&trace, &cfg, &mut tagged)
}

/// Fleet session `session`'s timeline as JSONL (one event per line,
/// trailing newline), byte-identical to what a
/// [`movr_obs::JsonlWriter`] recording the same session would write.
pub fn session_jsonl(session: u64, duration_s: f64) -> String {
    let mut rec = movr_obs::MemoryRecorder::new();
    run_fleet_session(session, duration_s, &mut rec);
    rec.to_jsonl()
}

/// All `sessions` timelines of a fleet, fanned out over `threads`
/// persistent pool workers. Output is byte-identical for every
/// `threads` value (sessions are independent and returned in session
/// order); repeated fleets reuse the same worker threads.
pub fn fleet_jsonl(sessions: u64, duration_s: f64, threads: usize) -> Vec<String> {
    let ids: Vec<u64> = (0..sessions).collect();
    movr_sim::pool_map(ids, threads, move |_, &id| session_jsonl(id, duration_s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timelines_are_deterministic_and_session_tagged() {
        let a = session_jsonl(3, 0.2);
        let b = session_jsonl(3, 0.2);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for line in a.lines() {
            assert!(line.ends_with(",\"session\":3}"), "{line}");
        }
    }

    #[test]
    fn sessions_differ_by_seed() {
        let a = session_jsonl(0, 0.2);
        let b = session_jsonl(1, 0.2);
        assert_ne!(
            a.replace("\"session\":0", "\"session\":1"),
            b,
            "different seeds must produce different timelines"
        );
    }

    #[test]
    fn fan_out_is_thread_count_invariant() {
        let one = fleet_jsonl(4, 0.2, 1);
        let four = fleet_jsonl(4, 0.2, 4);
        assert_eq!(one, four);
        assert_eq!(one.len(), 4);
    }
}
