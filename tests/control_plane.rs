//! Control-plane integration: driving a reflector's knobs through the
//! Bluetooth-class channel with simulated time, the way the AP's
//! controller actually talks to the Arduino.

use movr::reflector::MovrReflector;
use movr_control::{ControlChannel, ControlMessage};
use movr_math::Vec2;
use movr_sim::{EventQueue, SimTime};

/// Apply a delivered message to the device, as the Arduino firmware would.
fn apply(reflector: &mut MovrReflector, msg: ControlMessage) {
    match msg {
        ControlMessage::SetReflectorBeams { rx_deg, tx_deg } => {
            reflector.steer_rx(rx_deg);
            reflector.steer_tx(tx_deg);
        }
        ControlMessage::SetAmplifierGain { gain_db } => {
            reflector.set_gain_db(gain_db);
        }
        ControlMessage::StartModulation { .. } => reflector.set_modulating(true),
        ControlMessage::StopModulation => reflector.set_modulating(false),
        _ => {}
    }
}

#[test]
fn commands_arrive_in_order_and_take_effect() {
    let mut reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 1);
    let mut channel = ControlChannel::ideal();
    let mut clock: EventQueue<()> = EventQueue::new();
    clock.schedule_at(SimTime::from_millis(100), ());

    let t0 = SimTime::ZERO;
    channel.send(t0, ControlMessage::SetReflectorBeams { rx_deg: -102.0, tx_deg: -45.0 });
    channel.send(t0, ControlMessage::SetAmplifierGain { gain_db: 25.0 });
    channel.send(t0, ControlMessage::StartModulation { freq_hz: 100e3 });

    let (now, ()) = clock.next().unwrap();
    for (_, msg) in channel.deliveries(now) {
        apply(&mut reflector, msg);
    }
    assert!(movr_math::wrap_deg_180(reflector.rx_array().steering_deg() + 102.0).abs() < 1e-9);
    assert!(movr_math::wrap_deg_180(reflector.tx_array().steering_deg() + 45.0).abs() < 1e-9);
    assert_eq!(reflector.amplifier().gain_db(), 25.0);
    assert!(reflector.is_modulating());
}

#[test]
fn lossy_channel_just_delays_convergence() {
    // Commands may drop; a re-send loop still converges, and nothing is
    // applied before its delivery time.
    let mut reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 2);
    let mut channel = ControlChannel::bluetooth(7);
    let target = ControlMessage::SetAmplifierGain { gain_db: 30.0 };

    let mut now;
    let mut applied_at = None;
    for round in 0..50 {
        now = SimTime::from_millis(round * 20);
        channel.send(now, target);
        let check = now + SimTime::from_millis(15);
        for (at, msg) in channel.deliveries(check) {
            assert!(at >= SimTime::from_millis(round * 20).saturating_since(SimTime::from_millis(20)));
            apply(&mut reflector, msg);
            applied_at.get_or_insert(at);
        }
        if reflector.amplifier().gain_db() == 30.0 {
            break;
        }
    }
    assert_eq!(reflector.amplifier().gain_db(), 30.0, "command never converged");
    let at = applied_at.expect("some delivery");
    // BLE-class latency: nothing arrives instantly.
    assert!(at >= SimTime::from_micros(7_500));
}

#[test]
fn sweep_command_traffic_fits_the_protocol_budget() {
    // A 21-beam windowed re-sweep sends 21 beam commands; at BLE latency
    // that is the dominant cost, matching the system's accounting.
    let mut channel = ControlChannel::ideal();
    channel.latency = SimTime::from_micros(7_500);
    let mut last_delivery = SimTime::ZERO;
    let mut t = SimTime::ZERO;
    for k in 0..21 {
        let deg = -80.0 + k as f64;
        // Next command goes out when the previous one was delivered
        // (stop-and-wait, as the Arduino protocol runs).
        let at = channel
            .send(t, ControlMessage::SetReflectorBeams { rx_deg: -102.0, tx_deg: deg })
            .expect("lossless");
        last_delivery = at;
        t = at;
    }
    let total = last_delivery.as_millis_f64();
    assert!((total - 21.0 * 7.5).abs() < 0.1, "total={total} ms");
    // Well beyond a 10 ms frame budget — the quantitative reason §6 wants
    // tracking-assisted realignment.
    assert!(total > 10.0);
}
