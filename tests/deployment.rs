//! Deployment-level integration: multi-reflector planning, non-convex
//! rooms, and the predictive-tracking option, each driven through the
//! public API end to end.

use movr::planning::{candidate_wall_mounts, coverage, greedy_plan, sample_poses, Mount};
use movr::reflector::MovrReflector;
use movr::session::{run_session, SessionConfig, Strategy};
use movr::system::{LinkMode, MovrSystem, SystemConfig};
use movr_math::{SimRng, Vec2};
use movr_motion::{PlayerState, RandomWalk, WorldState};
use movr_radio::{RadioEndpoint, RateTable};
use movr_rfsim::{Channel, NoiseModel, Room, Scene};

#[test]
fn greedy_planning_improves_real_coverage() {
    let room = Room::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let mut rng = SimRng::seed_from_u64(11);
    let poses = sample_poses(&room, 2.0, 4, &mut rng);
    let candidates = candidate_wall_mounts(&room, 1.6);

    let plan = greedy_plan(&ap, &candidates, &poses, 3);
    assert!(!plan.mounts.is_empty(), "at least one mount must help");
    // Re-evaluating the chosen plan from scratch reproduces the curve's
    // final value (the planner isn't overfitting to shared state).
    let replay = coverage(&ap, &plan.mounts, &poses);
    let planned = *plan.coverage_curve.last().unwrap();
    assert!(
        (replay - planned).abs() < 1e-9,
        "replay {replay} vs planned {planned}"
    );
    assert!(planned > plan.coverage_curve[0]);
}

#[test]
fn l_shaped_room_end_to_end() {
    // AP in the north leg, player in the east leg: around-the-corner
    // service through a south-wall reflector.
    let scene = Scene::new(
        Room::l_shaped_studio(),
        Channel::new(24.0e9),
        NoiseModel::ieee_802_11ad(),
    );
    let ap = RadioEndpoint::paper_radio(Vec2::new(1.5, 4.5), -70.0);
    let mut sys = MovrSystem::new(scene, ap, SystemConfig::default());
    sys.add_reflector(MovrReflector::wall_mounted(Vec2::new(3.0, 0.25), 75.0, 3));

    let pos = Vec2::new(4.2, 2.0);
    let yaw = pos.bearing_deg_to(Vec2::new(3.0, 0.25));
    let world = WorldState::player_only(PlayerState::standing(pos, yaw));

    let direct = sys.evaluate_direct(&world);
    assert!(direct < 0.0, "the corner must kill the direct path: {direct}");

    let d = sys.evaluate(&world);
    assert!(matches!(d.mode, LinkMode::Reflector(_)));
    assert!(
        RateTable.supports_vr(d.snr_db),
        "around-the-corner SNR {} should be VR-grade",
        d.snr_db
    );
}

#[test]
fn multi_reflector_session_beats_single() {
    // A full-turn-heavy walk (no gaze pinning): the player often faces
    // away from the AP-side reflector; adding opposite-wall mounts keeps
    // more frames alive.
    use movr::session::run_session_on;
    let room = Room::paper_office();
    let trace = RandomWalk::new(&room, 2024, 20.0);
    let cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });

    let single = run_session_on(MovrSystem::paper_setup(cfg.system), &trace, &cfg);

    let build_multi = || {
        let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 0.0);
        let mut sys = MovrSystem::new(Scene::paper_office(), ap, cfg.system);
        sys.add_reflector(MovrReflector::wall_mounted(Vec2::new(2.5, 4.75), -99.0, 1));
        sys.add_reflector(MovrReflector::wall_mounted(Vec2::new(4.75, 4.0), -145.0, 2));
        sys.add_reflector(MovrReflector::wall_mounted(Vec2::new(2.5, 0.25), 99.0, 3));
        sys
    };
    let multi = run_session_on(build_multi(), &trace, &cfg);

    assert!(
        multi.glitches.loss_rate <= single.glitches.loss_rate,
        "multi {} vs single {}",
        multi.glitches.loss_rate,
        single.glitches.loss_rate
    );
    assert!(
        multi.glitches.frames_delivered > single.glitches.frames_delivered,
        "more mounts must rescue more frames: {} vs {}",
        multi.glitches.frames_delivered,
        single.glitches.frames_delivered
    );
}

#[test]
fn l_shaped_session_via_run_session_on() {
    use movr::session::run_session_on;
    let scene = Scene::new(
        Room::l_shaped_studio(),
        Channel::new(24.0e9),
        NoiseModel::ieee_802_11ad(),
    );
    let cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    let ap = RadioEndpoint::paper_radio(Vec2::new(1.5, 4.5), -70.0);
    let mut sys = MovrSystem::new(scene, ap, cfg.system);
    sys.add_reflector(MovrReflector::wall_mounted(Vec2::new(3.0, 0.25), 75.0, 3));

    // Static player around the corner for 3 s.
    let pos = Vec2::new(4.2, 2.0);
    let yaw = pos.bearing_deg_to(Vec2::new(3.0, 0.25));
    let trace = movr_motion::StaticScene::new(PlayerState::standing(pos, yaw), 3.0);

    let out = run_session_on(sys, &trace, &cfg);
    assert!(
        out.glitches.loss_rate < 0.05,
        "around-the-corner session loss {}",
        out.glitches.loss_rate
    );
    assert!(out.reflector_fraction > 0.9);
}

#[test]
fn prediction_never_hurts_a_session() {
    // Same gaze-walk with and without §6 prediction: with the paper's
    // wide beams the outcomes must be near-identical (prediction is
    // insurance, not a regression).
    let room = Room::paper_office();
    let trace = RandomWalk::with_gaze(&room, 4321, 20.0, Vec2::new(0.5, 2.5));
    let mut plain = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    plain.system.use_prediction = false;
    let mut predictive = plain;
    predictive.system.use_prediction = true;

    let a = run_session(&trace, &plain);
    let b = run_session(&trace, &predictive);
    assert!(
        b.glitches.loss_rate <= a.glitches.loss_rate + 0.02,
        "prediction {} vs plain {}",
        b.glitches.loss_rate,
        a.glitches.loss_rate
    );
    assert!(b.mean_snr_db > a.mean_snr_db - 1.0);
}

#[test]
fn single_mount_plan_matches_manual_canonical() {
    // The planner, given only the canonical mount as a candidate, agrees
    // with the hand-built paper_setup for poses facing the AP.
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let canonical = Mount {
        position: Vec2::new(1.0, 4.75),
        boresight_deg: -70.0,
    };
    let mut rng = SimRng::seed_from_u64(5);
    let poses: Vec<PlayerState> = (0..10)
        .map(|_| {
            let p = Vec2::new(rng.uniform(2.5, 4.5), rng.uniform(1.0, 3.5));
            PlayerState::standing(p, p.bearing_deg_to(Vec2::new(0.5, 2.5)))
        })
        .collect();
    let c = coverage(&ap, &[canonical], &poses);
    assert!(c > 0.9, "canonical layout covers AP-facing poses: {c}");
}
