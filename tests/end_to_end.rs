//! End-to-end integration tests: the full stack from motion trace through
//! propagation, devices, protocols, link management and frame accounting.

use movr::session::{run_session, SessionConfig, Strategy};
use movr::system::{LinkMode, MovrSystem, SystemConfig};
use movr_math::Vec2;
use movr_motion::{HandRaise, HeadTurn, PlayerState, RandomWalk, WalkerCrossing, WorldState};
use movr_radio::{RateTable, VR_REQUIRED_SNR_DB};
use movr_rfsim::Room;

fn player_facing_ap() -> PlayerState {
    let center = Vec2::new(4.0, 2.5);
    let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
    PlayerState::standing(center, yaw)
}

#[test]
fn paper_story_los_blocked_rescued() {
    // The paper's core claim as one test: a clear LOS carries VR; a hand
    // kills it; MoVR restores it.
    let mut sys = MovrSystem::paper_setup(SystemConfig::default());
    let rate = RateTable;

    let clear = sys.evaluate(&WorldState::player_only(player_facing_ap()));
    assert_eq!(clear.mode, LinkMode::Direct);
    assert!(rate.supports_vr(clear.snr_db), "LOS SNR {}", clear.snr_db);

    let blocked_direct =
        sys.evaluate_direct(&WorldState::player_only(player_facing_ap().with_hand(true)));
    assert!(
        clear.snr_db - blocked_direct > 14.0,
        "§3: hand blockage must cost >14 dB (cost {})",
        clear.snr_db - blocked_direct
    );
    assert!(!rate.supports_vr(blocked_direct));

    let rescued = sys.evaluate(&WorldState::player_only(player_facing_ap().with_hand(true)));
    assert!(matches!(rescued.mode, LinkMode::Reflector(_)));
    assert!(rate.supports_vr(rescued.snr_db), "MoVR SNR {}", rescued.snr_db);
}

#[test]
fn movr_snr_is_close_to_or_above_los() {
    // Fig. 9's qualitative claim: the reflector path is within a few dB of
    // (often above) the unblocked LOS.
    let mut sys = MovrSystem::paper_setup(SystemConfig::default());
    let world = WorldState::player_only(player_facing_ap());
    let los = sys.evaluate_direct(&world);
    let via = sys.evaluate_via_reflector(0, &world).end_snr_db;
    let improvement = via - los;
    assert!(
        (-4.0..12.0).contains(&improvement),
        "improvement {improvement} dB out of the paper's band (los={los}, via={via})"
    );
}

#[test]
fn walker_crossing_session() {
    // Another person walks between the AP and the player twice-ish; MoVR
    // keeps frames flowing, direct-only drops them while shadowed.
    let trace = WalkerCrossing {
        player: player_facing_ap(),
        from: Vec2::new(1.5, 0.5),
        to: Vec2::new(1.5, 4.5),
        start_s: 1.0,
        speed_mps: 1.2,
        duration_s: 6.0,
    };
    let direct = run_session(&trace, &SessionConfig::with_strategy(Strategy::DirectOnly));
    let movr = run_session(
        &trace,
        &SessionConfig::with_strategy(Strategy::Movr { tracking: true }),
    );
    assert!(
        direct.glitches.glitch_events >= 1,
        "the walker must shadow the direct link at least once"
    );
    assert!(
        movr.glitches.loss_rate < direct.glitches.loss_rate,
        "movr {} vs direct {}",
        movr.glitches.loss_rate,
        direct.glitches.loss_rate
    );
    assert!(movr.glitches.loss_rate < 0.05, "{}", movr.glitches.loss_rate);
}

#[test]
fn head_turn_session_recovers_via_reflector() {
    // The player swings her gaze from the AP toward the reflector side;
    // the system must hand the stream over without a long stall.
    let trace = HeadTurn {
        base: player_facing_ap(),
        start_s: 1.0,
        rate_dps: -120.0, // yaw 180° → 90°: gaze swings toward the
        total_deg: 90.0,  // north-wall reflector, AP leaves the ±70° scan
        duration_s: 4.0,
    };
    let movr = run_session(
        &trace,
        &SessionConfig::with_strategy(Strategy::Movr { tracking: true }),
    );
    assert!(
        movr.reflector_fraction > 0.2,
        "the reflector must take over during the turn: {}",
        movr.reflector_fraction
    );
    assert!(
        movr.glitches.loss_rate < 0.10,
        "loss {}",
        movr.glitches.loss_rate
    );
}

#[test]
fn hand_raise_glitch_budget() {
    let trace = HandRaise {
        base: player_facing_ap(),
        raise_at_s: 2.0,
        lower_at_s: 4.0,
        duration_s: 6.0,
    };
    let tracked = run_session(
        &trace,
        &SessionConfig::with_strategy(Strategy::Movr { tracking: true }),
    );
    // Tracking-assisted failover costs at most a handful of frames.
    assert!(
        tracked.glitches.longest_stall_frames <= 3,
        "stall {} frames",
        tracked.glitches.longest_stall_frames
    );
}

#[test]
fn long_gaze_walk_session_is_stable() {
    let room = Room::paper_office();
    let trace = RandomWalk::with_gaze(&room, 1234, 30.0, Vec2::new(0.5, 2.5));
    let movr = run_session(
        &trace,
        &SessionConfig::with_strategy(Strategy::Movr { tracking: true }),
    );
    let direct = run_session(&trace, &SessionConfig::with_strategy(Strategy::DirectOnly));
    assert!(movr.glitches.loss_rate <= direct.glitches.loss_rate);
    assert!(
        movr.glitches.loss_rate < 0.15,
        "movr loss {}",
        movr.glitches.loss_rate
    );
    assert!(movr.mean_snr_db > VR_REQUIRED_SNR_DB);
}

#[test]
fn sessions_are_reproducible() {
    let room = Room::paper_office();
    let trace = RandomWalk::with_gaze(&room, 5, 10.0, Vec2::new(0.5, 2.5));
    let cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    let a = run_session(&trace, &cfg);
    let b = run_session(&trace, &cfg);
    assert_eq!(a.glitches, b.glitches);
    assert_eq!(a.mode_switches, b.mode_switches);
    assert!((a.mean_snr_db - b.mean_snr_db).abs() < 1e-12);
}

#[test]
fn tethered_reference_never_glitches() {
    let room = Room::paper_office();
    let trace = RandomWalk::new(&room, 9, 10.0);
    let out = run_session(&trace, &SessionConfig::with_strategy(Strategy::Tethered));
    assert_eq!(out.glitches.loss_rate, 0.0);
    assert_eq!(out.glitches.glitch_events, 0);
}
