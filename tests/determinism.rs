//! Cross-crate determinism regression tests.
//!
//! The paper's evaluation depends on bit-reproducible stochastic
//! simulation: the same seed must reproduce the same SNR/rate traces
//! through the whole stack (tracker noise, fault injection, alignment
//! measurement noise, SNR-report noise), and different seeds must
//! actually exercise different randomness. A regression here means some
//! subsystem started drawing from ambient, unseeded state.

use movr::session::{
    run_session, run_session_recorded, RatePolicy, SessionConfig, Strategy,
};
use movr::system::{MovrSystem, SystemConfig};
use movr_math::Vec2;
use movr_motion::{HandRaise, PlayerState, WorldState};
use movr_obs::{JsonlWriter, MemoryRecorder, NullRecorder};

fn moving_world(t_s: f64) -> WorldState {
    // A player orbiting the room centre: the pose changes every frame, so
    // the tracker and beam-command machinery stay busy.
    let center = Vec2::new(2.5 + 1.2 * (0.7 * t_s).cos(), 2.5 + 1.2 * (0.7 * t_s).sin());
    let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
    WorldState::player_only(PlayerState::standing(center, yaw))
}

fn config_with_seed(seed: u64) -> SystemConfig {
    SystemConfig {
        seed,
        // Make the seed matter: lossy control plane exercises the fault
        // RNG on every beam command.
        command_loss_probability: 0.25,
        ..SystemConfig::default()
    }
}

/// One simulated second of frame-by-frame link decisions.
fn snr_rate_trace(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut sys = MovrSystem::paper_setup(config_with_seed(seed));
    let mut snrs = Vec::new();
    let mut rates = Vec::new();
    for frame in 0..90 {
        let t_s = frame as f64 / 90.0;
        let d = sys.evaluate_at(t_s, &moving_world(t_s));
        snrs.push(d.snr_db);
        rates.push(d.rate_mbps);
    }
    (snrs, rates)
}

#[test]
fn same_seed_reproduces_identical_snr_and_rate_traces() {
    let (snr_a, rate_a) = snr_rate_trace(42);
    let (snr_b, rate_b) = snr_rate_trace(42);
    // Bit-identical, not approximately equal: the whole point.
    assert_eq!(snr_a, snr_b);
    assert_eq!(rate_a, rate_b);
}

#[test]
fn different_seeds_diverge() {
    let (snr_a, _) = snr_rate_trace(1);
    let (snr_b, _) = snr_rate_trace(2);
    assert_eq!(snr_a.len(), snr_b.len());
    let differing = snr_a
        .iter()
        .zip(&snr_b)
        .filter(|(a, b)| a != b)
        .count();
    assert!(
        differing > 0,
        "seeds 1 and 2 produced identical 90-frame SNR traces; \
         the seed no longer reaches the stochastic subsystems"
    );
}

#[test]
fn full_session_outcome_is_reproducible() {
    // End-to-end through movr::session with a noisy (non-oracle) rate
    // policy, so the report-noise RNG is also on the hook.
    let trace = HandRaise {
        base: PlayerState::standing(
            Vec2::new(4.0, 2.5),
            Vec2::new(4.0, 2.5).bearing_deg_to(Vec2::new(0.5, 2.5)),
        ),
        raise_at_s: 0.5,
        lower_at_s: 1.5,
        duration_s: 2.0,
    };
    let mut cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    cfg.rate_policy = RatePolicy::Threshold { backoff_db: 1.0 };
    cfg.system.seed = 7;

    let a = run_session(&trace, &cfg);
    let b = run_session(&trace, &cfg);
    assert_eq!(a.glitches, b.glitches);
    assert_eq!(a.mean_snr_db, b.mean_snr_db);
    assert_eq!(a.min_snr_db, b.min_snr_db);
    assert_eq!(a.mode_switches, b.mode_switches);
    assert_eq!(a.realignments, b.realignments);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
}

/// The canonical recorded scenario for the timeline tests below.
fn recorded_scenario() -> (HandRaise, SessionConfig) {
    let trace = HandRaise {
        base: PlayerState::standing(
            Vec2::new(4.0, 2.5),
            Vec2::new(4.0, 2.5).bearing_deg_to(Vec2::new(0.5, 2.5)),
        ),
        raise_at_s: 0.5,
        lower_at_s: 1.5,
        duration_s: 2.0,
    };
    let mut cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    cfg.rate_policy = RatePolicy::Threshold { backoff_db: 1.0 };
    cfg.system.seed = 7;
    (trace, cfg)
}

#[test]
fn same_seed_produces_byte_identical_jsonl_stream() {
    // The observability tentpole's determinism guarantee: two runs of the
    // same seeded session serialize the *same bytes*, so timelines can be
    // diffed across machines and commits.
    let (trace, cfg) = recorded_scenario();
    let stream = || {
        let mut rec = JsonlWriter::new(Vec::new());
        run_session_recorded(&trace, &cfg, &mut rec);
        rec.finish().expect("in-memory sink cannot fail")
    };
    let a = stream();
    let b = stream();
    assert!(!a.is_empty());
    assert_eq!(a, b, "JSONL timeline must be byte-identical per seed");

    // And the in-memory recorder serializes to the identical stream.
    let mut mem = MemoryRecorder::new();
    run_session_recorded(&trace, &cfg, &mut mem);
    assert_eq!(a, mem.to_jsonl().into_bytes());
}

#[test]
fn recording_does_not_perturb_the_session() {
    // A NullRecorder session must be bit-identical to the uninstrumented
    // run, and attaching a real recorder must not change the outcome
    // either: observation never draws from the simulation's RNG streams.
    let (trace, cfg) = recorded_scenario();
    let plain = run_session(&trace, &cfg);
    let nulled = run_session_recorded(&trace, &cfg, &mut NullRecorder);
    let mut mem = MemoryRecorder::new();
    let memed = run_session_recorded(&trace, &cfg, &mut mem);

    for other in [&nulled, &memed] {
        assert_eq!(plain.glitches, other.glitches);
        assert_eq!(plain.mean_snr_db, other.mean_snr_db);
        assert_eq!(plain.min_snr_db, other.min_snr_db);
        assert_eq!(plain.mode_switches, other.mode_switches);
        assert_eq!(plain.realignments, other.realignments);
        assert_eq!(plain.reflector_fraction, other.reflector_fraction);
        assert_eq!(plain.metrics.to_json(), other.metrics.to_json());
    }
    assert!(!mem.is_empty(), "the memory recorder did observe the run");
}

#[test]
fn resume_from_snapshot_is_equivalent_to_the_uninterrupted_run() {
    // Determinism across a checkpoint boundary: cutting the canonical
    // recorded scenario mid-run, round-tripping through snapshot bytes,
    // and resuming must reproduce the uninterrupted run's outcome and
    // JSONL timeline byte-for-byte. (The randomized version of this gate
    // lives in tests/checkpoint.rs; this pins the canonical scenario.)
    use movr::session::Session;
    use movr_motion::MotionTrace;

    let (trace, cfg) = recorded_scenario();
    let mut full_rec = MemoryRecorder::new();
    let mut full = Session::new(&cfg);
    while full.step_frame_recorded(&trace, &mut full_rec) {}
    let full_out = full.outcome(trace.duration_s());

    let mut rec_a = MemoryRecorder::new();
    let mut first = Session::new(&cfg);
    for _ in 0..60 {
        assert!(first.step_frame_recorded(&trace, &mut rec_a));
    }
    let bytes = first.snapshot();
    drop(first);

    let mut resumed = Session::restore(&bytes, &cfg).expect("snapshot restores");
    let mut rec_b = MemoryRecorder::with_next_span_id(rec_a.next_span_id());
    while resumed.step_frame_recorded(&trace, &mut rec_b) {}
    let resumed_out = resumed.outcome(trace.duration_s());

    assert_eq!(full.frames(), resumed.frames());
    assert_eq!(full_out.glitches, resumed_out.glitches);
    assert_eq!(full_out.mean_snr_db.to_bits(), resumed_out.mean_snr_db.to_bits());
    assert_eq!(full_out.min_snr_db.to_bits(), resumed_out.min_snr_db.to_bits());
    assert_eq!(full_out.mode_switches, resumed_out.mode_switches);
    assert_eq!(full_out.realignments, resumed_out.realignments);
    assert_eq!(full_out.metrics.to_json(), resumed_out.metrics.to_json());
    assert_eq!(
        full_rec.to_jsonl(),
        rec_a.to_jsonl() + &rec_b.to_jsonl(),
        "stitched timeline must be byte-identical to the one-process run"
    );
}
