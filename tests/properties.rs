//! Property-based tests on cross-crate invariants.
//!
//! Each property encodes something the design *must* hold everywhere, not
//! just at the unit tests' hand-picked points: stability of the gain
//! controller across arbitrary beam postures and devices, geometric sanity
//! of the path tracer, monotonicity of the rate ladder, conservation in
//! the dB algebra.
//!
//! The runner is the in-tree `movr-testkit` harness (seeded generation,
//! greedy shrinking); every property runs at least the default 96 cases,
//! overridable with `MOVR_TESTKIT_CASES` / `MOVR_TESTKIT_SEED`.

use movr::gain_control::{run_gain_control, GainControlConfig};
use movr::reflector::MovrReflector;
use movr_math::{db_to_linear, linear_to_db, wrap_deg_180, Cdf, Vec2};
use movr_phased_array::UniformLinearArray;
use movr_radio::RateTable;
use movr_rfsim::{trace_paths, BodyPart, LinkCache, Obstacle, Room, Scene, TraceConfig};
use movr_sim::{EventQueue, SimTime};
use movr_testkit::{
    choice, f64_range, prop_assert, prop_assert_eq, prop_assume, property, u64_range,
    usize_range, vec_of,
};

// ---------------- math ----------------

property! {
    fn wrap_180_is_idempotent_and_in_range(deg in f64_range(-1e4, 1e4)) {
        let w = wrap_deg_180(deg);
        prop_assert!((-180.0..=180.0).contains(&w));
        prop_assert!((wrap_deg_180(w) - w).abs() < 1e-9);
        // Same direction modulo 360.
        let diff = (deg - w) / 360.0;
        prop_assert!((diff - diff.round()).abs() < 1e-9);
    }
}

property! {
    fn db_roundtrip(db in f64_range(-120.0, 60.0)) {
        prop_assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
    }
}

property! {
    fn db_addition_is_linear_multiplication(
        a in f64_range(-60.0, 30.0),
        b in f64_range(-60.0, 30.0),
    ) {
        let lin = db_to_linear(a) * db_to_linear(b);
        prop_assert!((linear_to_db(lin) - (a + b)).abs() < 1e-9);
    }
}

property! {
    fn cdf_is_monotone_and_normalised(xs in vec_of(f64_range(-100.0, 100.0), 1, 63)) {
        let mut xs = xs;
        xs.iter_mut().for_each(|x| *x = (*x * 100.0).round() / 100.0);
        let cdf = Cdf::new(xs.clone());
        prop_assert_eq!(cdf.len(), xs.len());
        prop_assert!(cdf.fraction_leq(f64::NEG_INFINITY) == 0.0);
        prop_assert!((cdf.fraction_leq(1e9) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = cdf.quantile(q);
            prop_assert!(v >= prev || q == 0.0);
            prev = v;
        }
        prop_assert!(cdf.min() <= cdf.median() && cdf.median() <= cdf.max());
    }
}

// ---------------- phased array ----------------

property! {
    fn array_factor_bounded_by_unity(
        n in usize_range(2, 23),
        steer in f64_range(-50.0, 50.0),
        theta in f64_range(-89.0, 89.0),
    ) {
        let arr = UniformLinearArray::new(
            n,
            0.5,
            movr_phased_array::PatchElement::default(),
            movr_phased_array::PhaseShifter::default(),
        );
        prop_assert!(arr.array_factor(steer, theta).abs() <= 1.0 + 1e-9);
    }
}

property! {
    fn steered_gain_is_near_best(steer in f64_range(-45.0, 45.0)) {
        let arr = UniformLinearArray::paper_array();
        let at_steer = arr.gain_dbi(steer, steer);
        let mut best = f64::NEG_INFINITY;
        let mut t = -89.0;
        while t < 89.0 {
            best = best.max(arr.gain_dbi(steer, t));
            t += 0.25;
        }
        prop_assert!(best - at_steer < 1.5, "steer={steer} best={best} at={at_steer}");
    }
}

// ---------------- ray tracing ----------------

property! {
    fn traced_paths_are_geometrically_sane(
        tx_x in f64_range(0.3, 4.7), tx_y in f64_range(0.3, 4.7),
        rx_x in f64_range(0.3, 4.7), rx_y in f64_range(0.3, 4.7),
    ) {
        let room = Room::paper_office();
        let tx = Vec2::new(tx_x, tx_y);
        let rx = Vec2::new(rx_x, rx_y);
        prop_assume!(tx.distance(rx) > 0.05);
        let paths = trace_paths(&room, &[], tx, rx, &TraceConfig::default());
        prop_assert!(!paths.is_empty());
        let direct = tx.distance(rx);
        for p in &paths {
            // No path is shorter than the straight line.
            prop_assert!(p.length_m >= direct - 1e-9);
            prop_assert!(p.excess_loss_db() >= 0.0);
            // Vertices stay within the closed room.
            for v in &p.vertices {
                prop_assert!(v.x >= -1e-9 && v.x <= 5.0 + 1e-9);
                prop_assert!(v.y >= -1e-9 && v.y <= 5.0 + 1e-9);
            }
        }
        // The LOS path is exactly the straight line.
        prop_assert!((paths[0].length_m - direct).abs() < 1e-9);
    }
}

property! {
    fn shadow_loss_bounded_and_monotone(
        offset in f64_range(0.0, 0.6),
        kind in choice(vec![BodyPart::Hand, BodyPart::Head, BodyPart::Torso]),
    ) {
        let seg = movr_rfsim::Segment::new(Vec2::new(0.0, 0.0), Vec2::new(4.0, 0.0));
        let near = Obstacle::new(kind, Vec2::new(2.0, offset));
        let far = Obstacle::new(kind, Vec2::new(2.0, offset + 0.05));
        let l_near = near.shadow_loss_on(&seg);
        let l_far = far.shadow_loss_on(&seg);
        prop_assert!((0.0..=kind.shadow_loss_db()).contains(&l_near));
        prop_assert!(l_far <= l_near + 1e-9, "loss must not grow with distance");
    }
}

// ---------------- rate ladder ----------------

property! {
    fn rate_is_monotone_in_snr_prop(
        a in f64_range(-10.0, 40.0),
        b in f64_range(-10.0, 40.0),
    ) {
        let t = RateTable;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.rate_mbps(lo) <= t.rate_mbps(hi));
    }
}

// ---------------- gain control ----------------

property! {
    fn gain_control_never_saturates(
        seed in u64_range(0, 499),
        rx_local in f64_range(-45.0, 45.0),
        tx_local in f64_range(-45.0, 45.0),
    ) {
        let mut r = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, seed);
        r.steer_rx(-70.0 + rx_local);
        r.steer_tx(-70.0 + tx_local);
        let res = run_gain_control(&mut r, &GainControlConfig::default());
        // The §4.2 invariant, across arbitrary devices and beam postures.
        prop_assert!(!r.is_saturated(),
            "seed={seed} chose {} vs loop {}", res.chosen_gain_db, r.loop_attenuation_db());
        prop_assert!(res.chosen_gain_db < r.loop_attenuation_db());
    }
}

// ---------------- tapers ----------------

property! {
    fn taper_weights_positive_efficiency_bounded(
        n in usize_range(1, 31),
        pedestal in f64_range(0.0, 1.0),
        kind in usize_range(0, 2),
    ) {
        use movr_phased_array::Taper;
        let taper = [
            Taper::Uniform,
            Taper::RaisedCosine { pedestal },
            Taper::Binomial,
        ][kind];
        for i in 0..n {
            prop_assert!(taper.weight(i, n) > 0.0);
        }
        let eff = taper.efficiency(n);
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-12, "eff={eff}");
    }
}

// ---------------- framing ----------------

property! {
    fn burst_airtime_at_least_ideal(
        bits in u64_range(1, 399_999_999),
        mcs_idx in usize_range(1, 15),
    ) {
        use movr_radio::FrameConfig;
        let cfg = FrameConfig::default();
        let mcs = &RateTable.entries()[mcs_idx];
        let t = cfg.burst_airtime(mcs, bits).as_secs_f64();
        let ideal = bits as f64 / (mcs.rate_mbps * 1e6);
        prop_assert!(t >= ideal);
        // Overhead stays bounded: even tiny bursts pay at most one
        // preamble+header+SIFS per PSDU.
        let n = cfg.ppdu_count(bits) as f64;
        let max_overhead = n * 6e-6;
        prop_assert!(t <= ideal + max_overhead, "t={t} ideal={ideal} n={n}");
    }
}

// ---------------- polygon rooms ----------------

property! {
    fn polygon_room_contains_centroid_and_rejects_outside(
        w in f64_range(2.0, 8.0),
        d in f64_range(2.0, 8.0),
    ) {
        use movr_rfsim::Material;
        let room = movr_rfsim::Room::rectangular(w, d, Material::Drywall);
        prop_assert!(room.contains(room.centroid()));
        prop_assert!(!room.contains(movr_math::Vec2::new(-0.5, d / 2.0)));
        prop_assert!(!room.contains(movr_math::Vec2::new(w + 0.5, d / 2.0)));
        // clamp_inside always lands inside with the margin.
        let p = room.clamp_inside(movr_math::Vec2::new(w * 2.0, -d), 0.3);
        prop_assert!(room.contains(p));
    }
}

property! {
    fn l_shaped_paths_never_cross_walls(
        tx_x in f64_range(0.4, 2.6), tx_y in f64_range(0.4, 4.6),
        rx_x in f64_range(0.4, 4.6), rx_y in f64_range(0.4, 2.6),
    ) {
        let room = Room::l_shaped_studio();
        let tx = Vec2::new(tx_x, tx_y);
        let rx = Vec2::new(rx_x, rx_y);
        prop_assume!(room.contains(tx) && room.contains(rx));
        prop_assume!(tx.distance(rx) > 0.05);
        let paths = trace_paths(&room, &[], tx, rx, &TraceConfig::default());
        for p in &paths {
            for leg in p.vertices.windows(2) {
                let seg = movr_rfsim::Segment::new(leg[0], leg[1]);
                for w in room.walls() {
                    prop_assert!(
                        seg.intersect_interior(&w.segment).is_none(),
                        "a path leg crosses a wall"
                    );
                }
            }
        }
    }
}

// ---------------- rate adaptation ----------------

property! {
    fn hysteresis_never_selects_undecodable(reports in vec_of(f64_range(-10.0, 35.0), 1, 63)) {
        use movr_radio::{Hysteresis, RateAdapter};
        let mut h = Hysteresis::new(1.0, 3, 0.0);
        for &snr in &reports {
            if let Some(mcs) = h.on_snr_report(snr) {
                // Whatever it picked, the *report* that drove the last
                // transition decoded it; the invariant that matters is
                // the rung is never above the instantaneous ideal one.
                let ideal = RateTable.best_mcs(snr).map(|m| m.index);
                if let Some(ideal_idx) = ideal {
                    prop_assert!(mcs.index <= ideal_idx.max(mcs.index));
                }
            }
        }
    }
}

// ---------------- predictor ----------------

property! {
    fn predictor_extrapolation_is_exact_for_linear_motion(
        vx in f64_range(-2.0, 2.0),
        vy in f64_range(-2.0, 2.0),
        w in f64_range(-120.0, 120.0),
    ) {
        use movr::tracking::BeamPredictor;
        use movr_motion::TrackedPose;
        let mut p = BeamPredictor::new();
        for k in 0..4 {
            let t = k as f64 * 0.01;
            p.observe(
                t,
                TrackedPose {
                    center: Vec2::new(2.0 + vx * t, 2.0 + vy * t),
                    yaw_deg: w * t,
                },
            );
        }
        let pred = p.predict(0.05).unwrap();
        prop_assert!((pred.center.x - (2.0 + vx * 0.05)).abs() < 1e-6);
        prop_assert!((pred.center.y - (2.0 + vy * 0.05)).abs() < 1e-6);
        prop_assert!(movr_math::wrap_deg_180(pred.yaw_deg - w * 0.05).abs() < 1e-6);
    }
}

// ---------------- observability ----------------

property! {
    fn histogram_count_equals_bucket_sum(
        values in vec_of(f64_range(-1e4, 1e4), 0, 63),
        lo in f64_range(-100.0, 99.0),
        width in f64_range(0.1, 200.0),
        n_buckets in usize_range(1, 40),
    ) {
        use movr_obs::Histogram;
        let mut h = Histogram::linear(lo, lo + width, n_buckets);
        for &v in &values {
            h.observe(v);
        }
        // The structural invariant: every observation lands in exactly
        // one bucket (underflow and overflow included), so the total
        // count equals the sum over all buckets — regardless of range,
        // resolution, or where the samples fall.
        let bucket_sum: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(h.count(), bucket_sum);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.summary().count(), values.len());

        // Merging two disjoint halves equals observing the whole stream.
        let (first, second) = values.split_at(values.len() / 2);
        let mut a = Histogram::linear(lo, lo + width, n_buckets);
        let mut b = Histogram::linear(lo, lo + width, n_buckets);
        first.iter().for_each(|&v| a.observe(v));
        second.iter().for_each(|&v| b.observe(v));
        a.merge(&b);
        prop_assert_eq!(a.count(), h.count());
        prop_assert_eq!(a.bucket_counts(), h.bucket_counts());
        prop_assert_eq!(a.underflow(), h.underflow());
        prop_assert_eq!(a.overflow(), h.overflow());
    }
}

// ---------------- link cache ----------------

property! {
    fn link_cache_tracks_obstacle_motion_exactly(
        tx_x in f64_range(0.3, 4.7),
        rx_y in f64_range(0.3, 4.7),
        ox in f64_range(0.5, 4.5),
        dx in f64_range(-0.4, 0.4),
        kind in choice(vec![BodyPart::Hand, BodyPart::Head, BodyPart::Torso]),
    ) {
        let tx = Vec2::new(tx_x, 0.8);
        let rx = Vec2::new(4.2, rx_y);
        let (ox, oy) = (ox, 2.5);
        let (dx, dy) = (dx, -dx / 2.0);
        prop_assume!(tx.distance(rx) > 0.05);

        let mut scene = Scene::paper_office();
        let idx = scene.add_obstacle(Obstacle::new(kind, Vec2::new(ox, oy)));
        let mut cache = LinkCache::new();
        // Warm the cache on the original obstacle position…
        let _ = cache.paths(&scene, tx, rx);
        // …then move the obstacle and read the link again through the
        // cache. (A stale read is impossible by construction: the cache
        // takes `&Scene` at the read, so any scene mutation — which bumps
        // the generation — is visible to it.)
        scene.move_obstacle(idx, Vec2::new(ox + dx, oy + dy));
        let cached = cache.paths(&scene, tx, rx).to_vec();

        // Reference: a scene built directly with the final obstacle
        // position, traced fresh. Must match the cache *exactly* — same
        // path count, every float bit-identical.
        let mut fresh = Scene::paper_office();
        fresh.add_obstacle(Obstacle::new(kind, Vec2::new(ox + dx, oy + dy)));
        let expect = fresh.trace_link(tx, rx);
        prop_assert_eq!(cached.as_slice(), expect.paths());
    }
}

// ---------------- event queue ----------------

property! {
    fn event_queue_pops_sorted(times in vec_of(u64_range(0, 999_999), 1, 63)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.next() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }
}
