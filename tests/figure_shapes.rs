//! The paper's figure *shapes* as tests: small-N versions of the Fig. 3
//! and Fig. 9 regenerators whose qualitative claims must keep holding as
//! the simulator evolves. If a calibration change breaks one of these,
//! the reproduction has drifted.

use movr::baselines::{aligned_direct_snr, opt_nlos};
use movr::system::{MovrSystem, SystemConfig};
use movr_math::{SimRng, Summary, Vec2};
use movr_motion::{PlayerState, WorldState};
use movr_phased_array::Codebook;
use movr_radio::{RadioEndpoint, RateTable, VR_REQUIRED_RATE_MBPS};
use movr_rfsim::{BodyPart, Obstacle, Scene};

const AP: Vec2 = Vec2::new(0.5, 2.5);

fn random_pose(rng: &mut SimRng) -> (Vec2, f64) {
    let pos = Vec2::new(rng.uniform(2.0, 4.5), rng.uniform(0.8, 4.2));
    let yaw = pos.bearing_deg_to(AP) + rng.uniform(-20.0, 20.0);
    (pos, yaw)
}

#[test]
fn fig3_shape_small_n() {
    let mut rng = SimRng::seed_from_u64(303);
    let rate = RateTable;
    let runs = 6;

    let mut los = Summary::new();
    let mut hand = Summary::new();
    let mut head = Summary::new();
    let mut body = Summary::new();
    let mut nlos = Summary::new();

    for _ in 0..runs {
        let mut scene = Scene::paper_office();
        let mut ap = RadioEndpoint::paper_radio(AP, 20.0);
        let (hs_pos, _) = random_pose(&mut rng);
        let mut hs = RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(AP));
        let mid = AP.lerp(hs_pos, 0.55);

        los.push(aligned_direct_snr(&scene, &mut ap, &mut hs));
        for (kind, stat) in [
            (BodyPart::Hand, &mut hand),
            (BodyPart::Head, &mut head),
            (BodyPart::Torso, &mut body),
        ] {
            scene.clear_obstacles();
            scene.add_obstacle(Obstacle::new(kind, mid));
            stat.push(aligned_direct_snr(&scene, &mut ap, &mut hs));
        }
        // Coarse NLOS sweep under the torso blocker.
        let ap_cb = Codebook::sweep(-50.0, 90.0, 4.0);
        let bore = hs.array().boresight_deg();
        let hs_cb = Codebook::sweep(bore - 48.0, bore + 48.0, 4.0);
        nlos.push(opt_nlos(&scene, &ap, &hs, &ap_cb, &hs_cb, 7.0).snr_db);
    }

    // The published shape, bar by bar.
    assert!((22.0..28.0).contains(&los.mean()), "LOS mean {}", los.mean());
    assert!(rate.supports_vr(los.mean()));
    assert!(los.mean() - hand.mean() > 14.0, "hand drop too small");
    assert!(hand.mean() > head.mean(), "head blocks more than hand");
    assert!(head.mean() > body.mean(), "body blocks more than head");
    for s in [&hand, &head, &body, &nlos] {
        assert!(
            !rate.supports_vr(s.mean()),
            "a blocked/NLOS bar is VR-grade: {}",
            s.mean()
        );
        assert!(rate.rate_mbps(s.mean()) < VR_REQUIRED_RATE_MBPS);
    }
    assert!(los.mean() - nlos.mean() > 12.0, "NLOS penalty too small");
}

#[test]
fn fig9_shape_small_n() {
    let mut rng = SimRng::seed_from_u64(909);
    let runs = 8;
    let mut nlos_impr = Summary::new();
    let mut movr_impr = Summary::new();

    let mut done = 0;
    while done < runs {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        let (pos, yaw) = random_pose(&mut rng);
        let player = PlayerState::standing(pos, yaw);
        // Keep within the single reflector's installed coverage.
        let hs_probe = RadioEndpoint::paper_radio(player.receiver_position(), yaw);
        if !hs_probe.array().can_steer_to(pos.bearing_deg_to(AP))
            || !hs_probe
                .array()
                .can_steer_to(pos.bearing_deg_to(Vec2::new(1.0, 4.75)))
        {
            continue;
        }
        done += 1;

        let clear = WorldState::player_only(player);
        let los = sys.evaluate_direct(&clear);

        let mid = AP.lerp(player.receiver_position(), 0.5);
        let mut blocked = WorldState::player_only(player);
        blocked.others.push(Obstacle::new(BodyPart::Torso, mid));

        let _ = sys.evaluate_direct(&blocked);
        let hs = RadioEndpoint::paper_radio(player.receiver_position(), yaw);
        let ap_cb = Codebook::sweep(-50.0, 90.0, 4.0);
        let hs_cb = Codebook::sweep(yaw - 48.0, yaw + 48.0, 4.0);
        let n = opt_nlos(sys.scene(), sys.ap(), &hs, &ap_cb, &hs_cb, 7.0);
        let m = sys.evaluate_via_reflector(0, &blocked).end_snr_db;

        nlos_impr.push(n.snr_db - los);
        movr_impr.push(m - los);
    }

    // Opt-NLOS: deeply negative; MoVR: near or above zero.
    assert!(
        nlos_impr.mean() < -12.0,
        "Opt-NLOS must lose double digits: {}",
        nlos_impr.mean()
    );
    assert!(
        movr_impr.mean() > -3.0,
        "MoVR must sit near/above LOS on average: {}",
        movr_impr.mean()
    );
    assert!(
        movr_impr.mean() - nlos_impr.mean() > 10.0,
        "MoVR must dominate Opt-NLOS"
    );
    assert!(
        movr_impr.min() > -10.0,
        "MoVR's worst case stays shallow: {}",
        movr_impr.min()
    );
}

#[test]
fn fig8_shape_small_n() {
    use movr::alignment::{estimate_incidence, AlignmentConfig};
    use movr::reflector::MovrReflector;

    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(AP, 20.0);
    let mut rng = SimRng::seed_from_u64(808);
    for run in 0..4 {
        let pos = Vec2::new(rng.uniform(1.0, 3.2), 4.75);
        let bore = pos.bearing_deg_to(Vec2::new(1.8, 2.2)) + rng.uniform(-8.0, 8.0);
        let reflector = MovrReflector::wall_mounted(pos, bore, 700 + run);
        let truth = pos.bearing_deg_to(AP);
        let truth_ap = AP.bearing_deg_to(pos);
        let cfg = AlignmentConfig {
            ap_codebook: Codebook::sweep(truth_ap - 10.0, truth_ap + 10.0, 1.0),
            reflector_codebook: Codebook::sweep(truth - 10.0, truth + 10.0, 1.0),
            ..Default::default()
        };
        let r = estimate_incidence(&scene, ap, reflector, &cfg, &mut rng);
        assert!(
            movr_math::wrap_deg_180(r.reflector_angle_deg - truth).abs() <= 2.0,
            "run {run}: over the paper's 2° bound"
        );
    }
}
