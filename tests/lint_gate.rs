//! The movr-lint gate as a tier-1 test: `cargo test` fails the moment
//! the workspace picks up a diagnostic that is not pinned in
//! `lint-baseline.toml`, or the moment a pinned one is fixed without
//! shrinking the baseline (stale entry). See DESIGN.md § "Static
//! analysis" for the rule catalogue and ratchet semantics.

use std::path::Path;

#[test]
fn workspace_is_lint_clean_against_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = movr_lint::check_workspace(root).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "movr-lint found unbaselined diagnostics or stale baseline entries:\n{}",
        report.render_human()
    );
    // The gate is only meaningful if it actually scanned the tree.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); walker broke?",
        report.files_scanned
    );
}
