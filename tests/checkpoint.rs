//! Checkpoint/restore: snapshot a session mid-run, round-trip it through
//! bytes, resume, and demand **bit identity** with the uninterrupted run.
//!
//! These are the gate tests for the snapshot subsystem
//! (`movr::snapshot`): the property runs random (strategy, rate policy,
//! seed, cut frame) tuples and asserts the resumed half reproduces the
//! remaining frames, the final [`SessionOutcome`], the metrics registry,
//! and the recorded JSONL timeline byte-for-byte; the corruption
//! properties assert that *no* byte-level damage — truncation, bit flips,
//! version skew, config mismatch — ever panics or slips through as a
//! successful restore.
//!
//! A golden fixture (`tests/fixtures/snapshot_seed42_v1.bin`) pins the
//! on-disk format: if the encoder's byte layout drifts without a
//! [`FORMAT_VERSION`] bump, the fixture tests fail.

use movr::session::{RatePolicy, Session, SessionConfig, SessionOutcome, Strategy};
use movr::snapshot::{config_fingerprint, SnapshotError, FORMAT_VERSION};
use movr_math::fnv1a64;
use movr_motion::{HandRaise, MotionTrace, PlayerState};
use movr_obs::MemoryRecorder;
use movr_math::Vec2;
use movr_sim::{EventQueue, SimTime};
use movr_testkit::{
    choice, prop_assert, prop_assert_eq, property, u64_range, usize_range,
};

/// The scenario every test here runs: a hand-raise blockage mid-session,
/// short enough for debug-mode property runs (~108 frames at Vive rate).
fn scenario(strategy: Strategy, policy: RatePolicy, seed: u64) -> (HandRaise, SessionConfig) {
    let trace = HandRaise {
        base: PlayerState::standing(
            Vec2::new(4.0, 2.5),
            Vec2::new(4.0, 2.5).bearing_deg_to(Vec2::new(0.5, 2.5)),
        ),
        raise_at_s: 0.4,
        lower_at_s: 0.9,
        duration_s: 1.2,
    };
    let mut cfg = SessionConfig::with_strategy(strategy);
    cfg.rate_policy = policy;
    cfg.system.seed = seed;
    (trace, cfg)
}

const STRATEGIES: [Strategy; 3] = [
    Strategy::Tethered,
    Strategy::DirectOnly,
    Strategy::Movr { tracking: true },
];

const POLICIES: [RatePolicy; 3] = [
    RatePolicy::Oracle,
    RatePolicy::Threshold { backoff_db: 1.0 },
    RatePolicy::HysteresisPolicy {
        up_margin_db: 2.0,
        up_count: 3,
        backoff_db: 1.0,
    },
];

/// Runs the whole session uninterrupted; returns the frame count, the
/// final outcome, and the recorded JSONL.
fn uninterrupted(trace: &HandRaise, cfg: &SessionConfig) -> (usize, SessionOutcome, String) {
    let mut rec = MemoryRecorder::new();
    let mut session = Session::new(cfg);
    while session.step_frame_recorded(trace, &mut rec) {}
    let frames = session.frames();
    let outcome = session.outcome(trace.duration_s());
    (frames, outcome, rec.to_jsonl())
}

/// Runs the session to `cut` frames, snapshots to bytes, restores from
/// those bytes, resumes to the end on a fresh recorder. Returns the
/// resumed session's frame count, outcome, and the concatenated JSONL of
/// the two halves.
fn cut_and_resume(
    trace: &HandRaise,
    cfg: &SessionConfig,
    cut: usize,
) -> Result<(usize, SessionOutcome, String), SnapshotError> {
    let mut rec_a = MemoryRecorder::new();
    let mut first = Session::new(cfg);
    for _ in 0..cut {
        assert!(
            first.step_frame_recorded(trace, &mut rec_a),
            "cut point {cut} is past the end of the session"
        );
    }
    let bytes = first.snapshot();
    drop(first); // the resumed half must live off the bytes alone

    let mut resumed = Session::restore(&bytes, cfg)?;
    // Continue the recorded timeline where the first process left off.
    let mut rec_b = MemoryRecorder::with_next_span_id(rec_a.next_span_id());
    while resumed.step_frame_recorded(trace, &mut rec_b) {}
    let frames = resumed.frames();
    let outcome = resumed.outcome(trace.duration_s());
    Ok((frames, outcome, rec_a.to_jsonl() + &rec_b.to_jsonl()))
}

/// Bit-level equality of two outcomes: exact f64 bit patterns, equal
/// glitch accounting, and identical metrics JSON.
fn assert_outcomes_bit_identical(full: &SessionOutcome, resumed: &SessionOutcome) {
    assert_eq!(full.duration_s.to_bits(), resumed.duration_s.to_bits());
    assert_eq!(full.glitches, resumed.glitches);
    assert_eq!(full.mean_snr_db.to_bits(), resumed.mean_snr_db.to_bits());
    assert_eq!(full.min_snr_db.to_bits(), resumed.min_snr_db.to_bits());
    assert_eq!(full.mode_switches, resumed.mode_switches);
    assert_eq!(full.realignments, resumed.realignments);
    assert_eq!(
        full.reflector_fraction.to_bits(),
        resumed.reflector_fraction.to_bits()
    );
    assert_eq!(full.metrics.to_json(), resumed.metrics.to_json());
}

// ---------------- the headline gate ----------------

property! {
    cases = 24,
    /// Cut at a random frame under a random (strategy, policy, seed):
    /// the resumed run must be bit-identical to the uninterrupted one.
    fn resume_from_random_cut_is_bit_identical(
        strategy in choice(STRATEGIES.to_vec()),
        policy in choice(POLICIES.to_vec()),
        seed in u64_range(0, u64::MAX),
        cut_raw in usize_range(1, 1000),
    ) {
        let (trace, cfg) = scenario(strategy, policy, seed);
        let (frames, full_out, full_jsonl) = uninterrupted(&trace, &cfg);
        prop_assert!(frames > 2, "scenario too short to cut");
        let cut = 1 + cut_raw % (frames - 1);

        let (resumed_frames, resumed_out, stitched_jsonl) =
            match cut_and_resume(&trace, &cfg, cut) {
                Ok(r) => r,
                Err(e) => {
                    return Err(movr_testkit::PropError::failed(format!(
                        "restore of a freshly captured snapshot failed: {e}"
                    )))
                }
            };
        prop_assert_eq!(resumed_frames, frames);
        prop_assert_eq!(
            full_out.mean_snr_db.to_bits(),
            resumed_out.mean_snr_db.to_bits()
        );
        prop_assert_eq!(
            full_out.min_snr_db.to_bits(),
            resumed_out.min_snr_db.to_bits()
        );
        prop_assert_eq!(full_out.glitches, resumed_out.glitches);
        prop_assert_eq!(full_out.mode_switches, resumed_out.mode_switches);
        prop_assert_eq!(full_out.realignments, resumed_out.realignments);
        prop_assert_eq!(
            full_out.reflector_fraction.to_bits(),
            resumed_out.reflector_fraction.to_bits()
        );
        prop_assert_eq!(full_out.metrics.to_json(), resumed_out.metrics.to_json());
        prop_assert_eq!(full_jsonl, stitched_jsonl);
    }
}

#[test]
fn every_strategy_policy_pair_resumes_bit_identically() {
    // The property samples the 3×3 grid randomly; this covers it
    // exhaustively at one fixed seed and cut point so no combination can
    // dodge the gate.
    for strategy in STRATEGIES {
        for policy in POLICIES {
            let (trace, cfg) = scenario(strategy, policy, 11);
            let (frames, full_out, full_jsonl) = uninterrupted(&trace, &cfg);
            assert!(frames > 30, "{strategy:?}/{policy:?}: short run");
            let (resumed_frames, resumed_out, stitched) =
                cut_and_resume(&trace, &cfg, 25).unwrap_or_else(|e| {
                    panic!("{strategy:?}/{policy:?}: restore failed: {e}")
                });
            assert_eq!(resumed_frames, frames, "{strategy:?}/{policy:?}");
            assert_outcomes_bit_identical(&full_out, &resumed_out);
            assert_eq!(full_jsonl, stitched, "{strategy:?}/{policy:?}");
        }
    }
}

#[test]
fn snapshot_at_frame_zero_and_last_frame_round_trips() {
    // Degenerate cut points: before the first frame is processed, and
    // after the last (nothing left to resume).
    let (trace, cfg) = scenario(Strategy::Movr { tracking: true }, POLICIES[1], 3);
    let (frames, full_out, _) = uninterrupted(&trace, &cfg);

    // Cut at zero: the snapshot captures a pristine session.
    let fresh = Session::new(&cfg);
    let bytes = fresh.snapshot();
    let mut resumed = Session::restore(&bytes, &cfg).expect("fresh snapshot restores");
    while resumed.step_frame(&trace) {}
    assert_eq!(resumed.frames(), frames);
    assert_outcomes_bit_identical(&full_out, &resumed.outcome(trace.duration_s()));

    // Cut at the end: restore succeeds and the session stays finished.
    let mut done = Session::new(&cfg);
    while done.step_frame(&trace) {}
    let bytes = done.snapshot();
    let mut resumed = Session::restore(&bytes, &cfg).expect("final snapshot restores");
    assert!(!resumed.step_frame(&trace), "finished session must not step");
    assert_eq!(resumed.frames(), frames);
    assert_outcomes_bit_identical(&full_out, &resumed.outcome(trace.duration_s()));
}

// ---------------- corruption and mismatch rejection ----------------

/// A small captured session for the corruption tests.
fn snapshot_under(cfg: &SessionConfig, frames: usize) -> Vec<u8> {
    let (trace, _) = scenario(cfg.strategy, cfg.rate_policy, cfg.system.seed);
    let mut s = Session::new(cfg);
    for _ in 0..frames {
        s.step_frame(&trace);
    }
    s.snapshot()
}

property! {
    cases = 64,
    /// Any single flipped bit anywhere in the snapshot must surface as a
    /// structured error — never a panic, never a silent success.
    fn single_bit_corruption_is_always_rejected(
        seed in u64_range(0, u64::MAX),
        frames in usize_range(0, 12),
        pos_sel in usize_range(0, usize::MAX / 2),
        bit in usize_range(0, 7),
    ) {
        let (_, cfg) = scenario(Strategy::Movr { tracking: true }, POLICIES[2], seed);
        let mut bytes = snapshot_under(&cfg, frames);
        let pos = pos_sel % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            Session::restore(&bytes, &cfg).is_err(),
            "flipping bit {} of byte {} went unnoticed",
            bit,
            pos
        );
    }
}

#[test]
fn every_truncation_length_is_rejected() {
    // Exhaustive, not sampled: all proper prefixes of a real snapshot
    // must fail with a structured error (TooShort, checksum, or a body
    // decode error — anything but Ok or a panic).
    let (_, cfg) = scenario(Strategy::Movr { tracking: true }, POLICIES[1], 5);
    let bytes = snapshot_under(&cfg, 8);
    for len in 0..bytes.len() {
        assert!(
            Session::restore(&bytes[..len], &cfg).is_err(),
            "truncation to {len} of {} bytes restored successfully",
            bytes.len()
        );
    }
}

#[test]
fn flipped_checksum_is_a_checksum_mismatch() {
    let (_, cfg) = scenario(Strategy::DirectOnly, RatePolicy::Oracle, 1);
    let mut bytes = snapshot_under(&cfg, 4);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    match Session::restore(&bytes, &cfg) {
        Err(SnapshotError::ChecksumMismatch) => {}
        Err(other) => panic!("expected ChecksumMismatch, got {other:?}"),
        Ok(_) => panic!("corrupted checksum restored successfully"),
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let (_, cfg) = scenario(Strategy::DirectOnly, RatePolicy::Oracle, 1);
    let mut bytes = snapshot_under(&cfg, 4);
    bytes.extend_from_slice(&[0, 0, 0, 0]);
    assert!(Session::restore(&bytes, &cfg).is_err());
}

#[test]
fn future_format_version_is_rejected_by_name_even_with_a_valid_checksum() {
    // Version skew must be diagnosed *as* version skew: rewrite the
    // version field and re-seal the checksum so nothing else can trip
    // first, then check the error names both versions.
    let (_, cfg) = scenario(Strategy::Movr { tracking: false }, RatePolicy::Oracle, 9);
    let mut bytes = snapshot_under(&cfg, 3);
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    let payload_len = bytes.len() - 8;
    let digest = fnv1a64(&bytes[..payload_len]);
    bytes[payload_len..].copy_from_slice(&digest.to_le_bytes());

    let err = match Session::restore(&bytes, &cfg) {
        Err(e) => e,
        Ok(_) => panic!("future-version snapshot restored successfully"),
    };
    match &err {
        SnapshotError::UnsupportedVersion { found: 7 } => {}
        other => panic!("expected UnsupportedVersion {{ found: 7 }}, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("version 7"), "error must name the found version: {msg}");
    assert!(
        msg.contains(&format!("format version {FORMAT_VERSION}")),
        "error must name the supported format version: {msg}"
    );
}

#[test]
fn restore_under_a_different_config_is_a_config_mismatch() {
    let (_, cfg) = scenario(Strategy::Movr { tracking: true }, POLICIES[1], 21);
    let bytes = snapshot_under(&cfg, 6);

    // A different seed is a different session: the fingerprint differs.
    let mut other = cfg;
    other.system.seed = 22;
    match Session::restore(&bytes, &other) {
        Err(SnapshotError::ConfigMismatch { expected, found }) => {
            assert_eq!(expected, config_fingerprint(&other));
            assert_eq!(found, config_fingerprint(&cfg));
        }
        Err(other) => panic!("expected ConfigMismatch, got {other:?}"),
        Ok(_) => panic!("snapshot restored under a mismatched config"),
    }

    // And so is a different rate policy under the same seed.
    let mut other = cfg;
    other.rate_policy = RatePolicy::Oracle;
    assert!(matches!(
        Session::restore(&bytes, &other),
        Err(SnapshotError::ConfigMismatch { .. })
    ));
}

// ---------------- event-queue serialization order ----------------

#[test]
fn equal_timestamp_events_round_trip_in_pop_order() {
    // The snapshot stores pending events in pop order; ties on the
    // timestamp must come back in insertion order, not heap order.
    let t = SimTime::from_millis(5);
    let mut q: EventQueue<u32> = EventQueue::new();
    q.schedule_at(SimTime::from_millis(1), 99);
    q.next(); // advance the clock so `now` is non-zero
    for v in [10u32, 20, 30, 40] {
        q.schedule_at(t, v);
    }
    q.schedule_at(SimTime::from_millis(9), 50);

    let now = q.now();
    let pending: Vec<(SimTime, u32)> =
        q.pending_in_pop_order().into_iter().map(|(at, e)| (at, *e)).collect();
    let restored =
        EventQueue::restore(now, pending.clone()).expect("pop-order capture restores");

    // The restored queue pops the identical sequence — equal-timestamp
    // entries included — and agrees with a second capture of itself.
    let replay: Vec<(SimTime, u32)> =
        restored.pending_in_pop_order().into_iter().map(|(at, e)| (at, *e)).collect();
    assert_eq!(replay, pending);
    let mut q2 = EventQueue::restore(now, replay).expect("round-trip restores");
    while let (Some(a), Some(b)) = (q.peek_time(), q2.peek_time()) {
        assert_eq!(a, b);
        assert_eq!(q.next(), q2.next());
    }
    assert!(q.next().is_none());
    assert!(q2.next().is_none());
}

// ---------------- golden fixture ----------------

/// The fixture's scenario: seed 42, full MoVR with tracking, threshold
/// rate policy, captured 30 frames in. Changing this invalidates the
/// checked-in blob — regenerate with `regenerate_golden_fixture`.
fn golden_scenario() -> (HandRaise, SessionConfig) {
    scenario(
        Strategy::Movr { tracking: true },
        RatePolicy::Threshold { backoff_db: 1.0 },
        42,
    )
}

const GOLDEN_CUT_FRAMES: usize = 30;
const GOLDEN: &[u8] = include_bytes!("fixtures/snapshot_seed42_v1.bin");

#[test]
fn golden_fixture_header_pins_version_and_fingerprint() {
    let (_, cfg) = golden_scenario();
    assert!(GOLDEN.len() >= 28, "fixture is truncated or missing");
    assert_eq!(&GOLDEN[..8], b"MOVRSNAP");
    let version = u32::from_le_bytes(GOLDEN[8..12].try_into().unwrap());
    assert_eq!(
        version, FORMAT_VERSION,
        "fixture was written by format version {version}; this build \
         reads format version {FORMAT_VERSION} — regenerate the fixture \
         alongside a version bump"
    );
    let fp = u64::from_le_bytes(GOLDEN[12..20].try_into().unwrap());
    assert_eq!(
        fp,
        config_fingerprint(&cfg),
        "the golden scenario's config fingerprint changed: either the \
         fingerprint algorithm or SessionConfig encoding drifted without \
         a format version bump"
    );
}

#[test]
fn golden_fixture_restores_and_reencodes_byte_identically() {
    let (trace, cfg) = golden_scenario();
    let session = Session::restore(GOLDEN, &cfg).unwrap_or_else(|e| {
        panic!(
            "checked-in fixture no longer restores ({e}); the snapshot \
             byte layout changed without a FORMAT_VERSION bump"
        )
    });
    assert_eq!(session.frames(), GOLDEN_CUT_FRAMES);
    // Capturing the restored session must reproduce the exact blob: the
    // encoder and decoder are inverses down to the byte.
    assert_eq!(session.snapshot(), GOLDEN, "re-encoded fixture drifted");

    // And resuming it matches the uninterrupted run bit-for-bit.
    let (frames, full_out, _) = uninterrupted(&trace, &cfg);
    let mut resumed = session;
    while resumed.step_frame(&trace) {}
    assert_eq!(resumed.frames(), frames);
    assert_outcomes_bit_identical(&full_out, &resumed.outcome(trace.duration_s()));
}

/// Rewrites the golden fixture from the current encoder. Run after an
/// intentional format change (with its version bump):
/// `cargo test --test checkpoint regenerate_golden_fixture -- --ignored`
#[test]
#[ignore = "writes tests/fixtures/snapshot_seed42_v1.bin; run by hand on format changes"]
fn regenerate_golden_fixture() {
    let (trace, cfg) = golden_scenario();
    let mut session = Session::new(&cfg);
    for _ in 0..GOLDEN_CUT_FRAMES {
        assert!(session.step_frame(&trace));
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/snapshot_seed42_v1.bin"
    );
    std::fs::write(path, session.snapshot()).expect("write fixture");
}
