//! Batched vs memoized-scalar evaluation must be **bit-identical**.
//!
//! The batched sweep engine (SoA gain kernels, `GainPage` codebook
//! pages, `LinkBatch` tap rows) is a pure restructuring of the memoized
//! scalar path it replaced: every batch entry point promises the same
//! float-op order as per-cell `MemoPattern` queries through the traced
//! links. These tests pin that promise on the paper setup for the three
//! load-bearing sweeps — `estimate_incidence`, `estimate_reflection`,
//! and the `opt_nlos` baseline — by re-running each against a scalar
//! replica of the pre-batch implementation (same discipline as
//! `cache_equivalence.rs`, one optimization generation later).

use movr::alignment::{
    estimate_incidence, estimate_reflection, AlignmentConfig, SweepParams,
};
use movr::baselines::opt_nlos;
use movr::gain_control::{run_gain_control, GainControlConfig};
use movr::reflector::MovrReflector;
use movr::relay::{relay_link_with, round_trip_reflection_with};
use movr_math::{wrap_deg_180, SimRng, Vec2};
use movr_phased_array::{Codebook, PatternTable};
use movr_radio::{ArrayPattern, RadioEndpoint};
use movr_rfsim::{MemoPattern, Scene};

/// Scalar replica of the pre-batch `estimate_incidence` core: traced
/// links, a pre-steered AP table, and per-pattern gain memos, probing
/// each (θ₁, θ₂) pair through `round_trip_reflection_with`.
fn memoized_incidence(
    scene: &Scene,
    ap: &RadioEndpoint,
    mut reflector: MovrReflector,
    config: &AlignmentConfig,
    rng: &mut SimRng,
) -> (f64, f64, f64) {
    reflector.set_gain_db(config.probe_gain_db);
    reflector.set_modulating(config.modulated);
    let forward = scene.trace_link(ap.position(), reflector.position());
    let back = scene.trace_link(reflector.position(), ap.position());
    let ap_table = PatternTable::new(ap.array(), &config.ap_codebook);
    let ap_patterns: Vec<ArrayPattern<'_>> =
        ap_table.entries().map(|(_, arr)| ArrayPattern(arr)).collect();
    let ap_memos: Vec<MemoPattern<'_>> =
        ap_patterns.iter().map(|p| MemoPattern::new(p)).collect();

    let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
    for &theta1 in config.reflector_codebook.beams() {
        reflector.steer_both(theta1);
        let relay_gain_db = reflector.effective_gain_db();
        let rx_pattern = ArrayPattern(reflector.rx_array());
        let tx_pattern = ArrayPattern(reflector.tx_array());
        let rx_memo = MemoPattern::new(&rx_pattern);
        let tx_memo = MemoPattern::new(&tx_pattern);
        for ((theta2, _), ap_memo) in ap_table.entries().zip(&ap_memos) {
            let reflected = round_trip_reflection_with(
                &forward,
                &back,
                ap_memo,
                ap.tx_power_dbm(),
                relay_gain_db,
                &rx_memo,
                &tx_memo,
            )
            .unwrap_or(f64::NEG_INFINITY);
            let reading = if config.modulated {
                config.probe.measure_modulated(reflected, ap.tx_power_dbm(), rng)
            } else {
                config.probe.measure_unmodulated(reflected, ap.tx_power_dbm(), rng)
            };
            if reading.power_dbm > best.0 {
                best = (reading.power_dbm, theta1, theta2);
            }
        }
    }
    best
}

#[test]
fn batched_incidence_sweep_is_bit_identical_to_memoized_scalar() {
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 5);
    let truth_refl = reflector.position().bearing_deg_to(ap.position());
    let truth_ap = ap.position().bearing_deg_to(reflector.position());
    // 21×21 keeps the double sweep fast; the bench runs the 101×101
    // version of this same comparison.
    let cfg = AlignmentConfig {
        ap_codebook: Codebook::sweep(truth_ap - 10.0, truth_ap + 10.0, 1.0),
        reflector_codebook: Codebook::sweep(truth_refl - 10.0, truth_refl + 10.0, 1.0),
        ..Default::default()
    };

    for modulated in [true, false] {
        let cfg = AlignmentConfig { modulated, ..cfg.clone() };
        let mut rng_b = SimRng::seed_from_u64(42);
        let batched = estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng_b);
        let mut rng_s = SimRng::seed_from_u64(42);
        let (peak, t1, t2) = memoized_incidence(&scene, &ap, reflector.clone(), &cfg, &mut rng_s);

        assert_eq!(batched.peak_power_dbm.to_bits(), peak.to_bits());
        assert_eq!(batched.reflector_angle_deg.to_bits(), t1.to_bits());
        assert_eq!(batched.ap_angle_deg.to_bits(), t2.to_bits());
        // Same number of RNG draws: the next sample from each matches.
        assert_eq!(rng_b.uniform(0.0, 1.0).to_bits(), rng_s.uniform(0.0, 1.0).to_bits());
    }
}

/// Scalar replica of the pre-batch `estimate_reflection` core: the
/// reflector's RX beam stays put, its TX beam sweeps the codebook (with
/// the §4.2 gain loop re-run per candidate), and the headset reports a
/// noisy SNR per receive beam through `relay_link_with`.
fn memoized_reflection(
    scene: &Scene,
    ap: &RadioEndpoint,
    mut reflector: MovrReflector,
    headset: &RadioEndpoint,
    sweep: &SweepParams<'_>,
    rng: &mut SimRng,
) -> (f64, f64, f64) {
    reflector.set_modulating(false);
    let snr_sigma_db = 0.5;
    let hop1 = scene.trace_link(ap.position(), reflector.position());
    let hop2 = scene.trace_link(reflector.position(), headset.position());
    let hs_table = PatternTable::new(headset.array(), sweep.headset_codebook);
    let ap_pattern = ArrayPattern(ap.array());
    let ap_memo = MemoPattern::new(&ap_pattern);
    let hs_patterns: Vec<ArrayPattern<'_>> =
        hs_table.entries().map(|(_, arr)| ArrayPattern(arr)).collect();
    let hs_memos: Vec<MemoPattern<'_>> =
        hs_patterns.iter().map(|p| MemoPattern::new(p)).collect();

    let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
    for &tx_deg in sweep.tx_codebook.beams() {
        reflector.steer_tx(tx_deg);
        run_gain_control(&mut reflector, &GainControlConfig::default());
        let rx_pattern = ArrayPattern(reflector.rx_array());
        let tx_pattern = ArrayPattern(reflector.tx_array());
        let rx_memo = MemoPattern::new(&rx_pattern);
        let tx_memo = MemoPattern::new(&tx_pattern);
        for ((rx_deg, _), hs_memo) in hs_table.entries().zip(&hs_memos) {
            let budget = relay_link_with(
                &hop1,
                &hop2,
                &ap_memo,
                ap.tx_power_dbm(),
                &reflector,
                &rx_memo,
                &tx_memo,
                hs_memo,
            );
            let reported = budget.end_snr_db + rng.normal(0.0, snr_sigma_db);
            if reported > best.0 {
                best = (reported, tx_deg, rx_deg);
            }
        }
    }
    best
}

#[test]
fn batched_reflection_sweep_is_bit_identical_to_memoized_scalar() {
    let scene = Scene::paper_office();
    let mut ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let mut reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 7);
    let hs_pos = Vec2::new(3.5, 1.5);
    let headset = RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(reflector.position()));
    ap.steer_toward(reflector.position());
    reflector.steer_rx(reflector.position().bearing_deg_to(ap.position()));

    let to_hs = reflector.position().bearing_deg_to(hs_pos);
    let hs_bore = headset.array().boresight_deg();
    let tx_codebook = Codebook::sweep(to_hs - 10.0, to_hs + 10.0, 2.0);
    let headset_codebook = Codebook::sweep(hs_bore - 10.0, hs_bore + 10.0, 2.0);
    let config = AlignmentConfig::default();
    let sweep = SweepParams {
        tx_codebook: &tx_codebook,
        headset_codebook: &headset_codebook,
        config: &config,
    };

    let mut rng_b = SimRng::seed_from_u64(7);
    let batched =
        estimate_reflection(&scene, &ap, reflector.clone(), headset, &sweep, &mut rng_b);
    let mut rng_s = SimRng::seed_from_u64(7);
    let (peak, tx, rx) =
        memoized_reflection(&scene, &ap, reflector, &headset, &sweep, &mut rng_s);

    assert_eq!(batched.peak_snr_db.to_bits(), peak.to_bits());
    assert_eq!(batched.tx_angle_deg.to_bits(), tx.to_bits());
    assert_eq!(batched.headset_angle_deg.to_bits(), rx.to_bits());
    assert_eq!(rng_b.uniform(0.0, 1.0).to_bits(), rng_s.uniform(0.0, 1.0).to_bits());
}

#[test]
fn batched_opt_nlos_is_bit_identical_to_memoized_scalar() {
    use movr_rfsim::{BodyPart, Obstacle};

    let mut scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let hs_pos = Vec2::new(3.5, 1.5);
    let headset = RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(ap.position()));
    scene.add_obstacle(Obstacle::new(
        BodyPart::Torso,
        ap.position().lerp(hs_pos, 0.55),
    ));
    let hs_bore = headset.array().boresight_deg();
    let ap_codebook = Codebook::sweep(-50.0, 90.0, 4.0);
    let hs_codebook = Codebook::sweep(hs_bore - 50.0, hs_bore + 50.0, 4.0);
    let exclude_cone_deg = 7.0;

    let batched = opt_nlos(&scene, &ap, &headset, &ap_codebook, &hs_codebook, exclude_cone_deg);

    // Scalar replica of the pre-batch search: pre-steered tables with a
    // gain memo per candidate pattern, evaluated through the traced link.
    let direct_ap = ap.position().bearing_deg_to(hs_pos);
    let direct_hs = hs_pos.bearing_deg_to(ap.position());
    let link = scene.trace_link(ap.position(), hs_pos);
    let ap_table = PatternTable::new(ap.array(), &ap_codebook);
    let hs_table = PatternTable::new(headset.array(), &hs_codebook);
    let ap_patterns: Vec<ArrayPattern<'_>> =
        ap_table.entries().map(|(_, arr)| ArrayPattern(arr)).collect();
    let ap_memos: Vec<MemoPattern<'_>> =
        ap_patterns.iter().map(|p| MemoPattern::new(p)).collect();
    let hs_patterns: Vec<ArrayPattern<'_>> =
        hs_table.entries().map(|(_, arr)| ArrayPattern(arr)).collect();
    let hs_memos: Vec<MemoPattern<'_>> =
        hs_patterns.iter().map(|p| MemoPattern::new(p)).collect();

    let mut best = (f64::NEG_INFINITY, direct_ap, direct_hs);
    let mut combinations = 0usize;
    for ((a, _), ap_memo) in ap_table.entries().zip(&ap_memos) {
        let ap_is_direct = wrap_deg_180(a - direct_ap).abs() <= exclude_cone_deg;
        for ((h, _), hs_memo) in hs_table.entries().zip(&hs_memos) {
            let hs_is_direct = wrap_deg_180(h - direct_hs).abs() <= exclude_cone_deg;
            if ap_is_direct && hs_is_direct {
                continue;
            }
            combinations += 1;
            let snr = link.evaluate(ap_memo, ap.tx_power_dbm(), hs_memo).snr_db;
            if snr > best.0 {
                best = (snr, a, h);
            }
        }
    }

    assert_eq!(batched.snr_db.to_bits(), best.0.to_bits());
    assert_eq!(batched.ap_deg.to_bits(), best.1.to_bits());
    assert_eq!(batched.headset_deg.to_bits(), best.2.to_bits());
    assert_eq!(batched.combinations, combinations);
}
