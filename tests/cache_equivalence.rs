//! Cached vs uncached evaluation must be **bit-identical**.
//!
//! The sweep-rate engine (traced-path caching, steering-vector reuse,
//! memoized gain lookups) is a pure restructuring: every cached entry
//! point promises the same float-op order as the plain one. These tests
//! pin that promise on the paper setup for the three load-bearing
//! evaluators — `relay_link`, `round_trip_reflection_dbm`, and the full
//! `estimate_incidence` sweep — plus the raw `LinkCache`.

use movr::alignment::{estimate_incidence, AlignmentConfig};
use movr::reflector::MovrReflector;
use movr::relay::{relay_link, relay_link_on, round_trip_reflection_dbm, round_trip_reflection_on};
use movr_math::{SimRng, Vec2};
use movr_phased_array::Codebook;
use movr_radio::{evaluate_link, ArrayPattern, RadioEndpoint};
use movr_rfsim::{BodyPart, LinkCache, Obstacle, Scene};

/// The canonical relay layout: AP mid-west wall, reflector on the north
/// wall, headset in the play area, beams aimed, gain safely below leak.
fn relay_setup() -> (Scene, RadioEndpoint, MovrReflector, RadioEndpoint) {
    let scene = Scene::paper_office();
    let mut ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let mut reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 7);
    let hs_pos = Vec2::new(3.5, 1.5);
    let mut headset =
        RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(Vec2::new(1.0, 4.75)));
    ap.steer_toward(reflector.position());
    reflector.steer_rx(reflector.position().bearing_deg_to(ap.position()));
    reflector.steer_tx(reflector.position().bearing_deg_to(headset.position()));
    headset.steer_toward(reflector.position());
    reflector.set_gain_db(reflector.loop_attenuation_db() - 6.0);
    (scene, ap, reflector, headset)
}

#[test]
fn relay_link_on_is_bit_identical_to_relay_link() {
    let (mut scene, ap, reflector, headset) = relay_setup();
    // Exercise clear and obstructed geometry.
    for obstacle in [None, Some(Obstacle::new(BodyPart::Torso, Vec2::new(2.2, 2.2)))] {
        scene.clear_obstacles();
        if let Some(o) = obstacle {
            scene.add_obstacle(o);
        }
        let plain = relay_link(&scene, &ap, &reflector, &headset);
        let hop1 = scene.trace_link(ap.position(), reflector.position());
        let hop2 = scene.trace_link(reflector.position(), headset.position());
        let cached = relay_link_on(&hop1, &hop2, &ap, &reflector, headset.array());
        assert_eq!(plain.hop1_received_dbm.to_bits(), cached.hop1_received_dbm.to_bits());
        assert_eq!(plain.hop1_snr_db.to_bits(), cached.hop1_snr_db.to_bits());
        assert_eq!(
            plain.relay_output_dbm.map(f64::to_bits),
            cached.relay_output_dbm.map(f64::to_bits)
        );
        assert_eq!(plain.hop2_received_dbm.to_bits(), cached.hop2_received_dbm.to_bits());
        assert_eq!(plain.hop2_snr_db.to_bits(), cached.hop2_snr_db.to_bits());
        assert_eq!(plain.end_snr_db.to_bits(), cached.end_snr_db.to_bits());
        assert_eq!(plain.saturated, cached.saturated);
    }
}

#[test]
fn round_trip_on_is_bit_identical_to_plain() {
    let (scene, ap, mut reflector, _hs) = relay_setup();
    let to_ap = reflector.position().bearing_deg_to(ap.position());
    for offset in [0.0, 7.0, -13.0, 31.0] {
        reflector.steer_both(to_ap + offset);
        reflector.set_gain_db(reflector.loop_attenuation_db() - 6.0);
        let plain = round_trip_reflection_dbm(&scene, &ap, &reflector);
        let forward = scene.trace_link(ap.position(), reflector.position());
        let back = scene.trace_link(reflector.position(), ap.position());
        let cached =
            round_trip_reflection_on(&forward, &back, ap.array(), ap.tx_power_dbm(), &reflector);
        assert_eq!(plain.map(f64::to_bits), cached.map(f64::to_bits), "offset={offset}");
    }
}

/// The seed-era incidence sweep: steer the live AP per candidate and
/// re-trace per probe through the plain entry points. The cached
/// `estimate_incidence` must reproduce its argmax and peak bit-for-bit.
fn uncached_incidence(
    scene: &Scene,
    mut ap: RadioEndpoint,
    mut reflector: MovrReflector,
    config: &AlignmentConfig,
    rng: &mut SimRng,
) -> (f64, f64, f64) {
    reflector.set_gain_db(config.probe_gain_db);
    reflector.set_modulating(true);
    let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
    for &theta1 in config.reflector_codebook.beams() {
        reflector.steer_both(theta1);
        for &theta2 in config.ap_codebook.beams() {
            ap.steer_to(theta2);
            let reflected = round_trip_reflection_dbm(scene, &ap, &reflector)
                .unwrap_or(f64::NEG_INFINITY);
            let reading = config
                .probe
                .measure_modulated(reflected, ap.tx_power_dbm(), rng);
            if reading.power_dbm > best.0 {
                best = (reading.power_dbm, theta1, theta2);
            }
        }
    }
    best
}

#[test]
fn estimate_incidence_is_bit_identical_to_uncached_sweep() {
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 5);
    let truth_refl = reflector.position().bearing_deg_to(ap.position());
    let truth_ap = ap.position().bearing_deg_to(reflector.position());
    // A 21×21 window keeps the double sweep fast; the bench runs the
    // full 101×101 version of this same check.
    let cfg = AlignmentConfig {
        ap_codebook: Codebook::sweep(truth_ap - 10.0, truth_ap + 10.0, 1.0),
        reflector_codebook: Codebook::sweep(truth_refl - 10.0, truth_refl + 10.0, 1.0),
        ..Default::default()
    };

    let mut rng_c = SimRng::seed_from_u64(42);
    let cached = estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng_c);
    let mut rng_u = SimRng::seed_from_u64(42);
    let (peak, t1, t2) = uncached_incidence(&scene, ap, reflector, &cfg, &mut rng_u);

    assert_eq!(cached.peak_power_dbm.to_bits(), peak.to_bits());
    assert_eq!(cached.reflector_angle_deg.to_bits(), t1.to_bits());
    assert_eq!(cached.ap_angle_deg.to_bits(), t2.to_bits());
    // Both RNGs must have consumed the same draws: the next sample from
    // each is identical.
    assert_eq!(rng_c.uniform(0.0, 1.0).to_bits(), rng_u.uniform(0.0, 1.0).to_bits());
}

#[test]
fn link_cache_evaluation_is_bit_identical_across_obstacle_churn() {
    let mut scene = Scene::paper_office();
    let mut ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let mut hs = RadioEndpoint::paper_radio(Vec2::new(4.0, 2.0), 180.0);
    ap.steer_toward(hs.position());
    hs.steer_toward(ap.position());
    let mut cache = LinkCache::new();

    let idx = scene.add_obstacle(Obstacle::new(BodyPart::Hand, Vec2::new(2.0, 2.3)));
    for step in 0..6 {
        scene.move_obstacle(idx, Vec2::new(2.0 + 0.3 * f64::from(step), 2.3));
        let plain = evaluate_link(&scene, &ap, &hs);
        let cached = cache.evaluate(
            &scene,
            ap.position(),
            &ArrayPattern(ap.array()),
            ap.tx_power_dbm(),
            hs.position(),
            &ArrayPattern(hs.array()),
        );
        assert_eq!(plain.received_dbm.to_bits(), cached.received_dbm.to_bits(), "step={step}");
        assert_eq!(plain.snr_db.to_bits(), cached.snr_db.to_bits(), "step={step}");
    }
}
