//! Fleet analytics gate: the streaming reducer's rollup over the
//! canonical 8-session fleet is pinned byte-for-byte, and the fold is
//! invariant to how streams are grouped or fanned out.
//!
//! The golden fixture (`tests/fixtures/fleet_rollup.golden.json`) is
//! the `movr-obs reduce` output for the fleet
//! `movr_system::fleet::fleet_jsonl(8, 1.0, _)`. Regenerate after an
//! intentional schema or simulation change with:
//!
//! ```sh
//! cargo run --release --example fleet_timelines -- out/fleet 8 1.0
//! cargo run --release -p movr-obs -- reduce --out tests/fixtures/fleet_rollup.golden.json out/fleet/session-*.jsonl
//! ```

use movr_obs::{diff_json, reduce_one_stream, reduce_streams, Json, Rollup};
use movr_system::fleet::fleet_jsonl;

const GOLDEN: &str = include_str!("fixtures/fleet_rollup.golden.json");

fn reduce_fleet(timelines: &[String]) -> Rollup {
    let mut rollup = Rollup::new();
    reduce_streams(
        timelines
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("session-{i}"), t.as_bytes())),
        &mut rollup,
    )
    .expect("fleet timelines are well-formed");
    rollup
}

#[test]
fn fleet_rollup_matches_the_golden_fixture() {
    let rollup = reduce_fleet(&fleet_jsonl(8, 1.0, 1));
    let got = rollup.to_json();
    let want = GOLDEN.trim_end();
    if got != want {
        // Byte mismatch: fail with the structural diff, which names the
        // diverging paths instead of dumping two 3 kB lines.
        let a = Json::parse(want).expect("golden fixture parses");
        let b = Json::parse(&got).expect("rollup JSON parses");
        let diff: Vec<String> = diff_json(&a, &b).iter().map(ToString::to_string).collect();
        panic!(
            "fleet rollup diverged from the golden fixture at {} path(s):\n{}",
            diff.len(),
            diff.join("\n"),
        );
    }
}

#[test]
fn rollup_is_invariant_to_thread_count_and_stream_grouping() {
    let sequential = reduce_fleet(&fleet_jsonl(8, 1.0, 1)).to_json();
    let fanned = reduce_fleet(&fleet_jsonl(8, 1.0, 4)).to_json();
    assert_eq!(sequential, fanned, "thread fan-out changed the rollup bytes");

    // Reducing each stream separately and merging in order — the shape
    // the parallel binary uses — matches the sequential fold exactly.
    let timelines = fleet_jsonl(8, 1.0, 1);
    let mut merged = Rollup::new();
    for (i, t) in timelines.iter().enumerate() {
        let (part, _) = reduce_one_stream(&format!("session-{i}"), t.as_bytes())
            .expect("well-formed");
        merged.merge(&part).expect("same schema");
    }
    assert_eq!(merged.to_json(), sequential);
}

#[test]
fn golden_fixture_is_internally_consistent() {
    let doc = Json::parse(GOLDEN.trim_end()).expect("fixture parses");
    let fleet = doc.get("fleet").expect("fleet section");
    assert_eq!(fleet.get("sessions").and_then(Json::as_u64), Some(8));
    let sessions = doc.get("sessions").and_then(Json::fields).expect("sessions map");
    assert_eq!(sessions.len(), 8);
    // The fleet counters are the column sums of the per-session ones.
    for key in ["events", "frames_total", "frames_delivered", "realigns"] {
        let total: u64 = sessions
            .iter()
            .map(|(_, s)| s.get(key).and_then(Json::as_u64).expect("counter"))
            .sum();
        assert_eq!(fleet.get(key).and_then(Json::as_u64), Some(total), "{key}");
    }
}

#[test]
fn reducer_folds_a_100k_event_fleet_in_one_pass() {
    // A synthetic 100 000-event fleet with exactly known aggregates:
    // 40 sessions × 2500 events (2497 frames + a realign span pair +
    // one mode switch). Exercises the bounded-memory path at the scale
    // the acceptance criterion names, with every counter checkable in
    // closed form.
    let sessions = 40u64;
    let per_session = 2500u64;
    let frames = per_session - 3;
    let mut timelines = Vec::new();
    for s in 0..sessions {
        let mut t = String::new();
        t.push_str(&format!(
            "{{\"t_ns\":0,\"kind\":\"mode_switch\",\"to\":\"direct\",\"session\":{s}}}\n"
        ));
        t.push_str(&format!(
            "{{\"t_ns\":1000,\"kind\":\"span_start\",\"span\":\"realign_stall\",\"span_id\":0,\"session\":{s}}}\n\
             {{\"t_ns\":2500000,\"kind\":\"span_end\",\"span\":\"realign_stall\",\"span_id\":0,\"session\":{s}}}\n"
        ));
        for f in 0..frames {
            let snr = 5.0 + 0.01 * (f % 1000) as f64;
            let delivered = f % 10 != 0;
            t.push_str(&format!(
                "{{\"t_ns\":{},\"kind\":\"frame\",\"delivered\":{delivered},\"snr_db\":{snr},\"airtime_ns\":450000,\"session\":{s}}}\n",
                3_000_000 + f * 11_111_111,
            ));
        }
        timelines.push(t);
    }
    let rollup = reduce_fleet(&timelines);
    let totals = rollup.fleet_totals();
    assert_eq!(totals.events, sessions * per_session);
    assert!(totals.events >= 100_000, "{} events", totals.events);
    assert_eq!(totals.frames_total, sessions * frames);
    assert_eq!(
        totals.frames_delivered,
        sessions * (frames - frames.div_ceil(10)),
    );
    assert_eq!(totals.stall_spans, sessions);
    assert_eq!(totals.stall_time_ns, sessions * 2_499_000);
    let snr = rollup.sketch("snr_db").expect("snr sketch");
    assert_eq!(snr.count(), sessions * frames);
    // All SNRs lie in [5, 15): p50 must too, within one 0.5 dB bucket.
    let p50 = snr.quantile(0.5).expect("non-empty");
    assert!((4.5..15.5).contains(&p50), "{p50}");
    // And the fold matches the grouped/merged shape at 100k scale too.
    let mut merged = Rollup::new();
    for (i, t) in timelines.iter().enumerate() {
        let (part, _) =
            reduce_one_stream(&format!("s{i}"), t.as_bytes()).expect("well-formed");
        merged.merge(&part).expect("same schema");
    }
    assert_eq!(merged.to_json(), rollup.to_json());
}
