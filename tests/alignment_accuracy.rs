//! The Fig. 8 guarantee as an integration test: the backscatter protocol
//! estimates the incidence angle "to within 2 degrees" across random
//! reflector placements — despite the reflector having no transmit or
//! receive chains — and the AP-side modulation filter is what makes that
//! possible.

use movr::alignment::{estimate_incidence, AlignmentConfig};
use movr::reflector::MovrReflector;
use movr_math::{wrap_deg_180, SimRng, Vec2};
use movr_phased_array::Codebook;
use movr_radio::RadioEndpoint;
use movr_rfsim::Scene;

fn arc(a: f64, b: f64) -> f64 {
    wrap_deg_180(a - b).abs()
}

/// Random wall-mount placements for the reflector along the north wall,
/// with the AP fixed beside the PC as in §5.1. The installer orients each
/// mount so both the AP and the play area fall inside the arrays' ±50°
/// electronic scan (a mount that cannot see the AP cannot be aligned by
/// any protocol), with ±10° of placement sloppiness.
fn placements(n: usize, rng: &mut SimRng) -> Vec<(Vec2, f64)> {
    (0..n)
        .map(|_| {
            let x = rng.uniform(0.8, 3.5);
            let pos = Vec2::new(x, 4.75);
            let bore = pos.bearing_deg_to(Vec2::new(1.8, 2.2)) + rng.uniform(-10.0, 10.0);
            (pos, bore)
        })
        .collect()
}

#[test]
fn incidence_error_within_two_degrees() {
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let mut rng = SimRng::seed_from_u64(88);

    // 1°-step windowed sweeps (the protocol's resolution in the paper)
    // around each node's field of view.
    let runs = 10;
    let mut worst = 0.0f64;
    for (i, (pos, bore)) in placements(runs, &mut rng).into_iter().enumerate() {
        let reflector = MovrReflector::wall_mounted(pos, bore, i as u64 + 100);
        let truth_refl = pos.bearing_deg_to(ap.position());
        let truth_ap = ap.position().bearing_deg_to(pos);
        let config = AlignmentConfig {
            ap_codebook: Codebook::sweep(truth_ap - 12.0, truth_ap + 12.0, 1.0),
            reflector_codebook: Codebook::sweep(truth_refl - 12.0, truth_refl + 12.0, 1.0),
            ..Default::default()
        };
        let r = estimate_incidence(&scene, ap, reflector, &config, &mut rng);
        let err = arc(r.reflector_angle_deg, truth_refl);
        worst = worst.max(err);
        assert!(
            err <= 2.0,
            "run {i}: reflector at {pos}, error {err}° (est {}, truth {truth_refl})",
            r.reflector_angle_deg
        );
        assert!(
            arc(r.ap_angle_deg, truth_ap) <= 2.0,
            "run {i}: AP-side error too large"
        );
    }
    // At least one run should be non-trivial (not all exactly zero).
    assert!(worst <= 2.0);
}

#[test]
fn modulation_is_what_makes_it_work() {
    // Identical sweep, modulation off: the AP's own leakage dominates the
    // in-band measurement and accuracy collapses. Aggregated over runs to
    // be robust to lucky draws.
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let mut rng = SimRng::seed_from_u64(99);

    let mut sum_mod = 0.0;
    let mut sum_unmod = 0.0;
    for (i, (pos, bore)) in placements(8, &mut rng).into_iter().enumerate() {
        let reflector = MovrReflector::wall_mounted(pos, bore, i as u64 + 200);
        let truth = pos.bearing_deg_to(ap.position());
        let truth_ap = ap.position().bearing_deg_to(pos);
        let base = AlignmentConfig {
            ap_codebook: Codebook::sweep(truth_ap - 12.0, truth_ap + 12.0, 1.0),
            reflector_codebook: Codebook::sweep(truth - 12.0, truth + 12.0, 1.0),
            ..Default::default()
        };
        let with = estimate_incidence(&scene, ap, reflector.clone(), &base, &mut rng);
        let without = estimate_incidence(
            &scene,
            ap,
            reflector,
            &AlignmentConfig {
                modulated: false,
                ..base
            },
            &mut rng,
        );
        sum_mod += arc(with.reflector_angle_deg, truth);
        sum_unmod += arc(without.reflector_angle_deg, truth);
    }
    assert!(sum_mod / 8.0 <= 2.0, "modulated mean error {}", sum_mod / 8.0);
    assert!(
        sum_unmod > 2.0 * sum_mod + 8.0,
        "unmodulated should be far worse: mod {sum_mod} unmod {sum_unmod}"
    );
}
