#!/usr/bin/env bash
# Offline verification: build, test, and smoke the benches without
# touching the network. This is the tier-1 gate plus the testkit's own
# hygiene checks; it must pass on a machine with no crates.io access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --release --offline

echo "==> examples build"
cargo build --release --offline --examples

echo "==> movr-lint: analyzer self-test (fixture rule/line hits)"
cargo test -p movr-lint -q --offline

echo "==> movr-lint: workspace clean against lint-baseline.toml"
cargo run -q -p movr-lint --offline -- --root .

echo "==> movr-lint: SARIF output validates against in-tree checker"
mkdir -p out
cargo run -q -p movr-lint --offline -- --root . --sarif out/lint.sarif
cargo run -q -p movr-lint --offline -- --check-sarif out/lint.sarif

echo "==> movr-lint: v3/v4 rule catalogue present in SARIF"
for rule in shared-mut-in-par-closure interior-mut-crosses-threads \
            rng-unforked-in-par snapshot-field-uncovered unordered-iter-in-output \
            panic-reachable-from-decode blocking-in-hot-loop \
            recorded-effect-divergence rng-reaches-par-unforked; do
    grep -q "\"id\": \"$rule\"" out/lint.sarif || {
        echo "rule $rule missing from SARIF catalogue" >&2
        exit 1
    }
done

echo "==> movr-lint: parallel run is byte-identical to single-threaded"
cargo run -q -p movr-lint --offline -- --root . --json --threads 1 > out/lint-t1.json || true
cargo run -q -p movr-lint --offline -- --root . --json --threads 4 > out/lint-t4.json || true
cmp out/lint-t1.json out/lint-t4.json

echo "==> tier-1: root package tests"
cargo test -q --offline

echo "==> workspace tests (all crates)"
cargo test --workspace -q --offline

echo "==> checkpoint gate: random-cut resume bit-identity + corruption rejection"
cargo test -q --offline --test checkpoint

echo "==> checkpoint smoke: snapshot in one process, resume in a second, diff JSONL"
mkdir -p out/checkpoint
rm -f out/checkpoint/snap.bin out/checkpoint/snap.bin.spanid \
      out/checkpoint/part1.jsonl out/checkpoint/part2.jsonl out/checkpoint/full.jsonl
cargo run -q --release --offline --example checkpoint_resume -- \
    part1 out/checkpoint/snap.bin out/checkpoint/part1.jsonl
cargo run -q --release --offline --example checkpoint_resume -- \
    part2 out/checkpoint/snap.bin out/checkpoint/part2.jsonl
cargo run -q --release --offline --example checkpoint_resume -- \
    full out/checkpoint/full.jsonl
cat out/checkpoint/part1.jsonl out/checkpoint/part2.jsonl \
    | cmp - out/checkpoint/full.jsonl
echo "two-process timeline is byte-identical to the uninterrupted run"

echo "==> fleet analytics: 8-session fleet reduces to the golden rollup byte-for-byte"
rm -rf out/fleet
cargo run -q --release --offline --example fleet_timelines -- out/fleet 8 1.0
cargo run -q --release -p movr-obs --offline -- reduce \
    --out out/fleet/rollup.json out/fleet/session-*.jsonl
cmp out/fleet/rollup.json tests/fixtures/fleet_rollup.golden.json
cargo run -q --release -p movr-obs --offline -- diff \
    out/fleet/rollup.json tests/fixtures/fleet_rollup.golden.json

echo "==> fleet analytics: 100k+ event fleet, single pass, thread-count invariant"
rm -rf out/fleet-big
cargo run -q --release --offline --example fleet_timelines -- out/fleet-big 8 10.0
events="$(cat out/fleet-big/session-*.jsonl | wc -l)"
echo "big fleet: $events events"
if [ "$events" -lt 100000 ]; then
    echo "expected >= 100000 fleet events, got $events" >&2
    exit 1
fi
cargo run -q --release -p movr-obs --offline -- reduce --threads 1 \
    --out out/fleet-big/rollup-t1.json out/fleet-big/session-*.jsonl
cargo run -q --release -p movr-obs --offline -- reduce --threads 4 \
    --out out/fleet-big/rollup-t4.json out/fleet-big/session-*.jsonl
cmp out/fleet-big/rollup-t1.json out/fleet-big/rollup-t4.json
echo "100k-event rollup is byte-identical across thread counts"

echo "==> workspace is warning-clean under -Dwarnings"
RUSTFLAGS="-Dwarnings" cargo check --workspace --all-targets --offline

echo "==> bench smoke (--quick profile, JSON lines)"
cargo bench -p movr-bench --bench microbench --offline -- --quick 2>/dev/null \
    | grep '"median_ns"' > out/BENCH_micro.json
cat out/BENCH_micro.json
lines="$(wc -l < out/BENCH_micro.json)"
if [ "$lines" -lt 10 ]; then
    echo "expected >= 10 bench JSON lines, got $lines" >&2
    exit 1
fi
grep -q '"name":"lint_workspace_v4_callgraph"' out/BENCH_micro.json || {
    echo "v4 callgraph bench missing from microbench output" >&2
    exit 1
}
grep -q '"name":"lint_workspace_v3_passes"' out/BENCH_micro.json
grep -q '"name":"array_gain_batch_101"' out/BENCH_micro.json || {
    echo "batch-kernel bench missing from microbench output" >&2
    exit 1
}
grep -q '"name":"par_tiny_worker_pool"' out/BENCH_micro.json || {
    echo "pool-overhead bench missing from microbench output" >&2
    exit 1
}

echo "==> bench: sweep-rate gate (batched bit-identical and >= 3x over memoized,"
echo "    memoized >= 5x over uncached; fleet byte-identical, thread ladder)"
cargo bench -p movr-bench --bench sweep --offline -- --quick 2>/dev/null \
    | grep '^{' > out/BENCH_sweep.json
cat out/BENCH_sweep.json
grep -q '"name":"alignment_sweep_101x101_batched"' out/BENCH_sweep.json
grep -q '"name":"sweep_speedup"' out/BENCH_sweep.json
grep -q '"name":"batch_speedup"' out/BENCH_sweep.json
grep -q '"name":"fleet_speedup_4t"' out/BENCH_sweep.json
grep -q '"bit_identical":true' out/BENCH_sweep.json
grep -q '"byte_identical":true' out/BENCH_sweep.json

echo "==> perf ratchet: bench medians within tolerance of bench-baseline.toml"
cat out/BENCH_sweep.json out/BENCH_micro.json > out/BENCH_all.json
cargo run -q --release -p movr-obs --offline -- check \
    --baseline bench-baseline.toml out/BENCH_all.json

echo "==> OK"
