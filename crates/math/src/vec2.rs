//! Planar vectors.
//!
//! The MoVR evaluation geometry is planar: the 5 m × 5 m room, the beam
//! angles swept in the paper's figures (40°–140°) and the blockage scenarios
//! all live in the horizontal plane at headset height. [`Vec2`] is used for
//! both positions (points) and directions.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point with `f64` components, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// East–west coordinate / component, metres.
    pub x: f64,
    /// North–south coordinate / component, metres.
    pub y: f64,
}

impl Vec2 {
    /// The origin / zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// A unit vector pointing at `angle_deg` degrees counter-clockwise from
    /// the +x axis — the convention used for all beam angles in this
    /// workspace.
    pub fn unit_from_deg(angle_deg: f64) -> Self {
        let r = angle_deg.to_radians();
        Vec2::new(r.cos(), r.sin())
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// The z-component of the 3-D cross product — positive when `rhs` is
    /// counter-clockwise of `self`.
    pub fn cross(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared length (avoids the square root for comparisons).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (other - self).norm()
    }

    /// Unit vector in the same direction. Returns [`Vec2::ZERO`] for the
    /// zero vector (callers treat that as "no direction").
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n <= 0.0 {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Angle of this vector in degrees, counter-clockwise from +x, in
    /// `(-180, 180]`.
    pub fn angle_deg(self) -> f64 {
        self.y.atan2(self.x).to_degrees()
    }

    /// The direction (degrees) from this point toward `target`.
    pub fn bearing_deg_to(self, target: Vec2) -> f64 {
        (target - self).angle_deg()
    }

    /// Rotates the vector counter-clockwise by `deg` degrees.
    pub fn rotated_deg(self, deg: f64) -> Vec2 {
        let r = deg.to_radians();
        let (s, c) = r.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// A vector perpendicular to this one (rotated +90°).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Linear interpolation: `self` at `t == 0`, `other` at `t == 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Projects this vector onto `onto` (returns the parallel component).
    pub fn project_onto(self, onto: Vec2) -> Vec2 {
        let d = onto.norm_sq();
        if d <= 0.0 {
            Vec2::ZERO
        } else {
            onto * (self.dot(onto) / d)
        }
    }

    /// Reflects this *direction* vector about a surface with unit normal
    /// `normal` (specular reflection: angle of incidence = angle of
    /// reflection).
    pub fn reflect(self, normal: Vec2) -> Vec2 {
        self - normal * (2.0 * self.dot(normal))
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert!(close(v.norm(), 5.0));
        assert!(close(v.norm_sq(), 25.0));
        assert!(close(Vec2::ZERO.distance(v), 5.0));
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(10.0, 0.0).normalized();
        assert!(close(v.x, 1.0) && close(v.y, 0.0));
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn unit_from_deg_convention() {
        assert!(close(Vec2::unit_from_deg(0.0).x, 1.0));
        assert!(close(Vec2::unit_from_deg(90.0).y, 1.0));
        assert!(close(Vec2::unit_from_deg(180.0).x, -1.0));
    }

    #[test]
    fn angle_roundtrip() {
        for deg in [-170.0, -45.0, 0.0, 30.0, 90.0, 179.0] {
            let v = Vec2::unit_from_deg(deg);
            assert!(close(v.angle_deg(), deg), "deg={deg}");
        }
    }

    #[test]
    fn bearing() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 1.0);
        assert!(close(a.bearing_deg_to(b), 45.0));
        assert!(close(b.bearing_deg_to(a), -135.0));
    }

    #[test]
    fn rotation_and_perp() {
        let v = Vec2::new(1.0, 0.0);
        let r = v.rotated_deg(90.0);
        assert!(close(r.x, 0.0) && close(r.y, 1.0));
        assert_eq!(v.perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert!(close(a.dot(b), 0.0));
        assert!(close(a.cross(b), 1.0));
        assert!(close(b.cross(a), -1.0));
    }

    #[test]
    fn reflection_about_vertical_wall() {
        // A ray travelling +x hits a wall whose normal is -x: it bounces back.
        let d = Vec2::new(1.0, 1.0).normalized();
        let n = Vec2::new(-1.0, 0.0);
        let r = d.reflect(n);
        assert!(close(r.x, -d.x));
        assert!(close(r.y, d.y));
        // Specular reflection preserves length.
        assert!(close(r.norm(), 1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn projection() {
        let v = Vec2::new(2.0, 2.0);
        let p = v.project_onto(Vec2::new(1.0, 0.0));
        assert_eq!(p, Vec2::new(2.0, 0.0));
        assert_eq!(v.project_onto(Vec2::ZERO), Vec2::ZERO);
    }
}
