//! Zero-dependency binary (de)serialization for checkpoints.
//!
//! The session checkpoint/restore feature (see `movr::snapshot`) needs a
//! byte format that round-trips simulation state **bit-exactly** — a
//! resumed session must continue on the same floating-point trajectory as
//! the uninterrupted run. General-purpose text formats round floats; this
//! module instead writes `f64::to_bits` verbatim, length-prefixes every
//! variable-sized field, and never silently truncates: [`WireReader`]
//! returns a structured [`WireError`] for every malformed read instead of
//! panicking, so corrupted snapshots surface as errors, not crashes.
//!
//! All integers are little-endian. The format has no self-description —
//! writer and reader must agree on the field sequence, which is exactly
//! what the snapshot format version in `movr::snapshot` pins.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes` — the checksum used by snapshot footers
/// and config fingerprints. Stable by construction; pinned by tests.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a [`WireReader`] refused to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field was complete.
    Truncated {
        /// Byte offset at which the read started.
        at: usize,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A decoded value violated the field's invariant (bad enum tag,
    /// non-UTF-8 string, absurd length prefix).
    Malformed {
        /// Byte offset of the offending field.
        at: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated {
                at,
                needed,
                remaining,
            } => write!(
                f,
                "truncated at byte {at}: field needs {needed} bytes, {remaining} remain"
            ),
            WireError::Malformed { at, what } => {
                write!(f, "malformed field at byte {at}: {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Appends wire-encoded fields to a growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (lossless on every supported target).
    pub fn usize(&mut self, v: usize) {
        self.u64(crate::convert::usize_to_u64(v));
    }

    /// Writes an `f64` as its exact bit pattern — NaN payloads, signed
    /// zeros and infinities all round-trip verbatim.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes_field(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes_field(v.as_bytes());
    }

    /// Appends the FNV-1a checksum of everything written so far. Call
    /// last; the matching read is [`WireReader::verify_checksum_footer`].
    pub fn finish_with_checksum(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.u64(sum);
        self.buf
    }
}

/// Sequential, bounds-checked reader over a wire-encoded buffer.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let trunc = WireError::Truncated {
            at: self.pos,
            needed: n,
            remaining: self.remaining(),
        };
        // `get` + `checked_add` keep the whole read panic-free even for
        // an absurd length prefix near `usize::MAX`.
        let end = self.pos.checked_add(n).ok_or_else(|| trunc.clone())?;
        let s = self.buf.get(self.pos..end).ok_or(trunc)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads exactly `N` bytes as a fixed array.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let at = self.pos;
        self.take(N)?.try_into().map_err(|_| WireError::Malformed {
            at,
            what: "field width mismatch",
        })
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a `usize` written by [`WireWriter::usize`]. Values that do
    /// not fit the target's `usize` are malformed.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed {
            at,
            what: "u64 does not fit usize",
        })
    }

    /// Reads an `f64` bit pattern written by [`WireWriter::f64`].
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed {
                at,
                what: "bool byte is neither 0 nor 1",
            }),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes_field(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let at = self.pos;
        let raw = self.bytes_field()?;
        std::str::from_utf8(raw).map_err(|_| WireError::Malformed {
            at,
            what: "string field is not UTF-8",
        })
    }

    /// A reader over only the payload of a checksummed buffer (all but
    /// the final 8 bytes), after verifying the FNV-1a footer written by
    /// [`WireWriter::finish_with_checksum`]. `Ok(None)` means the
    /// checksum did not match; errors mean the buffer cannot even hold a
    /// footer.
    pub fn verify_checksum_footer(buf: &'a [u8]) -> Result<Option<WireReader<'a>>, WireError> {
        if buf.len() < 8 {
            return Err(WireError::Truncated {
                at: 0,
                needed: 8,
                remaining: buf.len(),
            });
        }
        let (payload, footer) = buf.split_at(buf.len() - 8);
        let mut b = [0u8; 8];
        b.copy_from_slice(footer);
        let stored = u64::from_le_bytes(b);
        if fnv1a64(payload) != stored {
            return Ok(None);
        }
        Ok(Some(WireReader::new(payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(12345);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.f64(f64::NEG_INFINITY);
        w.bool(true);
        w.bool(false);
        w.str("checkpoint");
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "checkpoint");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn f64_bit_patterns_survive() {
        // Exact bit patterns, including a non-canonical NaN payload.
        for bits in [0u64, 1, 0x7FF8_0000_0000_0001, 0xFFF0_0000_0000_0000, 42] {
            let mut w = WireWriter::new();
            w.f64(f64::from_bits(bits));
            let bytes = w.into_bytes();
            let got = WireReader::new(&bytes).f64().unwrap();
            assert_eq!(got.to_bits(), bits);
        }
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = WireWriter::new();
        w.u64(99);
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            // Whatever partial decode succeeds, the full sequence can't.
            let ok = r.u64().is_ok() && r.str().is_ok();
            assert!(!ok, "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_malformed() {
        let mut r = WireReader::new(&[2]);
        assert!(matches!(r.bool(), Err(WireError::Malformed { .. })));

        let mut w = WireWriter::new();
        w.bytes_field(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.str(), Err(WireError::Malformed { .. })));
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX); // length prefix far beyond the buffer
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let err = r.bytes_field().unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated { .. } | WireError::Malformed { .. }
        ));
    }

    #[test]
    fn checksum_footer_detects_any_single_byte_flip() {
        let mut w = WireWriter::new();
        w.u64(0x0123_4567_89AB_CDEF);
        w.str("payload");
        let bytes = w.finish_with_checksum();
        assert!(WireReader::verify_checksum_footer(&bytes)
            .unwrap()
            .is_some());
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut c = bytes.clone();
                c[i] ^= 1 << bit;
                let verdict = WireReader::verify_checksum_footer(&c).unwrap();
                assert!(verdict.is_none(), "flip at byte {i} bit {bit} passed");
            }
        }
    }

    #[test]
    fn fnv1a64_pinned_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
