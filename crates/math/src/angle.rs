//! Angle bookkeeping in degrees.
//!
//! Beam angles in this workspace follow the paper's convention: degrees,
//! swept over ranges like 40°–140° (Fig. 7, Fig. 8). Angular *differences*
//! must be computed modulo 360° with the shortest-arc rule — a naive
//! subtraction would report a 358° error between 359° and 1°.

/// Wraps an angle into `(-180, 180]` degrees.
pub fn wrap_deg_180(deg: f64) -> f64 {
    let mut a = deg % 360.0;
    if a <= -180.0 {
        a += 360.0;
    } else if a > 180.0 {
        a -= 360.0;
    }
    a
}

/// Wraps an angle into `[0, 360)` degrees.
pub fn wrap_deg_360(deg: f64) -> f64 {
    let a = deg % 360.0;
    if a < 0.0 {
        a + 360.0
    } else {
        a
    }
}

/// A plane angle in degrees with shortest-arc semantics.
///
/// Thin newtype used at API boundaries where mixing up "angle" and plain
/// `f64` parameters (gains, distances) would be easy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AngleDeg(pub f64);

impl AngleDeg {
    /// Creates an angle, wrapping into `(-180, 180]`.
    pub fn new(deg: f64) -> Self {
        AngleDeg(wrap_deg_180(deg))
    }

    /// Raw value in degrees, in `(-180, 180]`.
    pub fn deg(self) -> f64 {
        self.0
    }

    /// Value in radians.
    pub fn rad(self) -> f64 {
        self.0.to_radians()
    }

    /// Absolute shortest-arc difference to another angle, in `[0, 180]`.
    pub fn distance_to(self, other: AngleDeg) -> f64 {
        wrap_deg_180(self.0 - other.0).abs()
    }

    /// Rotates by `delta` degrees (wrapping).
    pub fn offset(self, delta: f64) -> AngleDeg {
        AngleDeg::new(self.0 + delta)
    }
}

impl std::fmt::Display for AngleDeg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}°", self.0)
    }
}

/// Inclusive sweep of angles from `start` to `end` with the given step,
/// mirroring the paper's "1 degree increments" exhaustive beam sweeps.
///
/// Always yields `start`; yields `end` when the span is an exact multiple
/// of `step` (within floating-point slack).
pub fn sweep_deg(start: f64, end: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "sweep step must be positive"); // lint: sweep bounds are experiment constants, not decoded input
    assert!(end >= start, "sweep end must not precede start"); // lint: sweep bounds are experiment constants, not decoded input
    let n = ((end - start) / step + 1e-9).floor() as usize;
    (0..=n).map(|i| start + i as f64 * step).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_180_range() {
        assert_eq!(wrap_deg_180(0.0), 0.0);
        assert_eq!(wrap_deg_180(180.0), 180.0);
        assert_eq!(wrap_deg_180(-180.0), 180.0);
        assert_eq!(wrap_deg_180(190.0), -170.0);
        assert_eq!(wrap_deg_180(-190.0), 170.0);
        assert_eq!(wrap_deg_180(720.0), 0.0);
        assert_eq!(wrap_deg_180(361.0), 1.0);
    }

    #[test]
    fn wrap_360_range() {
        assert_eq!(wrap_deg_360(-1.0), 359.0);
        assert_eq!(wrap_deg_360(360.0), 0.0);
        assert_eq!(wrap_deg_360(725.0), 5.0);
    }

    #[test]
    fn shortest_arc_distance() {
        let a = AngleDeg::new(359.0);
        let b = AngleDeg::new(1.0);
        assert!((a.distance_to(b) - 2.0).abs() < 1e-9);
        assert!((b.distance_to(a) - 2.0).abs() < 1e-9);
        assert!((AngleDeg::new(0.0).distance_to(AngleDeg::new(180.0)) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn offset_wraps() {
        assert!((AngleDeg::new(170.0).offset(20.0).deg() - (-170.0)).abs() < 1e-9);
    }

    #[test]
    fn sweep_inclusive() {
        let s = sweep_deg(40.0, 140.0, 1.0);
        assert_eq!(s.len(), 101);
        assert_eq!(s[0], 40.0);
        assert_eq!(*s.last().unwrap(), 140.0);
    }

    #[test]
    fn sweep_fractional_step() {
        let s = sweep_deg(0.0, 1.0, 0.25);
        assert_eq!(s.len(), 5);
        assert!((s[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sweep_single_point() {
        assert_eq!(sweep_deg(5.0, 5.0, 1.0), vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn sweep_rejects_zero_step() {
        sweep_deg(0.0, 10.0, 0.0);
    }

    #[test]
    fn rad_conversion() {
        assert!((AngleDeg::new(180.0).rad() - std::f64::consts::PI).abs() < 1e-12);
    }
}
