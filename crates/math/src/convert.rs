//! Audited numeric conversions.
//!
//! `as` casts silently truncate, wrap, and lose precision, so movr-lint
//! ratchets them (`raw-numeric-cast`). Some conversions are still
//! necessary — counter means, quantizer step sizes, truncating a
//! computed count — and this module is their one audited home, exempt
//! from the rule the same way `db.rs` is exempt from
//! `raw-db-arithmetic`. Each helper documents exactly what is lost.

/// `usize → f64` for counts (sums over `n` samples, vertex counts).
///
/// Exact for every count below 2^53 (~9·10^15); simulation loop and
/// collection sizes are far below that, so in practice lossless.
pub fn usize_to_f64(n: usize) -> f64 {
    n as f64
}

/// `u64 → f64` for small bit-width derived values (`1 << adc_bits`).
///
/// Exact below 2^53, same argument as [`usize_to_f64`]; quantizer
/// level counts come from bit widths ≤ 32, so always exact here.
pub fn u64_to_f64(x: u64) -> f64 {
    x as f64
}

/// `usize → u64` for counters crossing into fixed-width APIs
/// (`SimTime::from_nanos` arithmetic, fork labels).
///
/// Lossless on every supported target (usize is at most 64 bits).
pub fn usize_to_u64(n: usize) -> u64 {
    n as u64
}

/// `f64 → u64` truncating toward zero, for computed non-negative counts
/// (`2·window + 1` sweep steps).
///
/// Fractional parts are dropped; negative and non-finite inputs
/// saturate to 0 / `u64::MAX` per Rust's defined `as` semantics.
pub fn f64_to_u64(x: f64) -> u64 {
    x as u64
}

/// `f64 → usize` truncating toward zero, for computed non-negative
/// loop bounds (`2.0 / frame_s` prediction-horizon frame counts).
///
/// Fractional parts are dropped; negative and non-finite inputs
/// saturate to 0 / `usize::MAX` per Rust's defined `as` semantics.
pub fn f64_to_usize(x: f64) -> usize {
    x as usize
}

/// `usize → i32` for small structural indices crossing into `i32` APIs
/// (`f64::powi` exponents for bucket-edge construction).
///
/// Saturates at `i32::MAX`; every in-tree caller passes bucket or
/// element counts far below 2^31, so in practice lossless.
pub fn usize_to_i32(n: usize) -> i32 {
    i32::try_from(n).unwrap_or(i32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_conversions_are_exact_in_range() {
        assert_eq!(usize_to_f64(0), 0.0);
        assert_eq!(usize_to_f64(1_000_000), 1.0e6);
        assert_eq!(u64_to_f64((1u64 << 12) - 1), 4095.0);
        assert_eq!(usize_to_u64(usize::MAX) as usize, usize::MAX);
    }

    #[test]
    fn f64_to_u64_truncates_and_saturates() {
        assert_eq!(f64_to_u64(7.9), 7);
        assert_eq!(f64_to_u64(0.0), 0);
        assert_eq!(f64_to_u64(-3.0), 0);
        assert_eq!(f64_to_u64(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn f64_to_usize_truncates_and_saturates() {
        assert_eq!(f64_to_usize(7.9), 7);
        assert_eq!(f64_to_usize(0.0), 0);
        assert_eq!(f64_to_usize(-3.0), 0);
        assert_eq!(f64_to_usize(f64::INFINITY), usize::MAX);
    }

    #[test]
    fn usize_to_i32_saturates() {
        assert_eq!(usize_to_i32(0), 0);
        assert_eq!(usize_to_i32(4096), 4096);
        assert_eq!(usize_to_i32(usize::MAX), i32::MAX);
    }
}
