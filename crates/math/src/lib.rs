#![warn(missing_docs)]

//! Math substrate for the MoVR simulator.
//!
//! This crate deliberately implements the small amount of numerics the
//! simulator needs — complex baseband arithmetic, planar geometry, decibel
//! conversions, angle bookkeeping and summary statistics — rather than
//! pulling in a general-purpose linear-algebra stack. Everything is plain
//! `f64`, allocation-free where possible, and documented in the units used
//! throughout the workspace:
//!
//! * power in **dBm** or **watts**, gains/losses in **dB**,
//! * angles in **degrees** at API boundaries (the paper's figures are in
//!   degrees), radians internally where trigonometry happens,
//! * distances in **metres**, frequencies in **Hz**.

pub mod angle;
pub mod complex;
pub mod convert;
pub mod db;
pub mod rng;
pub mod stats;
pub mod vec2;
pub mod wire;

pub use angle::{wrap_deg_180, wrap_deg_360, AngleDeg};
pub use complex::C64;
pub use db::{amplitude_to_db, db_to_amplitude, db_to_linear, dbm_to_watts, linear_to_db, watts_to_dbm};
pub use rng::SimRng;
pub use stats::{Cdf, Summary};
pub use vec2::Vec2;
pub use wire::{fnv1a64, WireError, WireReader, WireWriter};
