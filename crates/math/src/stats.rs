//! Summary statistics and empirical CDFs.
//!
//! The paper reports means ("the SNR drops by 16 dB on average"), extremes
//! ("as much as 27 dB") and CDFs (Fig. 9). [`Summary`] and [`Cdf`] produce
//! exactly those views from raw per-run samples.

/// One-pass summary of a sample set: count, mean, variance, extremes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation (Welford's online update).
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another summary into this one (Chan et al.'s parallel
    /// combine of Welford state): the result is exactly the summary of
    /// the concatenated sample sets.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The raw Welford accumulator `(count, mean, m2, min, max)`, for
    /// checkpointing. `m2` is the running sum of squared deviations that
    /// backs [`Summary::variance`]; exposing it (rather than the derived
    /// variance) lets [`Summary::from_welford_state`] rebuild a summary
    /// whose future updates are bit-identical to the original's.
    pub fn welford_state(&self) -> (usize, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds a summary from a [`Summary::welford_state`] tuple. The
    /// fields are restored verbatim — including the empty-summary
    /// sentinels `min = +inf` / `max = -inf` — so capture → restore is the
    /// identity on the accumulator state.
    pub fn from_welford_state(state: (usize, f64, f64, f64, f64)) -> Self {
        let (count, mean, m2, min, max) = state;
        Summary {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// An empirical cumulative distribution function over f64 samples.
///
/// Construction sorts the samples; queries are then O(log n). NaN samples
/// are rejected at construction (they have no place in an ordering).
///
/// ```
/// use movr_math::Cdf;
///
/// // SNR improvements from four runs, as Fig. 9 would plot them.
/// let cdf = Cdf::new(vec![-17.0, 2.5, -1.0, 4.0]);
/// assert_eq!(cdf.fraction_leq(0.0), 0.5);
/// assert_eq!(cdf.min(), -17.0);
/// assert!((cdf.median() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds an empirical CDF from samples.
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "CDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in `[0, 1]`. Returns 0 for an empty CDF.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`) using nearest-rank interpolation.
    ///
    /// # Panics
    /// Panics on an empty CDF or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty CDF") // lint: precondition — callers build the CDF from at least one sample
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty CDF") // lint: precondition — callers build the CDF from at least one sample
    }

    /// Iterates the CDF as `(value, cumulative_fraction)` points — one per
    /// sample, suitable for printing a figure series.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }

    /// Access to the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Mean of a slice; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    Summary::from_slice(values).mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_empty_and_single() {
        let e = Summary::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        let mut s = Summary::new();
        s.push(7.0);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn summary_matches_two_pass() {
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let s = Summary::from_slice(&vals);
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let var: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_matches_concatenation() {
        let a_vals: Vec<f64> = (0..40).map(|i| (i as f64 * 0.91).cos() * 3.0).collect();
        let b_vals: Vec<f64> = (0..25).map(|i| (i as f64 * 0.37).sin() * 10.0 + 1.0).collect();
        let mut merged = Summary::from_slice(&a_vals);
        merged.merge(&Summary::from_slice(&b_vals));
        let all: Vec<f64> = a_vals.iter().chain(&b_vals).copied().collect();
        let direct = Summary::from_slice(&all);
        assert_eq!(merged.count(), direct.count());
        assert!((merged.mean() - direct.mean()).abs() < 1e-9);
        assert!((merged.variance() - direct.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), direct.min());
        assert_eq!(merged.max(), direct.max());
        // Merging an empty summary either way is the identity.
        let mut e = Summary::new();
        e.merge(&direct);
        assert_eq!(e.count(), direct.count());
        let mut d2 = direct;
        d2.merge(&Summary::new());
        assert_eq!(d2.count(), direct.count());
    }

    #[test]
    fn welford_state_round_trip_is_bit_identical() {
        let mut a = Summary::from_slice(&[1.0, 2.5, -3.0, 0.125]);
        let mut b = Summary::from_welford_state(a.welford_state());
        // Identical future updates stay bit-identical, not just close.
        for v in [7.0, -0.5, 1e9, 3.25] {
            a.push(v);
            b.push(v);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.variance().to_bits(), b.variance().to_bits());
        assert_eq!(a.min().to_bits(), b.min().to_bits());
        assert_eq!(a.max().to_bits(), b.max().to_bits());
        // Empty-summary sentinels survive the round trip too.
        let e = Summary::from_welford_state(Summary::new().welford_state());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), f64::INFINITY);
        assert_eq!(e.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn cdf_fraction_and_quantiles() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.fraction_leq(0.0), 0.0);
        assert_eq!(c.fraction_leq(2.0), 0.5);
        assert_eq!(c.fraction_leq(10.0), 1.0);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 4.0);
        assert!((c.median() - 2.5).abs() < 1e-12);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let c = Cdf::new(vec![5.0, -2.0, 0.5, 0.5, 9.0]);
        let pts: Vec<_> = c.points().collect();
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cdf_rejects_nan() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        Cdf::new(vec![]).quantile(0.5);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
