//! Decibel conversions.
//!
//! The whole workspace does link-budget arithmetic in dB (gains, losses,
//! SNR) and dBm (absolute power). These helpers keep the conversions in one
//! audited place; getting a factor of 10 vs 20 wrong here would silently
//! skew every figure.

/// Converts a power *ratio* in dB to a linear power ratio.
///
/// `db_to_linear(3.0) ≈ 2.0`, `db_to_linear(-10.0) == 0.1`.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to dB. Returns `-inf` for a zero or
/// negative ratio (no signal).
#[inline]
pub fn linear_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

/// Converts a *field* (amplitude/voltage) ratio in dB to linear.
/// `20·log10` convention: 6 dB ≈ 2×.
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts a linear amplitude ratio to dB (`20·log10`).
#[inline]
pub fn amplitude_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * ratio.log10()
    }
}

/// Converts absolute power in dBm to watts. `0 dBm == 1 mW`.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    1e-3 * db_to_linear(dbm)
}

/// Converts absolute power in watts to dBm.
#[inline]
pub fn watts_to_dbm(watts: f64) -> f64 {
    linear_to_db(watts / 1e-3)
}

/// Sums a slice of *incoherent* powers given in dBm, returning dBm.
///
/// Used when combining statistically independent signal paths or noise
/// sources where phases are unknown: powers add linearly.
pub fn sum_dbm(powers_dbm: &[f64]) -> f64 {
    let total: f64 = powers_dbm.iter().map(|&p| dbm_to_watts(p)).sum();
    watts_to_dbm(total)
}

/// Boltzmann's constant (J/K), used for thermal-noise floors.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Thermal noise power in dBm for a given bandwidth (Hz) at temperature
/// `temp_k` kelvin: `10·log10(k·T·B / 1mW)`.
///
/// At 290 K this is the familiar `-174 dBm/Hz + 10·log10(B)`.
pub fn thermal_noise_dbm(bandwidth_hz: f64, temp_k: f64) -> f64 {
    watts_to_dbm(BOLTZMANN * temp_k * bandwidth_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn db_roundtrip() {
        for db in [-60.0, -3.01, 0.0, 3.01, 10.0, 25.0] {
            assert!(close(linear_to_db(db_to_linear(db)), db, 1e-9));
        }
    }

    #[test]
    fn known_points() {
        assert!(close(db_to_linear(10.0), 10.0, 1e-12));
        assert!(close(db_to_linear(-10.0), 0.1, 1e-12));
        assert!(close(db_to_linear(3.0), 1.9952623, 1e-6));
    }

    #[test]
    fn amplitude_uses_20log() {
        assert!(close(db_to_amplitude(20.0), 10.0, 1e-12));
        assert!(close(amplitude_to_db(2.0), 6.0206, 1e-3));
    }

    #[test]
    fn zero_ratio_is_neg_infinity() {
        assert_eq!(linear_to_db(0.0), f64::NEG_INFINITY);
        assert_eq!(amplitude_to_db(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn dbm_watts_roundtrip() {
        assert!(close(dbm_to_watts(0.0), 1e-3, 1e-15));
        assert!(close(dbm_to_watts(30.0), 1.0, 1e-12));
        assert!(close(watts_to_dbm(1e-3), 0.0, 1e-12));
        for dbm in [-90.0, -30.0, 0.0, 23.0] {
            assert!(close(watts_to_dbm(dbm_to_watts(dbm)), dbm, 1e-9));
        }
    }

    #[test]
    fn incoherent_sum() {
        // Two equal powers add 3.01 dB.
        assert!(close(sum_dbm(&[0.0, 0.0]), 3.0103, 1e-3));
        // A much weaker contribution barely moves the total.
        assert!(close(sum_dbm(&[0.0, -40.0]), 0.00043, 1e-3));
    }

    #[test]
    fn nan_propagates_through_every_conversion() {
        // NaN in, NaN out — never a silent finite answer. (`ratio <= 0.0`
        // is false for NaN, so the guarded paths still reach log10.)
        assert!(db_to_linear(f64::NAN).is_nan());
        assert!(linear_to_db(f64::NAN).is_nan());
        assert!(db_to_amplitude(f64::NAN).is_nan());
        assert!(amplitude_to_db(f64::NAN).is_nan());
        assert!(dbm_to_watts(f64::NAN).is_nan());
        assert!(watts_to_dbm(f64::NAN).is_nan());
        assert!(sum_dbm(&[0.0, f64::NAN]).is_nan());
        assert!(thermal_noise_dbm(f64::NAN, 290.0).is_nan());
    }

    #[test]
    fn empty_sum_is_silence() {
        // No paths at all means no power: exactly -inf dBm, not a panic
        // and not some sentinel floor.
        assert_eq!(sum_dbm(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn neg_infinity_round_trips_as_absence() {
        // -inf dBm (no signal) must survive every round trip: to watts it
        // is exactly zero, and zero watts maps back to -inf dBm.
        assert_eq!(dbm_to_watts(f64::NEG_INFINITY), 0.0);
        assert_eq!(watts_to_dbm(0.0), f64::NEG_INFINITY);
        assert_eq!(watts_to_dbm(dbm_to_watts(f64::NEG_INFINITY)), f64::NEG_INFINITY);
        assert_eq!(db_to_linear(f64::NEG_INFINITY), 0.0);
        assert_eq!(db_to_amplitude(f64::NEG_INFINITY), 0.0);
        // Adding silence to a sum changes nothing.
        assert_eq!(sum_dbm(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        assert!(close(sum_dbm(&[-10.0, f64::NEG_INFINITY]), -10.0, 1e-9));
        // +inf dB saturates rather than wrapping or NaN-ing.
        assert_eq!(db_to_linear(f64::INFINITY), f64::INFINITY);
        assert_eq!(linear_to_db(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn amplitude_and_power_factors_cross_check() {
        // The 10-vs-20 audit in one assertion: an amplitude ratio squared
        // is a power ratio, so db_to_amplitude(x)² == db_to_linear(x) and
        // amplitude_to_db(r) == linear_to_db(r²) for every x.
        for x in [-60.0, -6.0, -1.0, 0.0, 3.0, 6.0, 20.0, 45.0] {
            let a = db_to_amplitude(x);
            assert!(close(a * a, db_to_linear(x), 1e-9 * db_to_linear(x).max(1.0)));
        }
        for r in [1e-4, 0.1, 0.5, 1.0, 2.0, 10.0, 316.0] {
            assert!(close(amplitude_to_db(r), linear_to_db(r * r), 1e-9));
        }
    }

    #[test]
    fn thermal_noise_matches_174_rule() {
        // -174 dBm/Hz at 290 K; over 2.16 GHz (one 802.11ad channel)
        // the floor is about -80.6 dBm.
        let n0 = thermal_noise_dbm(1.0, 290.0);
        assert!(close(n0, -173.98, 0.05));
        let floor = thermal_noise_dbm(2.16e9, 290.0);
        assert!(close(floor, -80.63, 0.1));
    }
}
