//! Deterministic randomness for reproducible experiments.
//!
//! Every stochastic element of the simulator (fading ripple, measurement
//! noise, random headset placements) draws from a [`SimRng`] seeded
//! explicitly, so a figure regenerated twice prints identical rows. Derived
//! streams (`fork`) let independent subsystems consume randomness without
//! perturbing each other's sequences when call orders change.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable, forkable random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream. The child is a pure function of
    /// (parent seed position, `label`), so two forks with different labels
    /// never correlate and adding a new fork does not shift existing ones
    /// if callers fork up-front.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.inner.next_u64();
        // SplitMix64-style mix of the base draw with the label.
        let mut z = base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        if hi == lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.gen_range(lo..=hi)
    }

    /// Standard normal sample via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Random phase in `[0, 2π)` radians.
    pub fn phase(&mut self) -> f64 {
        self.uniform(0.0, 2.0 * std::f64::consts::PI)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut f1a = parent1.fork(1);
        let mut f1b = parent2.fork(1);
        assert_eq!(f1a.next_u64(), f1b.next_u64());

        let mut parent3 = SimRng::seed_from_u64(7);
        let mut parent4 = SimRng::seed_from_u64(7);
        let mut fa = parent3.fork(1);
        let mut fb = parent4.fork(2);
        assert_ne!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
        assert_eq!(r.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn std_normal_moments() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
        // Out-of-range p is clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn phase_in_range() {
        let mut r = SimRng::seed_from_u64(17);
        for _ in 0..100 {
            let p = r.phase();
            assert!((0.0..2.0 * std::f64::consts::PI).contains(&p));
        }
    }

    #[test]
    fn uniform_usize_inclusive() {
        let mut r = SimRng::seed_from_u64(19);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..200 {
            let v = r.uniform_usize(0, 3);
            assert!(v <= 3);
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }
}
