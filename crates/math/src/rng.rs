//! Deterministic randomness for reproducible experiments.
//!
//! Every stochastic element of the simulator (fading ripple, measurement
//! noise, random headset placements) draws from a [`SimRng`] seeded
//! explicitly, so a figure regenerated twice prints identical rows. Derived
//! streams (`fork`) let independent subsystems consume randomness without
//! perturbing each other's sequences when call orders change.
//!
//! The generator is implemented in-tree (no external crates) so the whole
//! workspace builds and tests offline, and so the bit-exact sequence is
//! owned by this repository rather than by a dependency's minor version:
//!
//! * **Core generator:** xoshiro256\*\* (Blackman & Vigna, 2018), a
//!   public-domain 256-bit-state generator with period 2^256 − 1 that
//!   passes BigCrush. `next_u64` is the reference algorithm verbatim.
//! * **Seeding:** the four 64-bit state words are filled from successive
//!   outputs of a SplitMix64 stream started at the user seed, the
//!   expansion recommended by the xoshiro authors. Every `u64` seed —
//!   including 0 — yields a well-mixed, non-degenerate state.
//! * **Forking:** `fork(label)` consumes one draw from the parent and
//!   mixes it with the label through a SplitMix64 finalizer, producing a
//!   child seed that is a pure function of (parent position, label).

/// Golden first draw of `SimRng::seed_from_u64(42)`; pinned here and in
/// tests so any change to the generator is caught immediately.
pub const GOLDEN_SEED42_FIRST_DRAW: u64 = 1546998764402558742;

/// SplitMix64 step: advances `state` and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 finalizer: a stateless 64-bit mixing function.
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable, forkable random stream (xoshiro256\*\* core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // The all-zero state is the one fixed point of xoshiro; SplitMix64
        // expansion cannot realistically produce it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15; // lint: index 0 of a [u64; 4] literal — cannot be out of bounds
        }
        SimRng { s }
    }

    /// The raw xoshiro256\*\* state words, for checkpointing. Feeding the
    /// returned array to [`SimRng::from_state`] reproduces a stream that
    /// continues the exact draw sequence from this point.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a stream from state words captured by [`SimRng::state`].
    ///
    /// The all-zero state is the one fixed point of xoshiro (it only
    /// produces zeros); it is unreachable from any seeded stream, so
    /// encountering it means the words were corrupted — it is remapped to
    /// the same guard state `seed_from_u64` uses rather than propagating a
    /// degenerate generator.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            SimRng {
                s: [0x9E37_79B9_7F4A_7C15, 0, 0, 0],
            }
        } else {
            SimRng { s }
        }
    }

    /// Next raw 64-bit draw (xoshiro256\*\* reference algorithm).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Next raw 32-bit draw (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes (little-endian 64-bit chunks).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Derives an independent child stream. The child is a pure function of
    /// (parent seed position, `label`), so two forks with different labels
    /// never correlate and adding a new fork does not shift existing ones
    /// if callers fork up-front.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.next_u64();
        let z = mix64(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SimRng::seed_from_u64(z)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        if hi == lo {
            return lo;
        }
        let v = lo + (hi - lo) * self.unit_f64();
        // Floating rounding can land exactly on `hi` when the span is
        // enormous; fold that measure-zero edge back to `lo`.
        if v < hi {
            v
        } else {
            lo
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive, bias-free via rejection.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi >= lo);
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as usize;
        }
        let span = span + 1;
        // Reject draws from the incomplete top interval so every value in
        // [0, span) is equally likely.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let r = self.next_u64();
            if r < zone {
                return lo + (r % span) as usize;
            }
        }
    }

    /// Standard normal sample via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - self.unit_f64();
        let u2: f64 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit_f64() < p
    }

    /// Random phase in `[0, 2π)` radians.
    pub fn phase(&mut self) -> f64 {
        self.uniform(0.0, 2.0 * std::f64::consts::PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn golden_first_eight_draws_of_seed_42() {
        // Pins the exact output sequence: any change to the generator,
        // the seeding expansion, or the state layout trips this test.
        let mut r = SimRng::seed_from_u64(42);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(draws[0], GOLDEN_SEED42_FIRST_DRAW);
        let golden: [u64; 8] = [
            1546998764402558742,
            6990951692964543102,
            12544586762248559009,
            17057574109182124193,
            18295552978065317476,
            14199186830065750584,
            13267978908934200754,
            15679888225317814407,
        ];
        assert_eq!(draws, golden);
        // Cross-check the literals against an independent in-test
        // reimplementation so they are not self-referential.
        assert_eq!(draws, expected_seed42_prefix());
    }

    /// Recomputes the first 8 draws of seed 42 from first principles
    /// (independent SplitMix64 + xoshiro256** implementations), so the
    /// golden values above are cross-checked rather than self-referential.
    fn expected_seed42_prefix() -> Vec<u64> {
        let mut sm = 42u64;
        let mut s = [0u64; 4];
        for w in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        (0..8)
            .map(|_| {
                let out = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
                let t = s[1] << 17;
                s[2] ^= s[0];
                s[3] ^= s[1];
                s[1] ^= s[2];
                s[0] ^= s[3];
                s[2] ^= t;
                s[3] = s[3].rotate_left(45);
                out
            })
            .collect()
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        // Checkpoint contract: capture `state()` anywhere in a stream and
        // `from_state` continues with bit-identical draws.
        let mut r = SimRng::seed_from_u64(42);
        for _ in 0..17 {
            r.next_u64();
        }
        let saved = r.state();
        let tail: Vec<u64> = (0..64).map(|_| r.next_u64()).collect();
        let mut resumed = SimRng::from_state(saved);
        let resumed_tail: Vec<u64> = (0..64).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
        // Restoring is lossless: the captured words come back verbatim.
        assert_eq!(SimRng::from_state(saved).state(), saved);
        // And both streams now sit at the same point.
        assert_eq!(r.state(), resumed.state());
    }

    #[test]
    fn forked_stream_state_round_trips() {
        // Forks are ordinary streams: their state captures and restores
        // independently of the parent, and restoring a fork must not
        // disturb what the parent draws next.
        let mut parent = SimRng::seed_from_u64(7);
        let mut fork = parent.fork(3);
        fork.next_u64();
        let fork_state = fork.state();
        let parent_state = parent.state();

        let fork_tail: Vec<u64> = (0..32).map(|_| fork.next_u64()).collect();
        let parent_tail: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();

        let mut fork2 = SimRng::from_state(fork_state);
        let mut parent2 = SimRng::from_state(parent_state);
        assert_eq!(fork_tail, (0..32).map(|_| fork2.next_u64()).collect::<Vec<_>>());
        assert_eq!(
            parent_tail,
            (0..32).map(|_| parent2.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_zero_state_is_remapped_not_propagated() {
        // [0,0,0,0] is xoshiro's fixed point; from_state must substitute
        // the same guard state seeding uses instead of a stuck stream.
        let mut r = SimRng::from_state([0, 0, 0, 0]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert!(a != 0 || b != 0, "all-zero state produced a stuck stream");
        assert_ne!(r.state(), [0, 0, 0, 0]);
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut f1a = parent1.fork(1);
        let mut f1b = parent2.fork(1);
        assert_eq!(f1a.next_u64(), f1b.next_u64());

        let mut parent3 = SimRng::seed_from_u64(7);
        let mut parent4 = SimRng::seed_from_u64(7);
        let mut fa = parent3.fork(1);
        let mut fb = parent4.fork(2);
        assert_ne!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn fork_streams_uncorrelated() {
        // Pearson correlation between sibling fork streams stays near 0.
        let mut parent = SimRng::seed_from_u64(99);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let n = 10_000;
        let xs: Vec<f64> = (0..n).map(|_| a.unit_f64()).collect();
        let ys: Vec<f64> = (0..n).map(|_| b.unit_f64()).collect();
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n as f64;
        let vx = xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>() / n as f64;
        let vy = ys.iter().map(|y| (y - my).powi(2)).sum::<f64>() / n as f64;
        let corr = cov / (vx * vy).sqrt();
        assert!(corr.abs() < 0.03, "corr={corr}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
        assert_eq!(r.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn uniform_mean_and_variance() {
        // A uniform on [0,1) has mean 1/2 and variance 1/12.
        let mut r = SimRng::seed_from_u64(23);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.unit_f64()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.003, "var={var}");
    }

    #[test]
    fn std_normal_moments() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        // Third central moment (skew) of a normal is 0.
        let skew: f64 = samples.iter().map(|v| (v - mean).powi(3)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
        assert!(skew.abs() < 0.05, "skew={skew}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
        // Out-of-range p is clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn phase_in_range() {
        let mut r = SimRng::seed_from_u64(17);
        for _ in 0..100 {
            let p = r.phase();
            assert!((0.0..2.0 * std::f64::consts::PI).contains(&p));
        }
    }

    #[test]
    fn uniform_usize_inclusive() {
        let mut r = SimRng::seed_from_u64(19);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..200 {
            let v = r.uniform_usize(0, 3);
            assert!(v <= 3);
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn state_round_trip_continues_sequence() {
        let mut r = SimRng::seed_from_u64(42);
        for _ in 0..57 {
            r.next_u64();
        }
        let saved = r.state();
        let expected: Vec<u64> = (0..100).map(|_| r.next_u64()).collect();
        let mut restored = SimRng::from_state(saved);
        let got: Vec<u64> = (0..100).map(|_| restored.next_u64()).collect();
        assert_eq!(got, expected, "restored stream must continue bit-exactly");
        assert_eq!(restored, r, "states converge after identical draws");
    }

    #[test]
    fn state_round_trip_of_forked_stream() {
        // A fork captured mid-flight must also resume bit-exactly, and
        // restoring the parent must not disturb the child (and vice versa).
        let mut parent = SimRng::seed_from_u64(7);
        parent.next_u64();
        let mut child = parent.fork(0xBEEF);
        child.next_u64();
        child.next_u64();

        let parent_state = parent.state();
        let child_state = child.state();

        let parent_expected: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
        let child_expected: Vec<u64> = (0..32).map(|_| child.next_u64()).collect();

        let mut parent_r = SimRng::from_state(parent_state);
        let mut child_r = SimRng::from_state(child_state);
        // Interleave the restored draws to show the streams are independent.
        let mut parent_got = Vec::new();
        let mut child_got = Vec::new();
        for _ in 0..32 {
            parent_got.push(parent_r.next_u64());
            child_got.push(child_r.next_u64());
        }
        assert_eq!(parent_got, parent_expected);
        assert_eq!(child_got, child_expected);
    }

    #[test]
    fn restored_stream_forks_identically() {
        // fork() is part of the stream contract: a restored stream must
        // produce the same children the original would have.
        let mut a = SimRng::seed_from_u64(99);
        a.next_u64();
        let mut b = SimRng::from_state(a.state());
        let mut fa = a.fork(3);
        let mut fb = b.fork(3);
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_eq!(a, b);
    }

    #[test]
    fn all_zero_state_is_remapped_not_degenerate() {
        let mut r = SimRng::from_state([0, 0, 0, 0]);
        // The xoshiro fixed point would emit only zeros forever.
        assert!((0..8).any(|_| r.next_u64() != 0));
    }

    #[test]
    fn fill_bytes_deterministic_and_covers_tail() {
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        let mut buf_a = [0u8; 13];
        let mut buf_b = [0u8; 13];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(buf_a.iter().any(|&x| x != 0));
    }
}
