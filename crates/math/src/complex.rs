//! Complex numbers for baseband signal arithmetic.
//!
//! The RF simulator represents narrowband signals as complex phasors: a path
//! with amplitude gain `a` and phase `φ` multiplies the transmitted phasor by
//! `a·e^{jφ}`. [`C64`] is a minimal `f64` complex type with exactly the
//! operations that use case needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a complex number from polar form: `r·e^{jθ}` (θ in radians).
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` — a unit phasor at angle θ radians.
    pub fn exp_j(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` — the instantaneous power of a phasor.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }

    /// Multiplicative inverse `1/z`. Returns [`C64::ZERO`] for `z == 0` so
    /// that degenerate channel coefficients collapse to "no signal" rather
    /// than NaN-poisoning downstream sums.
    pub fn recip(self) -> Self {
        let d = self.norm_sq();
        if d <= 0.0 {
            C64::ZERO
        } else {
            C64::new(self.re / d, -self.im / d)
        }
    }

    /// True if either component is NaN or infinite.
    pub fn is_degenerate(self) -> bool {
        !self.re.is_finite() || !self.im.is_finite()
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    // Division via the reciprocal: multiply is the correct operator here.
    #[allow(clippy::suspicious_arithmetic_impl)] // lint: division via reciprocal — `*` is the right operator in Div
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, Add::add)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> C64 {
        C64::new(re, 0.0)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(C64::new(1.0, 2.0).re, 1.0);
        assert_eq!(C64::new(1.0, 2.0).im, 2.0);
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::J * C64::J, -C64::ONE);
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.5, 0.7);
        assert!(close(z.abs(), 2.5));
        assert!(close(z.arg(), 0.7));
    }

    #[test]
    fn exp_j_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            assert!(close(C64::exp_j(theta).abs(), 1.0));
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(3.0, -4.0);
        let b = C64::new(-1.5, 2.0);
        assert_eq!(a + b - b, a);
        assert!(((a * b) / b - a).abs() < 1e-12);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn conjugate_multiplication_gives_power() {
        let z = C64::new(3.0, 4.0);
        let p = z * z.conj();
        assert!(close(p.re, 25.0));
        assert!(close(p.im, 0.0));
        assert!(close(z.norm_sq(), 25.0));
    }

    #[test]
    fn rotation_by_j_is_quarter_turn() {
        let z = C64::new(1.0, 0.0);
        let r = z * C64::exp_j(FRAC_PI_2);
        assert!(close(r.re, 0.0));
        assert!(close(r.im, 1.0));
    }

    #[test]
    fn recip_of_zero_is_zero() {
        assert_eq!(C64::ZERO.recip(), C64::ZERO);
        assert_eq!(C64::ONE / C64::ZERO, C64::ZERO);
    }

    #[test]
    fn sum_of_phasors() {
        // Two opposite unit phasors cancel.
        let s: C64 = [C64::exp_j(0.0), C64::exp_j(PI)].into_iter().sum();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn scalar_ops() {
        let z = C64::new(1.0, -2.0);
        assert_eq!(z * 2.0, C64::new(2.0, -4.0));
        assert_eq!(2.0 * z, z * 2.0);
        assert_eq!(z / 2.0, C64::new(0.5, -1.0));
    }

    #[test]
    fn degenerate_detection() {
        assert!(!C64::ONE.is_degenerate());
        assert!(C64::new(f64::NAN, 0.0).is_degenerate());
        assert!(C64::new(0.0, f64::INFINITY).is_degenerate());
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, 1.0)), "1.000000+1.000000j");
        assert_eq!(format!("{}", C64::new(1.0, -1.0)), "1.000000-1.000000j");
    }
}
