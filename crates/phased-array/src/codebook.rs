//! Beam codebooks for sweep protocols.
//!
//! The paper's alignment procedure "tries every possible combination of θ₁
//! and θ₂ ... with 1 degree increments" (§3, §4.1). A [`Codebook`] is that
//! finite set of steerable beams; protocols iterate it, and the tracking
//! optimisation (§6) restricts iteration to a window around a predicted
//! angle.

use movr_math::wrap_deg_180;

/// A finite, ordered set of beam directions (absolute bearings, degrees).
#[derive(Debug, Clone)]
pub struct Codebook {
    beams: Vec<f64>,
}

impl Codebook {
    /// Builds a codebook sweeping `[start, end]` (degrees) inclusive with
    /// the given step.
    ///
    /// # Panics
    /// Panics if `step <= 0` or `end < start`.
    pub fn sweep(start_deg: f64, end_deg: f64, step_deg: f64) -> Self {
        Codebook {
            beams: movr_math::angle::sweep_deg(start_deg, end_deg, step_deg),
        }
    }

    /// The paper's sweep: 40°–140° at 1° — the range of Figs. 7 and 8.
    pub fn paper_sweep() -> Self {
        Codebook::sweep(40.0, 140.0, 1.0)
    }

    /// Builds a codebook from explicit beam directions.
    pub fn from_beams(beams: Vec<f64>) -> Self {
        assert!(!beams.is_empty(), "codebook must contain at least one beam");
        Codebook { beams }
    }

    /// Number of beams.
    pub fn len(&self) -> usize {
        self.beams.len()
    }

    /// True if the codebook is empty (only possible via `sweep` misuse;
    /// `from_beams` rejects empties).
    pub fn is_empty(&self) -> bool {
        self.beams.is_empty()
    }

    /// The beam directions in sweep order.
    pub fn beams(&self) -> &[f64] {
        &self.beams
    }

    /// The beam nearest (shortest arc) to `target_deg`, as
    /// `(index, beam_deg)`.
    pub fn nearest(&self, target_deg: f64) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, &b) in self.beams.iter().enumerate() {
            let d = wrap_deg_180(b - target_deg).abs();
            if d < best.1 {
                best = (i, d);
            }
        }
        (best.0, self.beams[best.0])
    }

    /// A sub-codebook of beams within ±`window_deg` of `center_deg` —
    /// the tracking-assisted narrow sweep of §6.
    pub fn window(&self, center_deg: f64, window_deg: f64) -> Codebook {
        let beams: Vec<f64> = self
            .beams
            .iter()
            .copied()
            .filter(|&b| wrap_deg_180(b - center_deg).abs() <= window_deg)
            .collect();
        if beams.is_empty() {
            // Degenerate window: fall back to the single nearest beam so a
            // sweep over the result is never a no-op.
            let (_, b) = self.nearest(center_deg);
            Codebook { beams: vec![b] }
        } else {
            Codebook { beams }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_is_101_beams() {
        let cb = Codebook::paper_sweep();
        assert_eq!(cb.len(), 101);
        assert_eq!(cb.beams()[0], 40.0);
        assert_eq!(*cb.beams().last().unwrap(), 140.0);
    }

    #[test]
    fn nearest_beam() {
        let cb = Codebook::paper_sweep();
        assert_eq!(cb.nearest(72.3), (32, 72.0));
        assert_eq!(cb.nearest(72.6), (33, 73.0));
        // Clamps at the edges.
        assert_eq!(cb.nearest(0.0).1, 40.0);
        assert_eq!(cb.nearest(179.0).1, 140.0);
    }

    #[test]
    fn window_restricts_sweep() {
        let cb = Codebook::paper_sweep();
        let w = cb.window(90.0, 5.0);
        assert_eq!(w.len(), 11);
        assert!(w.beams().iter().all(|&b| (b - 90.0).abs() <= 5.0));
    }

    #[test]
    fn empty_window_falls_back_to_nearest() {
        let cb = Codebook::sweep(40.0, 140.0, 10.0);
        let w = cb.window(44.9, 0.5);
        assert_eq!(w.len(), 1);
        assert_eq!(w.beams()[0], 40.0);
    }

    #[test]
    fn from_beams_preserves_order() {
        let cb = Codebook::from_beams(vec![100.0, 40.0, 70.0]);
        assert_eq!(cb.beams(), &[100.0, 40.0, 70.0]);
    }

    #[test]
    #[should_panic(expected = "at least one beam")]
    fn empty_from_beams_rejected() {
        Codebook::from_beams(vec![]);
    }
}
