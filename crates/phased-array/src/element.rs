//! Single patch-antenna element.
//!
//! A microstrip patch radiates into the half-space in front of its ground
//! plane with a broad, roughly cosine-shaped pattern and a peak gain of a
//! few dBi. The array multiplies this element pattern by the array factor;
//! the element is what prevents the array from radiating backwards.

use movr_math::{linear_to_db, wrap_deg_180};

/// A patch element with a `cosᵖ` power pattern.
#[derive(Debug, Clone, Copy)]
pub struct PatchElement {
    /// Peak (boresight) gain, dBi.
    pub peak_gain_dbi: f64,
    /// Power-pattern exponent: `G(θ) ∝ cosᵖ(θ)`. Larger = more directive.
    pub exponent: f64,
    /// Floor applied behind the ground plane and at pattern nulls, dBi.
    pub back_lobe_dbi: f64,
}

impl Default for PatchElement {
    fn default() -> Self {
        // A typical PCB patch at 24 GHz: ~5 dBi peak, gentle rolloff,
        // ~25 dB front-to-back ratio.
        PatchElement {
            peak_gain_dbi: 5.0,
            exponent: 2.0,
            back_lobe_dbi: -20.0,
        }
    }
}

impl PatchElement {
    /// Element gain (dBi) at angle `theta_deg` off boresight
    /// (−180…180; |θ| > 90° is behind the ground plane).
    pub fn gain_dbi(&self, theta_deg: f64) -> f64 {
        let theta = wrap_deg_180(theta_deg);
        if theta.abs() >= 90.0 {
            return self.back_lobe_dbi;
        }
        let c = theta.to_radians().cos();
        let g = self.peak_gain_dbi + linear_to_db(c.powf(self.exponent));
        g.max(self.back_lobe_dbi)
    }

    /// Element *amplitude* gain (linear field ratio) at `theta_deg`.
    pub fn amplitude(&self, theta_deg: f64) -> f64 {
        movr_math::db::db_to_amplitude(self.gain_dbi(theta_deg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boresight_is_peak() {
        let e = PatchElement::default();
        assert_eq!(e.gain_dbi(0.0), 5.0);
        for t in [10.0, 30.0, 60.0, 89.0] {
            assert!(e.gain_dbi(t) < e.gain_dbi(0.0));
        }
    }

    #[test]
    fn pattern_is_symmetric() {
        let e = PatchElement::default();
        for t in [5.0, 25.0, 45.0, 80.0] {
            assert!((e.gain_dbi(t) - e.gain_dbi(-t)).abs() < 1e-12);
        }
    }

    #[test]
    fn back_half_is_floored() {
        let e = PatchElement::default();
        assert_eq!(e.gain_dbi(90.0), e.back_lobe_dbi);
        assert_eq!(e.gain_dbi(135.0), e.back_lobe_dbi);
        assert_eq!(e.gain_dbi(180.0), e.back_lobe_dbi);
        assert_eq!(e.gain_dbi(-120.0), e.back_lobe_dbi);
    }

    #[test]
    fn monotone_rolloff_in_front_half() {
        let e = PatchElement::default();
        let mut prev = f64::INFINITY;
        for i in 0..=17 {
            let g = e.gain_dbi(i as f64 * 5.0);
            assert!(g <= prev + 1e-12);
            prev = g;
        }
    }

    #[test]
    fn half_power_near_65_degrees_for_cos2() {
        // cos²θ = 0.5 at θ = 45°... in power-pattern terms with p=2:
        // 10·log10(cos²45°) = -3.01 dB.
        let e = PatchElement::default();
        let g = e.gain_dbi(45.0);
        assert!((g - (5.0 - 3.01)).abs() < 0.05, "g={g}");
    }

    #[test]
    fn amplitude_matches_gain() {
        let e = PatchElement::default();
        let a = e.amplitude(0.0);
        assert!((20.0 * a.log10() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn wraparound_angles() {
        let e = PatchElement::default();
        assert_eq!(e.gain_dbi(350.0), e.gain_dbi(-10.0));
        assert_eq!(e.gain_dbi(370.0), e.gain_dbi(10.0));
    }
}
