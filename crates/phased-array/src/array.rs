//! Uniform linear arrays and steered instances.
//!
//! The array factor of an N-element ULA with element spacing `d` steered
//! to angle θ₀ (off broadside) and observed at θ is
//!
//! ```text
//! AF(θ) = (1/N) · Σₙ exp(j·n·k·d·(sin θ − sin θ₀) + j·εₙ)
//! ```
//!
//! where εₙ is the per-element phase-quantisation error introduced by the
//! control DAC. Total gain is `10·log10(N) + G_element(θ) + 20·log10|AF|`:
//! a 10-element λ/2 array peaks near 15 dBi with a ~10° half-power beam,
//! matching the paper's prototype.

use crate::element::PatchElement;
use crate::shifter::PhaseShifter;
use crate::taper::Taper;
use movr_math::{amplitude_to_db, linear_to_db, wrap_deg_180, C64};
use std::f64::consts::PI;

/// Electronic beam-steering settle time, seconds. The paper (§6) notes the
/// analog phase shifters driven by a high-speed DAC reconfigure in
/// sub-microsecond time frames.
pub const STEERING_LATENCY_S: f64 = 0.5e-6;

/// An N-element uniform linear array of patch elements.
#[derive(Debug, Clone, Copy)]
pub struct UniformLinearArray {
    n: usize,
    spacing_wavelengths: f64,
    element: PatchElement,
    shifter: PhaseShifter,
    taper: Taper,
}

impl UniformLinearArray {
    /// Creates an array.
    ///
    /// # Panics
    /// Panics if `n == 0` or spacing is not positive.
    pub fn new(
        n: usize,
        spacing_wavelengths: f64,
        element: PatchElement,
        shifter: PhaseShifter,
    ) -> Self {
        assert!(n >= 1, "array needs at least one element");
        assert!(spacing_wavelengths > 0.0, "element spacing must be positive");
        UniformLinearArray {
            n,
            spacing_wavelengths,
            element,
            shifter,
            taper: Taper::Uniform,
        }
    }

    /// The same array with an amplitude taper applied to the feed.
    pub fn with_taper(mut self, taper: Taper) -> Self {
        self.taper = taper;
        self
    }

    /// The feed taper.
    pub fn taper(&self) -> Taper {
        self.taper
    }

    /// The paper's array: 10 patch elements at λ/2 with 8-bit phase
    /// control — ~15 dBi peak, ~10° half-power beamwidth.
    pub fn paper_array() -> Self {
        UniformLinearArray::new(
            crate::PAPER_ARRAY_ELEMENTS,
            0.5,
            PatchElement::default(),
            PhaseShifter::default(),
        )
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.n
    }

    /// The phase shifter model used for steering.
    pub fn shifter(&self) -> &PhaseShifter {
        &self.shifter
    }

    /// Normalised complex array factor at `theta_deg` off broadside when
    /// steered to `steer_deg` off broadside. |AF| ≤ 1, = 1 at the steered
    /// angle with ideal (unquantised) phases.
    pub fn array_factor(&self, steer_deg: f64, theta_deg: f64) -> C64 {
        let kd = 2.0 * PI * self.spacing_wavelengths;
        let sin_t = theta_deg.to_radians().sin();
        let sin_s = steer_deg.to_radians().sin();
        let mut sum = C64::ZERO;
        let mut weight_sum = 0.0;
        for i in 0..self.n {
            // Commanded per-element phase, quantised by the control DAC.
            let ideal_deg = (-(i as f64) * kd * sin_s).to_degrees();
            let applied_deg = self.shifter.apply(ideal_deg);
            let phase = i as f64 * kd * sin_t + applied_deg.to_radians();
            let w = self.taper.weight(i, self.n);
            sum += C64::exp_j(phase) * w;
            weight_sum += w;
        }
        sum / weight_sum
    }

    /// Total array gain (dBi) toward `theta_deg` off broadside when
    /// steered to `steer_deg` off broadside.
    pub fn gain_dbi(&self, steer_deg: f64, theta_deg: f64) -> f64 {
        let theta = wrap_deg_180(theta_deg);
        if theta.abs() >= 90.0 {
            // Behind the ground plane: element back lobe only.
            return self.element.gain_dbi(theta);
        }
        let af = self.array_factor(steer_deg, theta).abs();
        // Directivity of a tapered aperture: n × taper efficiency.
        linear_to_db(self.n as f64 * self.taper.efficiency(self.n))
            + self.element.gain_dbi(theta)
            + amplitude_to_db(af)
    }

    /// Peak gain (dBi) when steered to `steer_deg`: the gain toward the
    /// steered direction itself.
    pub fn peak_gain_dbi(&self, steer_deg: f64) -> f64 {
        self.gain_dbi(steer_deg, steer_deg)
    }

    /// Measures the half-power (−3 dB) beamwidth around a steering angle
    /// by scanning the pattern at 0.05° resolution.
    pub fn half_power_beamwidth_deg(&self, steer_deg: f64) -> f64 {
        let peak = self.gain_dbi(steer_deg, steer_deg);
        let target = peak - 3.0;
        let step = 0.05;
        let mut upper = steer_deg;
        while upper < steer_deg + 90.0 && self.gain_dbi(steer_deg, upper) > target {
            upper += step;
        }
        let mut lower = steer_deg;
        while lower > steer_deg - 90.0 && self.gain_dbi(steer_deg, lower) > target {
            lower -= step;
        }
        upper - lower
    }
}

/// A ULA mounted in the room: a position-independent pattern oriented with
/// its broadside toward `boresight_deg` (absolute room bearing), holding a
/// current electronic steering command.
///
/// ```
/// use movr_phased_array::SteeredArray;
///
/// let mut array = SteeredArray::paper_array(90.0); // facing north
/// array.steer_to(110.0);
/// // ~15 dBi toward the steered bearing, sidelobes well down.
/// assert!(array.gain_dbi(110.0) > 13.0);
/// assert!(array.gain_dbi(110.0) - array.gain_dbi(60.0) > 10.0);
/// ```
///
/// Steering commands are expressed as absolute room bearings and clamped
/// to the physical scan range (±`max_steer_deg` off broadside) — a patch
/// array cannot look behind its own ground plane.
#[derive(Debug, Clone, Copy)]
pub struct SteeredArray {
    array: UniformLinearArray,
    boresight_deg: f64,
    steer_local_deg: f64,
    max_steer_deg: f64,
}

impl SteeredArray {
    /// Mounts `array` with broadside facing `boresight_deg`.
    pub fn new(array: UniformLinearArray, boresight_deg: f64) -> Self {
        SteeredArray {
            array,
            boresight_deg,
            steer_local_deg: 0.0,
            // Analog phase shifters can command wide scans; the element
            // pattern's cosine rolloff (≈ −9 dB at 70°) is the real
            // limit, and it is modelled, so the hard clamp sits out at
            // the edge of usefulness rather than artificially tight.
            max_steer_deg: 70.0,
        }
    }

    /// The paper's array mounted facing `boresight_deg`.
    pub fn paper_array(boresight_deg: f64) -> Self {
        SteeredArray::new(UniformLinearArray::paper_array(), boresight_deg)
    }

    /// The mounting boresight (absolute bearing, degrees).
    pub fn boresight_deg(&self) -> f64 {
        self.boresight_deg
    }

    /// The underlying array.
    pub fn array(&self) -> &UniformLinearArray {
        &self.array
    }

    /// Maximum electronic scan off broadside, degrees.
    pub fn max_steer_deg(&self) -> f64 {
        self.max_steer_deg
    }

    /// Current steering as an absolute room bearing, degrees.
    pub fn steering_deg(&self) -> f64 {
        wrap_deg_180(self.boresight_deg + self.steer_local_deg)
    }

    /// Steers the beam toward an absolute room bearing. The command is
    /// clamped to the scan range; returns the bearing actually applied.
    pub fn steer_to(&mut self, absolute_deg: f64) -> f64 {
        let local = wrap_deg_180(absolute_deg - self.boresight_deg);
        self.steer_local_deg = local.clamp(-self.max_steer_deg, self.max_steer_deg);
        self.steering_deg()
    }

    /// True if `absolute_deg` lies within the electronic scan range.
    pub fn can_steer_to(&self, absolute_deg: f64) -> bool {
        wrap_deg_180(absolute_deg - self.boresight_deg).abs() <= self.max_steer_deg
    }

    /// Gain (dBi) toward an absolute room bearing under the current
    /// steering.
    pub fn gain_dbi(&self, absolute_deg: f64) -> f64 {
        let local = wrap_deg_180(absolute_deg - self.boresight_deg);
        self.array.gain_dbi(self.steer_local_deg, local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadside_peak_gain() {
        let arr = UniformLinearArray::paper_array();
        let peak = arr.peak_gain_dbi(0.0);
        // 10·log10(10) + 5 dBi element = 15 dBi.
        assert!((peak - 15.0).abs() < 0.3, "peak={peak}");
    }

    #[test]
    fn af_is_unity_at_steered_angle_without_quantisation() {
        // A 16-bit shifter is effectively continuous.
        let arr = UniformLinearArray::new(
            8,
            0.5,
            PatchElement::default(),
            PhaseShifter::with_bits(16),
        );
        for steer in [-40.0, 0.0, 25.0] {
            let af = arr.array_factor(steer, steer).abs();
            assert!((af - 1.0).abs() < 1e-3, "steer={steer} af={af}");
        }
    }

    #[test]
    fn af_bounded_by_one() {
        let arr = UniformLinearArray::paper_array();
        for steer in [-30.0, 0.0, 45.0] {
            let mut t = -90.0;
            while t <= 90.0 {
                assert!(arr.array_factor(steer, t).abs() <= 1.0 + 1e-9);
                t += 1.0;
            }
        }
    }

    #[test]
    fn steering_moves_the_peak() {
        let arr = UniformLinearArray::paper_array();
        for steer in [-30.0, -10.0, 20.0, 40.0] {
            // The gain at the steered angle must be within a dB of the best
            // gain anywhere (beam squint/quantisation allow small offsets).
            let at_steer = arr.gain_dbi(steer, steer);
            let mut best = f64::NEG_INFINITY;
            let mut t = -89.0;
            while t < 90.0 {
                best = best.max(arr.gain_dbi(steer, t));
                t += 0.1;
            }
            assert!(best - at_steer < 1.0, "steer={steer}");
        }
    }

    #[test]
    fn sidelobes_are_down() {
        let arr = UniformLinearArray::paper_array();
        let peak = arr.gain_dbi(0.0, 0.0);
        // First ULA sidelobe is ≈13 dB down; far angles much more.
        assert!(peak - arr.gain_dbi(0.0, 30.0) > 10.0);
        assert!(peak - arr.gain_dbi(0.0, 60.0) > 10.0);
    }

    #[test]
    fn back_hemisphere_floored() {
        let arr = UniformLinearArray::paper_array();
        let g = arr.gain_dbi(0.0, 150.0);
        assert_eq!(g, PatchElement::default().back_lobe_dbi);
    }

    #[test]
    fn beamwidth_shrinks_with_elements() {
        let small = UniformLinearArray::new(
            6,
            0.5,
            PatchElement::default(),
            PhaseShifter::default(),
        );
        let large = UniformLinearArray::new(
            20,
            0.5,
            PatchElement::default(),
            PhaseShifter::default(),
        );
        assert!(large.half_power_beamwidth_deg(0.0) < small.half_power_beamwidth_deg(0.0));
    }

    #[test]
    fn steered_array_absolute_bearings() {
        let mut sa = SteeredArray::paper_array(90.0);
        assert_eq!(sa.steering_deg(), 90.0);
        let applied = sa.steer_to(110.0);
        assert!((applied - 110.0).abs() < 1e-9);
        // Peak gain toward the steered absolute bearing.
        let g_at = sa.gain_dbi(110.0);
        let g_off = sa.gain_dbi(60.0);
        assert!(g_at > g_off + 10.0);
    }

    #[test]
    fn steer_clamps_to_scan_range() {
        let mut sa = SteeredArray::paper_array(90.0);
        let applied = sa.steer_to(200.0);
        assert!((applied - 160.0).abs() < 1e-9, "applied={applied}");
        assert!(sa.can_steer_to(45.0));
        assert!(!sa.can_steer_to(170.1));
        assert!(!sa.can_steer_to(-90.0));
    }

    #[test]
    fn quantisation_costs_little_gain() {
        let coarse = UniformLinearArray::new(
            10,
            0.5,
            PatchElement::default(),
            PhaseShifter::with_bits(4),
        );
        let fine = UniformLinearArray::new(
            10,
            0.5,
            PatchElement::default(),
            PhaseShifter::with_bits(16),
        );
        // 4-bit control loses well under 1 dB at a steered angle.
        let loss = fine.peak_gain_dbi(33.0) - coarse.peak_gain_dbi(33.0);
        assert!(loss < 1.0, "loss={loss}");
        assert!(loss > -0.5);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_array_rejected() {
        UniformLinearArray::new(0, 0.5, PatchElement::default(), PhaseShifter::default());
    }

    #[test]
    fn steering_latency_is_sub_microsecond() {
        const { assert!(STEERING_LATENCY_S < 1e-6) };
    }

    #[test]
    fn taper_lowers_sidelobes_at_a_gain_cost() {
        let uniform = UniformLinearArray::paper_array();
        let tapered = UniformLinearArray::paper_array()
            .with_taper(Taper::RaisedCosine { pedestal: 0.3 });

        // Peak gain: tapering costs some (taper efficiency < 1)...
        let loss = uniform.peak_gain_dbi(0.0) - tapered.peak_gain_dbi(0.0);
        assert!((0.3..3.0).contains(&loss), "taper loss {loss} dB");

        // ...and buys sidelobe suppression. Find each pattern's worst
        // sidelobe outside the main beam.
        let worst_sidelobe = |arr: &UniformLinearArray, null_beyond: f64| {
            let peak = arr.gain_dbi(0.0, 0.0);
            let mut worst = f64::NEG_INFINITY;
            let mut t = null_beyond;
            while t <= 89.0 {
                worst = worst.max(arr.gain_dbi(0.0, t) - peak);
                t += 0.2;
            }
            worst
        };
        let u = worst_sidelobe(&uniform, 12.0);
        let t = worst_sidelobe(&tapered, 18.0);
        assert!(t < u - 5.0, "uniform {u} dB vs tapered {t} dB");
    }

    #[test]
    fn tapered_beam_is_wider() {
        let uniform = UniformLinearArray::paper_array();
        let tapered = UniformLinearArray::paper_array()
            .with_taper(Taper::RaisedCosine { pedestal: 0.3 });
        assert!(
            tapered.half_power_beamwidth_deg(0.0) > uniform.half_power_beamwidth_deg(0.0)
        );
    }
}
