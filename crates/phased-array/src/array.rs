//! Uniform linear arrays and steered instances.
//!
//! The array factor of an N-element ULA with element spacing `d` steered
//! to angle θ₀ (off broadside) and observed at θ is
//!
//! ```text
//! AF(θ) = (1/N) · Σₙ exp(j·n·k·d·(sin θ − sin θ₀) + j·εₙ)
//! ```
//!
//! where εₙ is the per-element phase-quantisation error introduced by the
//! control DAC. Total gain is `10·log10(N) + G_element(θ) + 20·log10|AF|`:
//! a 10-element λ/2 array peaks near 15 dBi with a ~10° half-power beam,
//! matching the paper's prototype.

use crate::element::PatchElement;
use crate::shifter::PhaseShifter;
use crate::taper::Taper;
use movr_math::{amplitude_to_db, convert, linear_to_db, wrap_deg_180, C64};
use std::f64::consts::PI;

/// Electronic beam-steering settle time, seconds. The paper (§6) notes the
/// analog phase shifters driven by a high-speed DAC reconfigure in
/// sub-microsecond time frames.
pub const STEERING_LATENCY_S: f64 = 0.5e-6;

/// Hard cap on array size so a precomputed [`SteeringVector`] fits in
/// fixed (`Copy`) storage. The paper's prototype uses 10 elements; 32
/// leaves ample room for ablations.
pub const MAX_ELEMENTS: usize = 32;

/// Observation angles evaluated together by the batch kernels: one
/// four-wide lane group, sized to an `f64x4` vector register so the
/// autovectorizer can keep the whole accumulator set in registers.
pub const BATCH_LANES: usize = 4;

/// The per-element state of one steering command, precomputed:
/// DAC-quantised applied phases, taper weights, and the aperture
/// directivity term. These depend only on the steer command, not the
/// observation angle, so a beam sweep computes them once and every
/// subsequent [`SteeringVector::gain_dbi`] query is a single pass over
/// the elements with no re-quantisation.
///
/// Evaluation reproduces [`UniformLinearArray::array_factor`] and
/// [`UniformLinearArray::gain_dbi`] with the exact same floating-point
/// operation order, so cached and uncached gains are bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct SteeringVector {
    n: usize,
    steer_deg: f64,
    /// Per-element observation phase slope `i·k·d` (radians per sin θ).
    slope: [f64; MAX_ELEMENTS],
    /// Per-element applied (DAC-quantised) phase, radians.
    applied_rad: [f64; MAX_ELEMENTS],
    /// Per-element taper weight.
    weight: [f64; MAX_ELEMENTS],
    weight_sum: f64,
    /// `10·log10(n × taper efficiency)`, the aperture directivity term.
    directivity_db: f64,
    element: PatchElement,
}

impl SteeringVector {
    /// The steer command this vector was computed for, degrees off
    /// broadside.
    pub fn steer_deg(&self) -> f64 {
        self.steer_deg
    }

    /// Normalised complex array factor at `theta_deg` off broadside.
    /// Bit-identical to [`UniformLinearArray::array_factor`] at the
    /// cached steer command.
    pub fn array_factor(&self, theta_deg: f64) -> C64 {
        let sin_t = theta_deg.to_radians().sin();
        let mut sum = C64::ZERO;
        for i in 0..self.n {
            let phase = self.slope[i] * sin_t + self.applied_rad[i];
            sum += C64::exp_j(phase) * self.weight[i];
        }
        sum / self.weight_sum
    }

    /// Total array gain (dBi) toward `theta_deg` off broadside.
    /// Bit-identical to [`UniformLinearArray::gain_dbi`] at the cached
    /// steer command.
    pub fn gain_dbi(&self, theta_deg: f64) -> f64 {
        let theta = wrap_deg_180(theta_deg);
        if theta.abs() >= 90.0 {
            // Behind the ground plane: element back lobe only.
            return self.element.gain_dbi(theta);
        }
        let af = self.array_factor(theta).abs();
        self.directivity_db + self.element.gain_dbi(theta) + amplitude_to_db(af)
    }

    /// Accumulates the (un-normalised) array-factor sum for one lane
    /// group of observation sines. Structure-of-arrays inner loop: the
    /// element loop is outermost and each element's contribution lands
    /// in [`BATCH_LANES`] independent re/im accumulators, so the
    /// per-lane accumulation order is exactly the scalar
    /// [`SteeringVector::array_factor`] order (bit-identical results)
    /// while the lane dimension stays open for vectorisation.
    fn accumulate_lanes(
        &self,
        sin_t: &[f64; BATCH_LANES],
    ) -> ([f64; BATCH_LANES], [f64; BATCH_LANES]) {
        let mut acc_re = [0.0; BATCH_LANES];
        let mut acc_im = [0.0; BATCH_LANES];
        let per_element = self
            .slope
            .iter()
            .zip(self.applied_rad.iter())
            .zip(self.weight.iter());
        for ((sl, ar), wt) in per_element.take(self.n) {
            let lanes = acc_re.iter_mut().zip(acc_im.iter_mut()).zip(sin_t.iter());
            for ((re, im), st) in lanes {
                let phase = sl * st + ar;
                // exp_j(phase) * wt, unrolled into the SoA accumulators.
                *re += phase.cos() * wt;
                *im += phase.sin() * wt;
            }
        }
        (acc_re, acc_im)
    }

    /// Batch form of [`SteeringVector::array_factor`]: evaluates every
    /// angle of `thetas_deg` into `out`. Bit-identical per angle to the
    /// scalar path.
    ///
    /// # Panics
    /// Panics if `out.len() != thetas_deg.len()`.
    pub fn array_factor_batch_into(&self, thetas_deg: &[f64], out: &mut [C64]) {
        assert_eq!(
            thetas_deg.len(),
            out.len(),
            "batch output length must match the input"
        );
        let chunks = thetas_deg
            .chunks(BATCH_LANES)
            .zip(out.chunks_mut(BATCH_LANES));
        for (t_chunk, o_chunk) in chunks {
            if t_chunk.len() == BATCH_LANES {
                let mut sin_t = [0.0; BATCH_LANES];
                for (st, th) in sin_t.iter_mut().zip(t_chunk) {
                    *st = th.to_radians().sin();
                }
                let (acc_re, acc_im) = self.accumulate_lanes(&sin_t);
                for ((o, re), im) in o_chunk.iter_mut().zip(acc_re).zip(acc_im) {
                    *o = C64::new(re, im) / self.weight_sum;
                }
            } else {
                // Remainder lanes take the scalar path (bit-identical
                // by the scalar kernel's own guarantee).
                for (o, &th) in o_chunk.iter_mut().zip(t_chunk) {
                    *o = self.array_factor(th);
                }
            }
        }
    }

    /// Batch form of [`SteeringVector::array_factor`], allocating the
    /// output.
    pub fn array_factor_batch(&self, thetas_deg: &[f64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; thetas_deg.len()];
        self.array_factor_batch_into(thetas_deg, &mut out);
        out
    }

    /// Batch form of [`SteeringVector::gain_dbi`]: evaluates every
    /// angle of `thetas_deg` into `out`. Bit-identical per angle to the
    /// scalar path.
    ///
    /// # Panics
    /// Panics if `out.len() != thetas_deg.len()`.
    pub fn gain_dbi_batch_into(&self, thetas_deg: &[f64], out: &mut [f64]) {
        assert_eq!(
            thetas_deg.len(),
            out.len(),
            "batch output length must match the input"
        );
        let chunks = thetas_deg
            .chunks(BATCH_LANES)
            .zip(out.chunks_mut(BATCH_LANES));
        for (t_chunk, o_chunk) in chunks {
            if t_chunk.len() == BATCH_LANES {
                let mut wrapped = [0.0; BATCH_LANES];
                let mut sin_t = [0.0; BATCH_LANES];
                let lanes = wrapped.iter_mut().zip(sin_t.iter_mut()).zip(t_chunk);
                for ((w, st), th) in lanes {
                    *w = wrap_deg_180(*th);
                    *st = w.to_radians().sin();
                }
                let (acc_re, acc_im) = self.accumulate_lanes(&sin_t);
                let results = o_chunk
                    .iter_mut()
                    .zip(wrapped.iter())
                    .zip(acc_re)
                    .zip(acc_im);
                for (((o, &w), re), im) in results {
                    *o = if w.abs() >= 90.0 {
                        // Behind the ground plane: the lane's AF
                        // accumulator is simply discarded, matching the
                        // scalar early return.
                        self.element.gain_dbi(w)
                    } else {
                        let af = (C64::new(re, im) / self.weight_sum).abs();
                        self.directivity_db + self.element.gain_dbi(w) + amplitude_to_db(af)
                    };
                }
            } else {
                for (o, &th) in o_chunk.iter_mut().zip(t_chunk) {
                    *o = self.gain_dbi(th);
                }
            }
        }
    }

    /// Batch form of [`SteeringVector::gain_dbi`], allocating the
    /// output.
    pub fn gain_dbi_batch(&self, thetas_deg: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; thetas_deg.len()];
        self.gain_dbi_batch_into(thetas_deg, &mut out);
        out
    }
}

/// An N-element uniform linear array of patch elements.
#[derive(Debug, Clone, Copy)]
pub struct UniformLinearArray {
    n: usize,
    spacing_wavelengths: f64,
    element: PatchElement,
    shifter: PhaseShifter,
    taper: Taper,
}

impl UniformLinearArray {
    /// Creates an array.
    ///
    /// # Panics
    /// Panics if `n == 0` or spacing is not positive.
    pub fn new(
        n: usize,
        spacing_wavelengths: f64,
        element: PatchElement,
        shifter: PhaseShifter,
    ) -> Self {
        assert!(n >= 1, "array needs at least one element"); // lint: documented constructor contract on deployment constants
        assert!( // lint: documented constructor contract on deployment constants
            n <= MAX_ELEMENTS,
            "array capped at {MAX_ELEMENTS} elements"
        );
        assert!(spacing_wavelengths > 0.0, "element spacing must be positive"); // lint: documented constructor contract on deployment constants
        UniformLinearArray {
            n,
            spacing_wavelengths,
            element,
            shifter,
            taper: Taper::Uniform,
        }
    }

    /// The same array with an amplitude taper applied to the feed.
    pub fn with_taper(mut self, taper: Taper) -> Self {
        self.taper = taper;
        self
    }

    /// The feed taper.
    pub fn taper(&self) -> Taper {
        self.taper
    }

    /// The paper's array: 10 patch elements at λ/2 with 8-bit phase
    /// control — ~15 dBi peak, ~10° half-power beamwidth.
    pub fn paper_array() -> Self {
        UniformLinearArray::new(
            crate::PAPER_ARRAY_ELEMENTS,
            0.5,
            PatchElement::default(),
            PhaseShifter::default(),
        )
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.n
    }

    /// The phase shifter model used for steering.
    pub fn shifter(&self) -> &PhaseShifter {
        &self.shifter
    }

    /// Precomputes the per-element state for one steer command: the
    /// DAC-quantised applied phases, taper weights, and the aperture
    /// directivity term. This is the expensive part of a gain query;
    /// sweeps compute it once per beam and reuse it per observation.
    pub fn steering_vector(&self, steer_deg: f64) -> SteeringVector {
        let kd = 2.0 * PI * self.spacing_wavelengths;
        let sin_s = steer_deg.to_radians().sin();
        let mut slope = [0.0; MAX_ELEMENTS];
        let mut applied_rad = [0.0; MAX_ELEMENTS];
        let mut weight = [0.0; MAX_ELEMENTS];
        let mut weight_sum = 0.0;
        let per_element = slope.iter_mut().zip(applied_rad.iter_mut()).zip(weight.iter_mut());
        for (i, ((sl, ar), wt)) in per_element.enumerate().take(self.n) {
            let fi = convert::usize_to_f64(i);
            // Commanded per-element phase, quantised by the control DAC.
            let ideal_deg = (-fi * kd * sin_s).to_degrees();
            let applied_deg = self.shifter.apply(ideal_deg);
            *sl = fi * kd;
            *ar = applied_deg.to_radians();
            let w = self.taper.weight(i, self.n);
            *wt = w;
            weight_sum += w;
        }
        SteeringVector {
            n: self.n,
            steer_deg,
            slope,
            applied_rad,
            weight,
            weight_sum,
            // Directivity of a tapered aperture: n × taper efficiency.
            directivity_db: linear_to_db(
                convert::usize_to_f64(self.n) * self.taper.efficiency(self.n),
            ),
            element: self.element,
        }
    }

    /// Normalised complex array factor at `theta_deg` off broadside when
    /// steered to `steer_deg` off broadside. |AF| ≤ 1, = 1 at the steered
    /// angle with ideal (unquantised) phases.
    pub fn array_factor(&self, steer_deg: f64, theta_deg: f64) -> C64 {
        self.steering_vector(steer_deg).array_factor(theta_deg)
    }

    /// Total array gain (dBi) toward `theta_deg` off broadside when
    /// steered to `steer_deg` off broadside.
    pub fn gain_dbi(&self, steer_deg: f64, theta_deg: f64) -> f64 {
        self.steering_vector(steer_deg).gain_dbi(theta_deg)
    }

    /// Peak gain (dBi) when steered to `steer_deg`: the gain toward the
    /// steered direction itself.
    pub fn peak_gain_dbi(&self, steer_deg: f64) -> f64 {
        self.gain_dbi(steer_deg, steer_deg)
    }

    /// Measures the half-power (−3 dB) beamwidth around a steering angle
    /// by bisecting the −3 dB crossing on each flank of the main lobe
    /// (monotone off-peak), reusing one cached steering vector for every
    /// probe.
    pub fn half_power_beamwidth_deg(&self, steer_deg: f64) -> f64 {
        let sv = self.steering_vector(steer_deg);
        let peak = sv.gain_dbi(steer_deg);
        let target = peak - 3.0;
        let upper = hpbw_flank_offset(&sv, steer_deg, target, 1.0);
        let lower = hpbw_flank_offset(&sv, steer_deg, target, -1.0);
        upper + lower
    }
}

/// Offset (degrees, ≥ 0) from the steer angle to the −3 dB crossing on
/// one flank (`dir` = ±1). A coarse 0.5° march brackets the first
/// crossing (the narrowest lobe of a [`MAX_ELEMENTS`]-element array is
/// several degrees wide), then bisection refines it well below the old
/// 0.05° scan resolution.
fn hpbw_flank_offset(sv: &SteeringVector, steer_deg: f64, target_db: f64, dir: f64) -> f64 {
    const COARSE_STEP: f64 = 0.5;
    let mut off = 0.0;
    loop {
        let next = off + COARSE_STEP;
        if next >= 90.0 {
            // Never dipped 3 dB below the peak inside the hemisphere
            // (pathologically wide pattern): report the scan bound, as
            // the linear scan did.
            return 90.0;
        }
        if sv.gain_dbi(steer_deg + dir * next) <= target_db {
            let (mut lo, mut hi) = (off, next);
            for _ in 0..40 {
                let mid = 0.5 * (lo + hi);
                if sv.gain_dbi(steer_deg + dir * mid) > target_db {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            return 0.5 * (lo + hi);
        }
        off = next;
    }
}

/// A ULA mounted in the room: a position-independent pattern oriented with
/// its broadside toward `boresight_deg` (absolute room bearing), holding a
/// current electronic steering command.
///
/// ```
/// use movr_phased_array::SteeredArray;
///
/// let mut array = SteeredArray::paper_array(90.0); // facing north
/// array.steer_to(110.0);
/// // ~15 dBi toward the steered bearing, sidelobes well down.
/// assert!(array.gain_dbi(110.0) > 13.0);
/// assert!(array.gain_dbi(110.0) - array.gain_dbi(60.0) > 10.0);
/// ```
///
/// Steering commands are expressed as absolute room bearings and clamped
/// to the physical scan range (±`max_steer_deg` off broadside) — a patch
/// array cannot look behind its own ground plane.
#[derive(Debug, Clone, Copy)]
pub struct SteeredArray {
    array: UniformLinearArray,
    boresight_deg: f64,
    steer_local_deg: f64,
    max_steer_deg: f64,
    /// Precomputed per-element state for the current steer command, so
    /// repeated gain queries (every path of every link evaluation) skip
    /// the DAC re-quantisation. Rebuilt on every steering change.
    vector: SteeringVector,
}

impl SteeredArray {
    /// Mounts `array` with broadside facing `boresight_deg`.
    pub fn new(array: UniformLinearArray, boresight_deg: f64) -> Self {
        SteeredArray {
            array,
            boresight_deg,
            steer_local_deg: 0.0,
            // Analog phase shifters can command wide scans; the element
            // pattern's cosine rolloff (≈ −9 dB at 70°) is the real
            // limit, and it is modelled, so the hard clamp sits out at
            // the edge of usefulness rather than artificially tight.
            max_steer_deg: 70.0,
            vector: array.steering_vector(0.0),
        }
    }

    /// The paper's array mounted facing `boresight_deg`.
    pub fn paper_array(boresight_deg: f64) -> Self {
        SteeredArray::new(UniformLinearArray::paper_array(), boresight_deg)
    }

    /// The mounting boresight (absolute bearing, degrees).
    pub fn boresight_deg(&self) -> f64 {
        self.boresight_deg
    }

    /// The underlying array.
    pub fn array(&self) -> &UniformLinearArray {
        &self.array
    }

    /// Maximum electronic scan off broadside, degrees.
    pub fn max_steer_deg(&self) -> f64 {
        self.max_steer_deg
    }

    /// Current steering as an absolute room bearing, degrees.
    pub fn steering_deg(&self) -> f64 {
        wrap_deg_180(self.boresight_deg + self.steer_local_deg)
    }

    /// Current steering in local (off-broadside) terms, degrees. This is
    /// the clamped command the phase shifters actually hold.
    pub fn steer_local_deg(&self) -> f64 {
        self.steer_local_deg
    }

    /// The precomputed steering vector for the current command.
    pub fn steering_vector(&self) -> &SteeringVector {
        &self.vector
    }

    /// Steers the beam toward an absolute room bearing. The command is
    /// clamped to the scan range; returns the bearing actually applied.
    pub fn steer_to(&mut self, absolute_deg: f64) -> f64 {
        let local = wrap_deg_180(absolute_deg - self.boresight_deg);
        self.steer_local_deg = local.clamp(-self.max_steer_deg, self.max_steer_deg);
        self.vector = self.array.steering_vector(self.steer_local_deg);
        self.steering_deg()
    }

    /// True if `absolute_deg` lies within the electronic scan range.
    pub fn can_steer_to(&self, absolute_deg: f64) -> bool {
        wrap_deg_180(absolute_deg - self.boresight_deg).abs() <= self.max_steer_deg
    }

    /// Gain (dBi) toward an absolute room bearing under the current
    /// steering. A single pass over the cached steering vector —
    /// bit-identical to `array().gain_dbi(steer_local_deg(), local)`.
    pub fn gain_dbi(&self, absolute_deg: f64) -> f64 {
        let local = wrap_deg_180(absolute_deg - self.boresight_deg);
        self.vector.gain_dbi(local)
    }

    /// Batch form of [`SteeredArray::gain_dbi`]: gains toward a whole
    /// slice of absolute room bearings under the current steering,
    /// bit-identical per bearing to the scalar query.
    ///
    /// # Panics
    /// Panics if `out.len() != absolute_deg.len()`.
    pub fn gain_dbi_batch_into(&self, absolute_deg: &[f64], out: &mut [f64]) {
        let local: Vec<f64> = absolute_deg
            .iter()
            .map(|&a| wrap_deg_180(a - self.boresight_deg))
            .collect();
        self.vector.gain_dbi_batch_into(&local, out);
    }

    /// Batch form of [`SteeredArray::gain_dbi`], allocating the output.
    pub fn gain_dbi_batch(&self, absolute_deg: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; absolute_deg.len()];
        self.gain_dbi_batch_into(absolute_deg, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-cache implementations, kept verbatim as the reference the
    /// steering-vector fast path must reproduce bit-for-bit.
    fn reference_array_factor(arr: &UniformLinearArray, steer_deg: f64, theta_deg: f64) -> C64 {
        let kd = 2.0 * PI * arr.spacing_wavelengths;
        let sin_t = theta_deg.to_radians().sin();
        let sin_s = steer_deg.to_radians().sin();
        let mut sum = C64::ZERO;
        let mut weight_sum = 0.0;
        for i in 0..arr.n {
            let ideal_deg = (-convert::usize_to_f64(i) * kd * sin_s).to_degrees();
            let applied_deg = arr.shifter.apply(ideal_deg);
            let phase = convert::usize_to_f64(i) * kd * sin_t + applied_deg.to_radians();
            let w = arr.taper.weight(i, arr.n);
            sum += C64::exp_j(phase) * w;
            weight_sum += w;
        }
        sum / weight_sum
    }

    fn reference_gain_dbi(arr: &UniformLinearArray, steer_deg: f64, theta_deg: f64) -> f64 {
        let theta = wrap_deg_180(theta_deg);
        if theta.abs() >= 90.0 {
            return arr.element.gain_dbi(theta);
        }
        let af = reference_array_factor(arr, steer_deg, theta).abs();
        linear_to_db(convert::usize_to_f64(arr.n) * arr.taper.efficiency(arr.n))
            + arr.element.gain_dbi(theta)
            + amplitude_to_db(af)
    }

    /// The old 0.05°-step linear beamwidth scan, kept as the reference
    /// the bisection must agree with to within one step per flank.
    fn reference_beamwidth_deg(arr: &UniformLinearArray, steer_deg: f64) -> f64 {
        let peak = reference_gain_dbi(arr, steer_deg, steer_deg);
        let target = peak - 3.0;
        let step = 0.05;
        let mut upper = steer_deg;
        while upper < steer_deg + 90.0 && reference_gain_dbi(arr, steer_deg, upper) > target {
            upper += step;
        }
        let mut lower = steer_deg;
        while lower > steer_deg - 90.0 && reference_gain_dbi(arr, steer_deg, lower) > target {
            lower -= step;
        }
        upper - lower
    }

    #[test]
    fn steering_vector_is_bit_identical_to_reference() {
        let arrays = [
            UniformLinearArray::paper_array(),
            UniformLinearArray::paper_array().with_taper(Taper::RaisedCosine { pedestal: 0.3 }),
            UniformLinearArray::new(32, 0.5, PatchElement::default(), PhaseShifter::with_bits(4)),
        ];
        for arr in &arrays {
            for steer in [-61.3, -30.0, 0.0, 17.7, 45.0, 70.0] {
                let sv = arr.steering_vector(steer);
                let mut theta = -180.0;
                while theta <= 180.0 {
                    let a = sv.array_factor(theta);
                    let b = reference_array_factor(arr, steer, theta);
                    assert_eq!(a.re, b.re, "steer={steer} theta={theta}");
                    assert_eq!(a.im, b.im, "steer={steer} theta={theta}");
                    assert_eq!(
                        sv.gain_dbi(theta),
                        reference_gain_dbi(arr, steer, theta),
                        "steer={steer} theta={theta}"
                    );
                    theta += 3.7;
                }
            }
        }
    }

    #[test]
    fn steered_array_gain_rides_the_cached_vector() {
        let mut sa = SteeredArray::paper_array(90.0);
        sa.steer_to(117.0);
        let mut abs = -180.0;
        while abs <= 180.0 {
            let local = wrap_deg_180(abs - sa.boresight_deg());
            assert_eq!(
                sa.gain_dbi(abs),
                reference_gain_dbi(sa.array(), sa.steer_local_deg(), local),
                "abs={abs}"
            );
            abs += 4.3;
        }
    }

    #[test]
    fn bisected_beamwidth_matches_linear_scan_within_one_step() {
        let arrays = [
            UniformLinearArray::paper_array(),
            UniformLinearArray::paper_array().with_taper(Taper::RaisedCosine { pedestal: 0.3 }),
            UniformLinearArray::new(6, 0.5, PatchElement::default(), PhaseShifter::default()),
            UniformLinearArray::new(20, 0.5, PatchElement::default(), PhaseShifter::default()),
        ];
        for arr in &arrays {
            for steer in [-40.0, 0.0, 25.0] {
                let new = arr.half_power_beamwidth_deg(steer);
                let old = reference_beamwidth_deg(arr, steer);
                // The scan overshoots each flank by at most one 0.05°
                // step; bisection lands on the true crossing.
                assert!(
                    (new - old).abs() <= 0.1 + 1e-9,
                    "n={} steer={steer}: bisected {new} vs scanned {old}",
                    arr.elements()
                );
            }
        }
    }

    /// Same discipline as `tests/cache_equivalence.rs`: the batch SoA
    /// kernels must reproduce the scalar reference bit-for-bit across
    /// tapers, quantisation settings, full/remainder lane groups, and
    /// both hemispheres (including far wraps beyond ±180°).
    #[test]
    fn batch_kernels_bit_identical_to_scalar() {
        let arrays = [
            UniformLinearArray::paper_array(),
            UniformLinearArray::paper_array().with_taper(Taper::RaisedCosine { pedestal: 0.3 }),
            UniformLinearArray::new(32, 0.5, PatchElement::default(), PhaseShifter::with_bits(4)),
            UniformLinearArray::new(1, 0.5, PatchElement::default(), PhaseShifter::default()),
        ];
        // Lengths exercising every remainder (0..LANES-1) plus a full
        // sweep-sized batch.
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 101] {
            let thetas: Vec<f64> = (0..len)
                .map(|k| -250.0 + convert::usize_to_f64(k) * 5.3)
                .collect();
            for arr in &arrays {
                for steer in [-61.3, 0.0, 45.0] {
                    let sv = arr.steering_vector(steer);
                    let af_batch = sv.array_factor_batch(&thetas);
                    let g_batch = sv.gain_dbi_batch(&thetas);
                    assert_eq!(af_batch.len(), len);
                    for ((&th, af), g) in thetas.iter().zip(&af_batch).zip(&g_batch) {
                        let af_ref = reference_array_factor(arr, steer, th);
                        assert_eq!(af.re.to_bits(), af_ref.re.to_bits(), "steer={steer} th={th}");
                        assert_eq!(af.im.to_bits(), af_ref.im.to_bits(), "steer={steer} th={th}");
                        assert_eq!(
                            g.to_bits(),
                            reference_gain_dbi(arr, steer, th).to_bits(),
                            "steer={steer} th={th}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn steered_array_batch_matches_scalar_queries() {
        let mut sa = SteeredArray::paper_array(90.0);
        sa.steer_to(117.0);
        let bearings: Vec<f64> = (0..97).map(|k| -190.0 + convert::usize_to_f64(k) * 4.1).collect();
        let batch = sa.gain_dbi_batch(&bearings);
        for (&b, g) in bearings.iter().zip(&batch) {
            assert_eq!(g.to_bits(), sa.gain_dbi(b).to_bits(), "bearing={b}");
        }
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn batch_length_mismatch_rejected() {
        let sv = UniformLinearArray::paper_array().steering_vector(0.0);
        let mut out = [0.0; 3];
        sv.gain_dbi_batch_into(&[1.0, 2.0], &mut out);
    }

    #[test]
    #[should_panic(expected = "capped at")]
    fn oversized_array_rejected() {
        UniformLinearArray::new(
            MAX_ELEMENTS + 1,
            0.5,
            PatchElement::default(),
            PhaseShifter::default(),
        );
    }

    #[test]
    fn broadside_peak_gain() {
        let arr = UniformLinearArray::paper_array();
        let peak = arr.peak_gain_dbi(0.0);
        // 10·log10(10) + 5 dBi element = 15 dBi.
        assert!((peak - 15.0).abs() < 0.3, "peak={peak}");
    }

    #[test]
    fn af_is_unity_at_steered_angle_without_quantisation() {
        // A 16-bit shifter is effectively continuous.
        let arr = UniformLinearArray::new(
            8,
            0.5,
            PatchElement::default(),
            PhaseShifter::with_bits(16),
        );
        for steer in [-40.0, 0.0, 25.0] {
            let af = arr.array_factor(steer, steer).abs();
            assert!((af - 1.0).abs() < 1e-3, "steer={steer} af={af}");
        }
    }

    #[test]
    fn af_bounded_by_one() {
        let arr = UniformLinearArray::paper_array();
        for steer in [-30.0, 0.0, 45.0] {
            let mut t = -90.0;
            while t <= 90.0 {
                assert!(arr.array_factor(steer, t).abs() <= 1.0 + 1e-9);
                t += 1.0;
            }
        }
    }

    #[test]
    fn steering_moves_the_peak() {
        let arr = UniformLinearArray::paper_array();
        for steer in [-30.0, -10.0, 20.0, 40.0] {
            // The gain at the steered angle must be within a dB of the best
            // gain anywhere (beam squint/quantisation allow small offsets).
            let at_steer = arr.gain_dbi(steer, steer);
            let mut best = f64::NEG_INFINITY;
            let mut t = -89.0;
            while t < 90.0 {
                best = best.max(arr.gain_dbi(steer, t));
                t += 0.1;
            }
            assert!(best - at_steer < 1.0, "steer={steer}");
        }
    }

    #[test]
    fn sidelobes_are_down() {
        let arr = UniformLinearArray::paper_array();
        let peak = arr.gain_dbi(0.0, 0.0);
        // First ULA sidelobe is ≈13 dB down; far angles much more.
        assert!(peak - arr.gain_dbi(0.0, 30.0) > 10.0);
        assert!(peak - arr.gain_dbi(0.0, 60.0) > 10.0);
    }

    #[test]
    fn back_hemisphere_floored() {
        let arr = UniformLinearArray::paper_array();
        let g = arr.gain_dbi(0.0, 150.0);
        assert_eq!(g, PatchElement::default().back_lobe_dbi);
    }

    #[test]
    fn beamwidth_shrinks_with_elements() {
        let small = UniformLinearArray::new(
            6,
            0.5,
            PatchElement::default(),
            PhaseShifter::default(),
        );
        let large = UniformLinearArray::new(
            20,
            0.5,
            PatchElement::default(),
            PhaseShifter::default(),
        );
        assert!(large.half_power_beamwidth_deg(0.0) < small.half_power_beamwidth_deg(0.0));
    }

    #[test]
    fn steered_array_absolute_bearings() {
        let mut sa = SteeredArray::paper_array(90.0);
        assert_eq!(sa.steering_deg(), 90.0);
        let applied = sa.steer_to(110.0);
        assert!((applied - 110.0).abs() < 1e-9);
        // Peak gain toward the steered absolute bearing.
        let g_at = sa.gain_dbi(110.0);
        let g_off = sa.gain_dbi(60.0);
        assert!(g_at > g_off + 10.0);
    }

    #[test]
    fn steer_clamps_to_scan_range() {
        let mut sa = SteeredArray::paper_array(90.0);
        let applied = sa.steer_to(200.0);
        assert!((applied - 160.0).abs() < 1e-9, "applied={applied}");
        assert!(sa.can_steer_to(45.0));
        assert!(!sa.can_steer_to(170.1));
        assert!(!sa.can_steer_to(-90.0));
    }

    #[test]
    fn quantisation_costs_little_gain() {
        let coarse = UniformLinearArray::new(
            10,
            0.5,
            PatchElement::default(),
            PhaseShifter::with_bits(4),
        );
        let fine = UniformLinearArray::new(
            10,
            0.5,
            PatchElement::default(),
            PhaseShifter::with_bits(16),
        );
        // 4-bit control loses well under 1 dB at a steered angle.
        let loss = fine.peak_gain_dbi(33.0) - coarse.peak_gain_dbi(33.0);
        assert!(loss < 1.0, "loss={loss}");
        assert!(loss > -0.5);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_array_rejected() {
        UniformLinearArray::new(0, 0.5, PatchElement::default(), PhaseShifter::default());
    }

    #[test]
    fn steering_latency_is_sub_microsecond() {
        const { assert!(STEERING_LATENCY_S < 1e-6) };
    }

    #[test]
    fn taper_lowers_sidelobes_at_a_gain_cost() {
        let uniform = UniformLinearArray::paper_array();
        let tapered = UniformLinearArray::paper_array()
            .with_taper(Taper::RaisedCosine { pedestal: 0.3 });

        // Peak gain: tapering costs some (taper efficiency < 1)...
        let loss = uniform.peak_gain_dbi(0.0) - tapered.peak_gain_dbi(0.0);
        assert!((0.3..3.0).contains(&loss), "taper loss {loss} dB");

        // ...and buys sidelobe suppression. Find each pattern's worst
        // sidelobe outside the main beam.
        let worst_sidelobe = |arr: &UniformLinearArray, null_beyond: f64| {
            let peak = arr.gain_dbi(0.0, 0.0);
            let mut worst = f64::NEG_INFINITY;
            let mut t = null_beyond;
            while t <= 89.0 {
                worst = worst.max(arr.gain_dbi(0.0, t) - peak);
                t += 0.2;
            }
            worst
        };
        let u = worst_sidelobe(&uniform, 12.0);
        let t = worst_sidelobe(&tapered, 18.0);
        assert!(t < u - 5.0, "uniform {u} dB vs tapered {t} dB");
    }

    #[test]
    fn tapered_beam_is_wider() {
        let uniform = UniformLinearArray::paper_array();
        let tapered = UniformLinearArray::paper_array()
            .with_taper(Taper::RaisedCosine { pedestal: 0.3 });
        assert!(
            tapered.half_power_beamwidth_deg(0.0) > uniform.half_power_beamwidth_deg(0.0)
        );
    }
}
