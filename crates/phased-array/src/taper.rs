//! Amplitude tapers.
//!
//! A uniformly fed ULA has −13 dB first sidelobes; during the alignment
//! sweep those sidelobes are what let a strong echo masquerade at the
//! wrong angle. Tapering the element amplitudes trades a little peak
//! gain and beamwidth for much lower sidelobes. The trade-off is
//! quantified in the `ablation_array` bench.

/// An amplitude taper across the array aperture.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum Taper {
    /// All elements fed equally: max gain, −13 dB sidelobes.
    #[default]
    Uniform,
    /// Raised cosine on a pedestal `p ∈ [0,1]`: weight =
    /// `p + (1−p)·cos²(π·(i − c)/n)` with `c` the aperture centre.
    /// `p = 1` degenerates to uniform; `p ≈ 0.3` gives ~−25 dB sidelobes.
    RaisedCosine {
        /// Pedestal height `p ∈ [0,1]`.
        pedestal: f64,
    },
    /// Binomial weights: no sidelobes at all, at a heavy beamwidth and
    /// gain cost. Mostly a reference point.
    Binomial,
}


impl Taper {
    /// The (unnormalised) feed weight of element `i` in an `n`-element
    /// array. Weights are positive; the array factor normalises by their
    /// sum.
    ///
    /// # Panics
    /// Panics if `i >= n`, `n == 0`, or a pedestal is outside `[0, 1]`.
    pub fn weight(&self, i: usize, n: usize) -> f64 {
        assert!(n >= 1, "empty array"); // lint: documented contract — arrays are validated non-empty at construction
        assert!(i < n, "element index out of range"); // lint: documented contract — all callers iterate i in 0..n
        match *self {
            Taper::Uniform => 1.0,
            Taper::RaisedCosine { pedestal } => {
                assert!( // lint: pedestal is a construction-time constant, not runtime input
                    (0.0..=1.0).contains(&pedestal),
                    "pedestal must be in [0,1]"
                );
                if n == 1 {
                    return 1.0;
                }
                let x = i as f64 / (n - 1) as f64 - 0.5; // -0.5 .. 0.5
                pedestal + (1.0 - pedestal) * (std::f64::consts::PI * x).cos().powi(2)
            }
            Taper::Binomial => {
                // C(n-1, i), normalised later. Computed iteratively to
                // stay exact for the small n arrays use.
                let mut c = 1.0f64;
                for k in 0..i {
                    c = c * (n - 1 - k) as f64 / (k + 1) as f64;
                }
                c
            }
        }
    }

    /// Taper efficiency: the peak-gain factor relative to uniform
    /// feeding, `(Σw)² / (n·Σw²)`, in `(0, 1]`.
    pub fn efficiency(&self, n: usize) -> f64 {
        let w: Vec<f64> = (0..n).map(|i| self.weight(i, n)).collect();
        let sum: f64 = w.iter().sum();
        let sum_sq: f64 = w.iter().map(|v| v * v).sum();
        sum * sum / (n as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_are_one() {
        for i in 0..10 {
            assert_eq!(Taper::Uniform.weight(i, 10), 1.0);
        }
        assert!((Taper::Uniform.efficiency(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn raised_cosine_is_symmetric_and_peaked_at_centre() {
        let t = Taper::RaisedCosine { pedestal: 0.3 };
        let n = 10;
        for i in 0..n {
            let a = t.weight(i, n);
            let b = t.weight(n - 1 - i, n);
            assert!((a - b).abs() < 1e-12, "symmetry at {i}");
            assert!(a > 0.0);
        }
        // Edges sit at the pedestal; the centre pair is the largest.
        assert!((t.weight(0, n) - 0.3).abs() < 1e-12);
        assert!(t.weight(4, n) > t.weight(1, n));
    }

    #[test]
    fn full_pedestal_is_uniform() {
        let t = Taper::RaisedCosine { pedestal: 1.0 };
        for i in 0..8 {
            assert!((t.weight(i, 8) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn binomial_matches_pascal() {
        let t = Taper::Binomial;
        let expect = [1.0, 4.0, 6.0, 4.0, 1.0];
        for (i, &e) in expect.iter().enumerate() {
            assert!((t.weight(i, 5) - e).abs() < 1e-9);
        }
    }

    #[test]
    fn efficiency_ordering() {
        let n = 10;
        let u = Taper::Uniform.efficiency(n);
        let rc = Taper::RaisedCosine { pedestal: 0.3 }.efficiency(n);
        let b = Taper::Binomial.efficiency(n);
        assert!(u > rc && rc > b, "u={u} rc={rc} b={b}");
        assert!(b > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds_checked() {
        Taper::Uniform.weight(5, 5);
    }

    #[test]
    #[should_panic(expected = "pedestal")]
    fn pedestal_bounds_checked() {
        Taper::RaisedCosine { pedestal: 1.5 }.weight(0, 4);
    }
}
