//! Phased-array antenna model.
//!
//! The paper's reflector and radios each use a patch phased array "half the
//! size of a credit card": N patch elements on PCB, each behind a Hittite
//! HMC-933 analog phase shifter, steered electronically in sub-microseconds
//! (§4, §6). This crate models that stack:
//!
//! * [`element`] — the single patch element's broad cosine pattern.
//! * [`shifter`] — phase shifters, including control-DAC quantisation.
//! * [`array`](mod@array) — the uniform linear array: array factor, steering, gain.
//! * [`codebook`] — finite beam books for sweep protocols.
//! * [`table`] — pre-steered pattern tables at codebook resolution.
//!
//! A 10-element λ/2 array reproduces the paper's ~10° half-power beamwidth.
//! The model is planar (azimuth only), matching the paper's evaluation
//! geometry, and returns gains in dBi toward absolute room bearings so the
//! propagation layer can weight multipath components.

pub mod array;
pub mod codebook;
pub mod element;
pub mod shifter;
pub mod table;
pub mod taper;

pub use array::{SteeredArray, SteeringVector, UniformLinearArray, BATCH_LANES, MAX_ELEMENTS};
pub use codebook::Codebook;
pub use table::{GainPage, PatternTable};
pub use element::PatchElement;
pub use shifter::PhaseShifter;
pub use taper::Taper;

/// Number of elements that yields the paper's ~10° beamwidth at λ/2
/// spacing (half-power beamwidth ≈ 101.5°/N for a broadside ULA).
pub const PAPER_ARRAY_ELEMENTS: usize = 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_array_has_ten_degree_beam() {
        let arr = UniformLinearArray::paper_array();
        let bw = arr.half_power_beamwidth_deg(0.0);
        assert!(
            (bw - 10.0).abs() < 2.0,
            "expected ≈10° beamwidth, got {bw}"
        );
    }
}
