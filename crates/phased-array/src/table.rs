//! Codebook-resolution pattern tables.
//!
//! A beam sweep steers the same array to every codebook entry, over and
//! over (each alignment round, each probe). [`PatternTable`] performs
//! the steer — and therefore the DAC quantisation — once per beam up
//! front, storing a fully-steered [`SteeredArray`] copy per entry. Each
//! stored copy carries its own cached steering vector, so a sweep's
//! inner loop is pure gain lookups.

use crate::array::SteeredArray;
use crate::codebook::Codebook;

/// Pre-steered array states, one per codebook beam.
#[derive(Debug, Clone)]
pub struct PatternTable {
    beams: Vec<f64>,
    arrays: Vec<SteeredArray>,
}

impl PatternTable {
    /// Steers a copy of `base` to every beam of `codebook` (commands are
    /// clamped exactly as [`SteeredArray::steer_to`] clamps them) and
    /// stores the results. `base` itself is not modified.
    pub fn new(base: &SteeredArray, codebook: &Codebook) -> Self {
        let mut beams = Vec::with_capacity(codebook.len());
        let mut arrays = Vec::with_capacity(codebook.len());
        for &beam in codebook.beams() {
            let mut steered = *base;
            steered.steer_to(beam);
            beams.push(beam);
            arrays.push(steered);
        }
        PatternTable { beams, arrays }
    }

    /// Number of entries (== codebook length).
    pub fn len(&self) -> usize {
        self.beams.len()
    }

    /// True if the codebook was empty.
    pub fn is_empty(&self) -> bool {
        self.beams.is_empty()
    }

    /// Iterates `(commanded beam, pre-steered array)` in codebook order.
    /// The commanded beam is the codebook value, which may differ from
    /// the applied steering if the command was clamped.
    pub fn entries(&self) -> impl Iterator<Item = (f64, &SteeredArray)> {
        self.beams.iter().copied().zip(self.arrays.iter())
    }

    /// The commanded beam of entry `i` (codebook value, degrees).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn beam_deg(&self, i: usize) -> f64 {
        self.beams[i]
    }

    /// The pre-steered array of entry `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn array(&self, i: usize) -> &SteeredArray {
        &self.arrays[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_sequential_steering() {
        let base = SteeredArray::paper_array(90.0);
        let codebook = Codebook::sweep(40.0, 140.0, 10.0);
        let table = PatternTable::new(&base, &codebook);
        assert_eq!(table.len(), codebook.len());
        let mut live = base;
        for (beam, steered) in table.entries() {
            live.steer_to(beam);
            assert_eq!(live.steering_deg(), steered.steering_deg());
            for theta in [40.0, 77.0, 90.0, 120.5, 140.0, 200.0] {
                assert_eq!(live.gain_dbi(theta), steered.gain_dbi(theta), "beam={beam}");
            }
        }
    }

    #[test]
    fn base_is_untouched_and_commands_recorded_unclamped() {
        let base = SteeredArray::paper_array(90.0);
        // 200° is outside the scan range and gets clamped when applied.
        let codebook = Codebook::from_beams(vec![200.0]);
        let table = PatternTable::new(&base, &codebook);
        assert_eq!(base.steering_deg(), 90.0);
        assert_eq!(table.beam_deg(0), 200.0);
        assert!((table.array(0).steering_deg() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn single_beam_table() {
        let base = SteeredArray::paper_array(0.0);
        let table = PatternTable::new(&base, &Codebook::from_beams(vec![10.0]));
        assert!(!table.is_empty());
        assert_eq!(table.entries().count(), 1);
    }
}
