//! Codebook-resolution pattern tables.
//!
//! A beam sweep steers the same array to every codebook entry, over and
//! over (each alignment round, each probe). [`PatternTable`] performs
//! the steer — and therefore the DAC quantisation — once per beam up
//! front, storing a fully-steered [`SteeredArray`] copy per entry. Each
//! stored copy carries its own cached steering vector, so a sweep's
//! inner loop is pure gain lookups.

use crate::array::SteeredArray;
use crate::codebook::Codebook;

/// Pre-steered array states, one per codebook beam.
#[derive(Debug, Clone)]
pub struct PatternTable {
    beams: Vec<f64>,
    arrays: Vec<SteeredArray>,
}

impl PatternTable {
    /// Steers a copy of `base` to every beam of `codebook` (commands are
    /// clamped exactly as [`SteeredArray::steer_to`] clamps them) and
    /// stores the results. `base` itself is not modified.
    pub fn new(base: &SteeredArray, codebook: &Codebook) -> Self {
        let mut beams = Vec::with_capacity(codebook.len());
        let mut arrays = Vec::with_capacity(codebook.len());
        for &beam in codebook.beams() {
            let mut steered = *base;
            steered.steer_to(beam);
            beams.push(beam);
            arrays.push(steered);
        }
        PatternTable { beams, arrays }
    }

    /// Number of entries (== codebook length).
    pub fn len(&self) -> usize {
        self.beams.len()
    }

    /// True if the codebook was empty.
    pub fn is_empty(&self) -> bool {
        self.beams.is_empty()
    }

    /// Iterates `(commanded beam, pre-steered array)` in codebook order.
    /// The commanded beam is the codebook value, which may differ from
    /// the applied steering if the command was clamped.
    pub fn entries(&self) -> impl Iterator<Item = (f64, &SteeredArray)> {
        self.beams.iter().copied().zip(self.arrays.iter())
    }

    /// The commanded beam of entry `i` (codebook value, degrees).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn beam_deg(&self, i: usize) -> f64 {
        self.beams[i]
    }

    /// The pre-steered array of entry `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn array(&self, i: usize) -> &SteeredArray {
        &self.arrays[i]
    }

    /// Evaluates every entry's gain toward every bearing in one pass:
    /// row `i` of the returned page is entry `i`'s
    /// [`SteeredArray::gain_dbi_batch`] over `bearings_deg`. A sweep
    /// computes its observation-angle page once and the inner loop
    /// becomes a slice lookup.
    pub fn fill_page(&self, bearings_deg: &[f64]) -> GainPage {
        let cols = bearings_deg.len();
        let mut data = vec![0.0; self.arrays.len() * cols];
        if cols > 0 {
            for (arr, row) in self.arrays.iter().zip(data.chunks_mut(cols)) {
                arr.gain_dbi_batch_into(bearings_deg, row);
            }
        }
        GainPage { rows: self.arrays.len(), cols, data }
    }
}

/// A dense `entries × bearings` gain matrix produced by
/// [`PatternTable::fill_page`]: one row per codebook entry, one column
/// per observation bearing, values in dBi. Bit-identical to calling
/// [`SteeredArray::gain_dbi`] per cell.
#[derive(Debug, Clone)]
pub struct GainPage {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl GainPage {
    /// Number of codebook entries (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of observation bearings (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `i`'s gains over the page's bearings, in dBi.
    ///
    /// # Panics
    /// Panics if `i >= rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "GainPage row {i} out of range ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_sequential_steering() {
        let base = SteeredArray::paper_array(90.0);
        let codebook = Codebook::sweep(40.0, 140.0, 10.0);
        let table = PatternTable::new(&base, &codebook);
        assert_eq!(table.len(), codebook.len());
        let mut live = base;
        for (beam, steered) in table.entries() {
            live.steer_to(beam);
            assert_eq!(live.steering_deg(), steered.steering_deg());
            for theta in [40.0, 77.0, 90.0, 120.5, 140.0, 200.0] {
                assert_eq!(live.gain_dbi(theta), steered.gain_dbi(theta), "beam={beam}");
            }
        }
    }

    #[test]
    fn base_is_untouched_and_commands_recorded_unclamped() {
        let base = SteeredArray::paper_array(90.0);
        // 200° is outside the scan range and gets clamped when applied.
        let codebook = Codebook::from_beams(vec![200.0]);
        let table = PatternTable::new(&base, &codebook);
        assert_eq!(base.steering_deg(), 90.0);
        assert_eq!(table.beam_deg(0), 200.0);
        assert!((table.array(0).steering_deg() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn single_beam_table() {
        let base = SteeredArray::paper_array(0.0);
        let table = PatternTable::new(&base, &Codebook::from_beams(vec![10.0]));
        assert!(!table.is_empty());
        assert_eq!(table.entries().count(), 1);
    }

    #[test]
    fn page_is_bit_identical_to_per_cell_queries() {
        let base = SteeredArray::paper_array(90.0);
        let codebook = Codebook::sweep(40.0, 140.0, 7.0);
        let table = PatternTable::new(&base, &codebook);
        // 13 bearings: exercises a remainder lane group inside the
        // batch kernel as well as back-hemisphere wraps.
        let bearings: Vec<f64> = (0..13).map(|k| -40.0 + f64::from(k) * 23.5).collect();
        let page = table.fill_page(&bearings);
        assert_eq!(page.rows(), table.len());
        assert_eq!(page.cols(), bearings.len());
        for (i, (_, arr)) in table.entries().enumerate() {
            let row = page.row(i);
            for (&b, g) in bearings.iter().zip(row) {
                assert_eq!(g.to_bits(), arr.gain_dbi(b).to_bits(), "entry={i} bearing={b}");
            }
        }
    }

    #[test]
    fn empty_page_dimensions() {
        let base = SteeredArray::paper_array(0.0);
        let table = PatternTable::new(&base, &Codebook::from_beams(vec![10.0, 20.0]));
        let page = table.fill_page(&[]);
        assert_eq!(page.rows(), 2);
        assert_eq!(page.cols(), 0);
        assert!(page.row(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_row_out_of_range_rejected() {
        let base = SteeredArray::paper_array(0.0);
        let table = PatternTable::new(&base, &Codebook::from_beams(vec![10.0]));
        table.fill_page(&[0.0]).row(1);
    }
}
