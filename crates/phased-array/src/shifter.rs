//! Analog phase shifters and their control quantisation.
//!
//! The prototype drives Hittite HMC-933 *analog* phase shifters from an
//! AD7228 8-bit DAC (§5). The shifter itself is continuous; the resolution
//! of the phase actually applied is set by the DAC word. This module
//! models that chain: a requested phase is quantised to the nearest
//! control step and suffers the part's insertion loss.

use movr_math::wrap_deg_360;

/// A phase shifter with quantised control.
#[derive(Debug, Clone, Copy)]
pub struct PhaseShifter {
    /// Control resolution in bits over the full 0–360° range.
    pub control_bits: u32,
    /// Insertion loss of the part, dB (HMC-933 class: a few dB).
    pub insertion_loss_db: f64,
}

impl Default for PhaseShifter {
    fn default() -> Self {
        PhaseShifter {
            control_bits: 8,
            insertion_loss_db: 4.0,
        }
    }
}

impl PhaseShifter {
    /// Creates a shifter with the given control resolution.
    ///
    /// # Panics
    /// Panics if `control_bits` is 0 or greater than 16.
    pub fn with_bits(control_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&control_bits),
            "control_bits must be in 1..=16"
        );
        PhaseShifter {
            control_bits,
            ..Default::default()
        }
    }

    /// The smallest phase step the control DAC can command, degrees.
    pub fn step_deg(&self) -> f64 {
        360.0 / movr_math::convert::u64_to_f64(1u64 << self.control_bits)
    }

    /// Quantises a requested phase (degrees) to the nearest control step,
    /// returned in `[0, 360)`.
    pub fn apply(&self, requested_deg: f64) -> f64 {
        let wrapped = wrap_deg_360(requested_deg);
        let step = self.step_deg();
        let idx = (wrapped / step).round();
        wrap_deg_360(idx * step)
    }

    /// Worst-case quantisation error, degrees.
    pub fn max_error_deg(&self) -> f64 {
        self.step_deg() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_step() {
        let s = PhaseShifter::default();
        assert!((s.step_deg() - 1.40625).abs() < 1e-9);
        assert!((s.max_error_deg() - 0.703125).abs() < 1e-9);
    }

    #[test]
    fn apply_quantises_to_grid() {
        let s = PhaseShifter::with_bits(2); // 90° steps
        assert_eq!(s.apply(0.0), 0.0);
        assert_eq!(s.apply(44.0), 0.0);
        assert_eq!(s.apply(46.0), 90.0);
        assert_eq!(s.apply(100.0), 90.0);
        assert_eq!(s.apply(181.0), 180.0);
    }

    #[test]
    fn apply_wraps_negative_and_large() {
        let s = PhaseShifter::with_bits(2);
        assert_eq!(s.apply(-90.0), 270.0);
        assert_eq!(s.apply(359.0), 0.0);
        assert_eq!(s.apply(720.0 + 91.0), 90.0);
    }

    #[test]
    fn error_bounded_by_half_step() {
        let s = PhaseShifter::default();
        for i in 0..1000 {
            let req = i as f64 * 0.361;
            let got = s.apply(req);
            let err = (movr_math::wrap_deg_180(got - req)).abs();
            assert!(err <= s.max_error_deg() + 1e-9, "req={req} got={got}");
        }
    }

    #[test]
    fn more_bits_less_error() {
        assert!(PhaseShifter::with_bits(8).max_error_deg() < PhaseShifter::with_bits(4).max_error_deg());
    }

    #[test]
    #[should_panic(expected = "control_bits")]
    fn zero_bits_rejected() {
        PhaseShifter::with_bits(0);
    }
}
