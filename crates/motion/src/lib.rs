//! VR player motion and tracking.
//!
//! The paper's blockage scenarios (§3) are *motions*: the player raises a
//! hand, turns her head, or another person walks between the AP and the
//! headset. This crate turns those into simulator inputs:
//!
//! * [`pose`] — the player's pose and the obstacles her own body
//!   contributes. Blockage by the player's head is *emergent*: the
//!   headset receiver sits on the front of the head, so turning away from
//!   the AP swings the head into the line of sight.
//! * [`trace`] — scripted and stochastic motion traces producing a
//!   [`WorldState`] (player pose + third-party obstacles) at any instant.
//! * [`tracking`] — a lighthouse-style 6-DoF tracker: the VR system knows
//!   the headset pose to millimetres at high rate, which is exactly the
//!   side information §6 proposes for fast beam re-alignment.

pub mod pose;
pub mod trace;
pub mod tracking;

pub use pose::{PlayerState, WorldState, FACE_OFFSET_M};
pub use trace::{
    HandRaise, HeadTurn, MotionTrace, Playlist, RandomWalk, StaticScene, WalkerCrossing,
};
pub use tracking::{LighthouseTracker, TrackedPose};
