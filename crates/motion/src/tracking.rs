//! The VR tracking system.
//!
//! PC-based VR systems continuously track the headset's 6-DoF pose (the
//! Vive's lighthouse system resolves millimetres at hundreds of hertz).
//! The paper leans on this twice: the headset "tracks the SNR and can
//! trigger a new measurement" (§4.1), and §6 proposes using the tracked
//! pose to re-aim beams without a full sweep. [`LighthouseTracker`]
//! produces those pose estimates with realistic noise and update rate.

use crate::pose::PlayerState;
use movr_math::{SimRng, Vec2};

/// A tracked pose estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedPose {
    /// Estimated head-centre position, metres.
    pub center: Vec2,
    /// Estimated yaw, degrees.
    pub yaw_deg: f64,
}

impl TrackedPose {
    /// Estimated receiver position (same face offset as the true pose).
    pub fn receiver_position(&self) -> Vec2 {
        self.center + Vec2::unit_from_deg(self.yaw_deg) * crate::pose::FACE_OFFSET_M
    }
}

/// A lighthouse-class outside-in tracker.
#[derive(Debug, Clone)]
pub struct LighthouseTracker {
    /// RMS position noise per axis, metres.
    pub position_noise_m: f64,
    /// RMS yaw noise, degrees.
    pub yaw_noise_deg: f64,
    /// Pose update rate, Hz.
    pub update_rate_hz: f64,
    rng: SimRng,
    last_update_s: f64,
    last_pose: Option<TrackedPose>,
}

impl LighthouseTracker {
    /// A Vive-class tracker: ~1.5 mm, ~0.3°, 250 Hz.
    pub fn new(seed: u64) -> Self {
        LighthouseTracker {
            position_noise_m: 0.0015,
            yaw_noise_deg: 0.3,
            update_rate_hz: 250.0,
            rng: SimRng::seed_from_u64(seed),
            last_update_s: f64::NEG_INFINITY,
            last_pose: None,
        }
    }

    /// An ideal tracker (zero noise, infinite rate) for oracles.
    pub fn ideal() -> Self {
        LighthouseTracker {
            position_noise_m: 0.0,
            yaw_noise_deg: 0.0,
            update_rate_hz: f64::INFINITY,
            rng: SimRng::seed_from_u64(0),
            last_update_s: f64::NEG_INFINITY,
            last_pose: None,
        }
    }

    /// The full mutable state — `(rng_state, last_update_s, last_pose)` —
    /// for checkpointing. `last_update_s` starts at `-inf` before the
    /// first tick; the f64 is preserved bit-exactly by the snapshot codec.
    pub fn state(&self) -> ([u64; 4], f64, Option<TrackedPose>) {
        (self.rng.state(), self.last_update_s, self.last_pose)
    }

    /// Restores the mutable state captured by [`LighthouseTracker::state`].
    /// Noise parameters and update rate are config, not state — they come
    /// from the constructor, and only the estimation progress is restored.
    pub fn restore_state(&mut self, state: ([u64; 4], f64, Option<TrackedPose>)) {
        let (rng, last_update_s, last_pose) = state;
        self.rng = SimRng::from_state(rng);
        self.last_update_s = last_update_s;
        self.last_pose = last_pose;
    }

    /// Observes the true pose at time `t_s` and returns the tracker's
    /// estimate. Between update ticks the previous estimate is returned
    /// (the tracker has its own cadence, independent of the caller's).
    pub fn track(&mut self, t_s: f64, truth: &PlayerState) -> TrackedPose {
        let period = 1.0 / self.update_rate_hz;
        if let Some(last) = self.last_pose {
            if t_s - self.last_update_s < period {
                return last;
            }
        }
        let pose = TrackedPose {
            center: truth.center
                + Vec2::new(
                    self.rng.normal(0.0, self.position_noise_m),
                    self.rng.normal(0.0, self.position_noise_m),
                ),
            yaw_deg: truth.yaw_deg + self.rng.normal(0.0, self.yaw_noise_deg),
        };
        self.last_update_s = t_s;
        self.last_pose = Some(pose);
        pose
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> PlayerState {
        PlayerState::standing(Vec2::new(2.0, 3.0), 45.0)
    }

    #[test]
    fn ideal_tracker_is_exact() {
        let mut t = LighthouseTracker::ideal();
        let p = t.track(0.0, &truth());
        assert_eq!(p.center, truth().center);
        assert_eq!(p.yaw_deg, 45.0);
        assert_eq!(p.receiver_position(), truth().receiver_position());
    }

    #[test]
    fn noise_is_millimetric() {
        let mut t = LighthouseTracker::new(3);
        let mut worst = 0.0f64;
        for i in 0..1000 {
            let p = t.track(i as f64 * 0.004, &truth());
            worst = worst.max(p.center.distance(truth().center));
        }
        assert!(worst > 0.0, "noise must exist");
        assert!(worst < 0.01, "worst error {worst} m should stay sub-cm");
    }

    #[test]
    fn holds_estimate_between_ticks() {
        let mut t = LighthouseTracker::new(4);
        let a = t.track(0.0, &truth());
        // 1 ms later — under the 4 ms period — same estimate.
        let b = t.track(0.001, &truth());
        assert_eq!(a, b);
        // 5 ms later — new estimate.
        let c = t.track(0.005, &truth());
        assert_ne!(a, c);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = LighthouseTracker::new(9);
        let mut b = LighthouseTracker::new(9);
        for i in 0..20 {
            let t = i as f64 * 0.01;
            assert_eq!(a.track(t, &truth()), b.track(t, &truth()));
        }
    }

    #[test]
    fn yaw_noise_bounded() {
        let mut t = LighthouseTracker::new(5);
        for i in 0..500 {
            let p = t.track(i as f64 * 0.004, &truth());
            assert!((p.yaw_deg - 45.0).abs() < 2.0);
        }
    }
}
