//! Motion traces: the world as a function of time.
//!
//! A [`MotionTrace`] maps an instant (seconds from scenario start) to a
//! [`WorldState`]. Scripted traces reproduce the paper's §3 experiments
//! (hand raise, head turn, person walking through); [`RandomWalk`]
//! generates long, seeded sessions for end-to-end evaluation.

use crate::pose::{PlayerState, WorldState};
use movr_math::convert::{f64_to_usize, usize_to_f64};
use movr_math::{SimRng, Vec2};
use movr_rfsim::{BodyPart, Obstacle, Room};

/// The world as a function of time.
pub trait MotionTrace {
    /// Scenario length, seconds.
    fn duration_s(&self) -> f64;

    /// The world at `t_s` seconds. Implementations clamp `t_s` into
    /// `[0, duration]`.
    fn world_at(&self, t_s: f64) -> WorldState;
}

/// A frozen scene: nothing moves.
#[derive(Debug, Clone)]
pub struct StaticScene {
    /// The frozen world.
    pub world: WorldState,
    /// How long the scene lasts, seconds.
    pub duration_s: f64,
}

impl StaticScene {
    /// A static player-only scene.
    pub fn new(player: PlayerState, duration_s: f64) -> Self {
        StaticScene {
            world: WorldState::player_only(player),
            duration_s,
        }
    }
}

impl MotionTrace for StaticScene {
    fn duration_s(&self) -> f64 {
        self.duration_s
    }
    fn world_at(&self, _t_s: f64) -> WorldState {
        self.world.clone()
    }
}

/// The player turns her head at a constant rate — §3's "user rotated her
/// head" scenario. Typical fast human head rotation is ~200–300°/s.
#[derive(Debug, Clone)]
pub struct HeadTurn {
    /// Player state before the turn starts.
    pub base: PlayerState,
    /// When the turn starts, seconds.
    pub start_s: f64,
    /// Turn rate, degrees per second (sign = direction).
    pub rate_dps: f64,
    /// Total rotation, degrees.
    pub total_deg: f64,
    /// Scenario length, seconds.
    pub duration_s: f64,
}

impl MotionTrace for HeadTurn {
    fn duration_s(&self) -> f64 {
        self.duration_s
    }
    fn world_at(&self, t_s: f64) -> WorldState {
        let t = t_s.clamp(0.0, self.duration_s);
        let elapsed = (t - self.start_s).max(0.0);
        let turned = (elapsed * self.rate_dps.abs()).min(self.total_deg.abs());
        let yaw = self.base.yaw_deg + turned * self.rate_dps.signum() * self.total_deg.signum();
        WorldState::player_only(self.base.with_yaw(yaw))
    }
}

/// The player raises a hand in front of the headset for an interval —
/// §3's "user raised her hand" scenario.
#[derive(Debug, Clone)]
pub struct HandRaise {
    /// Player state throughout (only the hand flag changes).
    pub base: PlayerState,
    /// Hand goes up at this time, seconds.
    pub raise_at_s: f64,
    /// Hand comes down at this time, seconds.
    pub lower_at_s: f64,
    /// Scenario length, seconds.
    pub duration_s: f64,
}

impl MotionTrace for HandRaise {
    fn duration_s(&self) -> f64 {
        self.duration_s
    }
    fn world_at(&self, t_s: f64) -> WorldState {
        let t = t_s.clamp(0.0, self.duration_s);
        let raised = t >= self.raise_at_s && t < self.lower_at_s;
        WorldState::player_only(self.base.with_hand(raised))
    }
}

/// Another person walks in a straight line at constant speed — §3's
/// "another person walks between headset and transmitter" scenario.
#[derive(Debug, Clone)]
pub struct WalkerCrossing {
    /// The (stationary) tracked player.
    pub player: PlayerState,
    /// Walker start point, metres.
    pub from: Vec2,
    /// Walker end point, metres.
    pub to: Vec2,
    /// Walk begins at this time, seconds.
    pub start_s: f64,
    /// Walking speed, m/s (typical indoor: ~1.2 m/s).
    pub speed_mps: f64,
    /// Scenario length, seconds.
    pub duration_s: f64,
}

impl WalkerCrossing {
    /// Where the walker is at `t_s` (before the start: at `from`; after
    /// arrival: at `to`).
    pub fn walker_position(&self, t_s: f64) -> Vec2 {
        let total = self.from.distance(self.to);
        if total < 1e-9 {
            return self.from;
        }
        let walked = ((t_s - self.start_s).max(0.0) * self.speed_mps).min(total);
        self.from.lerp(self.to, walked / total)
    }
}

impl MotionTrace for WalkerCrossing {
    fn duration_s(&self) -> f64 {
        self.duration_s
    }
    fn world_at(&self, t_s: f64) -> WorldState {
        let t = t_s.clamp(0.0, self.duration_s);
        let mut w = WorldState::player_only(self.player);
        w.others
            .push(Obstacle::new(BodyPart::Torso, self.walker_position(t)));
        w
    }
}

/// Sequential composition of traces: plays each segment for its own
/// duration, then the next — "stand, then turn, then raise the hand" as
/// one scenario. Segment-local time starts at zero for each segment.
pub struct Playlist {
    segments: Vec<Box<dyn MotionTrace>>,
    duration_s: f64,
}

impl Playlist {
    /// Builds a playlist from trace segments.
    ///
    /// # Panics
    /// Panics on an empty list.
    pub fn new(segments: Vec<Box<dyn MotionTrace>>) -> Self {
        assert!(!segments.is_empty(), "playlist needs at least one segment");
        let duration_s = segments.iter().map(|s| s.duration_s()).sum();
        Playlist {
            segments,
            duration_s,
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if the playlist has no segments (never: construction rejects
    /// it; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl MotionTrace for Playlist {
    fn duration_s(&self) -> f64 {
        self.duration_s
    }
    fn world_at(&self, t_s: f64) -> WorldState {
        let mut t = t_s.clamp(0.0, self.duration_s);
        for seg in &self.segments {
            if t <= seg.duration_s() {
                return seg.world_at(t);
            }
            t -= seg.duration_s();
        }
        // Numerical tail: the final segment's last instant.
        let last = self.segments.last().expect("non-empty");
        last.world_at(last.duration_s())
    }
}

/// A seeded random session: the player wanders between waypoints, turns
/// toward her walking direction, and occasionally raises a hand. Sampled
/// deterministically: the full trajectory is computed at construction at
/// a fixed tick, and `world_at` interpolates.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    tick_s: f64,
    duration_s: f64,
    states: Vec<PlayerState>,
}

impl RandomWalk {
    /// Builds a random session inside `room` (with 0.5 m wall margins).
    /// The player looks where she walks.
    ///
    /// # Panics
    /// Panics on non-positive duration.
    pub fn new(room: &Room, seed: u64, duration_s: f64) -> Self {
        Self::build(room, seed, duration_s, None)
    }

    /// Like [`RandomWalk::new`], but the player's gaze stays on `focus`
    /// (the game scene / AP side of the room) while she strafes between
    /// waypoints — the posture of an actual VR player.
    pub fn with_gaze(room: &Room, seed: u64, duration_s: f64, focus: Vec2) -> Self {
        Self::build(room, seed, duration_s, Some(focus))
    }

    fn build(room: &Room, seed: u64, duration_s: f64, gaze_focus: Option<Vec2>) -> Self {
        assert!(duration_s > 0.0, "duration must be positive");
        let mut rng = SimRng::seed_from_u64(seed);
        let tick_s = 0.02; // 50 Hz trajectory sampling
        let margin = 0.5;
        let speed = 0.8; // m/s wandering speed
        let n = f64_to_usize((duration_s / tick_s).ceil()) + 1;

        let mut states = Vec::with_capacity(n);
        let mut pos = Vec2::new(
            rng.uniform(margin, room.width() - margin),
            rng.uniform(margin, room.depth() - margin),
        );
        let mut waypoint = pos;
        let mut yaw = rng.uniform(-180.0, 180.0);
        let mut hand_until = 0.0f64;

        for i in 0..n {
            let t = usize_to_f64(i) * tick_s;
            if pos.distance(waypoint) < 0.1 {
                waypoint = Vec2::new(
                    rng.uniform(margin, room.width() - margin),
                    rng.uniform(margin, room.depth() - margin),
                );
            }
            let to_wp = waypoint - pos;
            // Gaze: at the focus if one is set, else along the walk.
            let target_yaw = match gaze_focus {
                Some(f) => pos.bearing_deg_to(f),
                None => to_wp.angle_deg(),
            };
            // Turn toward the target at a bounded rate, then walk (strafe
            // toward the waypoint when the gaze is pinned on a focus).
            let dyaw = movr_math::wrap_deg_180(target_yaw - yaw);
            let max_turn = 180.0 * tick_s; // 180°/s
            yaw += dyaw.clamp(-max_turn, max_turn);
            let step_dir = to_wp.normalized();
            pos += step_dir * (speed * tick_s).min(to_wp.norm());
            pos = room.clamp_inside(pos, margin);

            // Occasionally raise the hand for ~0.8 s (controller gesture).
            if t >= hand_until && rng.chance(0.004) {
                hand_until = t + 0.8;
            }
            states.push(PlayerState {
                center: pos,
                yaw_deg: movr_math::wrap_deg_180(yaw),
                hand_raised: t < hand_until,
            });
        }
        RandomWalk {
            tick_s,
            duration_s,
            states,
        }
    }
}

impl MotionTrace for RandomWalk {
    fn duration_s(&self) -> f64 {
        self.duration_s
    }
    fn world_at(&self, t_s: f64) -> WorldState {
        let t = t_s.clamp(0.0, self.duration_s);
        let idx = f64_to_usize(t / self.tick_s).min(self.states.len() - 1);
        WorldState::player_only(self.states[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PlayerState {
        PlayerState::standing(Vec2::new(2.5, 2.5), 0.0)
    }

    #[test]
    fn static_scene_never_changes() {
        let s = StaticScene::new(base(), 10.0);
        assert_eq!(s.world_at(0.0), s.world_at(7.3));
        assert_eq!(s.duration_s(), 10.0);
    }

    #[test]
    fn head_turn_progresses_and_saturates() {
        let t = HeadTurn {
            base: base(),
            start_s: 1.0,
            rate_dps: 200.0,
            total_deg: 180.0,
            duration_s: 5.0,
        };
        assert_eq!(t.world_at(0.5).player.yaw_deg, 0.0);
        let mid = t.world_at(1.45).player.yaw_deg;
        assert!((mid - 90.0).abs() < 1.0, "mid={mid}");
        // After 1.9 s of turning the 180° budget is exhausted.
        assert_eq!(t.world_at(3.0).player.yaw_deg, 180.0);
        assert_eq!(t.world_at(100.0).player.yaw_deg, 180.0);
    }

    #[test]
    fn head_turn_negative_direction() {
        let t = HeadTurn {
            base: base(),
            start_s: 0.0,
            rate_dps: -100.0,
            total_deg: 90.0,
            duration_s: 5.0,
        };
        let yaw = t.world_at(0.5).player.yaw_deg;
        assert!((yaw - (-50.0)).abs() < 1.0, "yaw={yaw}");
    }

    #[test]
    fn hand_raise_window() {
        let t = HandRaise {
            base: base(),
            raise_at_s: 2.0,
            lower_at_s: 3.0,
            duration_s: 5.0,
        };
        assert!(!t.world_at(1.9).player.hand_raised);
        assert!(t.world_at(2.0).player.hand_raised);
        assert!(t.world_at(2.9).player.hand_raised);
        assert!(!t.world_at(3.0).player.hand_raised);
    }

    #[test]
    fn walker_crosses_at_constant_speed() {
        let w = WalkerCrossing {
            player: base(),
            from: Vec2::new(0.5, 0.5),
            to: Vec2::new(4.5, 0.5),
            start_s: 1.0,
            speed_mps: 1.0,
            duration_s: 10.0,
        };
        assert_eq!(w.walker_position(0.0), Vec2::new(0.5, 0.5));
        assert_eq!(w.walker_position(1.0), Vec2::new(0.5, 0.5));
        let p = w.walker_position(3.0);
        assert!((p.x - 2.5).abs() < 1e-9);
        // Arrived and stays.
        assert_eq!(w.walker_position(100.0), Vec2::new(4.5, 0.5));
        // The world carries the torso obstacle.
        let world = w.world_at(3.0);
        assert_eq!(world.others.len(), 1);
        assert_eq!(world.others[0].kind, BodyPart::Torso);
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let room = Room::paper_office();
        let a = RandomWalk::new(&room, 5, 10.0);
        let b = RandomWalk::new(&room, 5, 10.0);
        let c = RandomWalk::new(&room, 6, 10.0);
        for t in [0.0, 2.5, 7.9] {
            assert_eq!(a.world_at(t), b.world_at(t));
        }
        assert_ne!(
            a.world_at(5.0).player.center,
            c.world_at(5.0).player.center
        );
    }

    #[test]
    fn random_walk_stays_in_room() {
        let room = Room::paper_office();
        let w = RandomWalk::new(&room, 42, 30.0);
        let mut t = 0.0;
        while t < 30.0 {
            let p = w.world_at(t).player.center;
            assert!(room.contains(p), "t={t} p={p}");
            t += 0.1;
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let room = Room::paper_office();
        let w = RandomWalk::new(&room, 7, 20.0);
        let start = w.world_at(0.0).player.center;
        let moved = (0..200)
            .map(|i| w.world_at(i as f64 * 0.1).player.center.distance(start))
            .fold(0.0, f64::max);
        assert!(moved > 1.0, "player should wander: max displacement {moved}");
    }

    #[test]
    fn playlist_sequences_segments() {
        let p = Playlist::new(vec![
            Box::new(StaticScene::new(base(), 2.0)),
            Box::new(HandRaise {
                base: base(),
                raise_at_s: 0.0,
                lower_at_s: 10.0,
                duration_s: 3.0,
            }),
            Box::new(HeadTurn {
                base: base(),
                start_s: 0.0,
                rate_dps: 90.0,
                total_deg: 90.0,
                duration_s: 2.0,
            }),
        ]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.duration_s(), 7.0);
        // Segment 1: standing, hands down.
        assert!(!p.world_at(1.0).player.hand_raised);
        // Segment 2 (t = 2.0 .. 5.0): hand raised throughout.
        assert!(p.world_at(3.5).player.hand_raised);
        // Segment 3 (t = 5.0 .. 7.0): turning; at t = 6 the local time is
        // 1 s → 90°/s × 1 s past base yaw 0.
        let yaw = p.world_at(6.0).player.yaw_deg;
        assert!((yaw - 90.0).abs() < 1.0, "yaw={yaw}");
        // Past the end: clamped to the final segment's last pose.
        let end = p.world_at(99.0).player.yaw_deg;
        assert!((end - 90.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_playlist_rejected() {
        Playlist::new(vec![]);
    }

    #[test]
    fn gaze_walk_faces_the_focus() {
        let room = Room::paper_office();
        let focus = Vec2::new(0.5, 2.5);
        let w = RandomWalk::with_gaze(&room, 11, 20.0, focus);
        // After the initial turn-in, the player's yaw tracks the bearing
        // to the focus within a few degrees.
        let mut t = 2.0;
        while t < 20.0 {
            let p = w.world_at(t).player;
            let want = p.center.bearing_deg_to(focus);
            let err = movr_math::wrap_deg_180(p.yaw_deg - want).abs();
            assert!(err < 10.0, "t={t} yaw err {err}");
            t += 0.5;
        }
    }

    #[test]
    fn out_of_range_times_clamp() {
        let t = HandRaise {
            base: base(),
            raise_at_s: 0.0,
            lower_at_s: 10.0,
            duration_s: 5.0,
        };
        // Negative and past-the-end times are clamped, not panics.
        let _ = t.world_at(-3.0);
        let _ = t.world_at(99.0);
    }
}
