//! Player pose and body-derived obstacles.
//!
//! A player is a head-sized obstacle at `center` facing `yaw_deg`. The
//! headset's mmWave receiver is mounted on the *front* of the head at
//! [`FACE_OFFSET_M`]; its antenna boresight follows the gaze. The
//! geometry makes the paper's head-turn blockage automatic: with the AP in
//! front, the receiver has a clear view past the head; turned away, the
//! AP→receiver segment passes through the head disc.

use movr_math::Vec2;
use movr_rfsim::{BodyPart, Obstacle};

/// Distance from head centre to the headset's mmWave receiver, metres.
/// Slightly beyond the head's diffraction taper (1.6 × 0.10 m radius) so a
/// player squarely facing the AP is *not* self-blocked.
pub const FACE_OFFSET_M: f64 = 0.18;

/// Distance from head centre to a raised hand, metres (arm half-extended
/// in front of the face, as in the paper's hand-blockage experiment).
pub const HAND_OFFSET_M: f64 = 0.35;

/// The player's instantaneous pose and hand state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlayerState {
    /// Head centre in the room, metres.
    pub center: Vec2,
    /// Gaze direction, degrees CCW from +x.
    pub yaw_deg: f64,
    /// True when the hand is raised in front of the face.
    pub hand_raised: bool,
}

impl PlayerState {
    /// A player standing at `center`, facing `yaw_deg`, hands down.
    pub fn standing(center: Vec2, yaw_deg: f64) -> Self {
        PlayerState {
            center,
            yaw_deg,
            hand_raised: false,
        }
    }

    /// Unit gaze direction.
    pub fn facing(&self) -> Vec2 {
        Vec2::unit_from_deg(self.yaw_deg)
    }

    /// Where the headset's mmWave receiver sits.
    pub fn receiver_position(&self) -> Vec2 {
        self.center + self.facing() * FACE_OFFSET_M
    }

    /// The receiver array's mounting boresight (absolute bearing): it
    /// looks where the player looks.
    pub fn receiver_boresight_deg(&self) -> f64 {
        self.yaw_deg
    }

    /// Where the raised hand sits (meaningful only when `hand_raised`).
    pub fn hand_position(&self) -> Vec2 {
        self.center + self.facing() * HAND_OFFSET_M
    }

    /// The obstacles this player's own body contributes.
    pub fn own_obstacles(&self) -> Vec<Obstacle> {
        let mut v = vec![Obstacle::new(BodyPart::Head, self.center)];
        if self.hand_raised {
            v.push(Obstacle::new(BodyPart::Hand, self.hand_position()));
        }
        v
    }

    /// A copy rotated to a new yaw.
    pub fn with_yaw(&self, yaw_deg: f64) -> PlayerState {
        PlayerState { yaw_deg, ..*self }
    }

    /// A copy with the hand raised or lowered.
    pub fn with_hand(&self, raised: bool) -> PlayerState {
        PlayerState {
            hand_raised: raised,
            ..*self
        }
    }
}

/// Everything that moves in a scenario at one instant: the player plus
/// third-party obstacles (other people, repositioned furniture).
#[derive(Debug, Clone, PartialEq)]
pub struct WorldState {
    /// The tracked player (headset pose plus own-body obstacles).
    pub player: PlayerState,
    /// Third-party obstacles not attached to the player.
    pub others: Vec<Obstacle>,
}

impl WorldState {
    /// A world containing only the player.
    pub fn player_only(player: PlayerState) -> Self {
        WorldState {
            player,
            others: Vec::new(),
        }
    }

    /// The complete obstacle set for the propagation layer.
    pub fn all_obstacles(&self) -> Vec<Obstacle> {
        let mut v = self.player.own_obstacles();
        v.extend(self.others.iter().copied());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_rfsim::geometry::Segment;

    #[test]
    fn receiver_sits_in_front_of_face() {
        let p = PlayerState::standing(Vec2::new(2.0, 2.0), 0.0);
        let r = p.receiver_position();
        assert!((r.x - 2.18).abs() < 1e-12);
        assert!((r.y - 2.0).abs() < 1e-12);
        assert_eq!(p.receiver_boresight_deg(), 0.0);
    }

    #[test]
    fn facing_ap_is_not_self_blocked() {
        // AP due east; player facing east: the AP→receiver segment must
        // clear the player's own head entirely.
        let p = PlayerState::standing(Vec2::new(2.0, 2.0), 0.0);
        let ap = Vec2::new(4.5, 2.0);
        let seg = Segment::new(ap, p.receiver_position());
        let head = &p.own_obstacles()[0];
        assert_eq!(head.shadow_loss_on(&seg), 0.0);
    }

    #[test]
    fn facing_away_is_fully_self_blocked() {
        let p = PlayerState::standing(Vec2::new(2.0, 2.0), 180.0);
        let ap = Vec2::new(4.5, 2.0);
        let seg = Segment::new(ap, p.receiver_position());
        let head = &p.own_obstacles()[0];
        assert_eq!(
            head.shadow_loss_on(&seg),
            BodyPart::Head.shadow_loss_db()
        );
    }

    #[test]
    fn deep_turn_partially_blocks() {
        // A 90° glance still clears the head's diffraction taper; by 135°
        // the AP→receiver segment grazes the head and takes partial loss.
        let clear = PlayerState::standing(Vec2::new(2.0, 2.0), 90.0);
        let deep = PlayerState::standing(Vec2::new(2.0, 2.0), 135.0);
        let ap = Vec2::new(4.5, 2.0);
        let clear_loss =
            clear.own_obstacles()[0].shadow_loss_on(&Segment::new(ap, clear.receiver_position()));
        let deep_loss =
            deep.own_obstacles()[0].shadow_loss_on(&Segment::new(ap, deep.receiver_position()));
        assert_eq!(clear_loss, 0.0);
        assert!(deep_loss > 0.0, "deep turn should graze the path");
        assert!(deep_loss < BodyPart::Head.shadow_loss_db());
    }

    #[test]
    fn raised_hand_blocks_frontal_path() {
        let p = PlayerState::standing(Vec2::new(2.0, 2.0), 0.0).with_hand(true);
        let ap = Vec2::new(4.5, 2.0);
        let seg = Segment::new(ap, p.receiver_position());
        let obstacles = p.own_obstacles();
        assert_eq!(obstacles.len(), 2);
        let total: f64 = obstacles.iter().map(|o| o.shadow_loss_on(&seg)).sum();
        assert!(
            total >= BodyPart::Hand.shadow_loss_db(),
            "raised hand must block: {total}"
        );
    }

    #[test]
    fn hand_down_contributes_nothing() {
        let p = PlayerState::standing(Vec2::new(2.0, 2.0), 0.0);
        assert_eq!(p.own_obstacles().len(), 1);
    }

    #[test]
    fn world_combines_obstacles() {
        let p = PlayerState::standing(Vec2::new(1.0, 1.0), 0.0).with_hand(true);
        let mut w = WorldState::player_only(p);
        w.others
            .push(Obstacle::new(BodyPart::Torso, Vec2::new(3.0, 3.0)));
        let all = w.all_obstacles();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].kind, BodyPart::Torso);
    }

    #[test]
    fn with_yaw_preserves_everything_else() {
        let p = PlayerState::standing(Vec2::new(1.0, 2.0), 10.0)
            .with_hand(true)
            .with_yaw(99.0);
        assert_eq!(p.yaw_deg, 99.0);
        assert_eq!(p.center, Vec2::new(1.0, 2.0));
        assert!(p.hand_raised);
    }
}
