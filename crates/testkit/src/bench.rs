//! Micro-benchmark timing: warmup + sampled iterations, median/p95
//! statistics, JSON-line output.
//!
//! This replaces `criterion` for the workspace's perf benches. It is a
//! measurement harness, not a statistics engine: each bench runs a warmup,
//! auto-calibrates how many iterations fit in one sample window, times a
//! fixed number of samples with a monotonic [`Timer`], and reports
//! per-iteration nanoseconds. One JSON object per line keeps the output
//! trivially machine-parsable (`cargo bench … | grep '^{'`).

use std::hint::black_box;
use std::time::Instant;

/// A monotonic stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Timer::start`] (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        let nanos = self.start.elapsed().as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Timer::start`].
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// How much measuring to do per bench.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Un-timed iterations before measurement (cache/branch warmup).
    pub warmup_iters: u64,
    /// Timed samples; statistics are computed across these.
    pub samples: usize,
    /// Target wall-clock per sample, used to calibrate iterations/sample.
    pub target_sample_ns: u64,
    /// Hard cap on iterations per sample (guards against ~zero-cost bodies).
    pub max_iters_per_sample: u64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            warmup_iters: 10,
            samples: 30,
            target_sample_ns: 10_000_000, // 10 ms
            max_iters_per_sample: 100_000,
        }
    }
}

impl BenchOptions {
    /// A fast smoke-test profile (used by `--quick`): fewer samples and a
    /// much smaller per-sample budget, so a full suite runs in seconds.
    pub fn quick() -> Self {
        BenchOptions {
            warmup_iters: 2,
            samples: 8,
            target_sample_ns: 1_000_000, // 1 ms
            max_iters_per_sample: 2_000,
        }
    }

    /// Picks the profile from CLI args: `--quick` selects
    /// [`BenchOptions::quick`], anything else the default. Unrecognised
    /// flags (e.g. the `--bench` cargo appends) are ignored.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        if args.into_iter().any(|a| a == "--quick") {
            BenchOptions::quick()
        } else {
            BenchOptions::default()
        }
    }
}

/// Measured result of one bench.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Bench name as printed.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds per iteration.
    pub p95_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
}

impl BenchReport {
    fn from_samples(name: &str, mut per_iter_ns: Vec<f64>, iters_per_sample: u64) -> Self {
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = per_iter_ns.len();
        let mean = per_iter_ns.iter().sum::<f64>() / n as f64;
        BenchReport {
            name: name.to_string(),
            median_ns: quantile_sorted(&per_iter_ns, 0.5),
            p95_ns: quantile_sorted(&per_iter_ns, 0.95),
            mean_ns: mean,
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[n - 1],
            samples: n,
            iters_per_sample,
        }
    }

    /// One self-contained JSON object, no trailing newline.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"median_ns\":{:.1},\"p95_ns\":{:.1},\"mean_ns\":{:.1},\
             \"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            escape_json(&self.name),
            self.median_ns,
            self.p95_ns,
            self.mean_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters_per_sample
        )
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Linear-interpolated quantile of an ascending slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Times `f` (no per-iteration setup): warmup, calibrate, then
/// `opts.samples` timed samples. Returns per-iteration statistics.
pub fn bench_fn<R>(name: &str, opts: &BenchOptions, mut f: impl FnMut() -> R) -> BenchReport {
    for _ in 0..opts.warmup_iters {
        black_box(f());
    }
    // Calibrate: how long does one iteration take, roughly?
    let t = Timer::start();
    black_box(f());
    let once_ns = t.elapsed_ns().max(1);
    let iters = (opts.target_sample_ns / once_ns).clamp(1, opts.max_iters_per_sample);

    let mut per_iter_ns = Vec::with_capacity(opts.samples);
    for _ in 0..opts.samples {
        let t = Timer::start();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter_ns.push(t.elapsed_ns() as f64 / iters as f64);
    }
    BenchReport::from_samples(name, per_iter_ns, iters)
}

/// Times `routine` with a fresh un-timed `setup()` value per iteration
/// (the replacement for criterion's `iter_batched`): only the routine is
/// inside the timed region, so mutation-heavy bodies measure honestly.
pub fn bench_with_setup<T, R>(
    name: &str,
    opts: &BenchOptions,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T) -> R,
) -> BenchReport {
    for _ in 0..opts.warmup_iters {
        black_box(routine(setup()));
    }
    let input = setup();
    let t = Timer::start();
    black_box(routine(input));
    let once_ns = t.elapsed_ns().max(1);
    let iters = (opts.target_sample_ns / once_ns).clamp(1, opts.max_iters_per_sample);

    let mut per_iter_ns = Vec::with_capacity(opts.samples);
    for _ in 0..opts.samples {
        let mut timed_ns = 0u64;
        for _ in 0..iters {
            let input = setup();
            let t = Timer::start();
            black_box(routine(input));
            timed_ns += t.elapsed_ns();
        }
        per_iter_ns.push(timed_ns as f64 / iters as f64);
    }
    BenchReport::from_samples(name, per_iter_ns, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotonic() {
        let t = Timer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
        assert!(t.elapsed_secs_f64() >= 0.0);
    }

    #[test]
    fn bench_fn_produces_sane_statistics() {
        let opts = BenchOptions {
            warmup_iters: 2,
            samples: 10,
            target_sample_ns: 100_000,
            max_iters_per_sample: 1_000,
        };
        let report = bench_fn("sum_1k", &opts, || (0..1000u64).sum::<u64>());
        assert_eq!(report.samples, 10);
        assert!(report.iters_per_sample >= 1);
        assert!(report.min_ns > 0.0);
        assert!(report.min_ns <= report.median_ns);
        assert!(report.median_ns <= report.p95_ns + 1e-9);
        assert!(report.p95_ns <= report.max_ns + 1e-9);
    }

    #[test]
    fn bench_with_setup_excludes_setup_cost() {
        let opts = BenchOptions {
            warmup_iters: 1,
            samples: 6,
            target_sample_ns: 50_000,
            max_iters_per_sample: 200,
        };
        let report = bench_with_setup(
            "vec_pop",
            &opts,
            || vec![1u64; 64],
            |mut v| {
                while v.pop().is_some() {}
            },
        );
        assert!(report.median_ns >= 0.0);
        assert_eq!(report.samples, 6);
    }

    #[test]
    fn json_line_is_well_formed() {
        let r = BenchReport {
            name: "a \"quoted\" name".into(),
            median_ns: 12.5,
            p95_ns: 20.0,
            mean_ns: 13.0,
            min_ns: 10.0,
            max_ns: 21.0,
            samples: 30,
            iters_per_sample: 100,
        };
        let line = r.json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.contains("\"median_ns\":12.5"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 4.0);
        assert!((quantile_sorted(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&[7.0], 0.95), 7.0);
    }

    #[test]
    fn options_from_args_picks_quick() {
        let q = BenchOptions::from_args(vec!["--quick".to_string()]);
        assert_eq!(q.samples, BenchOptions::quick().samples);
        let d = BenchOptions::from_args(vec!["--bench".to_string()]);
        assert_eq!(d.samples, BenchOptions::default().samples);
    }
}
