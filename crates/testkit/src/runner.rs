//! The property runner: seeded case generation, discard handling, and
//! greedy shrinking.
//!
//! [`check`] is the engine (returns the failure for inspection);
//! [`for_all`] / [`for_all_with`] are the test-facing wrappers that panic
//! with a reproduction report; the [`crate::property!`] macro wraps a
//! whole `#[test]` around them.

use crate::gen::Gen;
use crate::PropResult;
use movr_math::SimRng;

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// An assertion failed; the message describes which.
    Failed(String),
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Discard,
}

impl PropError {
    /// Builds the `Failed` variant (used by the assertion macros).
    pub fn failed(msg: impl Into<String>) -> Self {
        PropError::Failed(msg.into())
    }
}

/// Runner parameters.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
    /// Base seed; each case derives its inputs from `(seed, case index)`.
    pub seed: u64,
    /// Maximum accepted shrink steps before reporting.
    pub max_shrink_steps: u32,
    /// Abort if discards exceed `cases * max_discard_ratio`.
    pub max_discard_ratio: u32,
}

impl Config {
    /// Default case count, overridable with `MOVR_TESTKIT_CASES`.
    pub fn default_cases() -> u32 {
        std::env::var("MOVR_TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(96)
    }

    /// Default base seed, overridable with `MOVR_TESTKIT_SEED`.
    pub fn default_seed() -> u64 {
        std::env::var("MOVR_TESTKIT_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x4D6F_5652) // "MoVR"
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: Config::default_cases(),
            seed: Config::default_seed(),
            max_shrink_steps: 1024,
            max_discard_ratio: 10,
        }
    }
}

/// Statistics from a passing run.
#[derive(Debug, Clone, Copy)]
pub struct CheckReport {
    /// Cases that ran and passed.
    pub cases: u32,
    /// Inputs rejected by `prop_assume!`.
    pub discards: u32,
}

/// A falsified property, with the original and shrunk counterexamples.
#[derive(Debug, Clone)]
pub struct Failure<V> {
    /// Index of the failing case (0-based).
    pub case: u32,
    /// The generated input that first failed.
    pub original: V,
    /// The simplest failing input greedy shrinking reached.
    pub shrunk: V,
    /// Accepted shrink steps between `original` and `shrunk`.
    pub shrink_steps: u32,
    /// The assertion message at the shrunk input.
    pub message: String,
    /// Base seed of the run (reproduce by fixing `MOVR_TESTKIT_SEED`).
    pub seed: u64,
}

/// Runs `prop` over `cfg.cases` generated inputs; on failure, shrinks
/// greedily and returns the [`Failure`] instead of panicking.
pub fn check<G, F>(cfg: &Config, gen: &G, prop: F) -> Result<CheckReport, Failure<G::Value>>
where
    G: Gen,
    F: Fn(&G::Value) -> PropResult,
{
    let mut discards = 0u32;
    let max_discards = cfg.cases.saturating_mul(cfg.max_discard_ratio);
    let mut passed = 0u32;
    let mut case = 0u32;
    while passed < cfg.cases {
        // Each case draws from its own forked stream so a property that
        // consumes extra randomness cannot shift later cases.
        let mut rng = SimRng::seed_from_u64(cfg.seed).fork(u64::from(case));
        let value = gen.generate(&mut rng);
        case += 1;
        match prop(&value) {
            Ok(()) => passed += 1,
            Err(PropError::Discard) => {
                discards += 1;
                assert!(
                    discards <= max_discards,
                    "property discarded {discards} inputs for {passed} passes; \
                     loosen the generator or the prop_assume! conditions"
                );
            }
            Err(PropError::Failed(message)) => {
                let (shrunk, shrink_steps, message) =
                    shrink_failure(cfg, gen, &prop, value.clone(), message);
                return Err(Failure {
                    case: case - 1,
                    original: value,
                    shrunk,
                    shrink_steps,
                    message,
                    seed: cfg.seed,
                });
            }
        }
    }
    Ok(CheckReport {
        cases: passed,
        discards,
    })
}

/// Greedy descent: repeatedly replace the failing input with the first
/// shrink candidate that still fails, until none does.
fn shrink_failure<G, F>(
    cfg: &Config,
    gen: &G,
    prop: &F,
    mut current: G::Value,
    mut message: String,
) -> (G::Value, u32, String)
where
    G: Gen,
    F: Fn(&G::Value) -> PropResult,
{
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in gen.shrink(&current) {
            if let Err(PropError::Failed(m)) = prop(&cand) {
                current = cand;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps, message)
}

/// Checks `prop` with the default [`Config`], panicking with a shrunk
/// counterexample report on failure.
pub fn for_all<G, F>(name: &str, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> PropResult,
{
    for_all_with(name, &Config::default(), gen, prop);
}

/// [`for_all`] with an explicit [`Config`].
pub fn for_all_with<G, F>(name: &str, cfg: &Config, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> PropResult,
{
    if let Err(f) = check(cfg, gen, prop) {
        panic!(
            "property `{name}` falsified at case {case} (seed {seed}):\n  \
             original: {original:?}\n  \
             shrunk ({steps} steps): {shrunk:?}\n  \
             assertion: {message}\n\
             reproduce with MOVR_TESTKIT_SEED={seed}",
            case = f.case,
            seed = f.seed,
            original = f.original,
            steps = f.shrink_steps,
            shrunk = f.shrunk,
            message = f.message,
        );
    }
}

/// Asserts a condition inside a property body; on failure the case is
/// reported (and shrunk) rather than panicking the whole test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::PropError::failed(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::PropError::failed(format!(
                concat!("assertion failed: ", stringify!($cond), ": {}"),
                format_args!($($fmt)+)
            )));
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::PropError::failed(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::PropError::failed(format!(
                "assertion failed: `{} != {}` (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects inputs that don't satisfy a precondition; the case is redrawn
/// and not counted toward the case target.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::PropError::Discard);
        }
    };
}

/// Declares a property as a `#[test]`.
///
/// ```
/// use movr_testkit::{property, prop_assert, f64_range};
///
/// property! {
///     fn addition_commutes(a in f64_range(-1e3, 1e3), b in f64_range(-1e3, 1e3)) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-12);
///     }
/// }
/// ```
///
/// An optional `cases = N,` prefix overrides the default case count:
///
/// ```
/// use movr_testkit::{property, prop_assert, usize_range};
///
/// property! {
///     cases = 256,
///     fn small_is_small(n in usize_range(0, 9)) {
///         prop_assert!(n < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! property {
    (cases = $cases:expr, $(#[$meta:meta])* fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg = $crate::Config {
                cases: $cases,
                ..$crate::Config::default()
            };
            let gen = ($($gen,)+);
            $crate::for_all_with(stringify!($name), &cfg, &gen, |__case| {
                #[allow(unused_mut)] // lint: macro binds every case arg mut; some bodies never mutate
                let ($(mut $arg,)+) = ::core::clone::Clone::clone(__case);
                $body
                ::core::result::Result::Ok(())
            });
        }
    };
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block) => {
        $crate::property! {
            cases = $crate::Config::default_cases(),
            $(#[$meta])* fn $name($($arg in $gen),+) $body
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::gen::{f64_range, usize_range, vec_of};
    use crate::{check, Config, PropError};

    fn cfg(cases: u32) -> Config {
        Config {
            cases,
            seed: 7,
            ..Config::default()
        }
    }

    #[test]
    fn passing_property_reports_case_count() {
        let report = check(&cfg(64), &(f64_range(0.0, 1.0),), |&(v,)| {
            crate::prop_assert!((0.0..1.0).contains(&v));
            Ok(())
        })
        .expect("property holds");
        assert_eq!(report.cases, 64);
        assert_eq!(report.discards, 0);
    }

    #[test]
    fn failing_property_shrinks_to_the_boundary() {
        // Deliberately false: claims every draw is below 100. Greedy
        // shrinking must walk the counterexample down to (nearly) the
        // boundary value 100 — far below the typical first failure.
        let g = (f64_range(0.0, 10_000.0),);
        let failure = check(&cfg(200), &g, |&(v,)| {
            crate::prop_assert!(v < 100.0, "v={v}");
            Ok(())
        })
        .expect_err("property is false");
        let (orig,) = failure.original;
        let (shrunk,) = failure.shrunk;
        assert!(orig >= 100.0);
        assert!(shrunk >= 100.0, "shrunk value must still fail");
        assert!(
            shrunk <= 110.0,
            "greedy shrinking should approach the boundary, got {shrunk}"
        );
        assert!(shrunk <= orig);
        assert!(failure.shrink_steps > 0 || orig <= 110.0);
        assert!(failure.message.contains("assertion failed"));
    }

    #[test]
    fn shrinking_minimises_vectors() {
        // False whenever the vector contains any element >= 5; the minimal
        // counterexample is a single-element vector.
        let g = (vec_of(usize_range(0, 9), 0, 12),);
        let failure = check(&cfg(200), &g, |(xs,)| {
            crate::prop_assert!(xs.iter().all(|&x| x < 5), "xs={xs:?}");
            Ok(())
        })
        .expect_err("property is false");
        let (shrunk,) = failure.shrunk;
        assert_eq!(shrunk.len(), 1, "shrunk to one offending element: {shrunk:?}");
        assert_eq!(shrunk[0], 5, "offending element shrunk to the boundary");
    }

    #[test]
    fn discards_do_not_count_as_cases() {
        let mut ran = 0u32;
        let counter = std::cell::Cell::new(0u32);
        let report = check(&cfg(32), &(usize_range(0, 9),), |&(v,)| {
            counter.set(counter.get() + 1);
            crate::prop_assume!(v % 2 == 0);
            Ok(())
        })
        .expect("holds");
        ran += report.cases;
        assert_eq!(ran, 32);
        assert!(report.discards > 0, "some odd draws must have been assumed away");
        assert_eq!(counter.get(), report.cases + report.discards);
    }

    #[test]
    fn runaway_discards_panic() {
        let result = std::panic::catch_unwind(|| {
            let _ = check(&cfg(16), &(usize_range(0, 9),), |_| {
                Err(PropError::Discard)
            });
        });
        assert!(result.is_err(), "discarding every input must abort loudly");
    }

    #[test]
    fn same_seed_generates_same_cases() {
        let collect = |seed: u64| {
            let vals = std::cell::RefCell::new(Vec::new());
            let c = Config {
                cases: 16,
                seed,
                ..Config::default()
            };
            let _ = check(&c, &(f64_range(0.0, 1.0),), |&(v,)| {
                vals.borrow_mut().push(v);
                Ok(())
            });
            vals.into_inner()
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    // The macro form itself, exercised as real tests.
    crate::property! {
        fn macro_form_runs(a in f64_range(-1.0, 1.0), b in f64_range(-1.0, 1.0)) {
            crate::prop_assert!((a + b).abs() <= 2.0);
        }
    }

    crate::property! {
        cases = 128,
        fn macro_form_with_cases_and_assume(n in usize_range(0, 100)) {
            crate::prop_assume!(n > 0);
            crate::prop_assert!(n >= 1);
        }
    }
}
