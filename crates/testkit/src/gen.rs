//! Seeded value generators with shrinking.
//!
//! A [`Gen`] produces random values from a [`SimRng`] and, on failure,
//! proposes *simpler* candidate values for greedy shrinking: numbers move
//! toward zero (or the range bound nearest zero), vectors lose elements,
//! enum choices move toward the first variant. Tuples of generators are
//! themselves generators, shrinking one component at a time — that is what
//! multi-argument [`crate::property!`] blocks run on.

use movr_math::{SimRng, Vec2};
use std::fmt::Debug;

/// A deterministic, shrinkable value source.
pub trait Gen {
    /// The value type produced.
    type Value: Clone + Debug;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Proposes strictly-simpler candidates for a failing `value`.
    ///
    /// The runner greedily takes the first candidate that still fails and
    /// recurses; returning an empty vec ends shrinking. Candidates must
    /// stay inside the generator's own domain.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ---------------------------------------------------------------- floats

/// Uniform `f64` in `[lo, hi)`. See [`f64_range`].
#[derive(Debug, Clone, Copy)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[lo, hi)`, shrinking toward the in-range value
/// nearest zero.
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    assert!(lo < hi, "f64_range requires lo < hi, got [{lo}, {hi})");
    F64Range { lo, hi }
}

/// Uniform bearing in `[-180, 180)` degrees.
pub fn angle_deg() -> F64Range {
    f64_range(-180.0, 180.0)
}

impl F64Range {
    /// The in-range point shrinking moves toward.
    fn origin(&self) -> f64 {
        self.lo.max(0.0).min(self.hi.max(self.lo))
    }

    fn contains(&self, v: f64) -> bool {
        v >= self.lo && v < self.hi
    }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut SimRng) -> f64 {
        rng.uniform(self.lo, self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let origin = self.origin();
        let mut out = Vec::new();
        let mut push = |c: f64| {
            if self.contains(c) && c != v && (c - origin).abs() < (v - origin).abs() {
                out.push(c);
            }
        };
        push(origin);
        push(v.trunc());
        push(origin + (v - origin) / 2.0);
        push(origin + (v - origin) * 0.9);
        out
    }
}

// -------------------------------------------------------------- integers

/// Uniform `usize` in `[lo, hi]`. See [`usize_range`].
#[derive(Debug, Clone, Copy)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

/// Uniform `usize` in `[lo, hi]` inclusive, shrinking toward `lo`.
pub fn usize_range(lo: usize, hi: usize) -> UsizeRange {
    assert!(lo <= hi, "usize_range requires lo <= hi, got [{lo}, {hi}]");
    UsizeRange { lo, hi }
}

impl Gen for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut SimRng) -> usize {
        rng.uniform_usize(self.lo, self.hi)
    }

    fn shrink(&self, value: &usize) -> Vec<usize> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let half = self.lo + (v - self.lo) / 2;
            if half != self.lo && half != v {
                out.push(half);
            }
            if v - 1 != self.lo && v - 1 != half {
                out.push(v - 1);
            }
        }
        out
    }
}

/// Uniform `u64` in `[lo, hi]`. See [`u64_range`].
#[derive(Debug, Clone, Copy)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

/// Uniform `u64` in `[lo, hi]` inclusive, shrinking toward `lo`.
pub fn u64_range(lo: u64, hi: u64) -> U64Range {
    assert!(lo <= hi, "u64_range requires lo <= hi, got [{lo}, {hi}]");
    U64Range { lo, hi }
}

impl Gen for U64Range {
    type Value = u64;

    fn generate(&self, rng: &mut SimRng) -> u64 {
        if self.hi - self.lo == u64::MAX {
            return rng.next_u64();
        }
        self.lo + rng.next_u64() % (self.hi - self.lo + 1)
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let half = self.lo + (v - self.lo) / 2;
            if half != self.lo && half != v {
                out.push(half);
            }
            if v - 1 != self.lo && v - 1 != half {
                out.push(v - 1);
            }
        }
        out
    }
}

// -------------------------------------------------------------- geometry

/// Uniform [`Vec2`] in an axis-aligned box. See [`vec2_in`].
#[derive(Debug, Clone, Copy)]
pub struct Vec2In {
    x: F64Range,
    y: F64Range,
}

/// Uniform [`Vec2`] with `x` in `[x_lo, x_hi)` and `y` in `[y_lo, y_hi)`,
/// shrinking one coordinate at a time.
pub fn vec2_in(x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64) -> Vec2In {
    Vec2In {
        x: f64_range(x_lo, x_hi),
        y: f64_range(y_lo, y_hi),
    }
}

impl Gen for Vec2In {
    type Value = Vec2;

    fn generate(&self, rng: &mut SimRng) -> Vec2 {
        Vec2::new(self.x.generate(rng), self.y.generate(rng))
    }

    fn shrink(&self, value: &Vec2) -> Vec<Vec2> {
        let mut out = Vec::new();
        for cx in self.x.shrink(&value.x) {
            out.push(Vec2::new(cx, value.y));
        }
        for cy in self.y.shrink(&value.y) {
            out.push(Vec2::new(value.x, cy));
        }
        out
    }
}

// ------------------------------------------------------ enums / constants

/// Uniform pick from a fixed list. See [`choice`].
#[derive(Debug, Clone)]
pub struct Choice<T> {
    items: Vec<T>,
}

/// Uniform pick from `items` (enum variants, materials, body parts…),
/// shrinking toward earlier entries — order the list simplest-first.
pub fn choice<T: Clone + Debug + PartialEq>(items: Vec<T>) -> Choice<T> {
    assert!(!items.is_empty(), "choice requires a non-empty list");
    Choice { items }
}

impl<T: Clone + Debug + PartialEq> Gen for Choice<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        self.items[rng.uniform_usize(0, self.items.len() - 1)].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        match self.items.iter().position(|x| x == value) {
            Some(i) => self.items[..i].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Always produces the same value; never shrinks. See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T> {
    value: T,
}

/// The constant generator: always `value`.
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just { value }
}

impl<T: Clone + Debug> Gen for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SimRng) -> T {
        self.value.clone()
    }
}

// ---------------------------------------------------------------- vectors

/// Random-length vector of a sub-generator's values. See [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Vector of `elem` values with uniform length in `[min_len, max_len]`.
/// Shrinks first by dropping elements (halving, then one at a time), then
/// by shrinking individual elements.
pub fn vec_of<G: Gen>(elem: G, min_len: usize, max_len: usize) -> VecOf<G> {
    assert!(min_len <= max_len, "vec_of requires min_len <= max_len");
    VecOf {
        elem,
        min_len,
        max_len,
    }
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SimRng) -> Vec<G::Value> {
        let len = rng.uniform_usize(self.min_len, self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // Structural shrinks: shorter vectors first.
        if len > self.min_len {
            let half = self.min_len.max(len / 2);
            if half < len {
                out.push(value[..half].to_vec());
            }
            out.push(value[..len - 1].to_vec());
            // Dropping a prefix can expose failures the suffix causes.
            if len > self.min_len && len > 1 {
                out.push(value[1..].to_vec());
            }
        }
        // Element-wise shrinks, capped so candidate lists stay small.
        for i in 0..len.min(8) {
            for cand in self.elem.shrink(&value[i]) {
                let mut copy = value.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

// ----------------------------------------------------------------- tuples

macro_rules! impl_gen_for_tuple {
    ($($g:ident / $v:ident / $i:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut SimRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut copy = value.clone();
                        copy.$i = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}

impl_gen_for_tuple!(G0 / V0 / 0);
impl_gen_for_tuple!(G0 / V0 / 0, G1 / V1 / 1);
impl_gen_for_tuple!(G0 / V0 / 0, G1 / V1 / 1, G2 / V2 / 2);
impl_gen_for_tuple!(G0 / V0 / 0, G1 / V1 / 1, G2 / V2 / 2, G3 / V3 / 3);
impl_gen_for_tuple!(G0 / V0 / 0, G1 / V1 / 1, G2 / V2 / 2, G3 / V3 / 3, G4 / V4 / 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_range_generates_in_range_and_shrinks_toward_zero() {
        let g = f64_range(-10.0, 10.0);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = g.generate(&mut rng);
            assert!((-10.0..10.0).contains(&v));
        }
        for cand in g.shrink(&7.5) {
            assert!(cand.abs() < 7.5);
            assert!((-10.0..10.0).contains(&cand));
        }
        assert!(g.shrink(&0.0).is_empty());
    }

    #[test]
    fn f64_range_positive_domain_shrinks_toward_lo() {
        let g = f64_range(3.0, 9.0);
        for cand in g.shrink(&8.0) {
            assert!((3.0..8.0).contains(&cand));
        }
        assert!(g.shrink(&3.0).is_empty());
    }

    #[test]
    fn usize_range_shrinks_toward_lo() {
        let g = usize_range(2, 40);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = g.generate(&mut rng);
            assert!((2..=40).contains(&v));
        }
        assert!(g.shrink(&2).is_empty());
        for cand in g.shrink(&17) {
            assert!((2..17).contains(&cand));
        }
    }

    #[test]
    fn choice_is_uniformish_and_shrinks_to_earlier() {
        let g = choice(vec!["a", "b", "c"]);
        let mut rng = SimRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            match g.generate(&mut rng) {
                "a" => counts[0] += 1,
                "b" => counts[1] += 1,
                _ => counts[2] += 1,
            }
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts={counts:?}");
        }
        assert_eq!(g.shrink(&"c"), vec!["a", "b"]);
        assert!(g.shrink(&"a").is_empty());
    }

    #[test]
    fn vec_of_respects_length_and_shrinks_shorter() {
        let g = vec_of(f64_range(0.0, 1.0), 1, 8);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = g.generate(&mut rng);
            assert!((1..=8).contains(&v.len()));
        }
        let v = g.generate(&mut rng);
        for cand in g.shrink(&v) {
            assert!(!cand.is_empty());
        }
        if v.len() > 1 {
            assert!(g.shrink(&v).iter().any(|c| c.len() < v.len()));
        }
    }

    #[test]
    fn tuple_gen_shrinks_one_component_at_a_time() {
        let g = (f64_range(-5.0, 5.0), usize_range(0, 10));
        let value = (4.0, 6usize);
        for (a, b) in g.shrink(&value) {
            let changed_a = a != value.0;
            let changed_b = b != value.1;
            assert!(changed_a ^ changed_b, "exactly one component shrinks");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = (vec2_in(0.0, 5.0, 0.0, 5.0), u64_range(0, 1000));
        let mut r1 = SimRng::seed_from_u64(9);
        let mut r2 = SimRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(g.generate(&mut r1), g.generate(&mut r2));
        }
    }
}
