//! Hermetic, deterministic test toolkit for the MoVR workspace.
//!
//! The tier-1 gate (`cargo build --release && cargo test -q`) must pass
//! with no network access, so this crate supplies — with zero external
//! dependencies — the two things the workspace previously pulled from
//! crates.io:
//!
//! * a **property-based testing harness** ([`for_all`], the [`property!`]
//!   macro, the [`gen`] combinators): seeded case generation on top of
//!   [`movr_math::SimRng`], a configurable case count, and greedy input
//!   shrinking on failure, replacing `proptest`;
//! * a **micro-benchmark runner** ([`bench::bench_fn`], [`bench::Timer`]):
//!   warmup + N timed samples, median/p95 statistics, JSON-line output,
//!   replacing `criterion`.
//!
//! Both are deliberately small: deterministic by construction (every run
//! derives from an explicit seed, overridable via `MOVR_TESTKIT_SEED`),
//! and honest about what they are — a reproducibility harness, not a
//! statistics research project.

#![deny(warnings)]
#![deny(missing_docs)]

pub mod bench;
pub mod gen;
pub mod runner;

pub use bench::{bench_fn, bench_with_setup, BenchOptions, BenchReport, Timer};
pub use gen::{
    angle_deg, choice, f64_range, just, u64_range, usize_range, vec2_in, vec_of, Gen,
};
pub use runner::{check, for_all, for_all_with, CheckReport, Config, Failure, PropError};

/// Outcome of one property-case evaluation: `Ok(())` passes, or the case
/// either failed an assertion or asked to be discarded (`prop_assume!`).
pub type PropResult = Result<(), PropError>;
