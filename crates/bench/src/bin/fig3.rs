//! Figure 3 — *Blockage impact on data rate.*
//!
//! Top panel: SNR for {LOS, LOS blocked by hand, LOS blocked by head,
//! LOS blocked by body, best NLOS}. Bottom panel: the same scenarios
//! through the 802.11ad rate table. Paper anchors: LOS mean ≈ 25 dB and
//! ≈ 7 Gb/s; hand blockage degrades SNR by > 14 dB; the best NLOS beam
//! pair averages ~16 dB below LOS; every blocked/NLOS scenario falls
//! below the VR requirement.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin fig3
//! ```

use movr::baselines::{aligned_direct_snr, opt_nlos};
use movr_bench::{ap_position, figure_header, random_headset_pose};
use movr_math::{SimRng, Summary, Vec2};
use movr_phased_array::Codebook;
use movr_radio::{RadioEndpoint, RateTable, VR_REQUIRED_RATE_MBPS, VR_REQUIRED_SNR_DB};
use movr_rfsim::{BodyPart, Obstacle, Scene};

fn main() {
    figure_header(
        "Figure 3",
        "SNR and data rate: LOS, three blockages, and best NLOS",
    );
    let mut rng = SimRng::seed_from_u64(3);
    let rate = RateTable;
    let runs = 20;

    let labels = [
        "LOS",
        "LOS blocked by hand",
        "LOS blocked by head",
        "LOS blocked by body",
        "NLOS (bare walls)",
        "NLOS (furnished, §5)",
    ];
    let mut snr_stats = vec![Summary::new(); labels.len()];
    let mut rate_stats = vec![Summary::new(); labels.len()];

    for _ in 0..runs {
        let mut scene = Scene::paper_office();
        let mut ap = RadioEndpoint::paper_radio(ap_position(), 20.0);
        let (hs_pos, _) = random_headset_pose(&mut rng);
        let mut hs = RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(ap_position()));

        // The blocker sits on the LOS, slightly toward the headset — the
        // player's own hand/head, or a bystander mid-way.
        let mid = ap_position().lerp(hs_pos, rng.uniform(0.4, 0.7));
        let blockers = [
            None,
            Some(Obstacle::new(BodyPart::Hand, mid)),
            Some(Obstacle::new(BodyPart::Head, mid)),
            Some(Obstacle::new(BodyPart::Torso, mid)),
        ];
        for (i, blocker) in blockers.iter().enumerate() {
            scene.clear_obstacles();
            if let Some(o) = blocker {
                scene.add_obstacle(*o);
            }
            let snr = aligned_direct_snr(&scene, &mut ap, &mut hs);
            snr_stats[i].push(snr);
            rate_stats[i].push(rate.rate_mbps(snr));
        }

        // Best NLOS: "we repeat the measurements for all blocking
        // scenarios" (§3) — exhaustive beam sweep at both ends under each
        // blocker (paper: 1° steps; 2° here keeps the bin fast and is
        // well inside one beamwidth).
        let ap_cb = Codebook::sweep(-50.0, 90.0, 2.0);
        let bore = hs.array().boresight_deg();
        let hs_cb = Codebook::sweep(bore - 50.0, bore + 50.0, 2.0);
        let mut furnished = Scene::furnished_office();
        for kind in [BodyPart::Hand, BodyPart::Head, BodyPart::Torso] {
            scene.clear_obstacles();
            scene.add_obstacle(Obstacle::new(kind, mid));
            let nl = opt_nlos(&scene, &ap, &hs, &ap_cb, &hs_cb, 7.0);
            snr_stats[4].push(nl.snr_db);
            rate_stats[4].push(rate.rate_mbps(nl.snr_db));
            // The paper's actual room had furniture: metal whiteboard and
            // cabinet faces reflect far better than drywall.
            furnished.clear_obstacles();
            furnished.add_obstacle(Obstacle::new(kind, mid));
            let nf = opt_nlos(&furnished, &ap, &hs, &ap_cb, &hs_cb, 7.0);
            snr_stats[5].push(nf.snr_db);
            rate_stats[5].push(rate.rate_mbps(nf.snr_db));
        }
    }

    println!("\n--- top panel: SNR (dB), {runs} placements ---");
    println!(
        "{:<24} {:>8} {:>8} {:>8}   required SNR: {:.0} dB",
        "scenario", "mean", "min", "max", VR_REQUIRED_SNR_DB
    );
    for (label, s) in labels.iter().zip(&snr_stats) {
        println!(
            "{:<24} {:>8.1} {:>8.1} {:>8.1}",
            label,
            s.mean(),
            s.min(),
            s.max()
        );
    }

    println!("\n--- bottom panel: data rate (Gb/s) ---");
    println!(
        "{:<24} {:>8} {:>8} {:>8}   required rate: {:.1} Gb/s",
        "scenario",
        "mean",
        "min",
        "max",
        VR_REQUIRED_RATE_MBPS / 1000.0
    );
    for (label, s) in labels.iter().zip(&rate_stats) {
        println!(
            "{:<24} {:>8.2} {:>8.2} {:>8.2}",
            label,
            s.mean() / 1000.0,
            s.min() / 1000.0,
            s.max() / 1000.0
        );
    }

    let los = snr_stats[0].mean();
    println!("\n--- paper-shape checks ---");
    println!(
        "LOS mean SNR {los:.1} dB (paper ~25); LOS mean rate {:.2} Gb/s (paper ~7)",
        rate_stats[0].mean() / 1000.0
    );
    println!(
        "hand-blockage drop {:.1} dB (paper >14)",
        los - snr_stats[1].mean()
    );
    println!(
        "best-NLOS drop: bare walls {:.1} dB, furnished {:.1} dB (paper ~16 mean)",
        los - snr_stats[4].mean(),
        los - snr_stats[5].mean()
    );
    let all_blocked_fail = (1..6).all(|i| rate_stats[i].mean() < VR_REQUIRED_RATE_MBPS);
    println!(
        "every blocked/NLOS scenario below the VR rate: {}",
        if all_blocked_fail { "yes" } else { "NO" }
    );
    let _ = Vec2::ZERO; // keep Vec2 import obviously used across edits
}
