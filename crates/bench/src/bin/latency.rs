//! §6 (latency) — *does everything fit in the 10 ms display budget?*
//!
//! "The headset updates the display every 10ms. In principle, all
//! components of our design work much faster than this time scale ...
//! Finding the best beam alignment is the most time consuming process."
//!
//! This bin itemises every latency in the design — electronic steering,
//! control-channel commands, the gain-control loop, windowed and full
//! alignment sweeps, and the tracking-assisted §6 realignment — and
//! checks each against the frame budget.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin latency
//! ```

use movr::gain_control::GainControlConfig;
use movr::system::{MovrSystem, SystemConfig};
use movr_bench::figure_header;
use movr_phased_array::array::STEERING_LATENCY_S;
use movr_sim::SimTime;
use movr_vr::{LatencyBudget, VrTrafficModel};

fn main() {
    figure_header("§6 latency", "component latencies vs the 10 ms frame budget");

    let budget = LatencyBudget::default();
    let traffic = VrTrafficModel::vive();
    let sys = MovrSystem::paper_setup(SystemConfig::default());
    let cfg = SystemConfig::default();

    // Gain control: ~ (max_gain / step) sensor reads at the Arduino's ADC
    // rate (~10 µs per read, 3 reads per step).
    let gc = GainControlConfig::default();
    let steps = movr_math::convert::f64_to_u64((53.0 / gc.step_db).ceil());
    let gain_control =
        SimTime::from_nanos(steps * movr_math::convert::usize_to_u64(gc.reads_per_step) * 10_000);

    // Full install-time sweep: 101 × 101 beams.
    let n = 101u64;
    let full_sweep = SimTime::from_nanos(
        n * cfg.beam_command_latency.as_nanos() + n * n * cfg.sweep_dwell.as_nanos(),
    );

    let airtime = traffic.frame_airtime(6756.75).expect("max rate");

    let rows: Vec<(&str, SimTime, bool)> = vec![
        (
            "electronic beam steering",
            SimTime::from_secs_f64(STEERING_LATENCY_S),
            true,
        ),
        ("one control command (BLE)", cfg.beam_command_latency, true),
        ("gain-control loop", gain_control, true),
        (
            "tracking-assisted realignment (§6)",
            sys.tracking_realignment_cost(),
            true,
        ),
        (
            "windowed re-sweep (no tracking)",
            sys.sweep_realignment_cost(),
            false,
        ),
        ("full install-time sweep (101x101)", full_sweep, false),
        ("frame airtime at max MCS", airtime, true),
    ];

    println!(
        "\n{:<36} {:>14} {:>14}",
        "component", "latency", "fits 10 ms?"
    );
    println!("{}", "-".repeat(66));
    let mut all_consistent = true;
    for (label, t, expect_fits) in &rows {
        let fits = *t + budget.processing <= budget.budget;
        all_consistent &= fits == *expect_fits;
        println!("{label:<36} {:>14} {:>14}", format!("{t}"), if fits { "yes" } else { "NO" });
    }

    println!("\n--- paper-shape checks ---");
    println!(
        "steering + control + gain control all fit the frame budget: {}",
        if all_consistent { "as expected" } else { "UNEXPECTED" }
    );
    println!(
        "the only over-budget items are beam *sweeps* — exactly the paper's\n\
         'finding the best beam alignment is the most time consuming process',\n\
         and why §6 proposes leveraging the VR tracking data ({} vs {}).",
        sys.sweep_realignment_cost(),
        sys.tracking_realignment_cost()
    );
}
