//! Ablation — *is the f₂ on/off modulation actually necessary?*
//!
//! The §4.1 protocol works because the reflector modulates its amplifier,
//! shifting the echo to f₁+f₂ where the AP can filter it apart from its
//! own TX→RX leakage. This ablation runs identical alignment sweeps with
//! and without the modulation and compares the angle error.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin ablation_modulation
//! ```

use movr::alignment::{estimate_incidence, AlignmentConfig};
use movr::reflector::MovrReflector;
use movr_bench::{ap_position, figure_header};
use movr_math::{wrap_deg_180, SimRng, Summary, Vec2};
use movr_phased_array::Codebook;
use movr_radio::RadioEndpoint;
use movr_rfsim::Scene;

fn main() {
    figure_header(
        "Ablation: modulation",
        "alignment error with vs without the f2 on/off modulation",
    );
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(ap_position(), 20.0);
    let mut rng = SimRng::seed_from_u64(41);
    let runs = 30u64;

    let mut with = Summary::new();
    let mut without = Summary::new();
    let mut with_ok = 0;
    let mut without_ok = 0;

    for run in 0..runs {
        let pos = Vec2::new(rng.uniform(0.8, 3.5), 4.75);
        let bore = pos.bearing_deg_to(Vec2::new(1.8, 2.2)) + rng.uniform(-10.0, 10.0);
        let reflector = MovrReflector::wall_mounted(pos, bore, 4000 + run);
        let truth = pos.bearing_deg_to(ap.position());
        let truth_ap = ap.position().bearing_deg_to(pos);
        let base = AlignmentConfig {
            ap_codebook: Codebook::sweep(truth_ap - 20.0, truth_ap + 20.0, 1.0),
            reflector_codebook: Codebook::sweep(truth - 20.0, truth + 20.0, 1.0),
            ..Default::default()
        };
        let m = estimate_incidence(&scene, ap, reflector.clone(), &base, &mut rng);
        let u = estimate_incidence(
            &scene,
            ap,
            reflector,
            &AlignmentConfig {
                modulated: false,
                ..base
            },
            &mut rng,
        );
        let em = wrap_deg_180(m.reflector_angle_deg - truth).abs();
        let eu = wrap_deg_180(u.reflector_angle_deg - truth).abs();
        with.push(em);
        without.push(eu);
        if em <= 2.0 {
            with_ok += 1;
        }
        if eu <= 2.0 {
            without_ok += 1;
        }
    }

    println!("\n{:<28} {:>10} {:>10} {:>12}", "variant", "mean err", "max err", "within 2°");
    println!(
        "{:<28} {:>9.2}° {:>9.2}° {:>9}/{runs}",
        "with modulation (§4.1)",
        with.mean(),
        with.max(),
        with_ok
    );
    println!(
        "{:<28} {:>9.2}° {:>9.2}° {:>9}/{runs}",
        "without modulation",
        without.mean(),
        without.max(),
        without_ok
    );

    println!("\n--- conclusion ---");
    println!(
        "Without modulation the AP's self-leakage (~{:.0} dB above the echo)\n\
         dominates the in-band measurement; the argmax degenerates to noise\n\
         and the protocol cannot find the reflector. The modulation is\n\
         load-bearing, not an optimisation.",
        // leakage at -35 dBm vs echo around -75 dBm
        40.0
    );
}
