//! Extension — *around-the-corner coverage in a non-convex room.*
//!
//! In an L-shaped studio, a player in one leg has **no** line of sight to
//! an AP in the other — no beam sweep can fix a wall. A MoVR reflector
//! mounted within sight of both legs relays around the corner: coverage
//! that simply does not exist without it. (Fig. 2's blockage scenarios
//! are transient; a corner is permanent.)
//!
//! ```sh
//! cargo run -p movr-bench --release --bin lshape
//! ```

use movr::reflector::MovrReflector;
use movr::system::{LinkMode, MovrSystem, SystemConfig};
use movr_bench::figure_header;
use movr_math::Vec2;
use movr_motion::{PlayerState, WorldState};
use movr_radio::{RadioEndpoint, RateTable};
use movr_rfsim::{Channel, NoiseModel, Room, Scene};

fn main() {
    figure_header(
        "Extension: L-shaped studio",
        "around-the-corner service via a corner-mounted reflector",
    );

    // AP in the north leg; the east leg is behind the notch corner.
    let scene = Scene::new(
        Room::l_shaped_studio(),
        Channel::new(24.0e9),
        NoiseModel::ieee_802_11ad(),
    );
    let ap = RadioEndpoint::paper_radio(Vec2::new(1.5, 4.5), -70.0);
    let mut sys = MovrSystem::new(scene, ap, SystemConfig::default());
    // South-wall mount that sees both legs, boresight split between the
    // AP direction and the deepest east-leg spots.
    sys.add_reflector(MovrReflector::wall_mounted(Vec2::new(3.0, 0.25), 75.0, 3));

    let rate = RateTable;
    // Players in the east leg, gazing generally south-west (the reflector
    // side — in this room the scene anchor would be placed there too).
    let spots = [
        Vec2::new(3.8, 1.5),
        Vec2::new(4.2, 2.0),
        Vec2::new(4.5, 1.0),
        Vec2::new(4.3, 2.5),
    ];

    println!(
        "\n{:>12} {:>12} {:>12} {:>10} {:>8}",
        "player", "direct SNR", "MoVR SNR", "mode", "VR-ok?"
    );
    println!("{}", "-".repeat(60));
    let mut rescued = 0;
    for pos in spots {
        let yaw = pos.bearing_deg_to(Vec2::new(3.0, 0.25));
        let player = PlayerState::standing(pos, yaw);
        let world = WorldState::player_only(player);
        let direct = sys.evaluate_direct(&world);
        let d = sys.evaluate(&world);
        if rate.supports_vr(d.snr_db) {
            rescued += 1;
        }
        println!(
            "({:>3.1},{:>3.1}) {:>9.1} dB {:>9.1} dB {:>10} {:>8}",
            pos.x,
            pos.y,
            direct,
            d.snr_db,
            match d.mode {
                LinkMode::Direct => "direct",
                LinkMode::Reflector(_) => "reflector",
            },
            if rate.supports_vr(d.snr_db) { "yes" } else { "NO" }
        );
    }

    println!("\n--- conclusion ---");
    println!(
        "The corner leaves every east-leg spot far below VR grade on the\n\
         direct path (outage, or a weak wall bounce at best); the single\n\
         reflector serves {rescued}/{} at VR grade — the holdout sits at the\n\
         mount's scan edge, which a second mount (see the `coverage`\n\
         planner) covers. Programmable reflectors generalise MoVR from\n\
         blockage *mitigation* to coverage *construction*.",
        spots.len()
    );
}
