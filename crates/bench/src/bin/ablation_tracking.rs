//! Ablation — *tracking-assisted realignment (§6) vs sweep-on-degradation.*
//!
//! Runs identical blockage-heavy sessions with the reflector's transmit
//! beam managed two ways: following the VR tracking system continuously
//! (the §6 proposal) vs re-sweeping a ±15° window whenever the SNR
//! degrades. The difference shows up as frame stalls.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin ablation_tracking
//! ```

use movr::session::{run_session, SessionConfig, Strategy};
use movr_bench::figure_header;
use movr_math::Vec2;
use movr_motion::{HandRaise, MotionTrace, PlayerState, RandomWalk, WalkerCrossing};
use movr_rfsim::Room;

fn main() {
    figure_header(
        "Ablation: realignment",
        "frame quality with tracking-assisted vs sweep realignment",
    );

    let base = {
        let center = Vec2::new(4.0, 2.5);
        let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
        PlayerState::standing(center, yaw)
    };
    let room = Room::paper_office();

    let traces: Vec<(&str, Box<dyn MotionTrace>)> = vec![
        (
            "hand raise (2 s)",
            Box::new(HandRaise {
                base,
                raise_at_s: 2.0,
                lower_at_s: 4.0,
                duration_s: 6.0,
            }),
        ),
        (
            "walker crossing",
            Box::new(WalkerCrossing {
                player: base,
                from: Vec2::new(1.5, 0.5),
                to: Vec2::new(1.5, 4.5),
                start_s: 1.0,
                speed_mps: 1.2,
                duration_s: 6.0,
            }),
        ),
        (
            "gaze walk (30 s)",
            Box::new(RandomWalk::with_gaze(&room, 4242, 30.0, Vec2::new(0.5, 2.5))),
        ),
    ];

    println!(
        "\n{:<18} {:<10} {:>8} {:>9} {:>12} {:>12}",
        "trace", "realign", "loss %", "glitches", "stall (ms)", "realigns"
    );
    println!("{}", "-".repeat(76));
    for (name, trace) in &traces {
        for (mode, tracking) in [("tracking", true), ("sweep", false)] {
            let out = run_session(
                trace.as_ref(),
                &SessionConfig::with_strategy(Strategy::Movr { tracking }),
            );
            println!(
                "{:<18} {:<10} {:>8.2} {:>9} {:>12.0} {:>12}",
                name,
                mode,
                out.glitches.loss_rate * 100.0,
                out.glitches.glitch_events,
                out.glitches.longest_stall_ms(90.0),
                out.realignments
            );
        }
    }

    println!(
        "\n--- conclusion ---\n\
         A windowed sweep costs hundreds of milliseconds of stall every time\n\
         the beam must move; riding the tracker costs one control command.\n\
         This is §6's 'leverage the tracking information' argument, measured."
    );
}
