//! Ablation — *array size and phase-control resolution.*
//!
//! The prototype's ~10° beamwidth comes from a 10-element λ/2 array with
//! 8-bit phase control. This ablation sweeps both knobs and reports beam
//! width, peak gain, and the resulting alignment error of the §4.1
//! protocol — showing why the paper's sizing is a sweet spot: fewer
//! elements blur the sweep's peak; many more sharpen it past what a 1°
//! codebook can use.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin ablation_array
//! ```

use movr_bench::figure_header;
use movr_phased_array::{PatchElement, PhaseShifter, UniformLinearArray};

fn main() {
    figure_header(
        "Ablation: array design",
        "beamwidth / gain / quantisation loss vs element count and DAC bits",
    );

    println!("\n--- element count (8-bit phase control) ---");
    println!(
        "{:>9} {:>14} {:>12}",
        "elements", "beamwidth", "peak gain"
    );
    for n in [4usize, 6, 8, 10, 12, 16, 24, 32] {
        let arr = UniformLinearArray::new(
            n,
            0.5,
            PatchElement::default(),
            PhaseShifter::default(),
        );
        println!(
            "{:>9} {:>12.1}° {:>9.1} dBi {}",
            n,
            arr.half_power_beamwidth_deg(0.0),
            arr.peak_gain_dbi(0.0),
            if n == 10 { "  <- paper's prototype" } else { "" }
        );
    }

    println!("\n--- phase-shifter control resolution (10 elements, steered 33°) ---");
    println!("{:>6} {:>12} {:>16}", "bits", "step", "gain loss");
    let reference = UniformLinearArray::new(
        10,
        0.5,
        PatchElement::default(),
        PhaseShifter::with_bits(16),
    )
    .peak_gain_dbi(33.0);
    for bits in [2u32, 3, 4, 5, 6, 8, 10] {
        let arr = UniformLinearArray::new(
            10,
            0.5,
            PatchElement::default(),
            PhaseShifter::with_bits(bits),
        );
        let loss = reference - arr.peak_gain_dbi(33.0);
        println!(
            "{:>6} {:>11.2}° {:>13.2} dB {}",
            bits,
            arr.shifter().step_deg(),
            loss,
            if bits == 8 { "  <- AD7228 DAC" } else { "" }
        );
    }

    println!(
        "\n--- conclusion ---\n\
         Ten λ/2 elements give the paper's ~10° beam at ~15 dBi; the 8-bit\n\
         control DAC costs well under a tenth of a dB, so alignment accuracy\n\
         is set by the sweep resolution and SNR, not by phase quantisation."
    );
}
