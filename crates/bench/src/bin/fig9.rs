//! Figure 9 — *SNR Performance.*
//!
//! 20 runs with random headset placement and orientation. For each run:
//! 1) LOS SNR with no blockage; 2) a bystander blocks the LOS and the
//!    best non-line-of-sight beam pair is found by exhaustive sweep
//!    (Opt. NLOS); 3) MoVR serves the same blocked scenario through the
//!    reflector. The figure is the CDF of SNR improvement relative to LOS.
//!
//! Paper shape: Opt. NLOS loses 17 dB on average (up to 27 dB); MoVR is
//! mostly *above* LOS (the AP→reflector hop is short and amplified) with
//! a worst case around −3 dB, occurring only where the headset is so
//! close to the AP that SNR headroom is large.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin fig9
//! ```

use movr::baselines::opt_nlos;
use movr::system::{MovrSystem, SystemConfig};
use movr_bench::{ap_position, figure_header, print_cdf};
use movr_math::{Cdf, SimRng, Summary, Vec2};
use movr_motion::{PlayerState, WorldState};
use movr_phased_array::Codebook;
use movr_radio::RadioEndpoint;
use movr_rfsim::{BodyPart, Obstacle};

fn main() {
    figure_header(
        "Figure 9",
        "CDF of SNR improvement vs LOS: {LOS, Opt. NLOS, MoVR}",
    );
    let mut rng = SimRng::seed_from_u64(9);
    let runs = 20;

    let mut nlos_improvement = Vec::new();
    let mut movr_improvement = Vec::new();
    let mut nlos_stats = Summary::new();
    let mut movr_stats = Summary::new();

    println!("\n{:>4} {:>18} {:>8} {:>10} {:>8}", "run", "headset", "LOS", "OptNLOS", "MoVR");
    for run in 0..runs {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());

        // Random placement within the reflector's installed coverage:
        // gaze within ±20° of the scene (AP) direction, resampled until
        // both the AP and the reflector fall inside the receiver's
        // electronic scan. Poses outside a reflector's coverage are the
        // multi-reflector deployment of §4 (see examples/multi_reflector).
        let player = loop {
            let pos = Vec2::new(rng.uniform(2.0, 4.5), rng.uniform(0.8, 4.2));
            let yaw = pos.bearing_deg_to(ap_position()) + rng.uniform(-20.0, 20.0);
            let candidate = PlayerState::standing(pos, yaw);
            let hs = RadioEndpoint::paper_radio(candidate.receiver_position(), yaw);
            let sees_ap = hs.array().can_steer_to(pos.bearing_deg_to(ap_position()));
            let sees_refl = hs
                .array()
                .can_steer_to(pos.bearing_deg_to(movr_bench::reflector_position()));
            if sees_ap && sees_refl {
                break candidate;
            }
        };
        let pos = player.center;
        let yaw = player.yaw_deg;

        // 1) Unblocked LOS.
        let clear = WorldState::player_only(player);
        let los = sys.evaluate_direct(&clear);

        // 2) + 3) A bystander torso on the AP↔headset line.
        let mid = ap_position().lerp(player.receiver_position(), rng.uniform(0.35, 0.65));
        let mut blocked = WorldState::player_only(player);
        blocked
            .others
            .push(Obstacle::new(BodyPart::Torso, mid));

        // Opt. NLOS: exhaustive sweep of both ends, LOS cone excluded.
        let _ = sys.evaluate_direct(&blocked); // sync obstacles into the scene
        let hs = RadioEndpoint::paper_radio(player.receiver_position(), player.yaw_deg);
        let ap_cb = Codebook::sweep(-50.0, 90.0, 2.0);
        let hs_cb = Codebook::sweep(player.yaw_deg - 50.0, player.yaw_deg + 50.0, 2.0);
        let nlos = opt_nlos(sys.scene(), sys.ap(), &hs, &ap_cb, &hs_cb, 7.0);

        // MoVR in the same blockage.
        let movr = sys.evaluate_via_reflector(0, &blocked).end_snr_db;

        nlos_improvement.push(nlos.snr_db - los);
        movr_improvement.push(movr - los);
        nlos_stats.push(nlos.snr_db - los);
        movr_stats.push(movr - los);
        println!(
            "{run:>4} ({:>4.1},{:>4.1}) yaw {:>4.0} {los:>8.1} {:>10.1} {movr:>8.1}",
            pos.x, pos.y, yaw, nlos.snr_db
        );
    }

    // The LOS scenario's improvement over itself is identically zero — a
    // step CDF at 0, as the paper plots it.
    print_cdf("LOS", &Cdf::new(vec![0.0; runs]), 5);
    print_cdf("Opt. NLOS", &Cdf::new(nlos_improvement), 20);
    print_cdf("MoVR", &Cdf::new(movr_improvement.clone()), 20);

    println!("\n--- paper-shape checks ---");
    println!(
        "Opt. NLOS improvement: mean {:.1} dB (paper ≈ -17), worst {:.1} dB (paper ≈ -27)",
        nlos_stats.mean(),
        nlos_stats.min()
    );
    println!(
        "MoVR improvement: mean {:+.1} dB (paper: a few dB above LOS), worst {:+.1} dB (paper ≈ -3)",
        movr_stats.mean(),
        movr_stats.min()
    );
    let above = movr_improvement.iter().filter(|&&v| v >= 0.0).count();
    println!(
        "MoVR at or above LOS in {above}/{runs} runs (paper: 'for most cases')"
    );
}
