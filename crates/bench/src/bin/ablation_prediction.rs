//! Ablation — *predictive beam tracking (§6 future work).*
//!
//! A beam command takes one control latency (~7.5 ms) to reach the
//! reflector, so the beam in effect always lags the player. With the
//! prototype's ~10° beam the lag is harmless; the question §6 leaves
//! open is whether prediction matters. Answer: it becomes load-bearing
//! exactly when arrays grow and beams narrow. This ablation measures the
//! beam-pointing error (commanded beam vs true bearing at effect time)
//! with and without prediction, across player speeds, and converts it to
//! gain loss for the 10-element (10°) and 32-element (3.2°) arrays.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin ablation_prediction
//! ```

use movr::tracking::BeamPredictor;
use movr_bench::{figure_header, reflector_position};
use movr_math::{wrap_deg_180, Summary, Vec2};
use movr_motion::{LighthouseTracker, PlayerState};
use movr_phased_array::{PatchElement, PhaseShifter, UniformLinearArray};

/// The player's true pose while strafing across the play area, passing
/// ~1.25 m under the reflector — the close-range geometry where angular
/// rates are highest.
fn truth_at(t_s: f64, speed_mps: f64) -> PlayerState {
    let x = 1.5 + speed_mps * t_s;
    PlayerState::standing(Vec2::new(x.min(4.5), 3.5), 190.0)
}

fn main() {
    figure_header(
        "Ablation: prediction",
        "beam-pointing error and gain loss vs player speed, with/without §6 prediction",
    );

    let latency_s = 0.0075;
    let frame_s = 1.0 / 90.0;
    let arr10 = UniformLinearArray::paper_array();
    let arr32 = UniformLinearArray::new(
        32,
        0.5,
        PatchElement::default(),
        PhaseShifter::default(),
    );

    println!(
        "\n{:>10} {:>12} {:>12} {:>14} {:>14}",
        "speed", "lag err", "pred err", "10-el loss", "32-el loss"
    );
    println!("{}", "-".repeat(68));

    for speed in [0.5, 1.0, 2.0, 4.0] {
        let mut tracker = LighthouseTracker::new(5);
        let mut predictor = BeamPredictor::new();
        let mut lag_err = Summary::new();
        let mut pred_err = Summary::new();
        let mut lag_loss10 = Summary::new();
        let mut lag_loss32 = Summary::new();
        let mut pred_loss10 = Summary::new();
        let mut pred_loss32 = Summary::new();

        let origin = reflector_position();
        let steps = movr_math::convert::f64_to_usize(2.0 / frame_s);
        // Skip the predictor's warm-up (it needs two observations for a
        // velocity estimate); a real system carries history from before
        // the crossing.
        let warmup = 5;
        for k in 0..steps {
            let t = movr_math::convert::usize_to_f64(k) * frame_s;
            let truth = truth_at(t, speed);
            let tracked = tracker.track(t, &truth);
            predictor.observe(t, tracked);

            // The command issued now lands after one control latency and
            // then serves until the next command lands, one frame later:
            // its mean-serving instant is t + latency + frame/2.
            let effect_t = t + latency_s + frame_s / 2.0;
            let true_bearing =
                origin.bearing_deg_to(truth_at(effect_t, speed).receiver_position());

            // Without prediction the command aims at the pose as tracked
            // *now*; with prediction, at the extrapolated pose.
            let lag_cmd = origin.bearing_deg_to(tracked.receiver_position());
            let pred_cmd = predictor
                .predict_bearing_from(origin, effect_t)
                .unwrap_or(lag_cmd);

            if k < warmup {
                continue;
            }
            let e_lag = wrap_deg_180(lag_cmd - true_bearing).abs();
            let e_pred = wrap_deg_180(pred_cmd - true_bearing).abs();
            lag_err.push(e_lag);
            pred_err.push(e_pred);

            // Gain cost: pattern value at the miss angle vs at the peak.
            let loss = |arr: &UniformLinearArray, err: f64| {
                arr.gain_dbi(0.0, 0.0) - arr.gain_dbi(0.0, err)
            };
            lag_loss10.push(loss(&arr10, e_lag));
            lag_loss32.push(loss(&arr32, e_lag));
            pred_loss10.push(loss(&arr10, e_pred));
            pred_loss32.push(loss(&arr32, e_pred));
        }

        // Worst case is what matters: one badly-pointed beam is a
        // dropped frame, regardless of how good the average was.
        println!(
            "{:>7} m/s {:>10.2}° {:>10.2}° {:>6.2}/{:<5.2}dB {:>6.2}/{:<5.2}dB",
            speed,
            lag_err.max(),
            pred_err.max(),
            lag_loss10.max(),
            pred_loss10.max(),
            lag_loss32.max(),
            pred_loss32.max(),
        );
    }
    println!("\n(columns: lag = aim at last tracked pose; pred = §6 extrapolation;");
    println!(" errors/losses are WORST-CASE over a close-range crossing)");

    println!(
        "\n--- conclusion ---\n\
         With the paper's 10° beam, command lag costs well under a dB even\n\
         at a 4 m/s sprint — §6's instinct that tracking suffices is right.\n\
         Narrow the beam to 3.2° (32 elements) and the lag penalty grows\n\
         while prediction holds it near zero: the §6 'fast beam-tracking\n\
         algorithm' is what makes *sharper* arrays usable."
    );
}
