//! One-command reproduction gate: runs a compact version of every
//! paper-shape check and prints a PASS/FAIL table. `fig3`/`fig7`/`fig8`/
//! `fig9` print the full series; this bin answers "does the repository
//! still reproduce the paper?" in one run.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin repro_all
//! ```

use movr::alignment::{estimate_incidence, AlignmentConfig};
use movr::baselines::{aligned_direct_snr, opt_nlos};
use movr::reflector::MovrReflector;
use movr::system::{MovrSystem, SystemConfig};
use movr_bench::{ap_position, figure_header, reflector_position};
use movr_math::{wrap_deg_180, SimRng, Summary, Vec2};
use movr_motion::{PlayerState, WorldState};
use movr_phased_array::Codebook;
use movr_radio::{RadioEndpoint, RateTable};
use movr_rfsim::{BodyPart, Obstacle, Scene};
use movr_vr::battery::{Battery, VIVE_TYPICAL_DRAW_A};

struct Check {
    name: &'static str,
    paper: &'static str,
    measured: String,
    pass: bool,
}

fn fig3_checks(rng: &mut SimRng) -> Vec<Check> {
    let rate = RateTable;
    let runs = 8;
    let mut los = Summary::new();
    let mut hand = Summary::new();
    let mut nlos = Summary::new();
    for _ in 0..runs {
        let mut scene = Scene::paper_office();
        let mut ap = RadioEndpoint::paper_radio(ap_position(), 20.0);
        let hs_pos = Vec2::new(rng.uniform(2.0, 4.5), rng.uniform(0.8, 4.2));
        let mut hs = RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(ap_position()));
        let mid = ap_position().lerp(hs_pos, 0.55);
        los.push(aligned_direct_snr(&scene, &mut ap, &mut hs));
        scene.add_obstacle(Obstacle::new(BodyPart::Hand, mid));
        hand.push(aligned_direct_snr(&scene, &mut ap, &mut hs));
        scene.clear_obstacles();
        scene.add_obstacle(Obstacle::new(BodyPart::Torso, mid));
        let cb_a = Codebook::sweep(-50.0, 90.0, 4.0);
        let b = hs.array().boresight_deg();
        let cb_h = Codebook::sweep(b - 48.0, b + 48.0, 4.0);
        nlos.push(opt_nlos(&scene, &ap, &hs, &cb_a, &cb_h, 7.0).snr_db);
    }
    vec![
        Check {
            name: "Fig3: LOS SNR & rate",
            paper: "~25 dB, ~7 Gb/s",
            measured: format!("{:.1} dB, {:.2} Gb/s", los.mean(), rate.rate_mbps(los.mean()) / 1000.0),
            pass: (22.0..28.0).contains(&los.mean()) && rate.supports_vr(los.mean()),
        },
        Check {
            name: "Fig3: hand blockage",
            paper: "drop > 14 dB, below VR",
            measured: format!("drop {:.1} dB", los.mean() - hand.mean()),
            pass: los.mean() - hand.mean() > 14.0 && !rate.supports_vr(hand.mean()),
        },
        Check {
            name: "Fig3: best NLOS",
            paper: "well below VR req.",
            measured: format!("drop {:.1} dB", los.mean() - nlos.mean()),
            pass: los.mean() - nlos.mean() > 12.0 && !rate.supports_vr(nlos.mean()),
        },
    ]
}

fn fig7_check() -> Check {
    let mut dev = MovrReflector::wall_mounted(Vec2::new(2.5, 0.25), 90.0, 7);
    let mut swing = f64::INFINITY;
    for rx in [50.0, 65.0] {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for tx in 40i32..=140 {
            dev.steer_rx(rx);
            dev.steer_tx(f64::from(tx));
            let g = -dev.loop_attenuation_db();
            lo = lo.min(g);
            hi = hi.max(g);
        }
        swing = swing.min(hi - lo);
    }
    Check {
        name: "Fig7: leakage swing",
        paper: "up to ~20-30 dB",
        measured: format!("≥{swing:.1} dB per RX angle"),
        pass: swing >= 12.0,
    }
}

fn fig8_check(rng: &mut SimRng) -> Check {
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(ap_position(), 20.0);
    let mut worst = 0.0f64;
    let runs = 6;
    for run in 0..runs {
        let pos = Vec2::new(rng.uniform(1.0, 3.2), 4.75);
        let bore = pos.bearing_deg_to(Vec2::new(1.8, 2.2)) + rng.uniform(-8.0, 8.0);
        let reflector = MovrReflector::wall_mounted(pos, bore, 3000 + run);
        let truth = pos.bearing_deg_to(ap.position());
        let truth_ap = ap.position().bearing_deg_to(pos);
        let cfg = AlignmentConfig {
            ap_codebook: Codebook::sweep(truth_ap - 10.0, truth_ap + 10.0, 1.0),
            reflector_codebook: Codebook::sweep(truth - 10.0, truth + 10.0, 1.0),
            ..Default::default()
        };
        let r = estimate_incidence(&scene, ap, reflector, &cfg, rng);
        worst = worst.max(wrap_deg_180(r.reflector_angle_deg - truth).abs());
    }
    Check {
        name: "Fig8: alignment error",
        paper: "within 2°",
        measured: format!("worst {worst:.2}° over {runs} runs"),
        pass: worst <= 2.0,
    }
}

fn fig9_check(rng: &mut SimRng) -> Check {
    let mut impr = Summary::new();
    let mut done = 0;
    while done < 8 {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        let pos = Vec2::new(rng.uniform(2.0, 4.5), rng.uniform(0.8, 4.2));
        let yaw = pos.bearing_deg_to(ap_position()) + rng.uniform(-20.0, 20.0);
        let player = PlayerState::standing(pos, yaw);
        let probe = RadioEndpoint::paper_radio(player.receiver_position(), yaw);
        if !probe.array().can_steer_to(pos.bearing_deg_to(ap_position()))
            || !probe.array().can_steer_to(pos.bearing_deg_to(reflector_position()))
        {
            continue;
        }
        done += 1;
        let los = sys.evaluate_direct(&WorldState::player_only(player));
        let mut blocked = WorldState::player_only(player);
        blocked.others.push(Obstacle::new(
            BodyPart::Torso,
            ap_position().lerp(player.receiver_position(), 0.5),
        ));
        let via = sys.evaluate_via_reflector(0, &blocked).end_snr_db;
        impr.push(via - los);
    }
    Check {
        name: "Fig9: MoVR vs LOS",
        paper: "≈ a few dB above, worst ≈ -3",
        measured: format!("mean {:+.1} dB, worst {:+.1} dB", impr.mean(), impr.min()),
        pass: impr.mean() > -3.0 && impr.min() > -10.0,
    }
}

fn battery_check() -> Check {
    let h = Battery::anker_5200().runtime_hours(VIVE_TYPICAL_DRAW_A);
    Check {
        name: "§6: battery life",
        paper: "4-5 hours",
        measured: format!("{h:.1} h"),
        pass: (4.0..=5.0).contains(&h),
    }
}

fn latency_check() -> Check {
    let sys = MovrSystem::paper_setup(SystemConfig::default());
    let track = sys.tracking_realignment_cost();
    let sweep = sys.sweep_realignment_cost();
    Check {
        name: "§6: latency budget",
        paper: "sweeps over, rest under 10 ms",
        measured: format!("track {track}, sweep {sweep}"),
        pass: track.as_millis_f64() < 10.0 && sweep.as_millis_f64() > 10.0,
    }
}

fn main() {
    figure_header("repro_all", "compact paper-shape gate across every figure");
    let mut rng = SimRng::seed_from_u64(2016);

    let mut checks = fig3_checks(&mut rng);
    checks.push(fig7_check());
    checks.push(fig8_check(&mut rng));
    checks.push(fig9_check(&mut rng));
    checks.push(battery_check());
    checks.push(latency_check());

    println!(
        "\n{:<26} {:<28} {:<34} {:>6}",
        "check", "paper", "measured", "status"
    );
    println!("{}", "-".repeat(98));
    let mut all = true;
    for c in &checks {
        all &= c.pass;
        println!(
            "{:<26} {:<28} {:<34} {:>6}",
            c.name,
            c.paper,
            c.measured,
            if c.pass { "PASS" } else { "FAIL" }
        );
    }
    println!(
        "\n{}",
        if all {
            "ALL CHECKS PASS — the repository reproduces the paper's shapes."
        } else {
            "SOME CHECKS FAILED — calibration has drifted; see EXPERIMENTS.md."
        }
    );
    std::process::exit(if all { 0 } else { 1 });
}
