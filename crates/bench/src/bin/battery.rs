//! §6 (battery) — *cutting the power cord too.*
//!
//! "The maximum current drawn by the HTC Vive headset is 1500mA. Hence, a
//! small battery (3.8x1.7x0.9in) with 5200mA capacity can run the headset
//! for 4-5 hours."
//!
//! ```sh
//! cargo run -p movr-bench --release --bin battery
//! ```

use movr_bench::figure_header;
use movr_vr::battery::{Battery, VIVE_MAX_DRAW_A, VIVE_TYPICAL_DRAW_A};

fn main() {
    figure_header("§6 battery", "headset runtime on the paper's 5200 mAh pack");

    let pack = Battery::anker_5200();
    println!(
        "\npack: {} mAh rated, {:.0} mAh usable",
        pack.capacity_mah,
        pack.usable_mah()
    );

    println!("\n{:<34} {:>10} {:>10}", "draw scenario", "current", "runtime");
    let rows = [
        ("Vive, typical in-game", VIVE_TYPICAL_DRAW_A),
        ("Vive, maximum (paper's figure)", VIVE_MAX_DRAW_A),
        ("Vive + mmWave receiver (+300 mA)", VIVE_TYPICAL_DRAW_A + 0.3),
        ("Vive + mmWave, worst case", VIVE_MAX_DRAW_A + 0.3),
    ];
    for (label, draw) in rows {
        println!(
            "{:<34} {:>8.2} A {:>8.1} h",
            label,
            draw,
            pack.runtime_hours(draw)
        );
    }

    println!("\n--- paper-shape checks ---");
    let typical = pack.runtime_hours(VIVE_TYPICAL_DRAW_A);
    println!(
        "typical-draw runtime {typical:.1} h — inside the paper's '4-5 hours' claim: {}",
        if (4.0..=5.0).contains(&typical) { "yes" } else { "NO" }
    );
    println!(
        "even with the mmWave receiver's draw the pack sustains multi-hour sessions: {}",
        if pack.runtime_hours(VIVE_TYPICAL_DRAW_A + 0.3) > 3.0 { "yes" } else { "NO" }
    );
}
