//! Ablation — *rate adaptation under blockage transients.*
//!
//! When a hand sweeps through the beam the SNR ramps down through the
//! diffraction taper and back up; the MCS selection policy decides how
//! many frames die at the edges. Oracle selection is the bound; a plain
//! threshold policy flaps on noisy reports; hysteresis holds the rate
//! steady and downgrades instantly.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin ablation_adaptation
//! ```

use movr::session::{run_session, RatePolicy, SessionConfig, Strategy};
use movr_bench::figure_header;
use movr_math::Vec2;
use movr_motion::{HandRaise, MotionTrace, PlayerState, RandomWalk};
use movr_rfsim::Room;

fn main() {
    figure_header(
        "Ablation: rate adaptation",
        "frame loss by MCS-selection policy under blockage transients",
    );

    let base = {
        let center = Vec2::new(4.0, 2.5);
        let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
        PlayerState::standing(center, yaw)
    };
    let room = Room::paper_office();
    let traces: Vec<(&str, Box<dyn MotionTrace>)> = vec![
        (
            "hand raise (2 s)",
            Box::new(HandRaise {
                base,
                raise_at_s: 2.0,
                lower_at_s: 4.0,
                duration_s: 6.0,
            }),
        ),
        (
            "gaze walk (30 s)",
            Box::new(RandomWalk::with_gaze(&room, 99, 30.0, Vec2::new(0.5, 2.5))),
        ),
    ];

    let policies: [(&str, RatePolicy); 4] = [
        ("oracle", RatePolicy::Oracle),
        ("threshold 0 dB", RatePolicy::Threshold { backoff_db: 0.0 }),
        ("threshold 2 dB", RatePolicy::Threshold { backoff_db: 2.0 }),
        (
            "hysteresis",
            RatePolicy::HysteresisPolicy {
                up_margin_db: 1.0,
                up_count: 3,
                backoff_db: 0.5,
            },
        ),
    ];

    println!(
        "\n{:<18} {:<16} {:>8} {:>9} {:>12}",
        "trace", "policy", "loss %", "glitches", "stall (ms)"
    );
    println!("{}", "-".repeat(68));
    for (tname, trace) in &traces {
        for (pname, policy) in &policies {
            let mut cfg =
                SessionConfig::with_strategy(Strategy::Movr { tracking: true });
            cfg.rate_policy = *policy;
            let out = run_session(trace.as_ref(), &cfg);
            println!(
                "{:<18} {:<16} {:>8.2} {:>9} {:>12.0}",
                tname,
                pname,
                out.glitches.loss_rate * 100.0,
                out.glitches.glitch_events,
                out.glitches.longest_stall_ms(90.0)
            );
        }
        println!();
    }

    println!(
        "--- conclusion ---\n\
         The policies trade loss for interruption count: a zero-backoff\n\
         threshold flaps across MCS edges and produces the most distinct\n\
         glitch events, while hysteresis roughly halves the events the\n\
         player notices at the cost of about a point of loss during\n\
         recovery (its upgrades are deliberately slow). A small fixed\n\
         backoff is a reasonable middle ground; all sit within ~1 point\n\
         of the oracle because the MoVR link spends most of its time far\n\
         from any MCS edge."
    );
}
