//! Deployment planning — *where to stick the reflectors* (§4: "one or
//! more MoVR reflectors can be installed in a room by sticking them to
//! the walls").
//!
//! Greedily selects wall mounts to maximise the fraction of sampled
//! player poses served at VR grade, and prints the coverage curve — the
//! quantitative version of the multi-reflector story.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin coverage
//! ```

use movr::planning::{candidate_wall_mounts, greedy_plan, sample_poses};
use movr_bench::{ap_position, figure_header};
use movr_math::SimRng;
use movr_radio::RadioEndpoint;
use movr_rfsim::Room;

fn main() {
    figure_header(
        "Deployment planning",
        "greedy wall-mount selection, coverage of random player poses",
    );
    let room = Room::paper_office();
    let ap = RadioEndpoint::paper_radio(ap_position(), 20.0);
    let mut rng = SimRng::seed_from_u64(77);

    let poses = sample_poses(&room, 1.2, 6, &mut rng);
    let candidates = candidate_wall_mounts(&room, 1.2);
    println!(
        "\n{} candidate mounts, {} sample poses (position grid x 6 headings)",
        candidates.len(),
        poses.len()
    );

    let plan = greedy_plan(&ap, &candidates, &poses, 4);

    println!("\nselection   coverage   mount");
    println!("{}", "-".repeat(56));
    println!(
        "{:<11} {:>7.0}%   (AP alone)",
        "-",
        plan.coverage_curve[0] * 100.0
    );
    for (k, m) in plan.mounts.iter().enumerate() {
        println!(
            "#{:<10} {:>7.0}%   at ({:.2}, {:.2}) facing {:>6.1}°",
            k + 1,
            plan.coverage_curve[k + 1] * 100.0,
            m.position.x,
            m.position.y,
            m.boresight_deg
        );
    }

    println!("\n--- conclusion ---");
    let last = *plan
        .coverage_curve
        .last()
        .expect("greedy planner emits at least the zero-reflector point");
    let first_gain = plan.coverage_curve.get(1).copied().unwrap_or(0.0)
        - plan.coverage_curve[0];
    println!(
        "The first reflector buys the most ({:+.0} points); returns\n\
         diminish as the remaining uncovered poses are the geometrically\n\
         awkward ones. Final coverage with {} reflectors: {:.0}%.",
        first_gain * 100.0,
        plan.mounts.len(),
        last * 100.0
    );
}
