//! Figure 8 — *Beam Alignment Accuracy.*
//!
//! 100 runs: the reflector is placed at a random location and orientation,
//! the §4.1 backscatter protocol estimates the incidence angle, and the
//! estimate is compared to the ground truth computed from the (laser-
//! measured, here exact) positions. Paper result: error within 2°, a
//! negligible SNR cost against the ~10° beamwidth.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin fig8
//! ```

use movr::alignment::{estimate_incidence, AlignmentConfig};
use movr::reflector::MovrReflector;
use movr_bench::{ap_position, figure_header};
use movr_math::{wrap_deg_180, SimRng, Summary, Vec2};
use movr_phased_array::Codebook;
use movr_radio::RadioEndpoint;
use movr_rfsim::Scene;

fn main() {
    figure_header(
        "Figure 8",
        "estimated vs ground-truth incidence angle, 100 runs",
    );
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(ap_position(), 20.0);
    let mut rng = SimRng::seed_from_u64(8);

    let runs = 100u64;
    let mut errors = Summary::new();
    let mut within_2 = 0;
    println!("\nseries: estimated vs actual (deg)");
    println!("{:>12} {:>12} {:>8}", "actual", "estimated", "error");

    for run in 0..runs {
        // Random wall mount: along the north or east wall segments that
        // keep both the AP and the play area inside the scan range.
        let pos = if rng.chance(0.6) {
            Vec2::new(rng.uniform(0.8, 3.5), 4.75)
        } else {
            Vec2::new(rng.uniform(0.6, 2.2), rng.uniform(3.8, 4.75))
        };
        let bore = pos.bearing_deg_to(Vec2::new(1.8, 2.2)) + rng.uniform(-10.0, 10.0);
        let reflector = MovrReflector::wall_mounted(pos, bore, 1000 + run);

        let truth = pos.bearing_deg_to(ap.position());
        let truth_ap = ap.position().bearing_deg_to(pos);
        // The paper's 1°-increment sweep, windowed to each node's field
        // of view around the mount's coverage.
        let config = AlignmentConfig {
            ap_codebook: Codebook::sweep(truth_ap - 20.0, truth_ap + 20.0, 1.0),
            reflector_codebook: Codebook::sweep(truth - 20.0, truth + 20.0, 1.0),
            ..Default::default()
        };
        let r = estimate_incidence(&scene, ap, reflector, &config, &mut rng);
        let err = wrap_deg_180(r.reflector_angle_deg - truth).abs();
        errors.push(err);
        if err <= 2.0 {
            within_2 += 1;
        }
        if run % 10 == 0 {
            println!(
                "{:>12.1} {:>12.1} {:>8.2}",
                truth, r.reflector_angle_deg, err
            );
        }
    }

    println!("\n--- paper-shape checks ---");
    println!(
        "alignment error: mean {:.2}°, max {:.2}° over {runs} runs",
        errors.mean(),
        errors.max()
    );
    println!(
        "runs within 2°: {within_2}/{runs} (paper: estimates within 2° of truth)"
    );
    println!(
        "with a ~10° half-power beamwidth, a ≤2° error costs a negligible\n\
         fraction of a dB of SNR (§5.1)."
    );
}
