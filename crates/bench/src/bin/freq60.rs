//! Extension — *24 GHz prototype vs 60 GHz 802.11ad deployment.*
//!
//! The paper's prototype runs in the 24 GHz ISM band, but the target
//! radio (802.11ad) lives at 60 GHz, where free-space loss is 8 dB
//! higher for the same aperture count. This bin quantifies what that
//! does to the link budget and what restores it: the shorter wavelength
//! lets the same physical aperture hold more elements, and MoVR's
//! amplified relay is *less* sensitive to the carrier than the direct
//! path because its hops are short.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin freq60
//! ```

use movr::reflector::MovrReflector;
use movr::relay::relay_link;
use movr_bench::{ap_position, figure_header, reflector_position};
use movr_math::Vec2;
use movr_phased_array::{PatchElement, PhaseShifter, SteeredArray, UniformLinearArray};
use movr_radio::{evaluate_link, RadioEndpoint, RateTable, VR_REQUIRED_SNR_DB};
use movr_rfsim::{Channel, NoiseModel, Room, Scene};

fn endpoint(pos: Vec2, bore: f64, elements: usize) -> RadioEndpoint {
    let arr = UniformLinearArray::new(
        elements,
        0.5,
        PatchElement::default(),
        PhaseShifter::default(),
    );
    RadioEndpoint::new(pos, SteeredArray::new(arr, bore), 0.0)
}

fn scenario(freq_hz: f64, elements: usize) -> (f64, f64) {
    let scene = Scene::new(
        Room::paper_office(),
        Channel::new(freq_hz),
        NoiseModel::ieee_802_11ad(),
    );
    let mut ap = endpoint(ap_position(), 20.0, elements);
    let hs_pos = Vec2::new(4.0, 2.5);
    let mut hs = endpoint(hs_pos, hs_pos.bearing_deg_to(ap_position()), elements);
    ap.steer_toward(hs.position());
    hs.steer_toward(ap.position());
    let direct = evaluate_link(&scene, &ap, &hs).snr_db;

    // MoVR path with the canonical reflector (same element count).
    let mut reflector = MovrReflector::wall_mounted(reflector_position(), -70.0, movr::system::PAPER_DEVICE_SEED);
    let mut ap_r = ap;
    ap_r.steer_toward(reflector.position());
    reflector.steer_rx(reflector.position().bearing_deg_to(ap.position()));
    reflector.steer_tx(reflector.position().bearing_deg_to(hs.position()));
    movr::gain_control::run_gain_control(
        &mut reflector,
        &movr::gain_control::GainControlConfig::default(),
    );
    let mut hs_r = hs;
    hs_r.steer_toward(reflector.position());
    let via = relay_link(&scene, &ap_r, &reflector, &hs_r).end_snr_db;
    (direct, via)
}

fn main() {
    figure_header(
        "Extension: carrier frequency",
        "the 24 GHz prototype vs a 60 GHz 802.11ad deployment",
    );
    let rate = RateTable;

    println!(
        "\n{:<34} {:>10} {:>10} {:>8}",
        "configuration", "direct", "via MoVR", "VR-ok?"
    );
    println!("{}", "-".repeat(66));
    let rows = [
        ("24 GHz, 10-element arrays", 24.0e9, 10),
        ("60.48 GHz, 10-element arrays", 60.48e9, 10),
        ("60.48 GHz, 16-element arrays", 60.48e9, 16),
        ("60.48 GHz, 24-element arrays", 60.48e9, 24),
    ];
    for (label, f, n) in rows {
        let (direct, via) = scenario(f, n);
        println!(
            "{:<34} {:>7.1} dB {:>7.1} dB {:>8}",
            label,
            direct,
            via,
            if rate.supports_vr(direct.max(via)) {
                "yes"
            } else {
                "NO"
            }
        );
    }

    println!("\n--- conclusion ---");
    println!(
        "Moving 24 → 60 GHz costs ~8 dB of Friis loss per hop (a 4 m link\n\
         needs SNR ≥ {VR_REQUIRED_SNR_DB:.0} dB). The same PCB area holds 2.5× the elements\n\
         at 60 GHz, which more than buys the budget back — and narrower\n\
         beams make the §6 tracking/prediction machinery (see\n\
         ablation_prediction) load-bearing rather than optional."
    );
}
