//! Figure 7 — *Leakage between TX and RX antennas.*
//!
//! The reflector's terminal-to-terminal TX→RX leakage across transmit
//! beam angles 40°–140°, for two receive beam angles (50° and 65°).
//! Paper shape: leakage gain between roughly −50 and −80 dB, varying by
//! up to ~20 dB across the sweep, with a curve that reshapes (not just
//! shifts) when the receive beam moves.
//!
//! ```sh
//! cargo run -p movr-bench --release --bin fig7
//! ```

use movr::reflector::MovrReflector;
use movr_bench::{figure_header, print_series};
use movr_math::angle::sweep_deg;
use movr_math::Vec2;

fn main() {
    figure_header(
        "Figure 7",
        "TX->RX leakage vs TX beam angle, for RX beam at 50 and 65 deg",
    );

    // A reflector whose boresight is 90° so the paper's 40°–140° sweep
    // maps exactly onto the array's ±50° scan range.
    let mut device = MovrReflector::wall_mounted(Vec2::new(2.5, 0.25), 90.0, 7);

    for rx_angle in [50.0, 65.0] {
        let mut series = Vec::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for tx_angle in sweep_deg(40.0, 140.0, 1.0) {
            device.steer_rx(rx_angle);
            device.steer_tx(tx_angle);
            // What a VNA on the amplifier terminals reads: the (negative)
            // gain of the leakage loop.
            let gain_db = -device.loop_attenuation_db();
            min = min.min(gain_db);
            max = max.max(gain_db);
            series.push((tx_angle, gain_db));
        }
        print_series(&format!("Rx angle {rx_angle}"), &series);
        println!(
            "  range: {min:.1} .. {max:.1} dB  (swing {:.1} dB; paper: -50..-80, up to ~20 dB)",
            max - min
        );
    }

    println!(
        "\nThe swing across beam angles is why the amplifier gain must adapt\n\
         per beam pair (§4.2) — a fixed gain is either unstable at the\n\
         leakiest posture or wastes SNR everywhere else."
    );
}
