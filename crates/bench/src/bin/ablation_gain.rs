//! Ablation — *adaptive gain control vs fixed gain vs oracle.*
//!
//! Fig. 7 shows the leakage moving ~20 dB with the beam angles, so any
//! fixed gain either saturates at the leakiest posture or wastes SNR at
//! every other one. This ablation serves a set of headset positions via
//! the reflector under four gain policies and reports delivered SNR and
//! saturation events:
//!
//! * **adaptive (§4.2)** — the current-sensing loop, per beam pair;
//! * **fixed-safe** — one conservative gain below the worst-case leakage;
//! * **fixed-aggressive** — one gain tuned to the *median* leakage;
//! * **oracle** — reads the true leakage (impossible without RX chains).
//!
//! ```sh
//! cargo run -p movr-bench --release --bin ablation_gain
//! ```

use movr::gain_control::{run_gain_control, GainControlConfig};
use movr::relay::relay_link;
use movr::system::{MovrSystem, SystemConfig};
use movr_bench::{ap_position, figure_header, random_headset_pose, reflector_position};
use movr_math::{SimRng, Summary};
use movr_radio::{RadioEndpoint, RateTable};
use movr_motion::{PlayerState, WorldState};

fn main() {
    figure_header(
        "Ablation: gain policy",
        "delivered SNR and saturation: adaptive vs fixed vs oracle",
    );
    let mut rng = SimRng::seed_from_u64(42);
    let rate = RateTable;
    let runs = 30;

    // Policy identifiers.
    let policies = ["adaptive (§4.2)", "fixed-safe", "fixed-aggressive", "oracle"];
    let mut snr = vec![Summary::new(); policies.len()];
    let mut saturations = vec![0usize; policies.len()];
    let mut vr_ok = vec![0usize; policies.len()];

    for _ in 0..runs {
        let (pos, yaw) = random_headset_pose(&mut rng);
        let player = PlayerState::standing(pos, yaw);
        let world = WorldState::player_only(player);

        for (p, _) in policies.iter().enumerate() {
            let mut sys = MovrSystem::paper_setup(SystemConfig::default());
            // Point everything as the system would.
            let _ = sys.evaluate_via_reflector(0, &world);
            // Rebuild the relay pieces with the chosen gain policy.
            let mut ap = *sys.ap();
            ap.steer_toward(reflector_position());
            let mut hs = RadioEndpoint::paper_radio(player.receiver_position(), yaw);
            hs.steer_toward(reflector_position());
            let mut reflector = sys.reflectors()[0].clone();
            reflector.steer_rx(reflector_position().bearing_deg_to(ap_position()));
            reflector.steer_tx(reflector_position().bearing_deg_to(hs.position()));

            match p {
                0 => {
                    run_gain_control(&mut reflector, &GainControlConfig::default());
                }
                1 => {
                    // Safe below the worst loop attenuation (41 dB) with margin.
                    reflector.set_gain_db(38.0);
                }
                2 => {
                    // Tuned to the median loop attenuation: great when the
                    // posture is benign, saturated when it is not.
                    reflector.set_gain_db(50.0);
                }
                _ => {
                    reflector.set_gain_db(reflector.loop_attenuation_db() - 1.5);
                }
            }

            let b = relay_link(sys.scene(), &ap, &reflector, &hs);
            if b.saturated {
                saturations[p] += 1;
            }
            let s = if b.end_snr_db.is_finite() { b.end_snr_db } else { -20.0 };
            snr[p].push(s);
            if rate.supports_vr(b.end_snr_db) {
                vr_ok[p] += 1;
            }
        }
    }

    println!(
        "\n{:<20} {:>10} {:>10} {:>12} {:>10}",
        "policy", "mean SNR", "min SNR", "saturations", "VR-ok"
    );
    println!("{}", "-".repeat(68));
    for (p, name) in policies.iter().enumerate() {
        println!(
            "{:<20} {:>8.1}dB {:>8.1}dB {:>9}/{runs} {:>7}/{runs}",
            name,
            snr[p].mean(),
            snr[p].min(),
            saturations[p],
            vr_ok[p]
        );
    }

    println!("\n--- conclusion ---");
    println!(
        "The adaptive loop tracks the oracle within ~{:.1} dB of mean SNR with\n\
         zero saturation, while the aggressive fixed gain saturates on leaky\n\
         beam postures and the safe fixed gain gives up SNR everywhere.",
        (snr[3].mean() - snr[0].mean()).abs()
    );
}
