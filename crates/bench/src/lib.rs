//! Shared scaffolding for the figure regenerators.
//!
//! Every binary in this crate reproduces one table/figure of the paper's
//! evaluation (see `DESIGN.md` for the index). They share the canonical
//! deployment geometry and a few output helpers so the printed series are
//! uniform and diff-able across runs (everything is seeded).

use movr::reflector::MovrReflector;
use movr_math::{Cdf, SimRng, Vec2};
use movr_radio::RadioEndpoint;
use movr_rfsim::Scene;

/// The canonical deployment used by the figure regenerators: the paper's
/// 5 m × 5 m office with the AP mid-west wall and the reflector on the
/// north wall — a geometry where AP, reflector and play area are mutually
/// within the arrays' electronic scan ranges (see `MovrSystem::paper_setup`).
pub struct Deployment {
    /// Room geometry plus obstacles.
    pub scene: Scene,
    /// The access point endpoint on the west wall.
    pub ap: RadioEndpoint,
    /// The wall-mounted MoVR reflector on the north wall.
    pub reflector: MovrReflector,
}

impl Deployment {
    /// Builds the canonical deployment.
    pub fn canonical() -> Self {
        Deployment {
            scene: Scene::paper_office(),
            ap: RadioEndpoint::paper_radio(ap_position(), 20.0),
            reflector: MovrReflector::wall_mounted(reflector_position(), -70.0, movr::system::PAPER_DEVICE_SEED),
        }
    }
}

/// Where the AP sits (beside the PC).
pub fn ap_position() -> Vec2 {
    Vec2::new(0.5, 2.5)
}

/// Where the canonical reflector is mounted.
pub fn reflector_position() -> Vec2 {
    Vec2::new(1.0, 4.75)
}

/// A random headset placement in the play area with the AP inside the
/// receiver's scan: position in the east half of the room, gaze within
/// ±35° of the AP bearing (a player looks roughly at the scene).
pub fn random_headset_pose(rng: &mut SimRng) -> (Vec2, f64) {
    let pos = Vec2::new(rng.uniform(2.0, 4.5), rng.uniform(0.8, 4.2));
    let yaw = pos.bearing_deg_to(ap_position()) + rng.uniform(-35.0, 35.0);
    (pos, yaw)
}

/// Prints a figure header in a stable format.
pub fn figure_header(id: &str, caption: &str) {
    println!("==========================================================");
    println!("{id}: {caption}");
    println!("==========================================================");
}

/// Prints one named series of (x, y) points.
pub fn print_series(name: &str, points: &[(f64, f64)]) {
    println!("\nseries: {name}");
    for (x, y) in points {
        println!("  {x:10.3} {y:10.3}");
    }
}

/// Prints a CDF as the paper plots it (value on x, cumulative fraction on
/// y), downsampled to at most `max_points` rows.
pub fn print_cdf(name: &str, cdf: &Cdf, max_points: usize) {
    println!("\nseries: {name} (CDF)");
    let pts: Vec<(f64, f64)> = cdf.points().collect();
    let step = (pts.len() / max_points.max(1)).max(1);
    for (i, (v, f)) in pts.iter().enumerate() {
        if i % step == 0 || i == pts.len() - 1 {
            println!("  {v:10.3} {f:8.3}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_deployment_geometry_is_mutually_visible() {
        let d = Deployment::canonical();
        // AP can steer at the reflector and vice versa.
        let ap_to_r = d.ap.position().bearing_deg_to(d.reflector.position());
        assert!(d.ap.array().can_steer_to(ap_to_r));
        let r_to_ap = d.reflector.position().bearing_deg_to(d.ap.position());
        assert!(d.reflector.rx_array().can_steer_to(r_to_ap));
    }

    #[test]
    fn random_poses_keep_ap_in_scan() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            let (pos, yaw) = random_headset_pose(&mut rng);
            let hs = RadioEndpoint::paper_radio(pos, yaw);
            assert!(hs.array().can_steer_to(pos.bearing_deg_to(ap_position())));
        }
    }
}
