//! Micro-benchmarks: the computational hot paths of the simulator
//! (per-frame link evaluation, the alignment sweep's inner measurement,
//! the gain-control loop) and the end-to-end frame step.
//!
//! These are *performance* benches (how fast the simulator runs), not
//! figure regenerators — those are the `fig*`/`ablation_*` binaries.
//!
//! Runs on the in-tree `movr-testkit` runner: each bench prints one JSON
//! line with median/p95/mean per-iteration nanoseconds. Invoke with
//! `cargo bench -p movr-bench` (full) or
//! `cargo bench -p movr-bench -- --quick` (smoke profile).

use movr::gain_control::{run_gain_control, GainControlConfig};
use movr::reflector::MovrReflector;
use movr::relay::{relay_link, round_trip_reflection_dbm};
use movr::system::{MovrSystem, SystemConfig};
use movr_math::Vec2;
use movr_motion::{PlayerState, WorldState};
use movr_radio::{evaluate_link, RadioEndpoint};
use movr_rfsim::Scene;
use movr_testkit::{bench_fn, bench_with_setup, BenchOptions, BenchReport};

fn bench_link_budget(opts: &BenchOptions) -> Vec<BenchReport> {
    let scene = Scene::paper_office();
    let mut ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let mut hs = RadioEndpoint::paper_radio(Vec2::new(4.0, 2.5), 180.0);
    ap.steer_toward(hs.position());
    hs.steer_toward(ap.position());
    vec![bench_fn("link_budget_direct", opts, || {
        evaluate_link(&scene, &ap, &hs)
    })]
}

fn bench_relay_budget(opts: &BenchOptions) -> Vec<BenchReport> {
    let scene = Scene::paper_office();
    let mut ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let mut reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, movr::system::PAPER_DEVICE_SEED);
    let mut hs = RadioEndpoint::paper_radio(Vec2::new(4.0, 2.5), 180.0);
    ap.steer_toward(reflector.position());
    reflector.steer_rx(reflector.position().bearing_deg_to(ap.position()));
    reflector.steer_tx(reflector.position().bearing_deg_to(hs.position()));
    reflector.set_gain_db(40.0);
    hs.steer_toward(reflector.position());
    vec![
        bench_fn("relay_budget", opts, || {
            relay_link(&scene, &ap, &reflector, &hs)
        }),
        bench_fn("round_trip_probe", opts, || {
            round_trip_reflection_dbm(&scene, &ap, &reflector)
        }),
    ]
}

fn bench_gain_control(opts: &BenchOptions) -> Vec<BenchReport> {
    vec![bench_with_setup(
        "gain_control_loop",
        opts,
        || {
            let mut r = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, movr::system::PAPER_DEVICE_SEED);
            r.steer_rx(-102.0);
            r.steer_tx(-45.0);
            r
        },
        |mut r| run_gain_control(&mut r, &GainControlConfig::default()),
    )]
}

fn bench_system_step(opts: &BenchOptions) -> Vec<BenchReport> {
    let center = Vec2::new(4.0, 2.5);
    let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
    let world = WorldState::player_only(PlayerState::standing(center, yaw));
    vec![bench_with_setup(
        "system_evaluate_frame",
        opts,
        || MovrSystem::paper_setup(SystemConfig::default()),
        |mut sys| sys.evaluate(&world),
    )]
}

fn bench_trace_paths(opts: &BenchOptions) -> Vec<BenchReport> {
    use movr_rfsim::{trace_paths, Room, TraceConfig};
    let bare = Room::paper_office();
    let furnished = Room::furnished_office();
    let lshape = Room::l_shaped_studio();
    let tx = Vec2::new(1.0, 2.5);
    let rx = Vec2::new(4.0, 2.0);
    let cfg = TraceConfig::default();
    vec![
        bench_fn("trace_paths_bare", opts, || {
            trace_paths(&bare, &[], tx, rx, &cfg)
        }),
        bench_fn("trace_paths_furnished", opts, || {
            trace_paths(&furnished, &[], tx, rx, &cfg)
        }),
        bench_fn("trace_paths_lshaped", opts, || {
            trace_paths(&lshape, &[], Vec2::new(1.0, 1.0), Vec2::new(1.0, 4.0), &cfg)
        }),
    ]
}

fn bench_alignment_sweep(opts: &BenchOptions) -> Vec<BenchReport> {
    use movr::alignment::{estimate_incidence, AlignmentConfig};
    use movr_math::SimRng;
    use movr_phased_array::Codebook;
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, movr::system::PAPER_DEVICE_SEED);
    let truth = reflector.position().bearing_deg_to(ap.position());
    let truth_ap = ap.position().bearing_deg_to(reflector.position());
    let cfg = AlignmentConfig {
        ap_codebook: Codebook::sweep(truth_ap - 10.0, truth_ap + 10.0, 1.0),
        reflector_codebook: Codebook::sweep(truth - 10.0, truth + 10.0, 1.0),
        ..Default::default()
    };
    vec![bench_with_setup(
        "alignment_sweep_21x21",
        opts,
        || SimRng::seed_from_u64(1),
        |mut rng| estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng),
    )]
}

fn bench_session_second(opts: &BenchOptions) -> Vec<BenchReport> {
    use movr::session::{run_session, SessionConfig, Strategy};
    use movr_motion::StaticScene;
    let center = Vec2::new(4.0, 2.5);
    let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
    let trace = StaticScene::new(PlayerState::standing(center, yaw), 1.0);
    let cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    vec![bench_fn("session_one_second_90fps", opts, || {
        run_session(&trace, &cfg)
    })]
}

fn bench_obs_overhead(opts: &BenchOptions) -> Vec<BenchReport> {
    // The observability tax on a 60 s session (5 400 frames). The null
    // recorder is the always-on configuration: its cost over the plain
    // session (`session_one_second_90fps` × 60) must stay within noise —
    // one virtual `enabled()` call per would-be event. The memory
    // recorder bounds the fully-instrumented cost.
    use movr::session::{run_session_recorded, SessionConfig, Strategy};
    use movr_motion::StaticScene;
    use movr_obs::{MemoryRecorder, NullRecorder};
    let center = Vec2::new(4.0, 2.5);
    let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
    let trace = StaticScene::new(PlayerState::standing(center, yaw), 60.0);
    let cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    vec![
        bench_fn("obs_session_60s_null", opts, || {
            run_session_recorded(&trace, &cfg, &mut NullRecorder)
        }),
        bench_fn("obs_session_60s_memory", opts, || {
            let mut rec = MemoryRecorder::new();
            let out = run_session_recorded(&trace, &cfg, &mut rec);
            (out, rec.len())
        }),
    ]
}

fn bench_batch_kernels(opts: &BenchOptions) -> Vec<BenchReport> {
    // The SoA batch entry point against the scalar loop it replaces:
    // one steered array, one full 101-bearing probe row (what a single
    // θ₁ of the alignment sweep asks for). The batch kernel runs the
    // same float ops in the same order — bit-identity is proven in
    // `tests/batch_equivalence.rs` — so the entire gap is amortized
    // per-call setup: the wrap/steering state stays in registers
    // instead of being re-fetched 101 times.
    use movr_phased_array::SteeredArray;
    let mut array = SteeredArray::paper_array(-70.0);
    array.steer_to(-102.0);
    let bearings: Vec<f64> = (0..101).map(|i| -152.0 + f64::from(i)).collect();
    vec![
        bench_fn("array_gain_scalar_101", opts, || {
            bearings.iter().map(|&b| array.gain_dbi(b)).sum::<f64>()
        }),
        bench_fn("array_gain_batch_101", opts, || {
            array.gain_dbi_batch(&bearings).iter().sum::<f64>()
        }),
    ]
}

fn bench_pool_overhead(opts: &BenchOptions) -> Vec<BenchReport> {
    // The dispatch cost the persistent pool exists to remove: 8
    // near-free jobs on 2 workers, so the timing is almost entirely
    // fan-out overhead. `par_map` pays two `thread::spawn` + join per
    // call (stack mapping, TLS setup, scheduler wake-up); `pool_map`
    // pays two channel round-trips to workers that already exist. The
    // thread count is pinned at 2 — not `available_threads()` — so the
    // two rows compare the same fan-out shape on every box, including
    // single-core CI containers (where `available_threads()` would put
    // both on the serial fast path and measure nothing).
    use movr_sim::{par_map, pool_map};
    fn tiny(_i: usize, x: &u64) -> u64 {
        x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13)
    }
    let items: Vec<u64> = (0..8).collect();
    vec![
        bench_fn("par_tiny_scoped_spawn", opts, || par_map(&items, 2, tiny)),
        bench_fn("par_tiny_worker_pool", opts, || pool_map(items.clone(), 2, tiny)),
    ]
}

fn bench_lint_workspace(opts: &BenchOptions) -> Vec<BenchReport> {
    // Cost of the static-analysis gate itself over the real workspace:
    // lexing alone vs the full semantic pipeline (parse + unit-flow +
    // RNG dataflow + layering + the v3/v4 passes). The gap between the
    // first two is the price of the semantic analyses; the later data
    // isolate the v3 passes (parallel-capture, snapshot-coverage,
    // order-sensitivity) and the v4 interprocedural-effect passes
    // (call-graph build + effect fixpoint + four rules) over pre-loaded
    // files so their cost rides the perf ratchet independently of file
    // I/O.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = movr_lint::load_workspace(&root).expect("workspace readable");
    vec![
        bench_fn("lint_workspace_lex_only", opts, || {
            movr_lint::lex_workspace(&root).expect("workspace readable")
        }),
        bench_fn("lint_workspace_semantic", opts, || {
            movr_lint::analyze(&root)
                .expect("workspace readable")
                .diagnostics
                .len()
        }),
        bench_fn("lint_workspace_v3_passes", opts, || {
            movr_lint::run_v3_passes(&files).len()
        }),
        bench_fn("lint_workspace_v4_callgraph", opts, || {
            movr_lint::run_v4_passes(&files).len()
        }),
    ]
}

fn main() {
    let opts = BenchOptions::from_args(std::env::args().skip(1));
    let suites: [fn(&BenchOptions) -> Vec<BenchReport>; 11] = [
        bench_link_budget,
        bench_relay_budget,
        bench_gain_control,
        bench_system_step,
        bench_trace_paths,
        bench_alignment_sweep,
        bench_session_second,
        bench_obs_overhead,
        bench_batch_kernels,
        bench_pool_overhead,
        bench_lint_workspace,
    ];
    for suite in suites {
        for report in suite(&opts) {
            println!("{}", report.json_line());
        }
    }
}
