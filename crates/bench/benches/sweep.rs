//! Sweep-rate benches: the §4.1 alignment sweep with and without the
//! link cache, and a multi-seed session fleet with and without the
//! deterministic thread fan-out.
//!
//! Two claims are *asserted*, not just timed:
//!
//! * the cached full 101×101 incidence sweep is **bit-identical** to a
//!   seed-era uncached reference (re-trace + steering-vector rebuild per
//!   probe) and at least 5× faster;
//! * the parallel session fleet is **byte-identical** to the same fleet
//!   on one thread.
//!
//! Runs on the in-tree `movr-testkit` runner: one JSON line per bench
//! plus `sweep_speedup` / `fleet_speedup` summary lines. Invoke with
//! `cargo bench -p movr-bench --bench sweep` (full) or
//! `... -- --quick` (smoke profile; CI writes this to
//! `out/BENCH_sweep.json`).

use movr::alignment::{estimate_incidence, AlignmentConfig};
use movr::reflector::MovrReflector;
use movr::session::{run_session, SessionConfig, Strategy};
use movr_math::{wrap_deg_180, SimRng, Vec2};
use movr_motion::RandomWalk;
use movr_phased_array::SteeredArray;
use movr_radio::RadioEndpoint;
use movr_rfsim::{Pattern, Room, Scene};
use movr_sim::{available_threads, par_map};
use movr_testkit::{bench_with_setup, BenchOptions, BenchReport};

/// Seed-era pattern adapter: every gain query rebuilds the full
/// steering vector from the element geometry, exactly what
/// `SteeredArray::gain_dbi` did before the cache. Bit-identical to the
/// cached path (same float op order), so the uncached sweep below is a
/// faithful "before" both in cost and in output.
struct UncachedPattern<'a>(&'a SteeredArray);

impl Pattern for UncachedPattern<'_> {
    fn gain_dbi(&self, direction_deg: f64) -> f64 {
        let local = wrap_deg_180(direction_deg - self.0.boresight_deg());
        self.0.array().gain_dbi(self.0.steer_local_deg(), local)
    }
}

/// Seed-era round trip: re-traces both legs of the AP ↔ reflector loop
/// per call and rebuilds every steering vector per gain query.
fn uncached_round_trip(
    scene: &Scene,
    ap: &RadioEndpoint,
    reflector: &MovrReflector,
) -> Option<f64> {
    let ap_pat = UncachedPattern(ap.array());
    let hop1 = scene.link_budget(
        ap.position(),
        &ap_pat,
        ap.tx_power_dbm(),
        reflector.position(),
        &UncachedPattern(reflector.rx_array()),
    );
    let out_dbm = hop1.received_dbm + reflector.effective_gain_db()?;
    let hop2 = scene.link_budget(
        reflector.position(),
        &UncachedPattern(reflector.tx_array()),
        out_dbm,
        ap.position(),
        &ap_pat,
    );
    Some(hop2.received_dbm)
}

/// The full (θ₁ × θ₂) incidence sweep exactly as the seed evaluated it:
/// steer the live AP per candidate, re-trace per probe. Returns
/// `(peak_dbm, theta1, theta2)` — comparable bit-for-bit with
/// [`estimate_incidence`] on the same RNG seed.
fn uncached_incidence(
    scene: &Scene,
    mut ap: RadioEndpoint,
    mut reflector: MovrReflector,
    config: &AlignmentConfig,
    rng: &mut SimRng,
) -> (f64, f64, f64) {
    assert!(config.modulated, "reference implements the modulated protocol");
    reflector.set_gain_db(config.probe_gain_db);
    reflector.set_modulating(true);
    let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
    for &theta1 in config.reflector_codebook.beams() {
        reflector.steer_both(theta1);
        for &theta2 in config.ap_codebook.beams() {
            ap.steer_to(theta2);
            let reflected =
                uncached_round_trip(scene, &ap, &reflector).unwrap_or(f64::NEG_INFINITY);
            let reading = config
                .probe
                .measure_modulated(reflected, ap.tx_power_dbm(), rng);
            if reading.power_dbm > best.0 {
                best = (reading.power_dbm, theta1, theta2);
            }
        }
    }
    best
}

fn sweep_setup() -> (Scene, RadioEndpoint, MovrReflector, AlignmentConfig) {
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let reflector =
        MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, movr::system::PAPER_DEVICE_SEED);
    // The paper's full sweep: 101 × 101 probes at 1°.
    (scene, ap, reflector, AlignmentConfig::default())
}

/// Cached vs uncached full alignment sweep. Asserts bit-identity first,
/// then times both and asserts the ≥ 5× speedup the link cache claims.
fn bench_alignment_sweep(opts: &BenchOptions) -> (Vec<BenchReport>, f64) {
    let (scene, ap, reflector, cfg) = sweep_setup();

    // Equivalence gate: same seed, same argmax, same peak power bits.
    let mut rng_c = SimRng::seed_from_u64(7);
    let cached = estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng_c);
    let mut rng_u = SimRng::seed_from_u64(7);
    let (peak, t1, t2) = uncached_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng_u);
    assert_eq!(
        cached.peak_power_dbm.to_bits(),
        peak.to_bits(),
        "cached sweep must be bit-identical to the uncached reference"
    );
    assert_eq!(cached.reflector_angle_deg, t1);
    assert_eq!(cached.ap_angle_deg, t2);

    let r_cached = bench_with_setup(
        "alignment_sweep_101x101_cached",
        opts,
        || SimRng::seed_from_u64(7),
        |mut rng| estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng),
    );
    let r_uncached = bench_with_setup(
        "alignment_sweep_101x101_uncached",
        opts,
        || SimRng::seed_from_u64(7),
        |mut rng| uncached_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng),
    );
    let speedup = r_uncached.median_ns / r_cached.median_ns;
    assert!(
        speedup >= 5.0,
        "link cache must buy >= 5x on the full sweep, got {speedup:.2}x"
    );
    (vec![r_cached, r_uncached], speedup)
}

/// Runs one seeded VR session and returns a byte-exact fingerprint of
/// everything the fleet aggregates.
fn session_fingerprint(seed: u64) -> String {
    let room = Room::paper_office();
    let trace = RandomWalk::with_gaze(&room, seed, 1.0, Vec2::new(0.5, 2.5));
    let cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    let out = run_session(&trace, &cfg);
    format!(
        "{:x}:{:x}:{}:{}:{:x}:{:?}",
        out.mean_snr_db.to_bits(),
        out.min_snr_db.to_bits(),
        out.mode_switches,
        out.realignments,
        out.reflector_fraction.to_bits(),
        out.glitches
    )
}

fn run_fleet(seeds: &[u64], threads: usize) -> Vec<String> {
    par_map(seeds, threads, |_, &seed| session_fingerprint(seed))
}

/// Multi-seed session fleet, sequential vs fanned out. Asserts the
/// parallel fleet is byte-identical to the single-threaded one, and —
/// where the machine has the cores — times an explicit 1/2/4-thread
/// scaling ladder so the recorded numbers say what parallelism actually
/// bought rather than implying a speedup a small box cannot show.
fn bench_session_fleet(opts: &BenchOptions) -> (Vec<BenchReport>, f64, usize) {
    let seeds: Vec<u64> = (0..8).collect();
    let cores = available_threads();

    let seq = run_fleet(&seeds, 1);
    for probe in [2, 3, cores] {
        assert_eq!(
            run_fleet(&seeds, probe),
            seq,
            "fleet output must be byte-identical on {probe} threads"
        );
    }

    let r_seq = bench_with_setup(
        "session_fleet_8x1s_1thread",
        opts,
        || (),
        |()| run_fleet(&seeds, 1),
    );
    let mut reports = vec![r_seq];
    // The scaling ladder: only thread counts the hardware can actually
    // schedule concurrently; a 4-thread row timed on 1 core would be
    // context-switch noise published as data.
    for (name, t) in [
        ("session_fleet_8x1s_2threads", 2usize),
        ("session_fleet_8x1s_4threads", 4usize),
    ] {
        if cores >= t {
            reports.push(bench_with_setup(name, opts, || (), |()| run_fleet(&seeds, t)));
        }
    }
    let r_par = bench_with_setup(
        "session_fleet_8x1s_par",
        opts,
        || (),
        |()| run_fleet(&seeds, cores),
    );
    let speedup = reports[0].median_ns / r_par.median_ns;
    reports.push(r_par);
    (reports, speedup, cores)
}

fn main() {
    let opts = BenchOptions::from_args(std::env::args().skip(1));

    let (sweep_reports, sweep_speedup) = bench_alignment_sweep(&opts);
    for r in &sweep_reports {
        println!("{}", r.json_line());
    }
    println!(
        "{{\"name\":\"sweep_speedup\",\"speedup\":{sweep_speedup:.2},\"threshold\":5.0,\
         \"bit_identical\":true}}"
    );

    let (fleet_reports, fleet_speedup, cores) = bench_session_fleet(&opts);
    for r in &fleet_reports {
        println!("{}", r.json_line());
    }
    // `cores` is the detected parallelism the fleet actually ran on; a
    // `threads: 1` line is an honest "this box cannot demonstrate the
    // fan-out", which downstream ratchets must tolerate explicitly.
    println!(
        "{{\"name\":\"fleet_speedup\",\"speedup\":{fleet_speedup:.2},\"threads\":{cores},\
         \"cores\":{cores},\"byte_identical\":true}}"
    );
}
