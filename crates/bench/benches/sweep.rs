//! Sweep-rate benches: the §4.1 alignment sweep across three engine
//! generations (seed-era uncached, PR-5 memoized scalar, batched SoA),
//! and a multi-seed session fleet on the persistent worker pool with an
//! explicit thread-scaling ladder.
//!
//! Three claims are *asserted*, not just timed:
//!
//! * the batched full 101×101 incidence sweep is **bit-identical** to
//!   both the memoized-scalar reference and the seed-era uncached
//!   reference (re-trace + steering-vector rebuild per probe);
//! * the memoized path is at least 5× faster than uncached, and the
//!   batched path at least 2.5× faster again than memoized (it
//!   measures ≈3.3× here; the gate sits below the measurement because
//!   the two paths share a bit-pinned per-probe `powf` stream that
//!   bounds the ratio near 4×, and a loaded single-core box compresses
//!   it further — see DESIGN.md § "Performance, round 2");
//! * the parallel session fleet is **byte-identical** to the same fleet
//!   on one thread, at every probed thread count.
//!
//! Runs on the in-tree `movr-testkit` runner: one JSON line per bench
//! plus `sweep_speedup` / `batch_speedup` / `fleet_speedup` /
//! `fleet_speedup_4t` summary lines. Invoke with
//! `cargo bench -p movr-bench --bench sweep` (full) or
//! `... -- --quick` (smoke profile; CI writes this to
//! `out/BENCH_sweep.json`).

use movr::alignment::{estimate_incidence, AlignmentConfig};
use movr::reflector::MovrReflector;
use movr::relay::round_trip_reflection_with;
use movr::session::{run_session, SessionConfig, Strategy};
use movr_math::{wrap_deg_180, SimRng, Vec2};
use movr_motion::RandomWalk;
use movr_phased_array::{PatternTable, SteeredArray};
use movr_radio::{ArrayPattern, RadioEndpoint};
use movr_rfsim::{MemoPattern, Pattern, Room, Scene};
use movr_sim::{available_threads, pool_map};
use movr_testkit::{bench_with_setup, BenchOptions, BenchReport};

/// Seed-era pattern adapter: every gain query rebuilds the full
/// steering vector from the element geometry, exactly what
/// `SteeredArray::gain_dbi` did before the cache. Bit-identical to the
/// cached path (same float op order), so the uncached sweep below is a
/// faithful "before" both in cost and in output.
struct UncachedPattern<'a>(&'a SteeredArray);

impl Pattern for UncachedPattern<'_> {
    fn gain_dbi(&self, direction_deg: f64) -> f64 {
        let local = wrap_deg_180(direction_deg - self.0.boresight_deg());
        self.0.array().gain_dbi(self.0.steer_local_deg(), local)
    }
}

/// Seed-era round trip: re-traces both legs of the AP ↔ reflector loop
/// per call and rebuilds every steering vector per gain query.
fn uncached_round_trip(
    scene: &Scene,
    ap: &RadioEndpoint,
    reflector: &MovrReflector,
) -> Option<f64> {
    let ap_pat = UncachedPattern(ap.array());
    let hop1 = scene.link_budget(
        ap.position(),
        &ap_pat,
        ap.tx_power_dbm(),
        reflector.position(),
        &UncachedPattern(reflector.rx_array()),
    );
    let out_dbm = hop1.received_dbm + reflector.effective_gain_db()?;
    let hop2 = scene.link_budget(
        reflector.position(),
        &UncachedPattern(reflector.tx_array()),
        out_dbm,
        ap.position(),
        &ap_pat,
    );
    Some(hop2.received_dbm)
}

/// The full (θ₁ × θ₂) incidence sweep exactly as the seed evaluated it:
/// steer the live AP per candidate, re-trace per probe. Returns
/// `(peak_dbm, theta1, theta2)` — comparable bit-for-bit with
/// [`estimate_incidence`] on the same RNG seed.
fn uncached_incidence(
    scene: &Scene,
    mut ap: RadioEndpoint,
    mut reflector: MovrReflector,
    config: &AlignmentConfig,
    rng: &mut SimRng,
) -> (f64, f64, f64) {
    assert!(config.modulated, "reference implements the modulated protocol");
    reflector.set_gain_db(config.probe_gain_db);
    reflector.set_modulating(true);
    let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
    for &theta1 in config.reflector_codebook.beams() {
        reflector.steer_both(theta1);
        for &theta2 in config.ap_codebook.beams() {
            ap.steer_to(theta2);
            let reflected =
                uncached_round_trip(scene, &ap, &reflector).unwrap_or(f64::NEG_INFINITY);
            let reading = config
                .probe
                .measure_modulated(reflected, ap.tx_power_dbm(), rng);
            if reading.power_dbm > best.0 {
                best = (reading.power_dbm, theta1, theta2);
            }
        }
    }
    best
}

/// The PR-5 generation of the sweep: traced links, pre-steered tables,
/// and per-pattern gain memos, but still one scalar gain query and one
/// scalar `round_trip_reflection_with` per probe. This is the "cached"
/// row the batched engine is measured against.
fn memoized_incidence(
    scene: &Scene,
    ap: &RadioEndpoint,
    mut reflector: MovrReflector,
    config: &AlignmentConfig,
    rng: &mut SimRng,
) -> (f64, f64, f64) {
    assert!(config.modulated, "reference implements the modulated protocol");
    reflector.set_gain_db(config.probe_gain_db);
    reflector.set_modulating(true);
    let forward = scene.trace_link(ap.position(), reflector.position());
    let back = scene.trace_link(reflector.position(), ap.position());
    let ap_table = PatternTable::new(ap.array(), &config.ap_codebook);
    let ap_patterns: Vec<ArrayPattern<'_>> =
        ap_table.entries().map(|(_, arr)| ArrayPattern(arr)).collect();
    let ap_memos: Vec<MemoPattern<'_>> =
        ap_patterns.iter().map(|p| MemoPattern::new(p)).collect();
    let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
    for &theta1 in config.reflector_codebook.beams() {
        reflector.steer_both(theta1);
        let relay_gain_db = reflector.effective_gain_db();
        let rx_pattern = ArrayPattern(reflector.rx_array());
        let tx_pattern = ArrayPattern(reflector.tx_array());
        let rx_memo = MemoPattern::new(&rx_pattern);
        let tx_memo = MemoPattern::new(&tx_pattern);
        for ((theta2, _), ap_memo) in ap_table.entries().zip(&ap_memos) {
            let reflected = round_trip_reflection_with(
                &forward,
                &back,
                ap_memo,
                ap.tx_power_dbm(),
                relay_gain_db,
                &rx_memo,
                &tx_memo,
            )
            .unwrap_or(f64::NEG_INFINITY);
            let reading = config
                .probe
                .measure_modulated(reflected, ap.tx_power_dbm(), rng);
            if reading.power_dbm > best.0 {
                best = (reading.power_dbm, theta1, theta2);
            }
        }
    }
    best
}

fn sweep_setup() -> (Scene, RadioEndpoint, MovrReflector, AlignmentConfig) {
    let scene = Scene::paper_office();
    let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
    let reflector =
        MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, movr::system::PAPER_DEVICE_SEED);
    // The paper's full sweep: 101 × 101 probes at 1°.
    (scene, ap, reflector, AlignmentConfig::default())
}

/// Batched vs memoized vs uncached full alignment sweep. Asserts
/// bit-identity across all three generations first, then times them and
/// asserts the ≥ 5× memoized-over-uncached and ≥ 2.5× batched-over-
/// memoized speedups the two optimisation rounds claim.
fn bench_alignment_sweep(opts: &BenchOptions) -> (Vec<BenchReport>, f64, f64) {
    let (scene, ap, reflector, cfg) = sweep_setup();

    // Equivalence gate: same seed, same argmax, same peak power bits.
    let mut rng_b = SimRng::seed_from_u64(7);
    let batched = estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng_b);
    let mut rng_m = SimRng::seed_from_u64(7);
    let (m_peak, m_t1, m_t2) =
        memoized_incidence(&scene, &ap, reflector.clone(), &cfg, &mut rng_m);
    let mut rng_u = SimRng::seed_from_u64(7);
    let (peak, t1, t2) = uncached_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng_u);
    assert_eq!(
        batched.peak_power_dbm.to_bits(),
        m_peak.to_bits(),
        "batched sweep must be bit-identical to the memoized reference"
    );
    assert_eq!(batched.reflector_angle_deg, m_t1);
    assert_eq!(batched.ap_angle_deg, m_t2);
    assert_eq!(
        batched.peak_power_dbm.to_bits(),
        peak.to_bits(),
        "batched sweep must be bit-identical to the uncached reference"
    );
    assert_eq!(batched.reflector_angle_deg, t1);
    assert_eq!(batched.ap_angle_deg, t2);

    let r_batched = bench_with_setup(
        "alignment_sweep_101x101_batched",
        opts,
        || SimRng::seed_from_u64(7),
        |mut rng| estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng),
    );
    let r_cached = bench_with_setup(
        "alignment_sweep_101x101_cached",
        opts,
        || SimRng::seed_from_u64(7),
        |mut rng| memoized_incidence(&scene, &ap, reflector.clone(), &cfg, &mut rng),
    );
    let r_uncached = bench_with_setup(
        "alignment_sweep_101x101_uncached",
        opts,
        || SimRng::seed_from_u64(7),
        |mut rng| uncached_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng),
    );
    let sweep_speedup = r_uncached.median_ns / r_cached.median_ns;
    // Paired ratios, not a ratio of the rows above: machine load
    // drifts on second scales, so dividing two independently-taken
    // aggregates mixes different load regimes and swings wildly for a
    // gap this size (the ≥ 5× uncached/cached gap shrugs it off).
    // Timing the two generations back-to-back inside each rep shows
    // both the same machine state; the median of per-rep ratios is
    // what the gate can rely on.
    let mut ratios: Vec<f64> = (0..7)
        .map(|_| {
            let mut rng = SimRng::seed_from_u64(7);
            let t = std::time::Instant::now();
            std::hint::black_box(estimate_incidence(
                &scene,
                ap,
                reflector.clone(),
                &cfg,
                &mut rng,
            ));
            let batched_s = t.elapsed().as_secs_f64();
            let mut rng = SimRng::seed_from_u64(7);
            let t = std::time::Instant::now();
            std::hint::black_box(memoized_incidence(&scene, &ap, reflector.clone(), &cfg, &mut rng));
            t.elapsed().as_secs_f64() / batched_s
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let batch_speedup = ratios[ratios.len() / 2];
    (vec![r_batched, r_cached, r_uncached], sweep_speedup, batch_speedup)
}

/// Runs one seeded VR session and returns a byte-exact fingerprint of
/// everything the fleet aggregates.
fn session_fingerprint(seed: u64) -> String {
    let room = Room::paper_office();
    let trace = RandomWalk::with_gaze(&room, seed, 1.0, Vec2::new(0.5, 2.5));
    let cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
    let out = run_session(&trace, &cfg);
    format!(
        "{:x}:{:x}:{}:{}:{:x}:{:?}",
        out.mean_snr_db.to_bits(),
        out.min_snr_db.to_bits(),
        out.mode_switches,
        out.realignments,
        out.reflector_fraction.to_bits(),
        out.glitches
    )
}

fn run_fleet(seeds: &[u64], threads: usize) -> Vec<String> {
    pool_map(seeds.to_vec(), threads, |_, &seed| session_fingerprint(seed))
}

/// Multi-seed session fleet on the persistent pool, sequential vs
/// fanned out. Asserts the parallel fleet is byte-identical to the
/// single-threaded one at every probed thread count, and — where the
/// machine has the cores — times an explicit 1/2/4/8-thread scaling
/// ladder so the recorded numbers say what parallelism actually bought
/// rather than implying a speedup a small box cannot show. Returns the
/// reports plus `(all-cores speedup, 4-thread speedup, cores)`; the
/// 4-thread figure is 1.0 (vacuous) below 4 cores, and the summary line
/// carries the real thread count so the ratchet can skip honestly.
fn bench_session_fleet(opts: &BenchOptions) -> (Vec<BenchReport>, f64, f64, usize) {
    let seeds: Vec<u64> = (0..8).collect();
    let cores = available_threads();

    let seq = run_fleet(&seeds, 1);
    for probe in [2, 3, 4, 8, cores] {
        assert_eq!(
            run_fleet(&seeds, probe),
            seq,
            "fleet output must be byte-identical on {probe} threads"
        );
    }

    let r_seq = bench_with_setup(
        "session_fleet_8x1s_1thread",
        opts,
        || (),
        |()| run_fleet(&seeds, 1),
    );
    let mut reports = vec![r_seq];
    // The scaling ladder: only thread counts the hardware can actually
    // schedule concurrently; an 8-thread row timed on 1 core would be
    // context-switch noise published as data.
    let mut median_4t = None;
    for (name, t) in [
        ("session_fleet_8x1s_2threads", 2usize),
        ("session_fleet_8x1s_4threads", 4usize),
        ("session_fleet_8x1s_8threads", 8usize),
    ] {
        if cores >= t {
            let r = bench_with_setup(name, opts, || (), |()| run_fleet(&seeds, t));
            if t == 4 {
                median_4t = Some(r.median_ns);
            }
            reports.push(r);
        }
    }
    let r_par = bench_with_setup(
        "session_fleet_8x1s_par",
        opts,
        || (),
        |()| run_fleet(&seeds, cores),
    );
    let speedup = reports[0].median_ns / r_par.median_ns;
    let speedup_4t = median_4t.map_or(1.0, |m| reports[0].median_ns / m);
    if cores >= 4 {
        assert!(
            speedup_4t >= 3.0,
            "4-thread fleet must buy >= 3x on a >= 4-core box, got {speedup_4t:.2}x"
        );
    }
    reports.push(r_par);
    (reports, speedup, speedup_4t, cores)
}

fn main() {
    let opts = BenchOptions::from_args(std::env::args().skip(1));

    let (sweep_reports, sweep_speedup, batch_speedup) = bench_alignment_sweep(&opts);
    for r in &sweep_reports {
        println!("{}", r.json_line());
    }
    println!(
        "{{\"name\":\"sweep_speedup\",\"speedup\":{sweep_speedup:.2},\"threshold\":5.0,\
         \"bit_identical\":true}}"
    );
    println!(
        "{{\"name\":\"batch_speedup\",\"speedup\":{batch_speedup:.2},\"threshold\":2.5,\
         \"bit_identical\":true}}"
    );
    // Gate after the rows are out so a failing run still shows its data.
    assert!(
        sweep_speedup >= 5.0,
        "link cache must buy >= 5x on the full sweep, got {sweep_speedup:.2}x"
    );
    assert!(
        batch_speedup >= 2.5,
        "batch kernels must buy >= 2.5x over the memoized sweep, got {batch_speedup:.2}x"
    );

    let (fleet_reports, fleet_speedup, fleet_speedup_4t, cores) = bench_session_fleet(&opts);
    for r in &fleet_reports {
        println!("{}", r.json_line());
    }
    // `cores` is the detected parallelism the fleet actually ran on; a
    // `threads: 1` line is an honest "this box cannot demonstrate the
    // fan-out", which downstream ratchets must tolerate explicitly.
    println!(
        "{{\"name\":\"fleet_speedup\",\"speedup\":{fleet_speedup:.2},\"threads\":{cores},\
         \"cores\":{cores},\"byte_identical\":true}}"
    );
    // The 4-thread rung of the ladder, pinned separately: `threads` is
    // the rung actually timed (capped by the hardware), so the ratchet's
    // `skip_below_threads = 4` skips this pin on smaller boxes instead
    // of passing a vacuous 1.0.
    println!(
        "{{\"name\":\"fleet_speedup_4t\",\"speedup\":{fleet_speedup_4t:.2},\
         \"threads\":{threads},\"cores\":{cores},\"byte_identical\":true}}",
        threads = cores.min(4),
    );
}
