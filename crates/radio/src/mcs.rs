//! The 802.11ad rate ladder.
//!
//! A merged SC/OFDM modulation-and-coding ladder for one 2.16 GHz channel,
//! indexed by the minimum SNR needed to decode at an acceptable error
//! rate. Rates are the standard's PHY rates (MCS 1–12 single carrier,
//! then the high OFDM rates up to 6756.75 Mb/s). Thresholds follow the
//! usual link-abstraction values used in the mmWave literature, anchored
//! at both ends by the paper itself:
//!
//! * §3 — a clear LOS link at ~25 dB SNR delivers "almost 7 Gb/s";
//! * §5.2 — "the 20 dB needed for the maximum data rate".
//!
//! The VR requirement line in Fig. 3 is modelled as
//! [`VR_REQUIRED_RATE_MBPS`] (4 Gb/s — between the 1080p and 2160p
//! uncompressed HDMI rates the introduction discusses) with its matching
//! SNR threshold [`VR_REQUIRED_SNR_DB`].

/// One rung of the rate ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McsEntry {
    /// Ladder index (0 = control PHY).
    pub index: usize,
    /// Human-readable modulation/coding label.
    pub label: &'static str,
    /// PHY rate, Mb/s.
    pub rate_mbps: f64,
    /// Minimum SNR to decode, dB.
    pub min_snr_db: f64,
}

/// The merged 802.11ad ladder, lowest rate first.
const LADDER: &[McsEntry] = &[
    McsEntry { index: 0, label: "CTRL DBPSK 1/2", rate_mbps: 27.5, min_snr_db: -1.0 },
    McsEntry { index: 1, label: "SC BPSK 1/2", rate_mbps: 385.0, min_snr_db: 1.0 },
    McsEntry { index: 2, label: "SC BPSK 1/2 x2", rate_mbps: 770.0, min_snr_db: 3.0 },
    McsEntry { index: 3, label: "SC BPSK 5/8", rate_mbps: 962.5, min_snr_db: 4.0 },
    McsEntry { index: 4, label: "SC BPSK 3/4", rate_mbps: 1155.0, min_snr_db: 5.0 },
    McsEntry { index: 5, label: "SC BPSK 13/16", rate_mbps: 1251.25, min_snr_db: 5.5 },
    McsEntry { index: 6, label: "SC QPSK 1/2", rate_mbps: 1540.0, min_snr_db: 6.5 },
    McsEntry { index: 7, label: "SC QPSK 5/8", rate_mbps: 1925.0, min_snr_db: 8.0 },
    McsEntry { index: 8, label: "SC QPSK 3/4", rate_mbps: 2310.0, min_snr_db: 9.5 },
    McsEntry { index: 9, label: "SC QPSK 13/16", rate_mbps: 2502.5, min_snr_db: 10.5 },
    McsEntry { index: 10, label: "SC 16QAM 1/2", rate_mbps: 3080.0, min_snr_db: 12.0 },
    McsEntry { index: 11, label: "SC 16QAM 5/8", rate_mbps: 3850.0, min_snr_db: 13.5 },
    McsEntry { index: 12, label: "SC 16QAM 3/4", rate_mbps: 4620.0, min_snr_db: 15.0 },
    McsEntry { index: 13, label: "OFDM 16QAM 13/16", rate_mbps: 5197.5, min_snr_db: 16.5 },
    McsEntry { index: 14, label: "OFDM 64QAM 5/8", rate_mbps: 6237.0, min_snr_db: 18.0 },
    McsEntry { index: 15, label: "OFDM 64QAM 13/16", rate_mbps: 6756.75, min_snr_db: 20.0 },
];

/// Data rate a high-quality untethered VR headset needs, Mb/s.
pub const VR_REQUIRED_RATE_MBPS: f64 = 4000.0;

/// The SNR at which the ladder first meets [`VR_REQUIRED_RATE_MBPS`]
/// (the dashed "Required SNR by VR headset" line of Fig. 3).
pub const VR_REQUIRED_SNR_DB: f64 = 15.0;

/// The 802.11ad rate table.
///
/// ```
/// use movr_radio::RateTable;
///
/// let t = RateTable;
/// // The paper's anchors: ~7 Gb/s at a clear-LOS 25 dB, the top rate
/// // needs 20 dB, and a hand-blocked link can no longer carry VR.
/// assert_eq!(t.rate_mbps(25.0), 6756.75);
/// assert_eq!(t.rate_mbps(20.0), 6756.75);
/// assert!(t.supports_vr(25.0));
/// assert!(!t.supports_vr(25.0 - 17.0));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RateTable;

impl RateTable {
    /// All ladder entries, lowest rate first.
    pub fn entries(&self) -> &'static [McsEntry] {
        LADDER
    }

    /// The highest-rate entry decodable at `snr_db`, or `None` if even the
    /// control PHY cannot decode (link outage).
    pub fn best_mcs(&self, snr_db: f64) -> Option<&'static McsEntry> {
        LADDER
            .iter()
            .rev()
            .find(|e| snr_db >= e.min_snr_db)
    }

    /// Achievable PHY rate at `snr_db`, Mb/s (0 in outage) — the mapping
    /// that produces Fig. 3's bottom panel from its top panel.
    pub fn rate_mbps(&self, snr_db: f64) -> f64 {
        self.best_mcs(snr_db).map_or(0.0, |e| e.rate_mbps)
    }

    /// The top of the ladder.
    pub fn max_rate_mbps(&self) -> f64 {
        LADDER.last().expect("ladder non-empty").rate_mbps
    }

    /// True if `snr_db` sustains the VR-required data rate.
    pub fn supports_vr(&self, snr_db: f64) -> bool {
        self.rate_mbps(snr_db) >= VR_REQUIRED_RATE_MBPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone() {
        for w in LADDER.windows(2) {
            assert!(w[1].rate_mbps > w[0].rate_mbps, "rates must increase");
            assert!(w[1].min_snr_db > w[0].min_snr_db, "thresholds must increase");
            assert_eq!(w[1].index, w[0].index + 1);
        }
    }

    #[test]
    fn paper_anchor_max_rate_at_20db() {
        let t = RateTable;
        assert_eq!(t.rate_mbps(20.0), 6756.75);
        assert!(t.rate_mbps(19.9) < 6756.75);
    }

    #[test]
    fn paper_anchor_los_25db_is_almost_7gbps() {
        let t = RateTable;
        let r = t.rate_mbps(25.0);
        assert!((6500.0..7000.0).contains(&r), "r={r}");
    }

    #[test]
    fn outage_below_control_phy() {
        let t = RateTable;
        assert_eq!(t.rate_mbps(-1.1), 0.0);
        assert!(t.best_mcs(-5.0).is_none());
        assert_eq!(t.rate_mbps(-1.0), 27.5);
    }

    #[test]
    fn vr_requirement_consistency() {
        let t = RateTable;
        // The declared SNR threshold is exactly where the ladder first
        // meets the requirement.
        assert!(t.supports_vr(VR_REQUIRED_SNR_DB));
        assert!(!t.supports_vr(VR_REQUIRED_SNR_DB - 0.1));
        assert!(t.rate_mbps(VR_REQUIRED_SNR_DB) >= VR_REQUIRED_RATE_MBPS);
    }

    #[test]
    fn hand_blockage_kills_vr_rate() {
        // §3: LOS ≈ 25 dB works; a >14 dB hand-blockage drop does not.
        let t = RateTable;
        assert!(t.supports_vr(25.0));
        assert!(!t.supports_vr(25.0 - 14.0));
    }

    #[test]
    fn best_mcs_picks_highest_decodable() {
        let t = RateTable;
        let e = t.best_mcs(12.3).unwrap();
        assert_eq!(e.index, 10);
        let e = t.best_mcs(1.0).unwrap();
        assert_eq!(e.index, 1);
    }

    #[test]
    fn rate_is_monotone_in_snr() {
        let t = RateTable;
        let mut prev = -1.0;
        let mut snr = -5.0;
        while snr <= 30.0 {
            let r = t.rate_mbps(snr);
            assert!(r >= prev);
            prev = r;
            snr += 0.25;
        }
    }
}
