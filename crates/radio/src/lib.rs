//! 802.11ad-class mmWave radio models.
//!
//! The paper attaches a mmWave radio to the VR PC (the "AP") and another to
//! the headset, and converts measured SNRs to data rates "by substituting
//! the SNR measurements into standard rate tables based on the 802.11ad
//! modulation and code rates" (§3). This crate supplies those pieces:
//!
//! * [`mcs`] — the 802.11ad rate ladder: SNR thresholds → PHY rate, up to
//!   6.76 Gb/s, with the paper's §5.2 anchor that the top rate needs
//!   ~20 dB of SNR.
//! * [`per`] — a packet-error-rate model around each MCS threshold, used
//!   by the end-to-end VR session simulation for glitch accounting.
//! * [`endpoint`] — a radio bolted to a steerable phased array at a
//!   position in the room, and link-budget evaluation between two of them
//!   through an `movr-rfsim` scene.
//! * [`tone`] — the backscatter probe: a transmitted sinewave at f₁, the
//!   reflector's on/off modulation at f₂, and the AP-side filter that
//!   separates the f₁+f₂ sideband from the AP's own TX→RX leakage (§4.1).

pub mod adaptation;
pub mod endpoint;
pub mod frame;
pub mod mcs;
pub mod per;
pub mod sls;
pub mod tone;

pub use adaptation::{BadMcsIndex, Hysteresis, Oracle, RateAdapter, SnrThreshold};
pub use endpoint::{evaluate_link, ArrayPattern, RadioEndpoint};
pub use frame::FrameConfig;
pub use sls::{sector_level_sweep, SlsConfig, SlsResult};
pub use mcs::{McsEntry, RateTable, VR_REQUIRED_RATE_MBPS, VR_REQUIRED_SNR_DB};
pub use per::PerModel;
pub use tone::{ToneMeasurement, ToneMeter, ToneProbe};
