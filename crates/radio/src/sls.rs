//! 802.11ad sector-level sweep (SLS) beam training.
//!
//! Two *full* radios — both with transmit and receive chains, like the
//! AP and the headset — acquire each other with the standard's SLS: the
//! initiator blasts a short Sector Sweep frame through each of its
//! sectors while the responder listens quasi-omni; the responder then
//! sweeps its own sectors; a feedback exchange pins the winners.
//!
//! This is the protocol the mmWave literature the paper cites ([26, 30,
//! 33]) builds on, and the one MoVR *cannot* run: the reflector has no
//! chains to transmit sweep frames or receive feedback with. SLS here
//! trains the direct AP↔headset link; the reflector needs §4.1's
//! backscatter protocol (`movr::alignment`).

use crate::endpoint::{ArrayPattern, RadioEndpoint};
use movr_math::SimRng;
use movr_phased_array::Codebook;
use movr_rfsim::{IsotropicPattern, Scene};
use movr_sim::SimTime;

/// SLS parameters.
#[derive(Debug, Clone)]
pub struct SlsConfig {
    /// The initiator's sector codebook (absolute bearings).
    pub initiator_codebook: Codebook,
    /// The responder's sector codebook (absolute bearings).
    pub responder_codebook: Codebook,
    /// Airtime of one Sector Sweep frame (short control-PHY frame).
    pub ssw_frame: SimTime,
    /// Airtime of the feedback + ACK exchange at the end.
    pub feedback: SimTime,
    /// RMS noise on per-sector SNR measurements, dB.
    pub snr_sigma_db: f64,
}

impl SlsConfig {
    /// A sweep over each node's full scan range at one-beamwidth steps
    /// (the standard sweeps sectors, not fine angles).
    pub fn standard(initiator: &RadioEndpoint, responder: &RadioEndpoint) -> Self {
        let sector_step = 10.0;
        let ib = initiator.array().boresight_deg();
        let rb = responder.array().boresight_deg();
        let span = initiator.array().max_steer_deg();
        SlsConfig {
            initiator_codebook: Codebook::sweep(ib - span, ib + span, sector_step),
            responder_codebook: Codebook::sweep(rb - span, rb + span, sector_step),
            ssw_frame: SimTime::from_micros(16),
            feedback: SimTime::from_micros(50),
            snr_sigma_db: 0.5,
        }
    }
}

/// The outcome of one sector-level sweep.
#[derive(Debug, Clone, Copy)]
pub struct SlsResult {
    /// Winning initiator sector, absolute degrees.
    pub initiator_deg: f64,
    /// Winning responder sector, absolute degrees.
    pub responder_deg: f64,
    /// SNR with both winners applied, dB.
    pub trained_snr_db: f64,
    /// Sector frames transmitted.
    pub frames: usize,
    /// Wall-clock of the whole exchange.
    pub elapsed: SimTime,
}

/// Runs SLS between `initiator` and `responder` through `scene`.
/// Endpoints are taken by value (training steers them); apply the result
/// to the real endpoints afterwards.
pub fn sector_level_sweep(
    scene: &Scene,
    mut initiator: RadioEndpoint,
    mut responder: RadioEndpoint,
    config: &SlsConfig,
    rng: &mut SimRng,
) -> SlsResult {
    let mut frames = 0usize;

    // Phase 1: initiator sweeps, responder listens quasi-omni.
    let mut best_i = (f64::NEG_INFINITY, config.initiator_codebook.beams()[0]);
    for &sector in config.initiator_codebook.beams() {
        initiator.steer_to(sector);
        let lb = scene.link_budget(
            initiator.position(),
            &ArrayPattern(initiator.array()),
            initiator.tx_power_dbm(),
            responder.position(),
            &IsotropicPattern,
        );
        let measured = scene.noise().snr_db(lb.received_dbm) + rng.normal(0.0, config.snr_sigma_db);
        frames += 1;
        if measured > best_i.0 {
            best_i = (measured, sector);
        }
    }
    initiator.steer_to(best_i.1);

    // Phase 2: responder sweeps back, initiator listens quasi-omni.
    let mut best_r = (f64::NEG_INFINITY, config.responder_codebook.beams()[0]);
    for &sector in config.responder_codebook.beams() {
        responder.steer_to(sector);
        let lb = scene.link_budget(
            responder.position(),
            &ArrayPattern(responder.array()),
            responder.tx_power_dbm(),
            initiator.position(),
            &IsotropicPattern,
        );
        let measured = scene.noise().snr_db(lb.received_dbm) + rng.normal(0.0, config.snr_sigma_db);
        frames += 1;
        if measured > best_r.0 {
            best_r = (measured, sector);
        }
    }
    responder.steer_to(best_r.1);

    // Feedback exchange, then measure the trained link for real.
    let trained = crate::endpoint::evaluate_link(scene, &initiator, &responder).snr_db;
    let elapsed = SimTime::from_nanos(
        movr_math::convert::usize_to_u64(frames) * config.ssw_frame.as_nanos() + config.feedback.as_nanos(),
    );

    SlsResult {
        initiator_deg: best_i.1,
        responder_deg: best_r.1,
        trained_snr_db: trained,
        frames,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_math::{wrap_deg_180, Vec2};

    fn setup() -> (Scene, RadioEndpoint, RadioEndpoint) {
        let scene = Scene::paper_office();
        let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
        let hs_pos = Vec2::new(4.0, 2.5);
        let hs = RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(Vec2::new(0.5, 2.5)));
        (scene, ap, hs)
    }

    #[test]
    fn sls_finds_the_direct_beams() {
        let (scene, ap, hs) = setup();
        let cfg = SlsConfig::standard(&ap, &hs);
        let mut rng = SimRng::seed_from_u64(1);
        let r = sector_level_sweep(&scene, ap, hs, &cfg, &mut rng);
        let truth_i = ap.position().bearing_deg_to(hs.position());
        let truth_r = hs.position().bearing_deg_to(ap.position());
        // Sector resolution is 10°: winners land within one sector.
        assert!(
            wrap_deg_180(r.initiator_deg - truth_i).abs() <= 10.0,
            "initiator {} truth {truth_i}",
            r.initiator_deg
        );
        assert!(
            wrap_deg_180(r.responder_deg - truth_r).abs() <= 10.0,
            "responder {} truth {truth_r}",
            r.responder_deg
        );
        // And the trained link is VR-grade.
        assert!(r.trained_snr_db > crate::mcs::VR_REQUIRED_SNR_DB, "{}", r.trained_snr_db);
    }

    #[test]
    fn sls_is_fast_where_it_applies() {
        // Two 15-sector sweeps at 16 µs plus feedback: well under a
        // millisecond — this is why full radios don't need MoVR's trick.
        let (scene, ap, hs) = setup();
        let cfg = SlsConfig::standard(&ap, &hs);
        let mut rng = SimRng::seed_from_u64(2);
        let r = sector_level_sweep(&scene, ap, hs, &cfg, &mut rng);
        assert!(r.elapsed < SimTime::from_millis(1), "elapsed {}", r.elapsed);
        assert_eq!(
            r.frames,
            cfg.initiator_codebook.len() + cfg.responder_codebook.len()
        );
    }

    #[test]
    fn sls_accounting_scales_with_codebooks() {
        let (scene, ap, hs) = setup();
        let mut cfg = SlsConfig::standard(&ap, &hs);
        cfg.initiator_codebook = Codebook::sweep(-10.0, 50.0, 5.0);
        cfg.responder_codebook = Codebook::sweep(150.0, 210.0, 5.0);
        let mut rng = SimRng::seed_from_u64(3);
        let r = sector_level_sweep(&scene, ap, hs, &cfg, &mut rng);
        assert_eq!(r.frames, 13 + 13);
        let expect =
            SimTime::from_nanos(26 * cfg.ssw_frame.as_nanos() + cfg.feedback.as_nanos());
        assert_eq!(r.elapsed, expect);
    }

    #[test]
    fn deterministic_per_seed() {
        let (scene, ap, hs) = setup();
        let cfg = SlsConfig::standard(&ap, &hs);
        let mut r1 = SimRng::seed_from_u64(7);
        let mut r2 = SimRng::seed_from_u64(7);
        let a = sector_level_sweep(&scene, ap, hs, &cfg, &mut r1);
        let b = sector_level_sweep(&scene, ap, hs, &cfg, &mut r2);
        assert_eq!(a.initiator_deg, b.initiator_deg);
        assert_eq!(a.responder_deg, b.responder_deg);
    }
}
