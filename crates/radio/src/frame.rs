//! 802.11ad PPDU framing and airtime.
//!
//! A video frame is not one giant transmission: it is fragmented into
//! PPDUs, each paying fixed preamble/header overhead before its payload
//! bits flow at the MCS rate. At multi-Gb/s rates this overhead is what
//! separates PHY rate from goodput, so the session simulator uses these
//! airtimes rather than the bare ladder rate.
//!
//! Durations follow the 802.11ad single-carrier PHY structure: a short
//! training field + channel estimation (~1.9 µs together), a header
//! (~0.6 µs), then payload symbol blocks, plus a short inter-frame space
//! between PPDUs.

use crate::mcs::McsEntry;
use movr_sim::SimTime;

/// Fixed per-PPDU overhead and limits.
#[derive(Debug, Clone, Copy)]
pub struct FrameConfig {
    /// Preamble (STF + CEF) duration, ns.
    pub preamble_ns: u64,
    /// PHY header duration, ns.
    pub header_ns: u64,
    /// Short inter-frame space between PPDUs, ns.
    pub sifs_ns: u64,
    /// Maximum PPDU payload, bits.
    pub max_psdu_bits: u64,
}

impl Default for FrameConfig {
    fn default() -> Self {
        FrameConfig {
            preamble_ns: 1_891,
            header_ns: 582,
            sifs_ns: 3_000,
            // 262 143 octets is the standard's PSDU cap.
            max_psdu_bits: 262_143 * 8,
        }
    }
}

impl FrameConfig {
    /// Airtime of a single PPDU carrying `payload_bits` at `mcs`.
    pub fn ppdu_airtime(&self, mcs: &McsEntry, payload_bits: u64) -> SimTime {
        debug_assert!(payload_bits <= self.max_psdu_bits);
        let payload_ns = (payload_bits as f64 / mcs.rate_mbps * 1_000.0).ceil() as u64;
        SimTime::from_nanos(self.preamble_ns + self.header_ns + payload_ns)
    }

    /// Number of PPDUs needed for `total_bits`.
    pub fn ppdu_count(&self, total_bits: u64) -> u64 {
        total_bits.div_ceil(self.max_psdu_bits)
    }

    /// Total airtime to move `total_bits` at `mcs`, including per-PPDU
    /// overhead and inter-frame spacing.
    pub fn burst_airtime(&self, mcs: &McsEntry, total_bits: u64) -> SimTime {
        if total_bits == 0 {
            return SimTime::ZERO;
        }
        let n = self.ppdu_count(total_bits);
        let full = n - 1;
        let rem = total_bits - full * self.max_psdu_bits;
        let mut total = 0u64;
        for _ in 0..full {
            total += self.ppdu_airtime(mcs, self.max_psdu_bits).as_nanos();
        }
        total += self.ppdu_airtime(mcs, rem).as_nanos();
        total += self.sifs_ns * (n - 1);
        SimTime::from_nanos(total)
    }

    /// Effective throughput (Mb/s) for large bursts at `mcs`: payload
    /// bits over total airtime. Always below the PHY rate.
    pub fn effective_rate_mbps(&self, mcs: &McsEntry) -> f64 {
        let bits = self.max_psdu_bits;
        let t = self.ppdu_airtime(mcs, bits) + SimTime::from_nanos(self.sifs_ns);
        bits as f64 / t.as_secs_f64() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::RateTable;

    fn top_mcs() -> &'static McsEntry {
        RateTable.entries().last().unwrap()
    }

    #[test]
    fn single_ppdu_airtime_is_overhead_plus_payload() {
        let cfg = FrameConfig::default();
        let m = top_mcs();
        let t = cfg.ppdu_airtime(m, 1_000_000);
        let payload_ns = (1_000_000.0 / m.rate_mbps * 1000.0).ceil() as u64;
        assert_eq!(
            t.as_nanos(),
            cfg.preamble_ns + cfg.header_ns + payload_ns
        );
    }

    #[test]
    fn ppdu_count_rounds_up() {
        let cfg = FrameConfig::default();
        assert_eq!(cfg.ppdu_count(1), 1);
        assert_eq!(cfg.ppdu_count(cfg.max_psdu_bits), 1);
        assert_eq!(cfg.ppdu_count(cfg.max_psdu_bits + 1), 2);
        assert_eq!(cfg.ppdu_count(3 * cfg.max_psdu_bits), 3);
    }

    #[test]
    fn burst_airtime_exceeds_ideal() {
        let cfg = FrameConfig::default();
        let m = top_mcs();
        // A 44.4 Mbit VR frame.
        let bits = 44_400_000u64;
        let t = cfg.burst_airtime(m, bits);
        let ideal = bits as f64 / (m.rate_mbps * 1e6);
        assert!(t.as_secs_f64() > ideal);
        // ...but the overhead stays modest (< 10 %).
        assert!(t.as_secs_f64() < ideal * 1.10, "t={t} ideal={ideal}");
    }

    #[test]
    fn zero_bits_zero_airtime() {
        let cfg = FrameConfig::default();
        assert_eq!(cfg.burst_airtime(top_mcs(), 0), SimTime::ZERO);
    }

    #[test]
    fn effective_rate_below_phy_rate() {
        let cfg = FrameConfig::default();
        for m in RateTable.entries() {
            let eff = cfg.effective_rate_mbps(m);
            assert!(eff < m.rate_mbps, "{}", m.label);
            assert!(eff > 0.80 * m.rate_mbps, "overhead too big for {}", m.label);
        }
    }

    #[test]
    fn overhead_hurts_fast_mcs_more() {
        // Fixed-time overhead is relatively larger at higher rates.
        let cfg = FrameConfig::default();
        let e = RateTable.entries();
        let slow_frac = cfg.effective_rate_mbps(&e[1]) / e[1].rate_mbps;
        let fast_frac = cfg.effective_rate_mbps(e.last().unwrap()) / e.last().unwrap().rate_mbps;
        assert!(slow_frac > fast_frac);
    }
}
