//! Rate adaptation.
//!
//! The paper converts SNR to rate through the standard tables; a real
//! link must *choose* an MCS from noisy SNR estimates, and the choice
//! policy affects how gracefully the link rides through partial blockage
//! (the taper region of a hand entering the beam). Three policies:
//!
//! * [`SnrThreshold`] — pick the highest MCS whose threshold the current
//!   SNR estimate clears, minus a safety backoff. Memoryless.
//! * [`Hysteresis`] — the same, but an MCS change requires the SNR to
//!   cross the boundary by a margin and stay there for several reports,
//!   suppressing flapping at scenario edges.
//! * [`Oracle`] — picks from the true SNR (upper bound for comparisons).

use crate::mcs::{McsEntry, RateTable};
use movr_math::convert::usize_to_u64;
use movr_obs::{Event, Recorder};
use movr_sim::SimTime;

/// A rate-adaptation policy consuming periodic SNR reports.
pub trait RateAdapter {
    /// Feeds one SNR report and returns the MCS to use next
    /// (`None` = link outage, don't transmit).
    fn on_snr_report(&mut self, snr_db: f64) -> Option<&'static McsEntry>;

    /// The currently selected MCS.
    fn current(&self) -> Option<&'static McsEntry>;

    /// [`RateAdapter::on_snr_report`] with observability: emits one event
    /// per *decision change* — `rate_up`, `rate_down`, `rate_outage`,
    /// `rate_restore` — carrying the report SNR and the MCS transition.
    /// Steady-state reports (no MCS change) stay silent so a 90 Hz report
    /// stream doesn't flood the timeline. The policy's behaviour is
    /// unchanged: this default method only watches `current()`.
    fn on_snr_report_recorded(
        &mut self,
        now: SimTime,
        snr_db: f64,
        rec: &mut dyn Recorder,
    ) -> Option<&'static McsEntry> {
        let before = self.current().map(|m| m.index);
        let chosen = self.on_snr_report(snr_db);
        if rec.enabled() {
            let after = chosen.map(|m| m.index);
            let event = |kind: &'static str| {
                let mut e = Event::new(now, kind).with("snr_report_db", snr_db);
                if let Some(i) = before {
                    e = e.with("from_mcs", usize_to_u64(i));
                }
                if let Some(i) = after {
                    e = e.with("to_mcs", usize_to_u64(i));
                }
                e
            };
            match (before, after) {
                (Some(b), Some(a)) if a > b => rec.record(event("rate_up")),
                (Some(b), Some(a)) if a < b => rec.record(event("rate_down")),
                (Some(_), None) => rec.record(event("rate_outage")),
                (None, Some(_)) => rec.record(event("rate_restore")),
                _ => {}
            }
        }
        chosen
    }
}

/// Error restoring a rate-adapter checkpoint: the stored MCS index does
/// not exist in the rate table (snapshot corruption or a table change).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadMcsIndex {
    /// The stored index.
    pub index: usize,
    /// Number of entries in the current rate table.
    pub table_len: usize,
}

impl std::fmt::Display for BadMcsIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MCS index {} out of range for a {}-entry rate table",
            self.index, self.table_len
        )
    }
}

impl std::error::Error for BadMcsIndex {}

/// Maps a checkpointed MCS index back to the table entry.
fn entry_for(index: Option<usize>) -> Result<Option<&'static McsEntry>, BadMcsIndex> {
    match index {
        None => Ok(None),
        Some(i) => {
            let entries = RateTable.entries();
            entries.get(i).map(Some).ok_or(BadMcsIndex {
                index: i,
                table_len: entries.len(),
            })
        }
    }
}

/// Threshold selection with a fixed safety backoff.
#[derive(Debug, Clone)]
pub struct SnrThreshold {
    table: RateTable,
    /// Safety margin subtracted from reports before lookup, dB.
    pub backoff_db: f64,
    current: Option<&'static McsEntry>,
}

impl SnrThreshold {
    /// Creates the policy with the given backoff.
    pub fn new(backoff_db: f64) -> Self {
        SnrThreshold {
            table: RateTable,
            backoff_db,
            current: None,
        }
    }

    /// Index of the currently selected MCS, for checkpointing.
    pub fn current_index(&self) -> Option<usize> {
        self.current.map(|m| m.index)
    }

    /// Restores the selection from a checkpointed index.
    pub fn restore_current(&mut self, index: Option<usize>) -> Result<(), BadMcsIndex> {
        self.current = entry_for(index)?;
        Ok(())
    }
}

impl RateAdapter for SnrThreshold {
    fn on_snr_report(&mut self, snr_db: f64) -> Option<&'static McsEntry> {
        self.current = self.table.best_mcs(snr_db - self.backoff_db);
        self.current
    }
    fn current(&self) -> Option<&'static McsEntry> {
        self.current
    }
}

/// Threshold selection with hysteresis: upgrades need `up_margin_db`
/// above the next rung's threshold sustained for `up_count` consecutive
/// reports; downgrades are immediate (losing frames is worse than losing
/// rate).
#[derive(Debug, Clone)]
pub struct Hysteresis {
    table: RateTable,
    /// Extra SNR margin required before upgrading, dB.
    pub up_margin_db: f64,
    /// Consecutive qualifying reports required before upgrading.
    pub up_count: usize,
    /// Backoff subtracted from the reported SNR, dB.
    pub backoff_db: f64,
    current: Option<&'static McsEntry>,
    up_streak: usize,
}

impl Hysteresis {
    /// Creates the policy. Typical: 1 dB margin, 3 reports, 1 dB backoff.
    pub fn new(up_margin_db: f64, up_count: usize, backoff_db: f64) -> Self {
        assert!(up_count >= 1, "up_count must be at least 1"); // lint: constructor contract — a zero threshold is a caller bug, not runtime input
        Hysteresis {
            table: RateTable,
            up_margin_db,
            up_count,
            backoff_db,
            current: None,
            up_streak: 0,
        }
    }

    fn index_of(mcs: Option<&'static McsEntry>) -> Option<usize> {
        mcs.map(|m| m.index)
    }

    /// Index of the currently selected MCS, for checkpointing.
    pub fn current_index(&self) -> Option<usize> {
        Self::index_of(self.current)
    }

    /// Consecutive qualifying up-reports accumulated so far — part of the
    /// checkpointed state, since an in-flight streak changes when the next
    /// upgrade happens.
    pub fn up_streak(&self) -> usize {
        self.up_streak
    }

    /// Restores the selection and upgrade streak from a checkpoint.
    pub fn restore_state(
        &mut self,
        index: Option<usize>,
        up_streak: usize,
    ) -> Result<(), BadMcsIndex> {
        self.current = entry_for(index)?;
        self.up_streak = up_streak;
        Ok(())
    }
}

impl RateAdapter for Hysteresis {
    fn on_snr_report(&mut self, snr_db: f64) -> Option<&'static McsEntry> {
        let snr = snr_db - self.backoff_db;
        let ideal = self.table.best_mcs(snr);

        match (Self::index_of(self.current), Self::index_of(ideal)) {
            // Outage or downgrade: take it immediately.
            (_, None) => {
                self.current = None;
                self.up_streak = 0;
            }
            (None, Some(_)) => {
                // Coming out of outage: join at the ideal rung directly.
                self.current = ideal;
                self.up_streak = 0;
            }
            (Some(cur), Some(want)) if want < cur => {
                self.current = ideal;
                self.up_streak = 0;
            }
            (Some(cur), Some(want)) if want > cur => {
                // Upgrade only with sustained margin above the next rung.
                let next = &self.table.entries()[cur + 1];
                if snr >= next.min_snr_db + self.up_margin_db {
                    self.up_streak += 1;
                    if self.up_streak >= self.up_count {
                        self.current = Some(next);
                        self.up_streak = 0;
                    }
                } else {
                    self.up_streak = 0;
                }
            }
            _ => {
                self.up_streak = 0;
            }
        }
        self.current
    }
    fn current(&self) -> Option<&'static McsEntry> {
        self.current
    }
}

/// Oracle policy: exact lookup on the true SNR, no backoff.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    current: Option<&'static McsEntry>,
}

impl Oracle {
    /// Index of the currently selected MCS, for checkpointing.
    pub fn current_index(&self) -> Option<usize> {
        self.current.map(|m| m.index)
    }

    /// Restores the selection from a checkpointed index.
    pub fn restore_current(&mut self, index: Option<usize>) -> Result<(), BadMcsIndex> {
        self.current = entry_for(index)?;
        Ok(())
    }
}

impl RateAdapter for Oracle {
    fn on_snr_report(&mut self, snr_db: f64) -> Option<&'static McsEntry> {
        self.current = RateTable.best_mcs(snr_db);
        self.current
    }
    fn current(&self) -> Option<&'static McsEntry> {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_tracks_snr() {
        let mut a = SnrThreshold::new(0.0);
        assert_eq!(a.on_snr_report(25.0).unwrap().rate_mbps, 6756.75);
        assert_eq!(a.on_snr_report(12.5).unwrap().index, 10);
        assert!(a.on_snr_report(-5.0).is_none());
    }

    #[test]
    fn backoff_is_conservative() {
        let mut plain = SnrThreshold::new(0.0);
        let mut safe = SnrThreshold::new(2.0);
        let p = plain.on_snr_report(20.5).unwrap();
        let s = safe.on_snr_report(20.5).unwrap();
        assert!(s.rate_mbps < p.rate_mbps);
    }

    #[test]
    fn hysteresis_downgrades_immediately() {
        let mut h = Hysteresis::new(1.0, 3, 0.0);
        h.on_snr_report(25.0);
        assert_eq!(h.current().unwrap().index, 15);
        // One bad report drops the rate at once (10.0 dB decodes MCS 8,
        // whose threshold is 9.5; MCS 9 needs 10.5).
        h.on_snr_report(10.0);
        assert_eq!(h.current().unwrap().index, 8);
    }

    #[test]
    fn hysteresis_upgrades_slowly() {
        let mut h = Hysteresis::new(1.0, 3, 0.0);
        h.on_snr_report(10.0); // index 9 (10.5 needs more) -> actually 8
        let start = h.current().unwrap().index;
        // SNR recovers to 25: the ideal is the top, but we climb one rung
        // per 3 sustained reports.
        for _ in 0..3 {
            h.on_snr_report(25.0);
        }
        assert_eq!(h.current().unwrap().index, start + 1);
        for _ in 0..3 {
            h.on_snr_report(25.0);
        }
        assert_eq!(h.current().unwrap().index, start + 2);
    }

    #[test]
    fn hysteresis_streak_resets_on_dip() {
        let mut h = Hysteresis::new(1.0, 3, 0.0);
        h.on_snr_report(12.0);
        let start = h.current().unwrap().index;
        h.on_snr_report(25.0);
        h.on_snr_report(25.0);
        h.on_snr_report(12.0); // dip resets the streak (same rung keeps)
        h.on_snr_report(25.0);
        h.on_snr_report(25.0);
        assert_eq!(h.current().unwrap().index, start, "streak must reset");
        h.on_snr_report(25.0);
        assert_eq!(h.current().unwrap().index, start + 1);
    }

    #[test]
    fn hysteresis_joins_from_outage_directly() {
        let mut h = Hysteresis::new(1.0, 3, 0.0);
        assert!(h.on_snr_report(-5.0).is_none());
        let m = h.on_snr_report(18.5).unwrap();
        assert_eq!(m.index, 14, "no rung-by-rung climb out of outage");
    }

    #[test]
    fn oracle_is_exact() {
        let mut o = Oracle::default();
        assert_eq!(o.on_snr_report(20.0).unwrap().rate_mbps, 6756.75);
        assert_eq!(o.on_snr_report(19.99).unwrap().index, 14);
    }

    #[test]
    fn recorded_reports_emit_only_decision_changes() {
        use movr_obs::{MemoryRecorder, Value};
        use movr_sim::SimTime;
        let mut a = SnrThreshold::new(0.0);
        let mut rec = MemoryRecorder::new();
        let t = |ms| SimTime::from_millis(ms);
        // First report: None -> Some is a restore (link comes up).
        a.on_snr_report_recorded(t(0), 25.0, &mut rec);
        // Steady state: same MCS, no event.
        a.on_snr_report_recorded(t(11), 25.0, &mut rec);
        // Degrade, recover, lose the link, restore.
        a.on_snr_report_recorded(t(22), 12.5, &mut rec);
        a.on_snr_report_recorded(t(33), 25.0, &mut rec);
        a.on_snr_report_recorded(t(44), -5.0, &mut rec);
        a.on_snr_report_recorded(t(55), 18.0, &mut rec);
        let kinds: Vec<&str> = rec.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            ["rate_restore", "rate_down", "rate_up", "rate_outage", "rate_restore"]
        );
        let down = rec.of_kind("rate_down").next().unwrap();
        assert_eq!(down.field("from_mcs"), Some(&Value::U64(15)));
        assert_eq!(down.field("to_mcs"), Some(&Value::U64(10)));
        assert_eq!(down.field("snr_report_db"), Some(&Value::F64(12.5)));
        let outage = rec.of_kind("rate_outage").next().unwrap();
        assert!(outage.field("to_mcs").is_none(), "outage has no target MCS");
    }

    #[test]
    fn recorded_variant_is_behaviour_identical() {
        use movr_obs::NullRecorder;
        use movr_sim::SimTime;
        let reports = [10.0, 25.0, 25.0, 25.0, -3.0, 14.8, 15.2, 19.0];
        let mut plain = Hysteresis::new(1.0, 3, 1.0);
        let mut recorded = Hysteresis::new(1.0, 3, 1.0);
        for (i, &s) in reports.iter().enumerate() {
            let a = plain.on_snr_report(s).map(|m| m.index);
            let b = recorded
                .on_snr_report_recorded(SimTime::from_millis(i as u64 * 11), s, &mut NullRecorder)
                .map(|m| m.index);
            assert_eq!(a, b, "report {i}");
        }
    }

    #[test]
    fn flapping_snr_flaps_threshold_but_not_hysteresis() {
        // SNR oscillating across an MCS boundary.
        let reports = [15.2, 14.8, 15.2, 14.8, 15.2, 14.8];
        let mut t = SnrThreshold::new(0.0);
        let mut h = Hysteresis::new(1.0, 3, 0.0);
        let mut t_changes = 0;
        let mut h_changes = 0;
        let mut t_prev = None;
        let mut h_prev = None;
        for &s in &reports {
            let tc = t.on_snr_report(s).map(|m| m.index);
            let hc = h.on_snr_report(s).map(|m| m.index);
            if t_prev.is_some() && Some(tc) != t_prev {
                t_changes += 1;
            }
            if h_prev.is_some() && Some(hc) != h_prev {
                h_changes += 1;
            }
            t_prev = Some(tc);
            h_prev = Some(hc);
        }
        assert!(t_changes >= 4, "threshold policy should flap: {t_changes}");
        assert!(h_changes <= 1, "hysteresis should hold: {h_changes}");
    }
}
