//! The backscatter tone probe (§4.1).
//!
//! During beam alignment the AP transmits a sinewave at f₁ while the
//! reflector toggles its amplifier on/off at f₂. The reflected signal is
//! thereby modulated: its energy moves to sidebands at f₁ ± f₂, while the
//! AP's own TX→RX leakage stays at f₁. A bandpass filter at f₁ + f₂ then
//! reads the *reflected* power essentially free of the (much stronger)
//! leakage — the measurement the whole alignment protocol is built on.
//!
//! The model accounts for:
//! * **Modulation conversion loss** — a 50 % duty square-wave modulator
//!   puts only part of the reflected power into the first sideband
//!   (≈7 dB below the unmodulated carrier).
//! * **AP self-leakage** — TX couples into RX at `ap_coupling_db` below
//!   transmit power; the filter suppresses it by `filter_rejection_db`,
//!   leaving a residual that can still swamp a weak reflection.
//! * **A narrowband noise floor and log-normal measurement jitter.**

use movr_math::db::{dbm_to_watts, sum_dbm, watts_to_dbm};
use movr_math::SimRng;

/// One sideband power reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToneMeasurement {
    /// Power measured in the f₁+f₂ filter, dBm.
    pub power_dbm: f64,
}

/// The AP-side measurement chain for the backscatter protocol.
#[derive(Debug, Clone, Copy)]
pub struct ToneProbe {
    /// AP TX→RX antenna coupling, dB below transmit power.
    pub ap_coupling_db: f64,
    /// Filter rejection of the f₁ leakage at the f₁+f₂ sideband, dB.
    pub filter_rejection_db: f64,
    /// Conversion loss from reflected carrier into the first sideband, dB.
    pub modulation_loss_db: f64,
    /// Narrowband measurement noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// RMS measurement jitter, dB.
    pub sigma_db: f64,
}

impl Default for ToneProbe {
    fn default() -> Self {
        ToneProbe {
            ap_coupling_db: 45.0,
            filter_rejection_db: 60.0,
            modulation_loss_db: 7.0,
            noise_floor_dbm: -95.0,
            sigma_db: 0.5,
        }
    }
}

impl ToneProbe {
    /// The AP's self-leakage power at its receiver, dBm.
    pub fn ap_leakage_dbm(&self, tx_power_dbm: f64) -> f64 {
        tx_power_dbm - self.ap_coupling_db
    }

    /// Measures the f₁+f₂ sideband with the reflector *modulating*.
    ///
    /// `reflected_carrier_dbm` is the power of the round-trip reflection
    /// arriving back at the AP with the reflector's amplifier continuously
    /// on; modulation shifts it into the sideband at a conversion loss.
    /// The leakage contributes only its filtered residual.
    pub fn measure_modulated(
        &self,
        reflected_carrier_dbm: f64,
        tx_power_dbm: f64,
        rng: &mut SimRng,
    ) -> ToneMeasurement {
        let sideband = reflected_carrier_dbm - self.modulation_loss_db;
        let residual_leak = self.ap_leakage_dbm(tx_power_dbm) - self.filter_rejection_db;
        let total = sum_dbm(&[sideband, residual_leak, self.noise_floor_dbm]);
        ToneMeasurement {
            power_dbm: total + rng.normal(0.0, self.sigma_db),
        }
    }

    /// Measures at f₁ with the reflector *not* modulating — the ablation
    /// case. The AP's own leakage lands in-band at full strength and
    /// swamps the reflection, which is why the paper needs modulation.
    pub fn measure_unmodulated(
        &self,
        reflected_carrier_dbm: f64,
        tx_power_dbm: f64,
        rng: &mut SimRng,
    ) -> ToneMeasurement {
        let leak = self.ap_leakage_dbm(tx_power_dbm);
        let total = sum_dbm(&[reflected_carrier_dbm, leak, self.noise_floor_dbm]);
        ToneMeasurement {
            power_dbm: total + rng.normal(0.0, self.sigma_db),
        }
    }

    /// Pre-resolves the sweep-constant terms of [`measure_modulated`]
    /// for a fixed transmit power: the filtered-leakage residual and
    /// the noise floor convert to watts once instead of per probe. The
    /// meter's readings (and its RNG draws) are bit-identical to
    /// calling `measure_modulated` — the per-probe watt sum keeps the
    /// exact fold order of [`sum_dbm`].
    pub fn modulated_meter(&self, tx_power_dbm: f64) -> ToneMeter {
        ToneMeter {
            loss_db: self.modulation_loss_db,
            leak_w: dbm_to_watts(self.ap_leakage_dbm(tx_power_dbm) - self.filter_rejection_db),
            floor_w: dbm_to_watts(self.noise_floor_dbm),
            sigma_db: self.sigma_db,
        }
    }

    /// [`measure_unmodulated`]'s sweep-constant terms pre-resolved, same
    /// contract as [`ToneProbe::modulated_meter`]: the in-band leakage
    /// (unfiltered, no conversion loss) converts to watts once.
    pub fn unmodulated_meter(&self, tx_power_dbm: f64) -> ToneMeter {
        ToneMeter {
            loss_db: 0.0,
            leak_w: dbm_to_watts(self.ap_leakage_dbm(tx_power_dbm)),
            floor_w: dbm_to_watts(self.noise_floor_dbm),
            sigma_db: self.sigma_db,
        }
    }
}

/// A [`ToneProbe`] bound to one transmit power, with every probe-
/// invariant conversion hoisted: repeated sideband readings cost one
/// dBm→watt conversion and one watt→dBm conversion each instead of
/// three and one. Readings are bit-identical to the corresponding
/// `ToneProbe::measure_*` call (same float-op order, same RNG draws).
#[derive(Debug, Clone, Copy)]
pub struct ToneMeter {
    /// Conversion loss applied to the reflected carrier, dB (0 for the
    /// unmodulated ablation).
    loss_db: f64,
    /// Leakage reaching the measurement filter, watts.
    leak_w: f64,
    /// Narrowband noise floor, watts.
    floor_w: f64,
    /// RMS measurement jitter, dB.
    sigma_db: f64,
}

impl ToneMeter {
    /// One sideband (or in-band, for the unmodulated meter) reading of
    /// a round-trip reflection arriving at `reflected_carrier_dbm`.
    pub fn measure(&self, reflected_carrier_dbm: f64, rng: &mut SimRng) -> ToneMeasurement {
        // Exactly `sum_dbm(&[sideband, leak, floor])`: the std `sum()`
        // folds left-to-right from 0.0, and `0.0 + x == x` bitwise for
        // every power in watts, so adding the precomputed terms in the
        // same order reproduces the bits.
        let sideband_w = dbm_to_watts(reflected_carrier_dbm - self.loss_db);
        let total = watts_to_dbm(sideband_w + self.leak_w + self.floor_w);
        ToneMeasurement {
            power_dbm: total + rng.normal(0.0, self.sigma_db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(99)
    }

    fn quiet_probe() -> ToneProbe {
        ToneProbe {
            sigma_db: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn strong_reflection_dominates_modulated_reading() {
        let p = quiet_probe();
        let m = p.measure_modulated(-50.0, 10.0, &mut rng());
        // Sideband = -57 dBm; residual leak = 10-45-60 = -95 dBm; floor -95.
        assert!((m.power_dbm - (-57.0)).abs() < 0.1, "m={}", m.power_dbm);
    }

    #[test]
    fn modulated_reading_tracks_reflection_changes() {
        // A 10 dB change in reflected power moves the reading ~10 dB —
        // this is what lets the AP rank beam combinations.
        let p = quiet_probe();
        let hi = p.measure_modulated(-50.0, 10.0, &mut rng()).power_dbm;
        let lo = p.measure_modulated(-60.0, 10.0, &mut rng()).power_dbm;
        assert!((hi - lo - 10.0).abs() < 0.5, "hi={hi} lo={lo}");
    }

    #[test]
    fn unmodulated_reading_is_leakage_blind() {
        // Without modulation the reading barely moves when the reflection
        // changes: leakage at -35 dBm dominates both cases.
        let p = quiet_probe();
        let hi = p.measure_unmodulated(-50.0, 10.0, &mut rng()).power_dbm;
        let lo = p.measure_unmodulated(-60.0, 10.0, &mut rng()).power_dbm;
        assert!((hi - lo).abs() < 0.2, "hi={hi} lo={lo}");
        // And the absolute level is essentially the leakage.
        assert!((hi - (-35.0)).abs() < 0.3, "hi={hi}");
    }

    #[test]
    fn weak_reflection_bottoms_out_at_floor() {
        let p = quiet_probe();
        let m = p.measure_modulated(-130.0, 10.0, &mut rng());
        // Sideband -137 dBm is far below the floor; the reading is the sum
        // of the -95 dBm residual leak and the -95 dBm floor (≈ -92 dBm).
        assert!(m.power_dbm > -93.5 && m.power_dbm < -91.0, "m={}", m.power_dbm);
    }

    #[test]
    fn jitter_is_applied() {
        let p = ToneProbe::default();
        let mut r = rng();
        let a = p.measure_modulated(-50.0, 10.0, &mut r).power_dbm;
        let b = p.measure_modulated(-50.0, 10.0, &mut r).power_dbm;
        assert_ne!(a, b);
        assert!((a - b).abs() < 5.0);
    }

    #[test]
    fn ap_leakage_level() {
        let p = ToneProbe::default();
        assert_eq!(p.ap_leakage_dbm(10.0), -35.0);
    }

    #[test]
    fn meters_are_bit_identical_to_per_call_measurement() {
        let p = ToneProbe::default();
        for tx_power_dbm in [10.0, 20.0, 23.5] {
            let modulated = p.modulated_meter(tx_power_dbm);
            let unmodulated = p.unmodulated_meter(tx_power_dbm);
            for reflected in [-30.0, -57.3, -95.0, -130.0, f64::NEG_INFINITY] {
                let mut r1 = rng();
                let mut r2 = rng();
                let a = p.measure_modulated(reflected, tx_power_dbm, &mut r1).power_dbm;
                let b = modulated.measure(reflected, &mut r2).power_dbm;
                assert_eq!(a.to_bits(), b.to_bits(), "modulated {reflected}");
                let a = p.measure_unmodulated(reflected, tx_power_dbm, &mut r1).power_dbm;
                let b = unmodulated.measure(reflected, &mut r2).power_dbm;
                assert_eq!(a.to_bits(), b.to_bits(), "unmodulated {reflected}");
                // Both consumed the same draws.
                assert_eq!(r1.uniform(0.0, 1.0).to_bits(), r2.uniform(0.0, 1.0).to_bits());
            }
        }
    }
}
