//! The backscatter tone probe (§4.1).
//!
//! During beam alignment the AP transmits a sinewave at f₁ while the
//! reflector toggles its amplifier on/off at f₂. The reflected signal is
//! thereby modulated: its energy moves to sidebands at f₁ ± f₂, while the
//! AP's own TX→RX leakage stays at f₁. A bandpass filter at f₁ + f₂ then
//! reads the *reflected* power essentially free of the (much stronger)
//! leakage — the measurement the whole alignment protocol is built on.
//!
//! The model accounts for:
//! * **Modulation conversion loss** — a 50 % duty square-wave modulator
//!   puts only part of the reflected power into the first sideband
//!   (≈7 dB below the unmodulated carrier).
//! * **AP self-leakage** — TX couples into RX at `ap_coupling_db` below
//!   transmit power; the filter suppresses it by `filter_rejection_db`,
//!   leaving a residual that can still swamp a weak reflection.
//! * **A narrowband noise floor and log-normal measurement jitter.**

use movr_math::db::sum_dbm;
use movr_math::SimRng;

/// One sideband power reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToneMeasurement {
    /// Power measured in the f₁+f₂ filter, dBm.
    pub power_dbm: f64,
}

/// The AP-side measurement chain for the backscatter protocol.
#[derive(Debug, Clone, Copy)]
pub struct ToneProbe {
    /// AP TX→RX antenna coupling, dB below transmit power.
    pub ap_coupling_db: f64,
    /// Filter rejection of the f₁ leakage at the f₁+f₂ sideband, dB.
    pub filter_rejection_db: f64,
    /// Conversion loss from reflected carrier into the first sideband, dB.
    pub modulation_loss_db: f64,
    /// Narrowband measurement noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// RMS measurement jitter, dB.
    pub sigma_db: f64,
}

impl Default for ToneProbe {
    fn default() -> Self {
        ToneProbe {
            ap_coupling_db: 45.0,
            filter_rejection_db: 60.0,
            modulation_loss_db: 7.0,
            noise_floor_dbm: -95.0,
            sigma_db: 0.5,
        }
    }
}

impl ToneProbe {
    /// The AP's self-leakage power at its receiver, dBm.
    pub fn ap_leakage_dbm(&self, tx_power_dbm: f64) -> f64 {
        tx_power_dbm - self.ap_coupling_db
    }

    /// Measures the f₁+f₂ sideband with the reflector *modulating*.
    ///
    /// `reflected_carrier_dbm` is the power of the round-trip reflection
    /// arriving back at the AP with the reflector's amplifier continuously
    /// on; modulation shifts it into the sideband at a conversion loss.
    /// The leakage contributes only its filtered residual.
    pub fn measure_modulated(
        &self,
        reflected_carrier_dbm: f64,
        tx_power_dbm: f64,
        rng: &mut SimRng,
    ) -> ToneMeasurement {
        let sideband = reflected_carrier_dbm - self.modulation_loss_db;
        let residual_leak = self.ap_leakage_dbm(tx_power_dbm) - self.filter_rejection_db;
        let total = sum_dbm(&[sideband, residual_leak, self.noise_floor_dbm]);
        ToneMeasurement {
            power_dbm: total + rng.normal(0.0, self.sigma_db),
        }
    }

    /// Measures at f₁ with the reflector *not* modulating — the ablation
    /// case. The AP's own leakage lands in-band at full strength and
    /// swamps the reflection, which is why the paper needs modulation.
    pub fn measure_unmodulated(
        &self,
        reflected_carrier_dbm: f64,
        tx_power_dbm: f64,
        rng: &mut SimRng,
    ) -> ToneMeasurement {
        let leak = self.ap_leakage_dbm(tx_power_dbm);
        let total = sum_dbm(&[reflected_carrier_dbm, leak, self.noise_floor_dbm]);
        ToneMeasurement {
            power_dbm: total + rng.normal(0.0, self.sigma_db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(99)
    }

    fn quiet_probe() -> ToneProbe {
        ToneProbe {
            sigma_db: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn strong_reflection_dominates_modulated_reading() {
        let p = quiet_probe();
        let m = p.measure_modulated(-50.0, 10.0, &mut rng());
        // Sideband = -57 dBm; residual leak = 10-45-60 = -95 dBm; floor -95.
        assert!((m.power_dbm - (-57.0)).abs() < 0.1, "m={}", m.power_dbm);
    }

    #[test]
    fn modulated_reading_tracks_reflection_changes() {
        // A 10 dB change in reflected power moves the reading ~10 dB —
        // this is what lets the AP rank beam combinations.
        let p = quiet_probe();
        let hi = p.measure_modulated(-50.0, 10.0, &mut rng()).power_dbm;
        let lo = p.measure_modulated(-60.0, 10.0, &mut rng()).power_dbm;
        assert!((hi - lo - 10.0).abs() < 0.5, "hi={hi} lo={lo}");
    }

    #[test]
    fn unmodulated_reading_is_leakage_blind() {
        // Without modulation the reading barely moves when the reflection
        // changes: leakage at -35 dBm dominates both cases.
        let p = quiet_probe();
        let hi = p.measure_unmodulated(-50.0, 10.0, &mut rng()).power_dbm;
        let lo = p.measure_unmodulated(-60.0, 10.0, &mut rng()).power_dbm;
        assert!((hi - lo).abs() < 0.2, "hi={hi} lo={lo}");
        // And the absolute level is essentially the leakage.
        assert!((hi - (-35.0)).abs() < 0.3, "hi={hi}");
    }

    #[test]
    fn weak_reflection_bottoms_out_at_floor() {
        let p = quiet_probe();
        let m = p.measure_modulated(-130.0, 10.0, &mut rng());
        // Sideband -137 dBm is far below the floor; the reading is the sum
        // of the -95 dBm residual leak and the -95 dBm floor (≈ -92 dBm).
        assert!(m.power_dbm > -93.5 && m.power_dbm < -91.0, "m={}", m.power_dbm);
    }

    #[test]
    fn jitter_is_applied() {
        let p = ToneProbe::default();
        let mut r = rng();
        let a = p.measure_modulated(-50.0, 10.0, &mut r).power_dbm;
        let b = p.measure_modulated(-50.0, 10.0, &mut r).power_dbm;
        assert_ne!(a, b);
        assert!((a - b).abs() < 5.0);
    }

    #[test]
    fn ap_leakage_level() {
        let p = ToneProbe::default();
        assert_eq!(p.ap_leakage_dbm(10.0), -35.0);
    }
}
