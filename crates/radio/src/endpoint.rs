//! Radio endpoints: a steerable array at a position in the room.
//!
//! [`RadioEndpoint`] is what the AP, the headset receiver and (twice) the
//! reflector physically are: a phased array somewhere in the room with a
//! transmit power. [`ArrayPattern`] adapts `movr-phased-array`'s
//! [`SteeredArray`] to `movr-rfsim`'s [`Pattern`] trait so the propagation
//! layer can weight multipath components by the live beam shape.

use movr_math::Vec2;
use movr_phased_array::SteeredArray;
use movr_rfsim::{LinkBudget, Pattern, Scene};

/// Adapter: a steered array viewed as a propagation-layer pattern.
#[derive(Debug, Clone, Copy)]
pub struct ArrayPattern<'a>(pub &'a SteeredArray);

impl Pattern for ArrayPattern<'_> {
    fn gain_dbi(&self, direction_deg: f64) -> f64 {
        self.0.gain_dbi(direction_deg)
    }
}

/// A mmWave radio endpoint: position, steerable array, transmit power.
#[derive(Debug, Clone, Copy)]
pub struct RadioEndpoint {
    position: Vec2,
    array: SteeredArray,
    tx_power_dbm: f64,
}

impl RadioEndpoint {
    /// Creates an endpoint.
    pub fn new(position: Vec2, array: SteeredArray, tx_power_dbm: f64) -> Self {
        RadioEndpoint {
            position,
            array,
            tx_power_dbm,
        }
    }

    /// An endpoint with the paper's array and a 0 dBm PA, facing
    /// `boresight_deg`. The modest power calibrates the clear-LOS SNR to
    /// the paper's reported ~25 dB mean in the 5 m × 5 m office.
    pub fn paper_radio(position: Vec2, boresight_deg: f64) -> Self {
        RadioEndpoint::new(position, SteeredArray::paper_array(boresight_deg), 0.0)
    }

    /// Position in the room, metres.
    pub fn position(&self) -> Vec2 {
        self.position
    }

    /// Moves the endpoint (headsets move; APs and reflectors usually
    /// don't).
    pub fn set_position(&mut self, position: Vec2) {
        self.position = position;
    }

    /// Transmit power, dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        self.tx_power_dbm
    }

    /// The steerable array (read access).
    pub fn array(&self) -> &SteeredArray {
        &self.array
    }

    /// The steerable array (steering access).
    pub fn array_mut(&mut self) -> &mut SteeredArray {
        &mut self.array
    }

    /// Steers the beam toward an absolute bearing; returns the applied
    /// bearing (clamped to the scan range).
    pub fn steer_to(&mut self, absolute_deg: f64) -> f64 {
        self.array.steer_to(absolute_deg)
    }

    /// Steers the beam toward a point in the room.
    pub fn steer_toward(&mut self, target: Vec2) -> f64 {
        self.steer_to(self.position.bearing_deg_to(target))
    }

    /// The bearing from this endpoint to a point.
    pub fn bearing_to(&self, target: Vec2) -> f64 {
        self.position.bearing_deg_to(target)
    }
}

/// Evaluates the link budget from `tx` to `rx` through `scene`, using both
/// endpoints' current beam steering.
pub fn evaluate_link(scene: &Scene, tx: &RadioEndpoint, rx: &RadioEndpoint) -> LinkBudget {
    scene.link_budget(
        tx.position(),
        &ArrayPattern(tx.array()),
        tx.tx_power_dbm(),
        rx.position(),
        &ArrayPattern(rx.array()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn face_to_face() -> (Scene, RadioEndpoint, RadioEndpoint) {
        let scene = Scene::paper_office();
        // AP on the west side facing east; headset on the east facing west.
        let mut ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 0.0);
        let mut hs = RadioEndpoint::paper_radio(Vec2::new(4.5, 2.5), 180.0);
        ap.steer_toward(hs.position());
        hs.steer_toward(ap.position());
        (scene, ap, hs)
    }

    #[test]
    fn aligned_link_has_vr_grade_snr() {
        let (scene, ap, hs) = face_to_face();
        let lb = evaluate_link(&scene, &ap, &hs);
        // Calibration anchor: a clear 4 m LOS link lands in the paper's
        // ~25 dB regime (within a few dB; multipath moves it).
        assert!(
            (20.0..33.0).contains(&lb.snr_db),
            "snr={} — calibration drifted",
            lb.snr_db
        );
    }

    #[test]
    fn missteered_tx_drops_the_link() {
        let (scene, mut ap, hs) = face_to_face();
        let aligned = evaluate_link(&scene, &ap, &hs).snr_db;
        ap.steer_to(45.0);
        let missteered = evaluate_link(&scene, &ap, &hs).snr_db;
        assert!(aligned - missteered > 10.0);
    }

    #[test]
    fn steer_toward_points_at_target() {
        let mut ap = RadioEndpoint::paper_radio(Vec2::new(1.0, 1.0), 45.0);
        let applied = ap.steer_toward(Vec2::new(2.0, 2.0));
        assert!((applied - 45.0).abs() < 1e-9);
        assert!((ap.array().steering_deg() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn bearing_to() {
        let ap = RadioEndpoint::paper_radio(Vec2::new(0.0, 0.0), 0.0);
        assert!((ap.bearing_to(Vec2::new(0.0, 3.0)) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn endpoint_moves() {
        let mut hs = RadioEndpoint::paper_radio(Vec2::new(1.0, 1.0), 0.0);
        hs.set_position(Vec2::new(2.0, 3.0));
        assert_eq!(hs.position(), Vec2::new(2.0, 3.0));
    }

    #[test]
    fn reciprocity_within_reason() {
        // Same arrays, same powers: A→B and B→A budgets match closely
        // (the channel is reciprocal; patterns are applied symmetrically).
        let (scene, ap, hs) = face_to_face();
        let ab = evaluate_link(&scene, &ap, &hs).snr_db;
        let ba = evaluate_link(&scene, &hs, &ap).snr_db;
        assert!((ab - ba).abs() < 1e-6);
    }
}
