//! Packet-error-rate model.
//!
//! The rate ladder's thresholds are "decodes at acceptable error rate"
//! points; real decoding degrades smoothly around them. The end-to-end VR
//! session simulation needs that smoothness to count glitches fairly: a
//! link sitting 0.2 dB above threshold drops an occasional frame, one
//! 5 dB above drops essentially none.
//!
//! The model is the standard logistic waterfall: PER = 1/2 at the MCS
//! threshold, falling by roughly a decade per `slope_db` dB of extra SNR.

use crate::mcs::McsEntry;

/// Logistic PER waterfall around MCS thresholds.
#[derive(Debug, Clone, Copy)]
pub struct PerModel {
    /// SNR margin over which PER falls by ~a decade, dB.
    pub slope_db: f64,
    /// Residual error floor (implementation imperfections).
    pub floor: f64,
}

impl Default for PerModel {
    fn default() -> Self {
        PerModel {
            slope_db: 0.75,
            floor: 1e-7,
        }
    }
}

impl PerModel {
    /// Packet error rate at `snr_db` for a given MCS.
    pub fn per(&self, mcs: &McsEntry, snr_db: f64) -> f64 {
        let margin = snr_db - mcs.min_snr_db;
        // ln(10) per decade: logistic in log-odds space.
        let log_odds = margin / self.slope_db * std::f64::consts::LN_10;
        let per = 1.0 / (1.0 + log_odds.exp());
        per.max(self.floor).min(1.0)
    }

    /// Probability that a packet is delivered at `snr_db` on `mcs`.
    pub fn delivery_probability(&self, mcs: &McsEntry, snr_db: f64) -> f64 {
        1.0 - self.per(mcs, snr_db)
    }

    /// Effective goodput (Mb/s) at `snr_db` on `mcs`: rate × (1 − PER).
    pub fn goodput_mbps(&self, mcs: &McsEntry, snr_db: f64) -> f64 {
        mcs.rate_mbps * self.delivery_probability(mcs, snr_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::RateTable;

    fn mcs10() -> &'static McsEntry {
        &RateTable.entries()[10]
    }

    #[test]
    fn half_at_threshold() {
        let m = PerModel::default();
        let per = m.per(mcs10(), mcs10().min_snr_db);
        assert!((per - 0.5).abs() < 1e-9);
    }

    #[test]
    fn decade_per_slope() {
        let m = PerModel::default();
        let at_1 = m.per(mcs10(), mcs10().min_snr_db + m.slope_db);
        // One slope unit above threshold: odds 10:1 → PER ≈ 1/11.
        assert!((at_1 - 1.0 / 11.0).abs() < 1e-6, "per={at_1}");
    }

    #[test]
    fn monotone_decreasing_in_snr() {
        let m = PerModel::default();
        let mut prev = 1.1;
        let mut snr = mcs10().min_snr_db - 5.0;
        while snr < mcs10().min_snr_db + 8.0 {
            let p = m.per(mcs10(), snr);
            assert!(p <= prev);
            prev = p;
            snr += 0.1;
        }
    }

    #[test]
    fn floor_applies_far_above_threshold() {
        let m = PerModel::default();
        assert_eq!(m.per(mcs10(), mcs10().min_snr_db + 50.0), m.floor);
    }

    #[test]
    fn far_below_threshold_loses_everything() {
        let m = PerModel::default();
        assert!(m.per(mcs10(), mcs10().min_snr_db - 10.0) > 0.9999);
    }

    #[test]
    fn goodput_peaks_at_rate() {
        let m = PerModel::default();
        let g = m.goodput_mbps(mcs10(), mcs10().min_snr_db + 6.0);
        assert!((g - mcs10().rate_mbps).abs() / mcs10().rate_mbps < 1e-3);
        // At threshold, goodput is half the rate.
        let g_half = m.goodput_mbps(mcs10(), mcs10().min_snr_db);
        assert!((g_half - mcs10().rate_mbps / 2.0).abs() < 1.0);
    }
}
