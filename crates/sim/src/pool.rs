//! A persistent worker pool with the same determinism contract as
//! [`par_map`](crate::par_map).
//!
//! `par_map` spawns and joins OS threads on every call. That is correct
//! and simple, but a Monte Carlo fleet or a coverage map calls it once
//! per batch and a bench harness thousands of times — at which point
//! thread creation (stack mapping, scheduler wake-up, TLS setup)
//! dominates small workloads. [`WorkerPool`] keeps the threads alive:
//! workers are spawned lazily on first use, fed jobs over channels, and
//! reused for every subsequent call.
//!
//! The determinism argument is the same as `par_map`'s, point for point:
//!
//! * the input is split into contiguous chunks in order (balanced
//!   layout, shared with `par_map`),
//! * chunk `i` always goes to worker `i` — assignment is a function of
//!   `(items.len(), threads)` alone, never of scheduling,
//! * workers share no mutable state (each chunk returns its own `Vec`),
//! * chunk results are reassembled by chunk index, not arrival order.
//!
//! So [`WorkerPool::map`] is **byte-identical for any thread count**,
//! including to the serial map. Panics inside a job are caught per item,
//! reported with the item's input index (same attribution contract as
//! `par_map`), and leave the pool healthy — workers survive and the next
//! call proceeds normally.
//!
//! Nested calls from inside a worker run inline on the calling worker:
//! fanning out from a worker onto the same pool could otherwise deadlock
//! with every worker waiting on jobs queued behind its own. Inline
//! execution preserves the byte-identity contract (it *is* the serial
//! path).

use crate::par::{chunk_bounds, panic_detail};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

/// An owned job: closures are `'static` because pool workers outlive any
/// single call (unlike `thread::scope`, which lets `par_map` borrow).
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True on threads owned by any [`WorkerPool`]; nested maps detect
    /// it and run inline instead of deadlocking on their own queue.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A lazily-grown set of persistent worker threads. See the module docs
/// for the determinism and panic contracts.
///
/// Most callers want the process-wide pool via [`pool_map`]; owning an
/// instance is for tests and for callers that need their worker count
/// accounted separately. Dropping an owned pool closes its job channels,
/// which shuts the workers down.
#[derive(Debug, Default)]
pub struct WorkerPool {
    senders: Mutex<Vec<Sender<Job>>>,
    spawned: AtomicUsize,
}

impl WorkerPool {
    /// Creates an empty pool; workers are spawned on first use.
    pub fn new() -> Self {
        WorkerPool::default()
    }

    /// Total worker threads this pool has ever spawned. Reuse means this
    /// stays at the high-water thread count no matter how many times
    /// [`WorkerPool::map`] runs.
    pub fn threads_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Grows the worker set to at least `n` threads (never shrinks).
    fn ensure_workers(&self, n: usize) {
        let mut senders = self.senders.lock().expect("pool lock clean"); // lint: poisoned-lock invariant, not decoded input
        while senders.len() < n {
            let (tx, rx) = channel::<Job>();
            thread::Builder::new()
                .name(format!("movr-pool-{}", senders.len()))
                .spawn(move || {
                    IN_POOL_WORKER.with(|flag| flag.set(true));
                    // Runs until the pool (sender side) is dropped.
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn pool worker"); // lint: thread spawn failure is unrecoverable resource exhaustion, not input
            self.spawned.fetch_add(1, Ordering::Relaxed);
            senders.push(tx);
        }
    }

    /// Maps `f` over `items` on up to `threads` pool workers, returning
    /// the results in input order; `f` receives `(index, &item)` exactly
    /// like [`par_map`](crate::par_map), and the output is byte-identical
    /// to it (and to the serial map) for every `threads` value.
    ///
    /// Takes `items` by value: chunks are moved to the workers, so the
    /// items (and `f`) must be `'static` — the price of workers that
    /// outlive the call. A `threads` of 0 is treated as 1; more threads
    /// than items uses one chunk per item; calls from inside a pool
    /// worker run inline serially.
    ///
    /// # Panics
    /// Panics if any invocation of `f` panics; the propagated message
    /// names the input index of the item whose closure died. The pool
    /// itself stays usable.
    pub fn map<T, R, F>(&self, items: Vec<T>, threads: usize, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> R + Send + Sync + 'static,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let threads = threads.max(1).min(items.len());
        let nested = IN_POOL_WORKER.with(Cell::get);
        if threads == 1 || nested {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let bounds = chunk_bounds(items.len(), threads);
        self.ensure_workers(threads);
        let f = Arc::new(f);
        let (result_tx, result_rx) = channel::<(usize, Result<Vec<R>, (usize, String)>)>();

        // Split the input into owned chunks, back to front so each
        // `split_off` is O(chunk), then restore chunk order.
        let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
        let mut rest = items;
        for &(start, _) in bounds.iter().rev() {
            chunks.push((start, rest.split_off(start)));
        }
        chunks.reverse();

        {
            let senders = self.senders.lock().expect("pool lock clean"); // lint: poisoned-lock invariant, not decoded input
            let assigned = chunks.into_iter().enumerate().zip(senders.iter());
            for ((ci, (start, chunk)), sender) in assigned {
                let f = Arc::clone(&f);
                let tx = result_tx.clone();
                let job: Job = Box::new(move || {
                    let mut results = Vec::with_capacity(chunk.len());
                    let mut failure: Option<(usize, String)> = None;
                    for (j, t) in chunk.iter().enumerate() {
                        match catch_unwind(AssertUnwindSafe(|| f(start + j, t))) {
                            Ok(r) => results.push(r),
                            Err(payload) => {
                                failure = Some((start + j, panic_detail(payload.as_ref())));
                                break;
                            }
                        }
                    }
                    let outcome = match failure {
                        None => Ok(results),
                        Some(fail) => Err(fail),
                    };
                    // The caller may already be unwinding from another
                    // chunk's failure; a closed result channel is fine.
                    let _ = tx.send((ci, outcome));
                });
                sender.send(job).expect("pool worker alive"); // lint: workers outlive the pool that feeds them, by construction
            }
        }
        drop(result_tx);

        // Drain every chunk before reporting anything: results arrive in
        // completion order, the output is assembled in chunk order, and
        // a failure is reported only after all workers are quiescent (so
        // the earliest-chunk failure wins deterministically, matching
        // `par_map`'s join-in-spawn-order attribution).
        let mut slots: Vec<Option<Vec<R>>> = (0..threads).map(|_| None).collect();
        let mut failure: Option<(usize, usize, String)> = None;
        for _ in 0..threads {
            let (ci, outcome) = result_rx.recv().expect("pool worker delivers its chunk"); // lint: every dispatched chunk sends exactly one result
            match outcome {
                Ok(results) => slots[ci] = Some(results), // lint: ci enumerates 0..threads, the length of `slots`
                Err((item, detail)) => {
                    if failure.as_ref().is_none_or(|f| ci < f.0) {
                        failure = Some((ci, item, detail));
                    }
                }
            }
        }
        if let Some((_, item, detail)) = failure {
            panic!("pool_map worker panicked while processing item {item}: {detail}"); // lint: deliberate propagation of a job panic, with attribution
        }
        let mut out = Vec::with_capacity(slots.iter().map(|s| s.as_ref().map_or(0, Vec::len)).sum());
        for slot in slots {
            out.extend(slot.expect("every chunk either failed or delivered")); // lint: failure case returned above; remaining slots are filled
        }
        out
    }
}

/// The process-wide pool behind [`pool_map`], spawned lazily.
pub fn global_pool() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(WorkerPool::new)
}

/// [`WorkerPool::map`] on the process-wide pool: the drop-in persistent
/// counterpart of [`par_map`](crate::par_map) for owned inputs. First
/// call spawns the workers; later calls reuse them.
///
/// # Panics
/// Propagates job panics with item attribution, like [`WorkerPool::map`].
pub fn pool_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    global_pool().map(items, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::par_map;

    /// movr-sim has zero dependencies by design, so the property test
    /// carries its own LCG (Knuth's MMIX constants).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    fn work(i: usize, x: &u64) -> u64 {
        let salt = u64::try_from(i).expect("test index fits");
        x.wrapping_mul(2654435761).rotate_left(13) ^ salt
    }

    #[test]
    fn property_pool_matches_serial_par_map() {
        // Random item counts and thread counts, including threads ≫ len,
        // threads == len ± 1, and single items.
        let pool = WorkerPool::new();
        let mut rng = Lcg(0x5EED);
        for round in 0..200 {
            let len = (rng.next() % 65) as usize;
            let threads = (rng.next() % 9) as usize;
            let items: Vec<u64> = (0..len).map(|_| rng.next()).collect();
            let expect = par_map(&items, 1, work);
            let got = pool.map(items, threads, work);
            assert_eq!(got, expect, "round={round} len={len} threads={threads}");
        }
    }

    #[test]
    fn pool_reuse_spawns_no_extra_threads() {
        let pool = WorkerPool::new();
        let items: Vec<u64> = (0..32).collect();
        for round in 0..1000 {
            let out = pool.map(items.clone(), 4, work);
            assert_eq!(out.len(), 32, "round={round}");
        }
        assert_eq!(
            pool.threads_spawned(),
            4,
            "1000 invocations must reuse the original 4 workers"
        );
    }

    #[test]
    fn lazy_growth_only_to_the_high_water_mark() {
        let pool = WorkerPool::new();
        assert_eq!(pool.threads_spawned(), 0, "no workers before first use");
        pool.map((0..8u64).collect(), 2, work);
        assert_eq!(pool.threads_spawned(), 2);
        pool.map((0..8u64).collect(), 5, work);
        assert_eq!(pool.threads_spawned(), 5, "grows to the new demand");
        pool.map((0..8u64).collect(), 3, work);
        assert_eq!(pool.threads_spawned(), 5, "never shrinks, never respawns");
    }

    #[test]
    fn panic_names_the_item_and_pool_survives() {
        let pool = Arc::new(WorkerPool::new());
        let p = Arc::clone(&pool);
        let err = std::panic::catch_unwind(AssertUnwindSafe(move || {
            p.map((0..16u64).collect(), 4, |_, &x| {
                assert!(x != 5, "item 5 is cursed");
                x
            });
        }))
        .expect_err("the job must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("propagated panic carries a String message");
        assert!(
            msg.contains("while processing item 5"),
            "panic message should name item 5, got: {msg}"
        );
        assert!(
            msg.contains("item 5 is cursed"),
            "panic message should carry the job's own message, got: {msg}"
        );
        // The workers caught the panic and are still serving jobs.
        let after = pool.map((0..16u64).collect(), 4, work);
        assert_eq!(after, par_map(&(0..16u64).collect::<Vec<_>>(), 1, work));
        assert_eq!(pool.threads_spawned(), 4, "no respawn after a job panic");
    }

    #[test]
    fn earliest_chunk_failure_wins_when_several_panic() {
        let pool = WorkerPool::new();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // Items 3, 7, 11 all panic — in different chunks of [0..4),
            // [4..8), [8..12); the report must pick chunk 0's item 3.
            pool.map((0..12u64).collect(), 3, |i, _| {
                assert!(i % 4 != 3, "boom");
                i
            });
        }))
        .expect_err("jobs must panic");
        let msg = err.downcast_ref::<String>().expect("String message");
        assert!(
            msg.contains("while processing item 3:"),
            "earliest chunk's failure must win, got: {msg}"
        );
    }

    #[test]
    fn nested_pool_map_runs_inline_without_deadlock() {
        // Every worker fans out again through the global pool; the inner
        // calls must run inline on the workers rather than queueing
        // behind themselves.
        let outer: Vec<u64> = (0..4).collect();
        let got = pool_map(outer, 4, |i, &x| {
            let inner: Vec<u64> = (0..8).map(|k| x.wrapping_add(k)).collect();
            let inner_expect = par_map(&inner, 1, work);
            let inner_got = pool_map(inner, 4, work);
            assert_eq!(inner_got, inner_expect, "outer item {i}");
            inner_got.iter().fold(0u64, |a, &b| a.wrapping_add(b))
        });
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn empty_and_zero_threads() {
        let pool = WorkerPool::new();
        let empty: Vec<u64> = Vec::new();
        assert!(pool.map(empty, 4, work).is_empty());
        assert_eq!(pool.threads_spawned(), 0, "empty input spawns nothing");
        assert_eq!(pool.map(vec![41u64], 0, |_, &x| x + 1), [42]);
        assert_eq!(pool.threads_spawned(), 0, "serial path spawns nothing");
    }
}
