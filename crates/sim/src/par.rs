//! Deterministic parallel map over a slice.
//!
//! Coverage maps, blockage surveys and Monte Carlo session fleets are
//! embarrassingly parallel: every item is independent and the output is
//! just the per-item results in input order. [`par_map`] fans such work
//! out over scoped threads with a determinism guarantee: the output is
//! **byte-identical for any thread count**, because
//!
//! * the input slice is split into contiguous chunks in order,
//! * workers never share mutable state (each returns its own `Vec`),
//! * chunk results are joined in spawn order and concatenated.
//!
//! Each item's closure also receives the item's index in the input
//! slice, so callers that need randomness can fork a deterministic
//! per-item RNG (e.g. `SimRng::seed_from_u64(base ^ index)`) instead of
//! sharing a sequence across threads. Zero dependencies: only
//! `std::thread::scope`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Number of worker threads worth spawning on this machine (≥ 1).
pub fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Balanced contiguous chunk layout: `(start, end)` bounds splitting
/// `len` items over exactly `chunks` workers, in order. Every chunk gets
/// `len / chunks` items and the first `len % chunks` chunks one extra,
/// so chunk sizes never differ by more than one and no trailing chunk is
/// empty. (The old `ceil`-sized splitting could strand trailing workers:
/// 5 items over 4 threads made chunks of ⌈5/4⌉ = 2 → [2, 2, 1] and left
/// the fourth worker idle; this yields [2, 1, 1, 1].)
///
/// `chunks` must be in `1..=len`; both `par_map` and the worker pool
/// clamp before calling.
pub(crate) fn chunk_bounds(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    debug_assert!(chunks >= 1 && chunks <= len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Renders a propagated panic payload for attribution messages.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` on up to `threads` scoped threads, returning
/// the results in input order. `f` receives `(index, &item)` where
/// `index` is the item's position in `items`.
///
/// Output is byte-identical for every `threads` value (including 1):
/// parallelism changes only the wall clock, never the result. A
/// `threads` of 0 is treated as 1; more threads than items spawns one
/// thread per item.
///
/// # Panics
/// Panics if any invocation of `f` panics; the propagated message names
/// the input index of the item being processed when the worker died.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let bounds = chunk_bounds(items.len(), threads);
    // Each worker records the item index it is about to process, so a
    // panic can be attributed without touching the item type.
    let progress: Vec<AtomicUsize> = bounds
        .iter()
        .map(|_| AtomicUsize::new(usize::MAX))
        .collect();
    let mut out = Vec::with_capacity(items.len());
    thread::scope(|scope| {
        let f = &f;
        // Spawn contiguous chunks in order...
        let handles: Vec<_> = bounds
            .iter()
            .zip(&progress)
            .map(|(&(start, end), slot)| {
                let slice = &items[start..end];
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, t)| {
                            slot.store(start + j, Ordering::Relaxed);
                            f(start + j, t)
                        })
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        // ...and join in spawn order, so concatenation restores input
        // order regardless of which worker finished first.
        for (ci, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(results) => out.extend(results),
                Err(payload) => {
                    let detail = panic_detail(payload.as_ref());
                    match progress[ci].load(Ordering::Relaxed) {
                        usize::MAX => panic!(
                            "par_map worker panicked before processing any item: {detail}"
                        ),
                        item => panic!(
                            "par_map worker panicked while processing item {item}: {detail}"
                        ),
                    }
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_for_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) >> 7).collect();
        for threads in [1, 2, 3, 4, 7, 16, 200] {
            let got = par_map(&items, threads, |_, &x| x.wrapping_mul(2654435761) >> 7);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn indices_match_positions() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(&items, 2, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_and_zero_threads() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        let one = vec![41u32];
        assert_eq!(par_map(&one, 0, |_, &x| x + 1), [42]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one_and_cover_everything() {
        // The regression case: 5 items over 4 threads used to split
        // [2, 2, 1] with a fourth worker idle. Balanced sizing must give
        // every worker something to do.
        assert_eq!(chunk_bounds(5, 4), [(0, 2), (2, 3), (3, 4), (4, 5)]);
        for len in 1..=64usize {
            for chunks in 1..=len {
                let bounds = chunk_bounds(len, chunks);
                assert_eq!(bounds.len(), chunks, "len={len} chunks={chunks}");
                let mut expect_start = 0;
                let mut min_size = usize::MAX;
                let mut max_size = 0;
                for &(start, end) in &bounds {
                    assert_eq!(start, expect_start, "contiguous, in order");
                    assert!(end > start, "no empty chunk (len={len} chunks={chunks})");
                    min_size = min_size.min(end - start);
                    max_size = max_size.max(end - start);
                    expect_start = end;
                }
                assert_eq!(expect_start, len, "chunks cover the input");
                assert!(max_size - min_size <= 1, "balanced (len={len} chunks={chunks})");
            }
        }
    }

    #[test]
    fn threads_near_item_count_leave_no_worker_idle() {
        // Behavioural form of the same regression: with 5 items on 4
        // threads the observed worker set must span 4 distinct threads.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let items: Vec<u32> = (0..5).collect();
        let seen: Mutex<HashSet<thread::ThreadId>> = Mutex::new(HashSet::new());
        let out = par_map(&items, 4, |_, &x| {
            seen.lock().expect("clean lock").insert(thread::current().id());
            x * 10
        });
        assert_eq!(out, [0, 10, 20, 30, 40]);
        assert_eq!(seen.lock().expect("clean lock").len(), 4, "all four workers busy");
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        par_map(&items, 4, |_, &x| {
            assert!(x != 5, "boom");
            x
        });
    }

    #[test]
    fn worker_panic_names_the_failing_item_index() {
        let items: Vec<u32> = (0..16).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, 4, |_, &x| {
                assert!(x != 5, "item 5 is cursed");
                x
            });
        }))
        .expect_err("the worker must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("propagated panic carries a String message");
        assert!(
            msg.contains("while processing item 5"),
            "panic message should name item 5, got: {msg}"
        );
        assert!(
            msg.contains("item 5 is cursed"),
            "panic message should carry the worker's own message, got: {msg}"
        );
    }
}
