//! Simulated time.
//!
//! [`SimTime`] is a monotonic instant measured in integer nanoseconds from
//! the simulation epoch. Integer nanoseconds make event ordering exact
//! (no float-comparison ties) while still resolving the sub-microsecond
//! beam-steering latencies the paper cares about (§6).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulated instant, in nanoseconds since the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant (~584 simulated years).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds (fractional allowed).
    ///
    /// Inputs too large for the `u64` nanosecond range (above ~5.8e11
    /// seconds) saturate to [`SimTime::MAX`] rather than relying on the
    /// cast's implicit clamping — callers feeding in huge durations get a
    /// well-defined, documented ceiling instead of silent wrap-adjacent
    /// behaviour.
    ///
    /// # Panics
    /// Panics on negative, NaN, or infinite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "time must be non-negative");
        let ns = (secs * 1e9).round();
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self − earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition.
    pub fn checked_add(self, delta: SimTime) -> Option<SimTime> {
        self.0.checked_add(delta.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics when `rhs` is later than `self` — use
    /// [`SimTime::saturating_since`] where underflow is expected.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A fixed-interval schedule: yields `start`, `start+period`, … — the
/// 90 Hz VR frame clock, control-poll timers, and motion-trace sampling
/// all use one of these.
#[derive(Debug, Clone, Copy)]
pub struct Periodic {
    next: SimTime,
    period: SimTime,
}

impl Periodic {
    /// Creates a schedule beginning at `start` with the given period.
    ///
    /// # Panics
    /// Panics on a zero period (the event loop would never advance).
    pub fn new(start: SimTime, period: SimTime) -> Self {
        assert!(period > SimTime::ZERO, "period must be positive"); // lint: constructor contract on a caller constant, not runtime input
        Periodic {
            next: start,
            period,
        }
    }

    /// The next instant the schedule will fire (without consuming it).
    pub fn peek(&self) -> SimTime {
        self.next
    }

    /// The period.
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Consumes and returns the next instant, advancing the schedule.
    pub fn tick(&mut self) -> SimTime {
        let t = self.next;
        self.next += self.period;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(1), SimTime::from_nanos(1_000_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_millis(11).as_secs_f64() - 0.011).abs() < 1e-12);
        assert!((SimTime::from_millis(11).as_millis_f64() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(11);
        assert!(a < b);
        assert_eq!(a, SimTime::from_nanos(10));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(8));
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(8));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_rejected() {
        SimTime::from_secs_f64(-0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn infinite_seconds_rejected() {
        SimTime::from_secs_f64(f64::INFINITY);
    }

    #[test]
    fn huge_seconds_saturate_to_max() {
        assert_eq!(SimTime::from_secs_f64(1e300), SimTime::MAX);
        // Exactly at the boundary region: u64::MAX ns ≈ 1.8447e19 ns.
        assert_eq!(SimTime::from_secs_f64(2e10), SimTime::MAX);
        // Comfortably below the ceiling, conversion is exact as before.
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!(SimTime::from_secs_f64(1e9) < SimTime::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(500)), "500ns");
        assert_eq!(format!("{}", SimTime::from_micros(2)), "2.000µs");
        assert_eq!(format!("{}", SimTime::from_millis(11)), "11.000ms");
        assert_eq!(format!("{}", SimTime::from_secs_f64(2.5)), "2.500s");
    }

    #[test]
    fn periodic_ticks() {
        let mut p = Periodic::new(SimTime::ZERO, SimTime::from_millis(11));
        assert_eq!(p.peek(), SimTime::ZERO);
        assert_eq!(p.tick(), SimTime::ZERO);
        assert_eq!(p.tick(), SimTime::from_millis(11));
        assert_eq!(p.tick(), SimTime::from_millis(22));
        assert_eq!(p.peek(), SimTime::from_millis(33));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        Periodic::new(SimTime::ZERO, SimTime::ZERO);
    }

    #[test]
    fn checked_add_at_boundary() {
        assert!(SimTime::from_nanos(u64::MAX)
            .checked_add(SimTime::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::from_nanos(1).checked_add(SimTime::from_nanos(2)),
            Some(SimTime::from_nanos(3))
        );
    }
}
