//! The event queue.
//!
//! [`EventQueue`] orders typed events by time with FIFO tie-breaking (two
//! events scheduled for the same instant pop in scheduling order — this
//! keeps simulations deterministic). The caller owns the dispatch loop:
//!
//! ```
//! use movr_sim::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { FrameDeadline, BeamRealigned }
//!
//! let mut q = EventQueue::new();
//! q.schedule_in(SimTime::from_millis(11), Ev::FrameDeadline);
//! q.schedule_in(SimTime::from_micros(2), Ev::BeamRealigned);
//!
//! let (t, ev) = q.next().unwrap();
//! assert_eq!(ev, Ev::BeamRealigned);
//! assert_eq!(t, SimTime::from_micros(2));
//! assert_eq!(q.now(), t); // the clock advanced
//! ```

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // among equal times, lowest sequence number first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue with a monotonic clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// The current simulated time: the timestamp of the last popped event
    /// (or zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — an event that should already have
    /// happened is a simulation bug, not a recoverable condition.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    /// (Deliberately named like `Iterator::next`; the queue is the
    /// simulation's event source and this is its idiomatic verb.)
    #[allow(clippy::should_implement_trait)] // lint: Iterator would lose the (SimTime, E) clock-advance contract
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "heap produced a past event");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event only if it is due at or before `deadline`.
    /// The clock never advances past `deadline` via this method.
    pub fn next_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.next(),
            _ => None,
        }
    }

    /// Drops all pending events (the clock keeps its value).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Pending events in the exact order [`EventQueue::next`] would pop
    /// them: ascending timestamp, FIFO among equal timestamps. This is the
    /// canonical serialization order for checkpoints — a queue rebuilt
    /// from this list with [`EventQueue::restore`] pops identically.
    pub fn pending_in_pop_order(&self) -> Vec<(SimTime, &E)> {
        let mut entries: Vec<&Scheduled<E>> = self.heap.iter().collect();
        entries.sort_by_key(|s| (s.at, s.seq));
        entries.into_iter().map(|s| (s.at, &s.event)).collect()
    }

    /// Rebuilds a queue from a clock value and events listed in pop order
    /// (as produced by [`EventQueue::pending_in_pop_order`]). Sequence
    /// numbers are re-minted `0..n` in list order, so FIFO ties are
    /// preserved even though the original counters are not stored.
    ///
    /// Returns an error instead of panicking when an event predates `now`
    /// — restore input is external data (a snapshot file), not a
    /// simulation invariant.
    pub fn restore(
        now: SimTime,
        events: Vec<(SimTime, E)>,
    ) -> Result<Self, PastEventError> {
        let mut q = EventQueue {
            heap: BinaryHeap::with_capacity(events.len()),
            now,
            seq: 0,
        };
        for (at, event) in events {
            if at < now {
                return Err(PastEventError { at, now });
            }
            q.heap.push(Scheduled {
                at,
                seq: q.seq,
                event,
            });
            q.seq += 1;
        }
        Ok(q)
    }
}

/// Error from [`EventQueue::restore`]: an event timestamp predates the
/// restored clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PastEventError {
    /// The offending event's timestamp.
    pub at: SimTime,
    /// The clock value being restored.
    pub now: SimTime,
}

impl std::fmt::Display for PastEventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pending event at {} predates restored clock {}",
            self.at, self.now
        )
    }
}

impl std::error::Error for PastEventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        assert_eq!(q.next().unwrap().1, "a");
        assert_eq!(q.next().unwrap().1, "b");
        assert_eq!(q.next().unwrap().1, "c");
        assert!(q.next().is_none());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.next().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.next();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "first");
        q.next();
        q.schedule_in(SimTime::from_millis(5), "second");
        let (t, _) = q.next().unwrap();
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.next();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    fn next_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), "early");
        q.schedule_at(SimTime::from_millis(30), "late");
        assert_eq!(
            q.next_until(SimTime::from_millis(20)).unwrap().1,
            "early"
        );
        assert!(q.next_until(SimTime::from_millis(20)).is_none());
        assert_eq!(q.len(), 1);
        // Clock has not run past the deadline.
        assert_eq!(q.now(), SimTime::from_millis(10));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), ());
        q.next();
        q.schedule_in(SimTime::from_millis(5), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_millis(5));
    }

    #[test]
    fn equal_time_events_serialize_in_fifo_order() {
        // Pin the tie-break before trusting serialization: events at one
        // instant must list (and round-trip) in scheduling order.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(9);
        q.schedule_at(SimTime::from_millis(20), "late");
        for name in ["first", "second", "third"] {
            q.schedule_at(t, name);
        }
        let listed: Vec<&str> = q.pending_in_pop_order().iter().map(|&(_, &e)| e).collect();
        assert_eq!(listed, ["first", "second", "third", "late"]);
    }

    #[test]
    fn restore_round_trip_preserves_pop_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(4), "a");
        q.next(); // advance the clock so `now` is non-trivial
        let t = SimTime::from_millis(12);
        q.schedule_at(t, "x");
        q.schedule_at(SimTime::from_millis(30), "z");
        q.schedule_at(t, "y");

        let dumped: Vec<(SimTime, &str)> = q
            .pending_in_pop_order()
            .into_iter()
            .map(|(at, &e)| (at, e))
            .collect();
        let mut restored = EventQueue::restore(q.now(), dumped).unwrap();
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.len(), q.len());
        let mut orig_pops = Vec::new();
        let mut rest_pops = Vec::new();
        while let Some(p) = q.next() {
            orig_pops.push(p);
        }
        while let Some(p) = restored.next() {
            rest_pops.push(p);
        }
        assert_eq!(orig_pops, rest_pops);
    }

    #[test]
    fn restore_rejects_past_events_without_panicking() {
        let err = match EventQueue::restore(
            SimTime::from_millis(10),
            vec![(SimTime::from_millis(5), ())],
        ) {
            Ok(_) => panic!("past event must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.at, SimTime::from_millis(5));
        assert_eq!(err.now, SimTime::from_millis(10));
        // The message is actionable for snapshot debugging.
        assert!(format!("{err}").contains("predates"));
    }

    #[test]
    fn interleaved_scheduling_stays_deterministic() {
        // Simulate two periodic processes; order must be reproducible.
        let run = || {
            let mut q = EventQueue::new();
            let mut log = Vec::new();
            q.schedule_at(SimTime::ZERO, 'a');
            q.schedule_at(SimTime::ZERO, 'b');
            while let Some((t, ev)) = q.next() {
                log.push((t, ev));
                if log.len() >= 20 {
                    break;
                }
                let period = if ev == 'a' { 3 } else { 5 };
                q.schedule_in(SimTime::from_millis(period), ev);
            }
            log
        };
        assert_eq!(run(), run());
    }
}
