#![warn(missing_docs)]

//! Discrete-event simulation engine.
//!
//! End-to-end MoVR experiments (a VR session with a moving player, frame
//! deadlines every 11.1 ms, blockage events, beam re-alignment) are driven
//! by a classic discrete-event loop: a monotonic simulated clock
//! ([`SimTime`]) and a priority queue of typed events ([`EventQueue`]).
//!
//! Following the event-driven style of the networking guides (smoltcp
//! rather than an async runtime — this is CPU-bound simulation, not I/O),
//! the engine is deliberately callback-free: the caller pops events and
//! dispatches them itself, so all state lives in ordinary structs with no
//! interior mutability or `dyn FnOnce` gymnastics.

pub mod par;
pub mod pool;
pub mod queue;
pub mod time;

pub use par::{available_threads, par_map};
pub use pool::{global_pool, pool_map, WorkerPool};
pub use queue::{EventQueue, PastEventError};
pub use time::{Periodic, SimTime};
