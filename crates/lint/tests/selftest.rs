//! Analyzer self-test: runs the full rule catalogue against the seeded
//! fixture workspace and asserts the *exact* (rule, file, line) of
//! every diagnostic — any drift in the lexer or a rule shows up as a
//! precise diff here. Also exercises the ratchet round-trip on the
//! fixture findings.

use movr_lint::{analyze, analyze_threaded, apply_baseline, Baseline, RULES};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// `(rule, file, line)` for every expected fixture diagnostic, in the
/// engine's reporting order (file, then line, then rule).
const EXPECTED: &[(&str, &str, usize)] = &[
    ("no-wall-clock", "crates/alpha/src/lib.rs", 4),
    ("no-wall-clock", "crates/alpha/src/lib.rs", 6),
    ("no-wall-clock", "crates/alpha/src/lib.rs", 7),
    ("no-external-rng", "crates/alpha/src/lib.rs", 11),
    ("no-external-rng", "crates/alpha/src/lib.rs", 11),
    ("rng-fork-label-unique", "crates/alpha/src/lib.rs", 17),
    ("raw-db-arithmetic", "crates/alpha/src/lib.rs", 22),
    ("raw-db-arithmetic", "crates/alpha/src/lib.rs", 26),
    ("float-exact-eq", "crates/alpha/src/lib.rs", 30),
    ("recorded-pairing", "crates/alpha/src/lib.rs", 33),
    ("unwrap-in-lib", "crates/alpha/src/lib.rs", 36),
    ("raw-numeric-cast", "crates/alpha/src/lib.rs", 40),
    ("unjustified-allow", "crates/alpha/src/lib.rs", 43),
    ("layer-violation", "crates/beta/src/lib.rs", 10),
    ("layer-violation", "crates/beta/src/lib.rs", 14),
    ("layer-violation", "crates/beta/src/lib.rs", 18),
    ("panic-reachable-from-decode", "crates/codec/src/lib.rs", 12),
    ("panic-reachable-from-decode", "crates/codec/src/lib.rs", 21),
    ("recorded-effect-divergence", "crates/codec/src/lib.rs", 57),
    ("snapshot-field-uncovered", "crates/core/src/session.rs", 9),
    ("snapshot-field-uncovered", "crates/core/src/session.rs", 9),
    ("snapshot-field-uncovered", "crates/core/src/session.rs", 16),
    ("blocking-in-hot-loop", "crates/hot/src/lib.rs", 13),
    ("blocking-in-hot-loop", "crates/hot/src/lib.rs", 21),
    ("blocking-in-hot-loop", "crates/hot/src/lib.rs", 21),
    ("no-wall-clock", "crates/hot/src/lib.rs", 27),
    ("unordered-iter-in-output", "crates/outp/src/lib.rs", 10),
    ("unordered-iter-in-output", "crates/outp/src/lib.rs", 18),
    ("shared-mut-in-par-closure", "crates/par/src/lib.rs", 15),
    ("interior-mut-crosses-threads", "crates/par/src/lib.rs", 16),
    ("rng-unforked-in-par", "crates/par/src/lib.rs", 17),
    ("shared-mut-in-par-closure", "crates/par/src/lib.rs", 24),
    ("rng-reaches-par-unforked", "crates/par/src/lib.rs", 59),
    ("rng-fork-aliased", "crates/rng/src/lib.rs", 4),
    ("rng-fork-in-loop", "crates/rng/src/lib.rs", 9),
    ("rng-cross-crate-untagged", "crates/rng/src/lib.rs", 15),
    ("unit-mix-assign", "crates/units/src/lib.rs", 8),
    ("unit-mix-arith", "crates/units/src/lib.rs", 9),
    ("unit-mix-call", "crates/units/src/lib.rs", 10),
    ("no-wall-clock", "tests/integration.rs", 9),
    ("no-wall-clock", "tests/integration.rs", 10),
];

#[test]
fn fixture_hits_are_exact() {
    let report = analyze(&fixture_root()).expect("fixture workspace analyzes");
    let hits: Vec<(&str, &str, usize)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(hits, EXPECTED, "full diagnostic list drifted");
}

#[test]
fn every_rule_fires_on_the_fixture() {
    let report = analyze(&fixture_root()).expect("fixture workspace analyzes");
    for rule in RULES {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == *rule),
            "rule `{rule}` produced no fixture diagnostic — catalogue untested"
        );
    }
}

#[test]
fn diagnostics_carry_snippets_and_hints() {
    let report = analyze(&fixture_root()).expect("fixture workspace analyzes");
    for d in &report.diagnostics {
        assert!(!d.snippet.is_empty(), "{}:{} has no snippet", d.file, d.line);
        assert!(!d.hint.is_empty(), "{}:{} has no hint", d.file, d.line);
    }
    let unwrap = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "unwrap-in-lib")
        .expect("unwrap hit");
    assert_eq!(unwrap.snippet, "v.unwrap()");
}

#[test]
fn ratchet_roundtrip_on_fixture() {
    let report = analyze(&fixture_root()).expect("fixture workspace analyzes");
    let total = report.diagnostics.len();

    // Pinning exactly the current findings makes the gate clean.
    let pinned = Baseline::parse(&Baseline::render(&report.counts())).expect("baseline");
    let clean = apply_baseline(analyze(&fixture_root()).expect("re-analyze"), &pinned);
    assert!(clean.is_clean(), "{}", clean.render_human());
    assert_eq!(clean.baselined, total);

    // An empty baseline reports everything as new.
    let raw = apply_baseline(analyze(&fixture_root()).expect("re-analyze"), &Baseline::empty());
    assert_eq!(raw.new.len(), total);
    assert!(!raw.is_clean());
}

#[test]
fn exempt_db_file_mixes_units_cleanly() {
    // The fixture's crates/math/src/db.rs assigns a dB value to a
    // `linear`-named binding — the one place that must never fire.
    let report = analyze(&fixture_root()).expect("fixture workspace analyzes");
    assert!(
        !report.diagnostics.iter().any(|d| d.file == "crates/math/src/db.rs"),
        "the audited conversion site must produce no diagnostics"
    );
}

#[test]
fn parallel_report_is_byte_identical() {
    let one = analyze_threaded(&fixture_root(), 1).expect("single-threaded");
    for threads in [2, 3, 8] {
        let many = analyze_threaded(&fixture_root(), threads).expect("threaded");
        assert_eq!(
            one.render_json(),
            many.render_json(),
            "{threads}-thread report drifted from single-threaded output"
        );
        assert_eq!(one.files_scanned, many.files_scanned);
    }
}

#[test]
fn json_report_mentions_every_rule_hit() {
    let report = apply_baseline(
        analyze(&fixture_root()).expect("fixture workspace analyzes"),
        &Baseline::empty(),
    );
    let json = report.render_json();
    for rule in RULES {
        assert!(json.contains(rule), "JSON output missing rule `{rule}`");
    }
    assert!(json.contains("\"clean\": false"));
}
