//! Fixture output paths: seeded unordered-iteration violations plus
//! the ordered and commutative shapes that must stay clean.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// Seeded: the fn name marks this as a rendering path.
pub fn render_json(by_name: &HashMap<String, u64>) -> String {
    let mut s = String::new();
    for (name, _count) in by_name.iter() {
        s.push_str(name);
    }
    s
}

/// Seeded: a sink call inside the loop body, regardless of fn name.
pub fn tally(seen: &HashSet<u64>, sink: &mut String) {
    for v in seen.iter() {
        let _ = writeln!(sink, "{v}");
    }
}

/// Clean: ordered container on the output path.
pub fn render_sorted(by_name: &BTreeMap<String, u64>) -> String {
    let mut s = String::new();
    for (name, _count) in by_name.iter() {
        s.push_str(name);
    }
    s
}

/// Clean: commutative fold outside any output context.
pub fn grand_total(counts: &HashMap<String, u64>) -> u64 {
    counts.values().sum()
}
