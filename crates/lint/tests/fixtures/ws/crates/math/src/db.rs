//! Fixture: the audited conversion site. This file mixes dB and linear
//! values on purpose — it is the exempt home for conversions, so the
//! unit-flow analysis must stay silent here (clean-pass guard).

pub fn db_to_linear(x_db: f64) -> f64 {
    let linear = x_db;
    linear
}

pub fn linear_to_db(gain_linear: f64) -> f64 {
    gain_linear
}
