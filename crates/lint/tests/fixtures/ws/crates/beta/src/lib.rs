//! Fixture: seeded architecture-layering back-edges.

use movr_math::db::db_to_linear;

pub fn ok_edge(x_db: f64) -> f64 {
    db_to_linear(x_db)
}

pub fn up_into_radio() {
    movr_radio::mcs::table();
}

pub fn up_into_vr() {
    movr_vr::session::start();
}

pub fn undeclared_target() {
    movr_ghost::poke();
}
