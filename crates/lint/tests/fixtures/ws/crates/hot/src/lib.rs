//! Fixture hot-loop shapes: blocking I/O and the wall clock reachable
//! from the frame path across a crate boundary — the seeded
//! blocking-in-hot-loop hits — plus the clean sweep kernel.

use movr_codec::flush_audit;

pub struct Session {
    pub t: u64,
}

impl Session {
    /// Seeded: the audit flush blocks on file I/O a crate away.
    pub fn step(&mut self) {
        self.t += 1;
        flush_audit();
    }
}

/// Seeded: reaches blocking I/O through `Session::step` and the wall
/// clock through `warm_cache`.
pub fn step_frame(mut s: Session) -> u64 {
    s.step();
    warm_cache() + s.t
}

fn warm_cache() -> u64 {
    let _t = std::time::Instant::now();
    0
}

/// Clean: the sweep kernel stays compute-only.
pub fn estimate_reflection(x: u64) -> u64 {
    mix(x)
}

fn mix(x: u64) -> u64 {
    x.rotate_left(7) ^ 0x9e37
}
