//! Fixture codec shapes: panics buried below `decode*`/`restore*`
//! roots and a recorded twin that does extra I/O — the seeded hits for
//! the v4 interprocedural rules — plus the clean structured-error and
//! justified-index exemplars.

pub struct Frame {
    pub words: Vec<u64>,
}

/// Seeded: the index panic is one call down — only the call graph
/// sees it from here.
pub fn decode_frame(bytes: &[u8]) -> Frame {
    Frame { words: vec![read_head(bytes)] }
}

fn read_head(bytes: &[u8]) -> u64 {
    u64::from(bytes[0])
}

/// Seeded: a direct `expect` inside a restore root.
pub fn restore_index(slots: &[u64]) -> u64 {
    slots.iter().copied().max().expect("index present")
}

/// Clean: corrupt input becomes a structured error.
pub enum DecodeError {
    Short,
}

pub fn decode_checked(bytes: &[u8]) -> Result<u64, DecodeError> {
    match bytes.first() {
        Some(b) => Ok(u64::from(*b)),
        None => Err(DecodeError::Short),
    }
}

/// Clean: the index is justified at the site.
pub fn restore_magic(words: &[u64]) -> u64 {
    words[0] // lint: fixture-justified — callers pin non-empty input
}

pub struct Sink {
    pub events: Vec<u64>,
}

impl Sink {
    pub fn record(&mut self, v: u64) {
        self.events.push(v);
    }
}

pub fn load(tag: u64) -> u64 {
    tag.wrapping_mul(3)
}

/// Seeded: the recorded twin opens a file the plain path never touches.
pub fn load_recorded(tag: u64, sink: &mut Sink) -> u64 {
    let v = load(tag);
    sink.record(v);
    let _audit = std::fs::File::open("audit.log");
    v
}

/// Blocking leaf the hot fixture reaches across the crate boundary.
pub fn flush_audit() {
    let _ = std::fs::File::create("audit.log");
}
