//! Fixture: seeded unit-flow violations. selftest.rs pins each hit.

pub fn apply_gain(gain_db: f64) -> f64 {
    gain_db
}

pub fn mixes(leak_linear: f64, snr_db: f64) -> f64 {
    let total_db = leak_linear;
    let margin = snr_db + leak_linear;
    apply_gain(leak_linear) + total_db + margin
}

pub fn link_budget(p_dbm: f64, g_db: f64) -> f64 {
    p_dbm + g_db
}
