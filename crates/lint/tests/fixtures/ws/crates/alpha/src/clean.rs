//! Fixture: near-misses that must NOT produce diagnostics — the
//! analyzer's false-positive guard.
//! Instant and SystemTime in prose (this comment) are invisible.

pub fn string_mentions_are_fine() -> &'static str {
    "std::time::Instant inside a string literal"
}

pub fn unwrap_or_is_not_unwrap(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn cube_root_is_not_db(x: f64) -> f64 {
    x.powf(1.0 / 3.0)
}

pub fn plain_log_is_fine(x: f64) -> f64 {
    x.log10()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_and_compare_exactly() {
        let v: Option<f64> = Some(0.0);
        assert!(v.unwrap() == 0.0);
        let _narrow = 3.5_f64 as u32;
    }
}
