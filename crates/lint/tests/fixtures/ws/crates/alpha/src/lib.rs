//! Fixture: seeded violations for the movr-lint self-test.
//! selftest.rs asserts the exact (rule, line) of every hit below.

use std::time::Instant;

pub fn wall_clock() -> Instant {
    Instant::now()
}

pub fn entropy() -> u64 {
    let mut r = rand::thread_rng();
    r.next()
}

pub fn correlated(rng: &mut SimRng) -> (SimRng, SimRng) {
    let a = rng.fork(7);
    let b = rng.fork(7);
    (a, b)
}

pub fn raw_db(x: f64) -> f64 {
    10f64.powf(x / 10.0)
}

pub fn raw_amp(x: f64) -> f64 {
    20.0 * x.log10()
}

pub fn exact(a: f64) -> bool {
    a == 0.0
}

pub fn probe_recorded(rec: &mut dyn Recorder) {}

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn lossy(x: f64) -> u32 {
    x as u32
}

#[allow(dead_code)]
fn suppressed() {}

#[allow(dead_code)] // lint: fixture demonstrating a justified allow
fn justified() {}
