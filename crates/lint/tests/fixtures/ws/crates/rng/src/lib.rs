//! Fixture: seeded RNG-stream dataflow violations (and the tagged fix).

pub fn aliased(rng: &mut SimRng) -> SimRng {
    rng.clone()
}

pub fn per_frame(rng: &mut SimRng) {
    for frame in 0..16 {
        let stream = rng.fork(3);
        let _ = (frame, stream);
    }
}

pub fn handoff(rng: &mut SimRng) {
    movr_rfsim::sample(rng);
}

pub fn tagged(rng: &mut SimRng) {
    let mut child = rng.fork(9);
    movr_rfsim::sample(&mut child);
}
