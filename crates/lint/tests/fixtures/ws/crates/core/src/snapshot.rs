//! Fixture snapshot codec: encodes every state field except
//! `stall_frames`, and decodes everything except `stall_frames` and
//! `history_len`. The coverage pass anchors its findings at the field
//! declarations in `session.rs`, not here.

pub fn encode_state(st: &SessionState, cp: &TrackerCheckpoint, out: &mut Vec<u8>) {
    put_u64(out, st.frames);
    put_f64(out, st.snr_total);
    put_u64(out, st.queue_len);
    put_u64(out, cp.last_update);
    put_u64(out, cp.history_len);
}

pub fn decode_state(body: &mut Reader) -> (SessionState, TrackerCheckpoint) {
    let frames = body.take_u64();
    let snr_total = body.take_f64();
    let queue_len = body.take_u64();
    let last_update = body.take_u64();
    rebuild(frames, snr_total, queue_len, last_update)
}
