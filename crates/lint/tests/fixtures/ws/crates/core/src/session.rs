//! Fixture checkpointed state: `stall_frames` is deliberately missing
//! from *both* codec sides and `history_len` from decode only; the
//! self-test pins the exact lines the coverage pass reports.

/// Mid-session mutable state captured by snapshots.
pub struct SessionState {
    pub frames: u64,
    pub snr_total: f64,
    pub stall_frames: u64,
    pub queue_len: u64,
}

/// Beam-tracker state nested inside the snapshot body.
pub struct TrackerCheckpoint {
    pub last_update: u64,
    pub history_len: u64,
}
