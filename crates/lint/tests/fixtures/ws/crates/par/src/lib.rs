//! Fixture fan-out shapes: seeded parallel-capture violations the
//! self-test pins, plus the sanctioned clean forms (per-item fork,
//! read-only captures, values returned instead of shared).

use movr_math::SimRng;
use movr_rfsim::MemoPattern;
use movr_sim::par_map;

/// Seeded: one closure committing all three parallel-capture sins on
/// three distinct lines.
pub fn tally(items: &[u64], rng: &mut SimRng) -> Vec<u64> {
    let mut total = 0u64;
    let memo = MemoPattern::new(1.0);
    par_map(items, 4, |_, &x| {
        total += x;
        let boost = memo.gain(x);
        boost ^ rng.next_u64()
    })
}

/// Seeded: scoped spawn pushing into an enclosing buffer.
pub fn spawned(shared: &mut Vec<u64>) {
    std::thread::scope(|scope| {
        scope.spawn(|| shared.push(1));
    });
}

/// Clean: per-item fork keyed on the item index, per-worker state
/// built inside the closure, read-only capture of `scale`.
pub fn forked(items: &[u64], rng: &mut SimRng, scale: u64) -> Vec<u64> {
    par_map(items, 4, |i, &x| {
        let mut child = rng.fork(1000 + i);
        let mut acc = x * scale;
        acc ^= child.next_u64();
        acc
    })
}

/// Clean: mutation from the *scope* closure runs on the caller thread;
/// only `spawn` bodies cross the boundary.
pub fn joined(shared: &mut Vec<u64>) {
    std::thread::scope(|_scope| {
        shared.push(0);
    });
}

/// Carrier context: the stream hides one field deep — v3's local
/// check cannot see the draw, the v4 call graph can.
pub struct Ctx {
    pub rng: SimRng,
}

fn jitter(x: u64, ctx: &mut Ctx) -> u64 {
    x ^ ctx.rng.next_u64()
}

/// Seeded: `ctx` carries the stream into `jitter`, which draws.
pub fn batched(items: &[u64], ctx: &mut Ctx) -> Vec<u64> {
    par_map(items, 4, |_, &x| jitter(x, ctx))
}

/// Clean: a per-item child forked from the carrier inside the closure
/// is the only stream the items see.
pub fn batched_forked(items: &[u64], ctx: &mut Ctx) -> Vec<u64> {
    par_map(items, 4, |i, &x| {
        let mut child = ctx.rng.fork(4000 + i);
        scramble(x, &mut child)
    })
}

fn scramble(x: u64, r: &mut SimRng) -> u64 {
    x ^ r.next_u64()
}
