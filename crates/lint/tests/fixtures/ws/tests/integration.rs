//! Fixture test file: unwraps and exact float compares are allowed in
//! test code, but wall clocks are banned everywhere — a timing
//! assertion against the host clock makes the test nondeterministic.

pub fn helper(v: Option<f64>) -> bool {
    v.unwrap() == 0.25
}

pub fn timed() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
