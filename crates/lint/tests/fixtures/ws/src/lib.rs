//! Fixture root package: a correctly paired recorded function — the
//! plain wrapper delegates with NullRecorder, so recorded-pairing
//! stays silent.

pub fn step() {
    step_recorded(&mut NullRecorder)
}

pub fn step_recorded(rec: &mut dyn Recorder) {
    let _ = rec;
}
