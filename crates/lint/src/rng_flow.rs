//! RNG-stream dataflow: every `SimRng` stream must be a distinct,
//! labelled fork. Determinism survives refactors only when subsystems
//! own independent child streams — two handles onto the *same* stream
//! state, or streams whose labels collide, silently correlate results
//! the moment a call order changes.
//!
//! Three findings, tracked per function body through locals and call
//! boundaries (the item parser provides signatures and body ranges):
//!
//! * **`rng-fork-aliased`** — `.clone()` on a `SimRng` value. A clone
//!   replays the parent's exact draw sequence; the aliased streams stay
//!   bit-correlated forever. Fork a labelled child instead.
//! * **`rng-fork-in-loop`** — `.fork(<literal>)` inside a `for`/
//!   `while`/`loop` body. The label cannot vary per iteration, so the
//!   per-iteration streams are distinguished only by the parent's call
//!   order — exactly the order-dependence `fork` labels exist to break.
//!   Derive the label from the loop variable.
//! * **`rng-cross-crate-untagged`** — a raw stream handle (a `SimRng`
//!   parameter or a freshly seeded generator, *not* a labelled fork
//!   child) passed to a function resolved to another `movr_*` crate.
//!   The convention: a crate forks its own labelled child before
//!   handing randomness across a boundary, so each crate's consumption
//!   is independent of its callees'. Binary entry points (`src/bin/**`,
//!   `src/main.rs`) are exempt — a driver's `main` owns the root
//!   stream, and handing it to the system under test is its job.

use crate::lexer::TokenKind;
use crate::parser::FnSig;
use crate::rules::Diagnostic;
use crate::source::{match_delim_pub, FileKind, SourceFile};
use std::collections::HashMap;

/// How a `SimRng` binding came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// A labelled `fork(...)` child — tagged, free to cross boundaries.
    Fork,
    /// A parameter or `seed_from_u64` root — raw, must be re-forked
    /// before crossing a crate boundary.
    Raw,
}

/// Runs the RNG-dataflow analysis over every library file.
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for f in files {
        if f.kind != FileKind::Lib {
            continue;
        }
        for sig in &f.parsed.fns {
            let Some((open, close)) = sig.body else { continue };
            if f.in_cfg_test(open) {
                continue;
            }
            check_fn(f, sig, open, close, out);
        }
    }
}

fn diag(f: &SourceFile, rule: &'static str, line: usize, hint: String) -> Diagnostic {
    Diagnostic { rule, file: f.rel.clone(), line, snippet: f.snippet(line), hint }
}

fn check_fn(f: &SourceFile, sig: &FnSig, open: usize, close: usize, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    // --- Collect SimRng bindings: parameters first, then `let`s.
    let mut bindings: HashMap<&str, Origin> = HashMap::new();
    for p in &sig.params {
        if !p.name.is_empty() && p.ty.contains("SimRng") {
            bindings.insert(p.name.as_str(), Origin::Raw);
        }
    }
    let mut i = open;
    while i <= close && i < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(TokenKind::Ident(name)) = toks.get(j).map(|t| &t.kind) {
                // RHS tokens up to the statement end.
                let mut k = j + 1;
                while k <= close && !toks[k].is_punct(';') {
                    k += 1;
                }
                let rhs = &toks[j + 1..k.min(toks.len())];
                let forked = rhs
                    .windows(2)
                    .any(|w| w[0].is_punct('.') && w[1].is_ident("fork"));
                let seeded = rhs.iter().any(|t| t.is_ident("seed_from_u64"));
                let cloned_from = rhs.iter().enumerate().find_map(|(ri, t)| {
                    (t.is_ident("clone")
                        && ri >= 2
                        && rhs[ri - 1].is_punct('.')
                        && matches!(&rhs[ri - 2].kind, TokenKind::Ident(src) if bindings.contains_key(src.as_str())))
                    .then(|| match &rhs[ri - 2].kind {
                        TokenKind::Ident(src) => src.clone(),
                        _ => unreachable!(),
                    })
                });
                if forked {
                    bindings.insert(name.as_str(), Origin::Fork);
                } else if seeded {
                    bindings.insert(name.as_str(), Origin::Raw);
                } else if let Some(src) = &cloned_from {
                    // Aliased: both handles replay the same stream.
                    let origin = bindings[src.as_str()];
                    bindings.insert(name.as_str(), origin);
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    // --- Finding 1: `.clone()` on any known stream handle.
    for k in open..=close.min(toks.len().saturating_sub(1)) {
        if toks[k].is_ident("clone")
            && k >= 2
            && toks[k - 1].is_punct('.')
            && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
        {
            if let TokenKind::Ident(recv) = &toks[k - 2].kind {
                if bindings.contains_key(recv.as_str()) {
                    out.push(diag(
                        f,
                        "rng-fork-aliased",
                        toks[k].line,
                        format!(
                            "`{recv}.clone()` aliases the stream — both handles replay identical draws; fork a labelled child instead"
                        ),
                    ));
                }
            }
        }
    }
    // --- Finding 2: literal-labelled forks inside loop bodies.
    let loop_ranges = loop_body_ranges(f, open, close);
    for k in open..=close.min(toks.len().saturating_sub(1)) {
        if !toks[k].is_ident("fork")
            || k == 0
            || !toks[k - 1].is_punct('.')
            || !toks.get(k + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        if !loop_ranges.iter().any(|&(lo, hi)| lo < k && k < hi) {
            continue;
        }
        let args_close = match_delim_pub(toks, k + 1, '(', ')');
        let args = &toks[k + 2..args_close.min(toks.len())];
        let literal_only = !args.is_empty()
            && args
                .iter()
                .all(|t| matches!(t.kind, TokenKind::Number(_)));
        if literal_only {
            out.push(diag(
                f,
                "rng-fork-in-loop",
                toks[k].line,
                "fork label is loop-invariant: every iteration's child is distinguished only by parent call order; derive the label from the loop counter".to_string(),
            ));
        }
    }
    // --- Finding 3: raw handles passed to another crate's function.
    // Binary entry points (`src/bin/**`, `src/main.rs`) are exempt: a
    // driver's `main` *owns* the root stream, and handing it to the
    // system under test is the whole program — the re-fork convention
    // binds library crates, not top-level drivers.
    if f.rel.contains("/bin/") || f.rel.ends_with("/main.rs") {
        return;
    }
    for k in open..=close.min(toks.len().saturating_sub(1)) {
        let TokenKind::Ident(callee) = &toks[k].kind else { continue };
        if !toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(target) = cross_crate_target(f, k) else { continue };
        if target == f.crate_name {
            continue;
        }
        let args_close = match_delim_pub(toks, k + 1, '(', ')');
        let mut a = k + 2;
        while a < args_close {
            // A bare (possibly `&`/`&mut`-wrapped) known raw handle.
            while toks[a].is_punct('&') || toks[a].is_ident("mut") {
                a += 1;
            }
            if let TokenKind::Ident(arg) = &toks[a].kind {
                let bare = toks
                    .get(a + 1)
                    .is_some_and(|t| t.is_punct(',') || t.is_punct(')'));
                if bare && bindings.get(arg.as_str()) == Some(&Origin::Raw) {
                    out.push(diag(
                        f,
                        "rng-cross-crate-untagged",
                        toks[a].line,
                        format!(
                            "raw stream `{arg}` crosses into crate `{target}` via `{callee}`; pass `&mut {arg}.fork(<label>)` (or a labelled child) so the crates' draws stay independent"
                        ),
                    ));
                }
            }
            // Next top-level comma.
            let mut depth = 0i32;
            while a < args_close {
                match toks[a].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
                    TokenKind::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                a += 1;
            }
            a += 1;
        }
    }
}

/// Body token ranges of every `for`/`while`/`loop` between `open` and
/// `close`.
fn loop_body_ranges(f: &SourceFile, open: usize, close: usize) -> Vec<(usize, usize)> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for k in open..=close.min(toks.len().saturating_sub(1)) {
        let TokenKind::Ident(w) = &toks[k].kind else { continue };
        if !matches!(w.as_str(), "for" | "while" | "loop") {
            continue;
        }
        // `for` in `impl<T> X for Y` / HRTB `for<'a>`: a type-position
        // `for` is followed by an ident chain then `{` without `in`.
        // Cheap filter: `for` must be followed by `in` before its `{`
        // unless it's `while`/`loop`.
        let mut j = k + 1;
        let mut depth = 0i32;
        let mut saw_in = false;
        while j <= close && j < toks.len() {
            match &toks[j].kind {
                TokenKind::Punct('{') if depth == 0 => break,
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Ident(w2) if w2 == "in" && depth == 0 => saw_in = true,
                _ => {}
            }
            j += 1;
        }
        if w == "for" && !saw_in {
            continue;
        }
        if j <= close && j < toks.len() && toks[j].is_punct('{') {
            out.push((j, crate::source::match_brace(toks, j)));
        }
    }
    out
}

/// If the call at token `k` resolves to a workspace crate, returns that
/// crate's directory name. Two shapes: a qualified `movr_xxx::...` path,
/// or a leaf imported by a `use movr_xxx::...` declaration in this file.
fn cross_crate_target(f: &SourceFile, k: usize) -> Option<String> {
    let toks = &f.tokens;
    // Walk back over the `a::b::` path prefix to its first segment.
    let mut first = k;
    let mut j = k;
    while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
        if j < 3 {
            break;
        }
        if let TokenKind::Ident(_) = toks[j - 3].kind {
            first = j - 3;
            j = j - 3;
        } else {
            break;
        }
    }
    if first != k {
        let TokenKind::Ident(root) = &toks[first].kind else { return None };
        return crate_of_extern_root(root);
    }
    // Unqualified: resolve through this file's imports. Skip method
    // calls — the receiver, not the import, decides where they run.
    if k >= 1 && toks[k - 1].is_punct('.') {
        return None;
    }
    let TokenKind::Ident(name) = &toks[k].kind else { return None };
    let root = f.parsed.use_root_of(name)?;
    crate_of_extern_root(root)
}

/// Maps an extern-path root (`movr_math`, `movr`) to the workspace
/// crate directory name (`math`, `core`). Non-`movr` roots return None.
pub fn crate_of_extern_root(root: &str) -> Option<String> {
    if root == "movr" {
        return Some("core".to_string());
    }
    root.strip_prefix("movr_").map(|rest| rest.replace('_', "-"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(src: &str) -> Vec<(&'static str, usize)> {
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        let mut out = Vec::new();
        check(std::slice::from_ref(&f), &mut out);
        out.into_iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn clone_of_stream_is_aliased() {
        assert_eq!(
            hits("fn f(rng: &mut SimRng) { let a = rng.clone(); }"),
            [("rng-fork-aliased", 1)]
        );
        assert!(hits("fn f(rng: &mut SimRng) { let a = rng.fork(1); }").is_empty());
        // Cloning something that is not a stream is fine.
        assert!(hits("fn f(v: &Vec2) { let a = v.clone(); }").is_empty());
    }

    #[test]
    fn literal_fork_in_loop_flags() {
        assert_eq!(
            hits("fn f(rng: &mut SimRng) { for i in 0..4 { let c = rng.fork(7); } }"),
            [("rng-fork-in-loop", 1)]
        );
        // Loop-variant labels are the fix.
        assert!(hits(
            "fn f(rng: &mut SimRng) { for i in 0..4 { let c = rng.fork(base + i); } }"
        )
        .is_empty());
        // Outside a loop a literal label is the normal case.
        assert!(hits("fn f(rng: &mut SimRng) { let c = rng.fork(7); }").is_empty());
    }

    #[test]
    fn raw_stream_crossing_crates_flags() {
        let src = "fn f(rng: &mut SimRng) { movr_rfsim::noise::sample(rng); }";
        assert_eq!(hits(src), [("rng-cross-crate-untagged", 1)]);
        let ok = "fn f(rng: &mut SimRng) { let mut child = rng.fork(3); movr_rfsim::noise::sample(&mut child); }";
        assert!(hits(ok).is_empty());
    }

    #[test]
    fn imported_cross_crate_call_resolves_through_use() {
        let src = "use movr_radio::run_sls;\nfn f(rng: &mut SimRng) { run_sls(&mut rng); }";
        assert_eq!(hits(src), [("rng-cross-crate-untagged", 2)]);
    }

    #[test]
    fn same_crate_calls_are_fine() {
        let src = "fn g(rng: &mut SimRng) {}\nfn f(rng: &mut SimRng) { g(rng); }";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn binary_entry_points_may_pass_the_root_stream() {
        let src = "fn main() { let mut rng = SimRng::seed_from_u64(1); movr::install::run(&mut rng); }";
        let f = SourceFile::parse("crates/bench/src/bin/fig8.rs", src);
        let mut out = Vec::new();
        check(std::slice::from_ref(&f), &mut out);
        assert!(out.is_empty(), "{out:?}");
        // …but aliasing is still wrong even in a driver.
        let f = SourceFile::parse(
            "crates/bench/src/bin/fig8.rs",
            "fn main() { let mut rng = SimRng::seed_from_u64(1); let twin = rng.clone(); }",
        );
        let mut out = Vec::new();
        check(std::slice::from_ref(&f), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "rng-fork-aliased");
    }

    #[test]
    fn seeded_root_is_raw() {
        let src = "fn f() { let mut rng = SimRng::seed_from_u64(1); movr_vr::jitter(&mut rng); }";
        assert_eq!(hits(src), [("rng-cross-crate-untagged", 1)]);
    }
}
