//! Parallel-capture analysis: what a closure drags across a thread
//! boundary. `movr_sim::par_map` and `std::thread::scope` spawns are
//! the workspace's only fan-out primitives, and their determinism
//! guarantee ("byte-identical at any thread count") holds *only* when
//! worker closures share nothing mutable and draw no randomness from a
//! stream owned outside the closure. The borrow checker stops the
//! crudest versions of those bugs; the patterns that compile —
//! interior mutability smuggled through `RefCell`/`Rc`, a `static mut`,
//! or an RNG handle drawn from per-item in closure-capture order — are
//! exactly the ones that destroy bit-identity silently.
//!
//! Three findings, evaluated over the closure expressions the item
//! parser records (`parser::ClosureExpr`), with enclosing-binding
//! context collected the same way `rng_flow` collects stream origins:
//!
//! * **`shared-mut-in-par-closure`** — a parallel closure assigns to,
//!   takes `&mut` of, or calls a mutating method (`push`, `insert`, …)
//!   on a binding declared in the enclosing function. Even when it
//!   compiles (scoped spawns may mutably capture disjoint locals), the
//!   result depends on which worker ran — fan-out must return values
//!   and join in spawn order instead.
//! * **`interior-mut-crosses-threads`** — a parallel closure captures a
//!   binding of an interior-mutability type (`RefCell`, `Cell`, `Rc`,
//!   the `MemoPattern` gain table) or touches a `static mut`. Shared
//!   interior state makes per-worker results order-dependent (and
//!   `RefCell`/`Rc` are not `Sync` — the "fix" is usually a lock, which
//!   trades the compile error for nondeterminism). Atomics are
//!   deliberately *not* flagged: monotonic progress tracking is the
//!   sanctioned pattern (see `par_map`'s panic bookkeeping).
//! * **`rng-unforked-in-par`** — a `SimRng` stream owned outside the
//!   closure is referenced inside it other than through a per-item
//!   `fork` whose label derives from a closure parameter. Draws would
//!   interleave in worker order; each item must fork (or seed) its own
//!   child keyed on the item index.
//!
//! Known approximations (documented in DESIGN.md): capture detection is
//! name-based, so a shadowing `let` inside the closure exempts the name
//! (under-approximation), while a binding declared in a *sibling*
//! closure earlier in the same function is treated as enclosing
//! (over-approximation). The mutating-method list is a fixed
//! vocabulary; `&mut self` methods outside it are not seen.

use crate::lexer::TokenKind;
use crate::parser::ClosureExpr;
use crate::rules::Diagnostic;
use crate::source::{match_delim_pub, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Types whose capture into a parallel closure is flagged (shared with
/// the v4 `interior-mut` effect scan).
pub(crate) const INTERIOR_MUT: &[&str] = &["RefCell", "Cell", "Rc", "MemoPattern"];

/// Methods that mutate their receiver — the fixed vocabulary the
/// shared-mutation finding keys on.
const MUT_METHODS: &[&str] = &[
    "push", "push_str", "insert", "remove", "clear", "extend", "pop", "drain", "append",
    "truncate", "sort", "sort_by", "sort_unstable", "retain",
];

/// What the analysis knows about one enclosing binding.
#[derive(Debug, Clone, Default)]
struct Binding {
    /// Binding is a `SimRng` stream (typed param, seeded root, or fork
    /// child — any of them drawn per-item across workers is a bug).
    is_rng: bool,
    /// The interior-mutability type mentioned in its type or
    /// initializer, if any.
    interior: Option<&'static str>,
}

/// Runs the parallel-capture analysis over every file. Benches,
/// examples, and binaries are *included* — drivers feed the golden
/// fingerprints, so a nondeterministic fan-out there corrupts exactly
/// the artifacts the repo pins. Only `#[cfg(test)]` ranges are exempt.
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for f in files {
        check_file(f, out);
    }
}

fn diag(f: &SourceFile, rule: &'static str, line: usize, hint: String) -> Diagnostic {
    Diagnostic { rule, file: f.rel.clone(), line, snippet: f.snippet(line), hint }
}

fn check_file(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let closures = parallel_closures(f);
    if closures.is_empty() {
        return;
    }
    let static_muts = static_mut_names(f);
    for c in closures {
        if f.in_cfg_test(c.start) {
            continue;
        }
        check_closure(f, c, &static_muts, out);
    }
}

/// The closures handed to a parallel primitive: arguments of a
/// `par_map(...)` call or a `.spawn(...)` method call, outermost only
/// (a `.map(|x| …)` nested inside a spawned closure runs on the same
/// worker and is analyzed as part of the outer body).
pub(crate) fn parallel_closures(f: &SourceFile) -> Vec<&ClosureExpr> {
    let toks = &f.tokens;
    let mut candidates: Vec<&ClosureExpr> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let is_par_map = t.is_ident("par_map");
        let is_spawn = t.is_ident("spawn") && i >= 1 && toks[i - 1].is_punct('.');
        if !(is_par_map || is_spawn) || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let close = match_delim_pub(toks, i + 1, '(', ')');
        for c in &f.parsed.closures {
            if c.start > i + 1 && c.start < close {
                candidates.push(c);
            }
        }
    }
    // Keep outermost candidates only.
    let starts: Vec<(usize, (usize, usize))> =
        candidates.iter().map(|c| (c.start, c.body)).collect();
    candidates.retain(|c| {
        !starts
            .iter()
            .any(|&(start, body)| start < c.start && body.0 <= c.start && c.start <= body.1)
    });
    candidates.dedup_by_key(|c| c.start);
    candidates
}

/// Names of `static mut` items declared anywhere in the file.
fn static_mut_names(f: &SourceFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for w in f.tokens.windows(3) {
        if w[0].is_ident("static") && w[1].is_ident("mut") {
            if let TokenKind::Ident(name) = &w[2].kind {
                out.insert(name.clone());
            }
        }
    }
    out
}

fn check_closure(
    f: &SourceFile,
    c: &ClosureExpr,
    static_muts: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &f.tokens;
    let bindings = enclosing_bindings(f, c);
    let locals = closure_locals(f, c);
    let (lo, hi) = c.body;
    let hi = hi.min(toks.len().saturating_sub(1));
    // One finding per (rule, name) per closure: the first offending
    // reference anchors the diagnostic.
    let mut reported: BTreeSet<(&'static str, String)> = BTreeSet::new();
    for j in lo..=hi {
        let TokenKind::Ident(name) = &toks[j].kind else { continue };
        if static_muts.contains(name.as_str()) {
            if reported.insert(("interior-mut-crosses-threads", name.clone())) {
                out.push(diag(
                    f,
                    "interior-mut-crosses-threads",
                    toks[j].line,
                    format!(
                        "`static mut {name}` is touched from a parallel closure; worker order decides the value — pass per-item state in, return results out"
                    ),
                ));
            }
            continue;
        }
        if locals.contains(name.as_str()) {
            continue;
        }
        let Some(info) = bindings.get(name.as_str()) else { continue };
        if let Some(ty) = info.interior {
            if reported.insert(("interior-mut-crosses-threads", name.clone())) {
                out.push(diag(
                    f,
                    "interior-mut-crosses-threads",
                    toks[j].line,
                    format!(
                        "`{name}` ({ty}) is captured by a parallel closure; interior mutability shared across workers makes results order-dependent — build per-item state inside the closure"
                    ),
                ));
            }
        }
        if info.is_rng && !is_per_item_fork(toks, j, hi, &c.params) {
            if reported.insert(("rng-unforked-in-par", name.clone())) {
                out.push(diag(
                    f,
                    "rng-unforked-in-par",
                    toks[j].line,
                    format!(
                        "stream `{name}` crosses into a parallel closure without a per-item fork; draws interleave in worker order — use `{name}.fork(<label from the item index>)` (or seed per item)"
                    ),
                ));
            }
        }
        if mutates(toks, j, hi) {
            if reported.insert(("shared-mut-in-par-closure", name.clone())) {
                out.push(diag(
                    f,
                    "shared-mut-in-par-closure",
                    toks[j].line,
                    format!(
                        "parallel closure mutates enclosing binding `{name}`; which worker wrote last is scheduling-dependent — return per-item values and join in spawn order"
                    ),
                ));
            }
        }
    }
}

/// Bindings visible to the closure from its enclosing function:
/// parameters plus every `let` before the closure's opening `|`.
fn enclosing_bindings(f: &SourceFile, c: &ClosureExpr) -> BTreeMap<String, Binding> {
    let toks = &f.tokens;
    let mut bindings: BTreeMap<String, Binding> = BTreeMap::new();
    // Innermost fn whose body contains the closure.
    let sig = f
        .parsed
        .fns
        .iter()
        .filter(|s| {
            s.body
                .is_some_and(|(open, close)| open <= c.start && c.start <= close)
        })
        .min_by_key(|s| {
            let (open, close) = s.body.expect("filtered on body");
            close - open
        });
    let Some(sig) = sig else {
        return bindings;
    };
    for p in &sig.params {
        if p.name.is_empty() {
            continue;
        }
        bindings.insert(
            p.name.clone(),
            Binding {
                is_rng: p.ty.contains("SimRng"),
                interior: INTERIOR_MUT.iter().find(|t| p.ty.contains(*t)).copied(),
            },
        );
    }
    let (open, _) = sig.body.expect("filtered on body");
    let mut i = open;
    while i < c.start {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(TokenKind::Ident(name)) = toks.get(j).map(|t| &t.kind) {
                // Type annotation and initializer, to the statement end.
                let mut k = j + 1;
                while k < toks.len() && !toks[k].is_punct(';') {
                    k += 1;
                }
                let rest = &toks[j + 1..k.min(toks.len())];
                let mentions = |needle: &str| rest.iter().any(|t| t.is_ident(needle));
                let forked = rest
                    .windows(2)
                    .any(|w| w[0].is_punct('.') && w[1].is_ident("fork"));
                bindings.insert(
                    name.clone(),
                    Binding {
                        is_rng: mentions("SimRng") || mentions("seed_from_u64") || forked,
                        interior: INTERIOR_MUT.iter().find(|t| mentions(t)).copied(),
                    },
                );
                i = k;
                continue;
            }
        }
        i += 1;
    }
    bindings
}

/// Names bound *inside* the closure — its own parameters, parameters of
/// closures nested in its body, `let` bindings, and `for` patterns.
/// References to these never cross the thread boundary.
pub(crate) fn closure_locals(f: &SourceFile, c: &ClosureExpr) -> BTreeSet<String> {
    let toks = &f.tokens;
    let mut locals: BTreeSet<String> = c.params.iter().cloned().collect();
    for nested in &f.parsed.closures {
        if nested.start > c.body.0 && nested.start <= c.body.1 {
            locals.extend(nested.params.iter().cloned());
        }
    }
    let (lo, hi) = c.body;
    let hi = hi.min(toks.len().saturating_sub(1));
    let mut j = lo;
    while j <= hi {
        if toks[j].is_ident("let") {
            // All pattern idents up to the `=` (or type `:`).
            let mut k = j + 1;
            while k <= hi && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
                if toks[k].is_punct(':') {
                    break;
                }
                if let TokenKind::Ident(w) = &toks[k].kind {
                    if w != "mut" && w != "ref" {
                        locals.insert(w.clone());
                    }
                }
                k += 1;
            }
            j = k;
            continue;
        }
        if toks[j].is_ident("for") {
            let mut k = j + 1;
            while k <= hi && !toks[k].is_ident("in") && !toks[k].is_punct('{') {
                if let TokenKind::Ident(w) = &toks[k].kind {
                    if w != "mut" && w != "ref" {
                        locals.insert(w.clone());
                    }
                }
                k += 1;
            }
            j = k;
            continue;
        }
        j += 1;
    }
    locals
}

/// True when the reference at `j` is `name.fork(…)` with a label that
/// involves a closure parameter — the sanctioned per-item pattern.
fn is_per_item_fork(
    toks: &[crate::lexer::Token],
    j: usize,
    body_end: usize,
    params: &[String],
) -> bool {
    if !toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
        || !toks.get(j + 2).is_some_and(|t| t.is_ident("fork"))
        || !toks.get(j + 3).is_some_and(|t| t.is_punct('('))
    {
        return false;
    }
    let close = match_delim_pub(toks, j + 3, '(', ')').min(body_end);
    toks[j + 4..=close]
        .iter()
        .any(|t| matches!(&t.kind, TokenKind::Ident(w) if params.iter().any(|p| p == w)))
}

/// True when the ident at `j` is written through: plain or compound
/// assignment, `&mut` borrow, or a mutating method call.
fn mutates(toks: &[crate::lexer::Token], j: usize, body_end: usize) -> bool {
    // `&mut name`
    if j >= 2 && toks[j - 2].is_punct('&') && toks[j - 1].is_ident("mut") {
        return true;
    }
    let Some(next) = toks.get(j + 1) else { return false };
    if j + 1 > body_end {
        return false;
    }
    // `name = …` (not `==`, `=>`)
    if next.is_punct('=') {
        return !toks
            .get(j + 2)
            .is_some_and(|t| t.is_punct('=') || t.is_punct('>'));
    }
    // `name += …` and friends
    if let TokenKind::Punct(c) = next.kind {
        if matches!(c, '+' | '-' | '*' | '/' | '%' | '^' | '&' | '|')
            && toks.get(j + 2).is_some_and(|t| t.is_punct('='))
        {
            return true;
        }
    }
    // `name.push(…)` — fixed mutating vocabulary
    if next.is_punct('.') {
        if let Some(TokenKind::Ident(m)) = toks.get(j + 2).map(|t| &t.kind) {
            return MUT_METHODS.contains(&m.as_str())
                && toks.get(j + 3).is_some_and(|t| t.is_punct('('));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(src: &str) -> Vec<(&'static str, usize)> {
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        let mut out = Vec::new();
        check(std::slice::from_ref(&f), &mut out);
        out.into_iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn mutable_capture_in_par_map_flags() {
        let src = "fn f(items: &[u64]) -> u64 {\n  let mut total = 0u64;\n  par_map(items, 4, |_, &x| { total += x; x });\n  total\n}";
        assert_eq!(hits(src), [("shared-mut-in-par-closure", 3)]);
    }

    #[test]
    fn spawn_push_flags_and_scope_closure_does_not() {
        let src = "fn f(shared: &mut Vec<u64>) {\n  std::thread::scope(|scope| {\n    scope.spawn(|| shared.push(1));\n  });\n}";
        assert_eq!(hits(src), [("shared-mut-in-par-closure", 3)]);
        // Mutating from the *scope* closure (caller thread) is fine.
        let ok = "fn f(shared: &mut Vec<u64>) {\n  std::thread::scope(|scope| {\n    shared.push(1);\n  });\n}";
        assert!(hits(ok).is_empty());
    }

    #[test]
    fn interior_mut_capture_flags() {
        let src = "fn f(items: &[u64]) {\n  let memo = MemoPattern::new(1.0);\n  par_map(items, 4, |_, &x| memo.gain(x));\n}";
        assert_eq!(hits(src), [("interior-mut-crosses-threads", 3)]);
        // Building the table inside the closure is per-worker state.
        let ok = "fn f(items: &[u64]) {\n  par_map(items, 4, |_, &x| { let memo = MemoPattern::new(1.0); memo.gain(x) });\n}";
        assert!(hits(ok).is_empty());
    }

    #[test]
    fn static_mut_is_flagged_even_unbound() {
        let src = "static mut HITS: u64 = 0;\nfn f(items: &[u64]) {\n  par_map(items, 4, |_, &x| unsafe { HITS += x });\n}";
        assert_eq!(hits(src), [("interior-mut-crosses-threads", 3)]);
    }

    #[test]
    fn unforked_rng_flags_and_per_item_fork_passes() {
        let bad = "fn f(items: &[u64], rng: &mut SimRng) {\n  par_map(items, 4, |_, &x| rng.next_u64() ^ x);\n}";
        assert_eq!(hits(bad), [("rng-unforked-in-par", 2)]);
        let ok = "fn f(items: &[u64], rng: &mut SimRng) {\n  par_map(items, 4, |i, &x| { let mut child = rng.fork(1000 + i); child.next_u64() ^ x });\n}";
        assert!(hits(ok).is_empty());
        // A fork whose label ignores the item is still shared order.
        let still_bad = "fn f(items: &[u64], rng: &mut SimRng) {\n  par_map(items, 4, |i, &x| { let mut child = rng.fork(7); child.next_u64() ^ x });\n}";
        assert_eq!(hits(still_bad), [("rng-unforked-in-par", 2)]);
    }

    #[test]
    fn closure_locals_and_read_only_captures_pass() {
        let ok = "fn f(items: &[u64], scale: u64) -> Vec<u64> {\n  par_map(items, 4, |_, &x| { let mut acc = 0; acc += x; acc * scale })\n}";
        assert!(hits(ok).is_empty());
    }

    #[test]
    fn cfg_test_parallel_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t(items: &[u64]) { let mut n = 0; par_map(items, 2, |_, &x| { n += x; x }); }\n}";
        assert!(hits(src).is_empty());
    }
}
