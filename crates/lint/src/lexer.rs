//! A minimal Rust lexer: just enough fidelity for token-pattern lint
//! rules. Comments and literal *contents* are discarded so rules never
//! fire on prose, doc comments, or strings; what survives is the stream
//! of identifiers, numbers, and punctuation with source line numbers.
//!
//! The lexer understands line/block (nested) comments, plain and raw
//! strings (`r#"…"#`, any hash depth), byte strings, char and byte
//! literals, lifetimes (`'a` is not an unterminated char), and numeric
//! literals with underscores, base prefixes, exponents, and type
//! suffixes. It does not need to be a *complete* Rust lexer — anything
//! exotic degrades to skipped bytes, never to a panic.

/// A lexical token and the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

/// Token categories. Literal contents are dropped (only idents and
/// numbers keep their text — that is what the rules match on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Instant`, `as`, …).
    Ident(String),
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal, raw text preserved (`10.0`, `0x9E`, `2f64`, `1e-9`).
    Number(String),
    /// String, raw-string, or byte-string literal (content dropped).
    Str,
    /// Character or byte literal (content dropped).
    Char,
    /// A single punctuation character (`.`, `=`, `!`, `(`, `{`, …).
    Punct(char),
}

impl Token {
    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s == name)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes `src` into tokens. Never panics; bytes it cannot classify
/// (e.g. non-ASCII outside literals) are skipped.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(),
                b'"' => self.lex_string(),
                b'\'' => self.lex_lifetime_or_char(),
                _ if c == b'_' || c.is_ascii_alphabetic() => self.lex_ident_or_prefixed(),
                _ if c.is_ascii_digit() => self.lex_number(),
                _ if c.is_ascii() => {
                    self.push(TokenKind::Punct(char::from(c)));
                    self.i += 1;
                }
                // Non-ASCII outside a literal (θ in an ident, say):
                // skip the whole UTF-8 sequence.
                _ => {
                    self.i += 1;
                    while self.peek(0).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.i += 1;
                    }
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind) {
        let line = self.line;
        self.out.push(Token { kind, line });
    }

    fn skip_line_comment(&mut self) {
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.i += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match self.b[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
    }

    /// `self.i` is at the opening `"`. Consumes through the closing
    /// quote, honouring escapes and counting embedded newlines.
    fn lex_string(&mut self) {
        let start_line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.out.push(Token {
            kind: TokenKind::Str,
            line: start_line,
        });
    }

    /// `self.i` is at `r` or `b` and the following bytes open a raw
    /// string: `r"`, `r#…#"`, `br"`, `br#…#"`.
    fn lex_raw_string(&mut self) {
        let start_line = self.line;
        // Skip the prefix letters.
        while self.peek(0).is_some_and(|b| b == b'r' || b == b'b') {
            self.i += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.b[self.i] == b'"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(1 + seen) == Some(b'#') {
                    seen += 1;
                }
                if seen == hashes {
                    self.i += 1 + hashes;
                    break;
                }
            }
            self.i += 1;
        }
        self.out.push(Token {
            kind: TokenKind::Str,
            line: start_line,
        });
    }

    /// `self.i` is at `'`: either a lifetime (`'a`, `'_`) or a char
    /// literal (`'x'`, `'\n'`, `'\u{1F600}'`).
    fn lex_lifetime_or_char(&mut self) {
        let next = self.peek(1);
        let is_lifetime = next.is_some_and(|b| b == b'_' || b.is_ascii_alphabetic())
            && self.peek(2) != Some(b'\'');
        if is_lifetime {
            self.push(TokenKind::Lifetime);
            self.i += 2;
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.i += 1;
            }
            return;
        }
        let start_line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\'' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.out.push(Token {
            kind: TokenKind::Char,
            line: start_line,
        });
    }

    /// At an identifier start. Handles the literal prefixes `r"…"`,
    /// `b"…"`, `br"…"`, and `b'…'`; everything else is a plain ident.
    fn lex_ident_or_prefixed(&mut self) {
        let start = self.i;
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
        {
            self.i += 1;
        }
        let word = &self.b[start..self.i];
        let next = self.peek(0);
        // A raw string needs a `"` after the hashes — `r#ident` (raw
        // identifier) also starts `r#` and must not take this path.
        let raw_string = (word == b"r" || word == b"br") && {
            let mut k = 0;
            while self.peek(k) == Some(b'#') {
                k += 1;
            }
            self.peek(k) == Some(b'"')
        };
        if raw_string {
            self.i = start;
            self.lex_raw_string();
            return;
        }
        if word == b"b" && next == Some(b'"') {
            self.lex_string();
            // Rewrite the line: lex_string pushed with the quote's line,
            // which equals ours — nothing to fix.
            return;
        }
        if word == b"b" && next == Some(b'\'') {
            self.lex_lifetime_or_char();
            return;
        }
        // `r#ident` raw identifiers: treat the part after `r#` as the name.
        if word == b"r" && next == Some(b'#') && self.peek(1).is_some_and(|b| b == b'_' || b.is_ascii_alphabetic()) {
            self.i += 1; // the '#'
            let id_start = self.i;
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.i += 1;
            }
            let name = String::from_utf8_lossy(&self.b[id_start..self.i]).into_owned();
            self.push(TokenKind::Ident(name));
            return;
        }
        let name = String::from_utf8_lossy(word).into_owned();
        self.push(TokenKind::Ident(name));
    }

    /// At a digit. Consumes base prefixes, underscores, a fractional
    /// part (only when followed by a digit — `10.powf` keeps its dot),
    /// an exponent, and any type suffix.
    fn lex_number(&mut self) {
        let start = self.i;
        let line = self.line;
        if self.b[self.i] == b'0'
            && self
                .peek(1)
                .is_some_and(|b| matches!(b | 0x20, b'x' | b'o' | b'b'))
        {
            self.i += 2;
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.i += 1;
            }
        } else {
            self.eat_digits();
            if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
                self.i += 1;
                self.eat_digits();
            }
            if self.peek(0).is_some_and(|b| b | 0x20 == b'e') {
                let signed = matches!(self.peek(1), Some(b'+') | Some(b'-'));
                let first = if signed { self.peek(2) } else { self.peek(1) };
                if first.is_some_and(|b| b.is_ascii_digit()) {
                    self.i += if signed { 2 } else { 1 };
                    self.eat_digits();
                }
            }
            // Type suffix (`f64`, `u32`, …).
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.i += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.out.push(Token {
            kind: TokenKind::Number(text),
            line,
        });
    }

    fn eat_digits(&mut self) {
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_digit())
        {
            self.i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // Instant in a comment
            /* SystemTime in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"SystemTime "quoted" inside"#;
        "##;
        assert!(!idents(src).iter().any(|i| i == "Instant" || i == "SystemTime"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn numbers_keep_text_and_release_method_dots() {
        let toks = lex("10f64.powf(db / 10.0) + 1e-9 + 0x9E37_79B9");
        let nums: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Number(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["10f64", "10.0", "1e-9", "0x9E37_79B9"]);
        assert!(toks.iter().any(|t| t.is_ident("powf")));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // `b` after the embedded newline
    }

    #[test]
    fn raw_strings_with_hashes_close_on_matching_depth() {
        // A one-hash terminator inside a two-hash raw string must NOT
        // close it; `inside` stays literal content, `after` is code.
        let src = "let x = r##\"quote \"# inside\"##; after";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("inside")));
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);

        // Byte raw strings take the same path, and multi-line raw
        // strings keep the line counter honest for trailing tokens.
        let toks = lex("br#\"a\nb\"# tail");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
        let tail = toks.iter().find(|t| t.is_ident("tail")).unwrap();
        assert_eq!(tail.line, 2);
    }

    #[test]
    fn nested_block_comments_balance_and_count_lines() {
        // The inner `*/` closes only the inner comment; `hidden` is
        // still commented out and `visible` follows on line 3.
        let src = "/* outer /* inner\n*/ hidden */\nvisible";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("hidden")));
        let vis = toks.iter().find(|t| t.is_ident("visible")).unwrap();
        assert_eq!(vis.line, 3);
        // Unterminated nesting degrades to "rest of file is comment".
        assert!(lex("/* open /* never closed */").is_empty());
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        // `r#type` shares a prefix with `r#"…"#` but is an identifier.
        let toks = lex("let r#type = r#\"raw\"#; end");
        assert!(toks.iter().any(|t| t.is_ident("type")));
        assert!(toks.iter().any(|t| t.is_ident("end")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn lifetime_tokens_cover_static_and_byte_chars() {
        // `'static` and `'_` are lifetimes; `b'x'` is a (byte) char
        // literal, not a lifetime starting at `x`.
        let toks = lex("fn g(s: &'static str, t: &'_ u8) -> u8 { b'x' }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let toks = lex(r#"let x = "a\"b"; y"#);
        assert!(toks.iter().any(|t| t.is_ident("y")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }
}
