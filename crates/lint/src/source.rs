//! Workspace file model: which crate a file belongs to, whether it is
//! library code, and which token ranges are test-only (`#[cfg(test)]`
//! items). Rules consult this to scope themselves correctly.

use crate::lexer::{lex, Token, TokenKind};
use crate::parser::{self, ParsedFile};

/// Where a `.rs` file sits in the workspace layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` or the root `src/**` — ratchet territory.
    Lib,
    /// `tests/**` or `crates/<name>/tests/**` — integration tests.
    Test,
    /// `examples/**`.
    Example,
    /// `crates/<name>/benches/**`.
    Bench,
}

/// A lexed workspace source file plus the classification rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Crate the file belongs to (`"core"`, `"math"`, … from
    /// `crates/<name>/…`; the root package is `"movr-system"`).
    pub crate_name: String,
    /// Layout role of the file.
    pub kind: FileKind,
    /// Token stream (comments and literal contents already dropped).
    pub tokens: Vec<Token>,
    /// Raw source lines, for snippets and line-anchored rules.
    pub lines: Vec<String>,
    /// Item-level parse (fn signatures, use leaves, struct fields) for
    /// the semantic analyses.
    pub parsed: ParsedFile,
    /// Token-index ranges `[start, end)` covering `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Builds the model from a workspace-relative path and file contents.
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let test_ranges = compute_test_ranges(&tokens);
        let parsed = parser::parse(&tokens);
        let (crate_name, kind) = classify(rel);
        SourceFile {
            rel: rel.to_string(),
            crate_name,
            kind,
            tokens,
            lines: src.lines().map(str::to_string).collect(),
            parsed,
            test_ranges,
        }
    }

    /// True if the token at `idx` is inside a `#[cfg(test)]` item or the
    /// file as a whole is test/bench/example code.
    pub fn is_test_code(&self, idx: usize) -> bool {
        self.kind != FileKind::Lib || self.in_cfg_test(idx)
    }

    /// True if the token at `idx` is inside a `#[cfg(test)]` item
    /// (regardless of the file's kind).
    pub fn in_cfg_test(&self, idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= idx && idx < hi)
    }

    /// The trimmed raw text of a 1-based source line (empty if out of
    /// range — e.g. a synthetic location).
    pub fn snippet(&self, line: usize) -> String {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Derives `(crate_name, kind)` from a workspace-relative path.
fn classify(rel: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, "src", ..] => ((*name).to_string(), FileKind::Lib),
        ["crates", name, "tests", ..] => ((*name).to_string(), FileKind::Test),
        ["crates", name, "benches", ..] => ((*name).to_string(), FileKind::Bench),
        ["src", ..] => ("movr-system".to_string(), FileKind::Lib),
        ["tests", ..] => ("movr-system".to_string(), FileKind::Test),
        ["examples", ..] => ("movr-system".to_string(), FileKind::Example),
        _ => ("movr-system".to_string(), FileKind::Test),
    }
}

/// Finds token ranges covered by `#[cfg(test)]` (or `#![cfg(test)]`,
/// or `#[cfg(all(test, …))]`) items: the attribute, any further
/// attributes, and the following item through its closing brace or
/// semicolon.
fn compute_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match cfg_test_attr_end(tokens, i) {
            None => i += 1,
            Some(mut j) => {
                // Skip any further attributes on the same item.
                while j < tokens.len() && tokens[j].is_punct('#') {
                    j = skip_attr(tokens, j);
                }
                // Consume the item: through the matching `}` of its
                // first brace, or through a top-level `;`.
                let mut k = j;
                let end = loop {
                    if k >= tokens.len() {
                        break tokens.len();
                    }
                    if tokens[k].is_punct('{') {
                        break match_brace(tokens, k) + 1;
                    }
                    if tokens[k].is_punct(';') {
                        break k + 1;
                    }
                    k += 1;
                };
                out.push((i, end));
                i = end.max(i + 1);
            }
        }
    }
    out
}

/// If `tokens[i]` starts a `#[cfg(test)]`-style attribute, returns the
/// index one past its closing `]`.
fn cfg_test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j)?.is_punct('!') {
        j += 1;
    }
    if !tokens.get(j)?.is_punct('[') {
        return None;
    }
    let close = match_bracket(tokens, j);
    let body = &tokens[j + 1..close.min(tokens.len())];
    let has_cfg = body.iter().any(|t| t.is_ident("cfg"));
    let has_test = body.iter().any(|t| t.is_ident("test"));
    if has_cfg && has_test {
        Some(close + 1)
    } else {
        None
    }
}

/// `tokens[i]` is `#`; returns the index one past the attribute's `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        match_bracket(tokens, j) + 1
    } else {
        j
    }
}

/// `tokens[open]` is `[`; returns the index of the matching `]` (or the
/// last token if unbalanced).
fn match_bracket(tokens: &[Token], open: usize) -> usize {
    match_delim(tokens, open, '[', ']')
}

/// `tokens[open]` is `{`; returns the index of the matching `}` (or the
/// last token if unbalanced).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    match_delim(tokens, open, '{', '}')
}

/// `tokens[open]` is the opening delimiter `lo`; returns the index of
/// the matching `hi` (or the last token if unbalanced). Public variant
/// for analyses that match parens/brackets outside this module.
pub fn match_delim_pub(tokens: &[Token], open: usize, lo: char, hi: char) -> usize {
    match_delim(tokens, open, lo, hi)
}

fn match_delim(tokens: &[Token], open: usize, lo: char, hi: char) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if let TokenKind::Punct(c) = t.kind {
            if c == lo {
                depth += 1;
            } else if c == hi {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        let unwrap_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        let tail_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("tail"))
            .expect("tail token");
        assert!(f.is_test_code(unwrap_idx));
        assert!(!f.is_test_code(tail_idx));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod tests { fn t() {} }";
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert!(f.is_test_code(f.tokens.len() - 1));
    }

    #[test]
    fn classify_layout() {
        assert_eq!(classify("crates/core/src/session.rs").0, "core");
        assert_eq!(classify("crates/core/src/session.rs").1, FileKind::Lib);
        assert_eq!(classify("tests/end_to_end.rs").1, FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs").1, FileKind::Example);
        assert_eq!(classify("crates/bench/benches/microbench.rs").1, FileKind::Bench);
        assert_eq!(classify("src/lib.rs").1, FileKind::Lib);
    }

    #[test]
    fn non_test_files_are_wholly_test_code() {
        let f = SourceFile::parse("tests/e2e.rs", "fn x() { y.unwrap(); }");
        assert!(f.is_test_code(0));
    }
}
