//! The domain rule catalogue. Each rule walks a [`SourceFile`]'s token
//! stream (plus one cross-file rule for RNG fork labels) and emits
//! structured [`Diagnostic`]s. See `DESIGN.md` § "Static analysis" for
//! the rationale behind each rule and how to add one.

use crate::layers::LayerSpec;
use crate::source::{FileKind, SourceFile};
use crate::lexer::{Token, TokenKind};
use std::collections::HashMap;

/// One finding: a rule, a location, the offending line, and a fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (`unwrap-in-lib`, `no-wall-clock`, …).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line.
    pub snippet: String,
    /// How to fix or silence the finding.
    pub hint: String,
}

/// All rule ids, in reporting order. Kept public so the baseline writer
/// and the self-test can enumerate the catalogue.
pub const RULES: &[&str] = &[
    "no-wall-clock",
    "no-external-rng",
    "rng-fork-label-unique",
    "raw-db-arithmetic",
    "float-exact-eq",
    "recorded-pairing",
    "unwrap-in-lib",
    "raw-numeric-cast",
    "unjustified-allow",
    "unit-mix-assign",
    "unit-mix-arith",
    "unit-mix-call",
    "rng-fork-aliased",
    "rng-fork-in-loop",
    "rng-cross-crate-untagged",
    "layer-violation",
    "shared-mut-in-par-closure",
    "interior-mut-crosses-threads",
    "rng-unforked-in-par",
    "snapshot-field-uncovered",
    "unordered-iter-in-output",
    "panic-reachable-from-decode",
    "blocking-in-hot-loop",
    "recorded-effect-divergence",
    "rng-reaches-par-unforked",
];

/// One-paragraph doc string per rule id, in the same order as [`RULES`],
/// printed by `movr-lint --explain <rule>` and embedded in the SARIF
/// catalogue consumers. Kept as data (not doc comments) so the binary
/// can serve it at runtime with no proc-macro machinery.
pub const RULE_DOCS: &[(&str, &str)] = &[
    ("no-wall-clock",
     "std::time::Instant/SystemTime anywhere outside the testkit and bench crates. Simulation code must be a pure function of SimTime + SimRng; a wall clock breaks bit determinism silently."),
    ("no-external-rng",
     "Any randomness source other than movr_math::rng::SimRng (thread_rng, StdRng, OsRng, getrandom, rand::…). External RNGs are unseeded or version-dependent; both destroy reproducibility."),
    ("rng-fork-label-unique",
     "Two SimRng fork/seed sites anywhere in the workspace share the same literal label. Stream identity is the label; a collision silently correlates two supposedly independent streams."),
    ("raw-db-arithmetic",
     "Decibel quantities combined with raw +/- or 10f64.powf outside the audited movr_math::db helpers. A 10-vs-20-log10 slip skews every link-budget figure; the helpers carry the audited conversions."),
    ("float-exact-eq",
     "== or != between floating-point expressions in lib code. Exact float equality is almost always a latent tolerance bug; use movr_testkit::assert_close or an explicit epsilon."),
    ("recorded-pairing",
     "A fn name ends in _recorded but no unsuffixed twin exists in the same file (or vice versa where required). The observability contract is a plain/recorded pair whose plain path has zero overhead."),
    ("unwrap-in-lib",
     ".unwrap()/.expect( in library code outside #[cfg(test)]. Library paths must surface structured errors; panics in the middle of a session kill the whole sim and its goldens."),
    ("raw-numeric-cast",
     "A lossy `as` cast between numeric types in lib code. Silent truncation/rounding corrupts fingerprints; use the checked movr_math::convert helpers (or a justified // lint: comment where audited)."),
    ("unjustified-allow",
     "#[allow(...)] without a // lint: justification comment on the same line. Suppressions are fine when they say why; naked ones rot."),
    ("unit-mix-assign",
     "A binding whose name declares one unit class (db/hz/meters/seconds/ratio) is assigned an expression of another. Unit slips through assignment are the quietest wrong-figure generator."),
    ("unit-mix-arith",
     "Additive arithmetic mixes unit classes (e.g. a _db value plus a _hz value). Multiplicative mixes are fine (gains scale quantities); additive ones are category errors."),
    ("unit-mix-call",
     "A call passes an argument whose unit class contradicts the parameter name of the callee (workspace-local signature match). The classic meters-into-hz slip."),
    ("rng-fork-aliased",
     "Two forks from the same parent stream share a label expression within a function. Aliased children replay identical draws — every consumer sees correlated randomness."),
    ("rng-fork-in-loop",
     "A fork whose label does not involve the loop variable sits inside a loop. Each iteration re-creates the same child stream and replays its draws."),
    ("rng-cross-crate-untagged",
     "A SimRng crosses a crate boundary as a bare &mut without a fork at the call site. Callees drawing from a caller's stream entangle stream state across module seams; fork a labelled child at the boundary."),
    ("layer-violation",
     "A crate references a movr_* crate that lint-layers.toml does not allow (or the crate is undeclared). The dependency DAG is part of the architecture; violations rot it silently."),
    ("shared-mut-in-par-closure",
     "A parallel closure (par_map/scope spawn) assigns to, takes &mut of, or calls a mutating method on an enclosing binding. Which worker wrote last is scheduling-dependent; return values and join in spawn order."),
    ("interior-mut-crosses-threads",
     "A parallel closure captures RefCell/Cell/Rc/MemoPattern state or touches a static mut. Shared interior mutability makes per-worker results order-dependent even when it compiles."),
    ("rng-unforked-in-par",
     "A SimRng stream owned outside a parallel closure is drawn inside it without a per-item fork keyed on the item index. Draws interleave in worker order, destroying bit-identity across thread counts."),
    ("snapshot-field-uncovered",
     "A field of a snapshot-codec struct is not touched by both the encode and decode paths in crates/core/src/snapshot.rs. An uncovered field silently resets on restore and the resume fingerprint diverges."),
    ("unordered-iter-in-output",
     "Iteration over a HashMap/HashSet feeds an output channel (writer, sink, fingerprint) without an intervening sort. Hash iteration order is randomized per process; outputs must be canonically ordered."),
    ("panic-reachable-from-decode",
     "A decode*/restore* fn's transitive call tree contains a panic site (unwrap/expect, panic! family, indexing). The checkpoint contract is that corrupt input yields SnapshotError, never a panic; the call graph finds the expect five helpers down. Justify unavoidable sites with // lint: <why>."),
    ("blocking-in-hot-loop",
     "A hot-loop root (step_frame, Session::step, the estimate_* sweep kernels) transitively reaches blocking-io or wall-clock effects. The motion-to-photon budget is milliseconds; one buried println! or Instant::now() in the per-frame path blows it, and the wall clock also breaks determinism."),
    ("recorded-effect-divergence",
     "A foo/foo_recorded pair whose transitive effect sets differ beyond sink-write. The recorded twin must be the plain computation plus events only; extra I/O, panics, or randomness mean the instrumented run no longer measures the plain run."),
    ("rng-reaches-par-unforked",
     "The transitive version of rng-unforked-in-par: a parallel closure passes an rng-carrying binding (a struct holding a SimRng, possibly nested) to a helper that transitively draws, without a per-item fork. v3 sees only direct draws; the call graph follows the draw through any number of helpers."),
];

/// The doc string for `rule`, if it is a known rule id.
pub fn rule_doc(rule: &str) -> Option<&'static str> {
    RULE_DOCS
        .iter()
        .find(|(id, _)| *id == rule)
        .map(|(_, doc)| *doc)
}

/// Runs every rule over `files` and returns the combined findings,
/// sorted by (file, line, rule). `layers` is the parsed
/// `lint-layers.toml` when the analyzed root has one; without it the
/// layering analysis is skipped (the other analyses still run).
pub fn run_all(files: &[SourceFile], layers: Option<&LayerSpec>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        no_wall_clock(f, &mut out);
        no_external_rng(f, &mut out);
        raw_db_arithmetic(f, &mut out);
        float_exact_eq(f, &mut out);
        recorded_pairing(f, &mut out);
        unwrap_in_lib(f, &mut out);
        raw_numeric_cast(f, &mut out);
        unjustified_allow(f, &mut out);
    }
    rng_fork_label_unique(files, &mut out);
    crate::units::check(files, &mut out);
    crate::rng_flow::check(files, &mut out);
    crate::par_capture::check(files, &mut out);
    crate::snapshot_cov::check(files, &mut out);
    crate::order_io::check(files, &mut out);
    crate::effects::check(files, &mut out);
    if let Some(spec) = layers {
        crate::layers::check(files, spec, &mut out);
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    out
}

fn diag(f: &SourceFile, rule: &'static str, line: usize, hint: impl Into<String>) -> Diagnostic {
    Diagnostic {
        rule,
        file: f.rel.clone(),
        line,
        snippet: f.snippet(line),
        hint: hint.into(),
    }
}

/// **no-wall-clock** — `std::time::Instant`/`SystemTime` anywhere
/// outside the `testkit` and `bench` crates. Simulation code must be a
/// pure function of `SimTime` + `SimRng`; a wall clock breaks bit
/// determinism silently.
fn no_wall_clock(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.crate_name == "testkit" || f.crate_name == "bench" {
        return;
    }
    for t in &f.tokens {
        if let TokenKind::Ident(name) = &t.kind {
            if name == "Instant" || name == "SystemTime" {
                out.push(diag(
                    f,
                    "no-wall-clock",
                    t.line,
                    "simulation code must use movr_sim::SimTime (wall clocks break determinism); timing utilities live in movr-testkit",
                ));
            }
        }
    }
}

/// **no-external-rng** — any randomness source other than
/// `movr_math::rng::SimRng`. External RNGs are unseeded or
/// version-dependent; both destroy reproducibility.
fn no_external_rng(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    const BANNED: &[&str] = &[
        "thread_rng",
        "ThreadRng",
        "StdRng",
        "SmallRng",
        "OsRng",
        "from_entropy",
        "getrandom",
        "rand_core",
    ];
    for (i, t) in f.tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        let banned = BANNED.contains(&name.as_str())
            || (name == "rand"
                && f.tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && f.tokens.get(i + 2).is_some_and(|t| t.is_punct(':')));
        if banned {
            out.push(diag(
                f,
                "no-external-rng",
                t.line,
                "draw from movr_math::rng::SimRng (seeded, forkable) so every run replays bit-exactly",
            ));
        }
    }
}

/// **rng-fork-label-unique** — two `fork(<literal>)` calls with the same
/// label inside one crate's library code produce *correlated* child
/// streams if they ever fork the same parent at the same position.
/// Labels must be unique per crate.
fn rng_fork_label_unique(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    // crate name -> label text -> first-seen location.
    let mut seen: HashMap<(String, String), (String, usize)> = HashMap::new();
    let mut hits: Vec<(usize, usize)> = Vec::new(); // (file idx, token idx)
    for (fi, f) in files.iter().enumerate() {
        if f.kind != FileKind::Lib {
            continue;
        }
        for (i, t) in f.tokens.iter().enumerate() {
            if t.is_ident("fork")
                && i >= 1
                && f.tokens[i - 1].is_punct('.')
                && f.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                && matches!(f.tokens.get(i + 2).map(|t| &t.kind), Some(TokenKind::Number(_)))
                && f.tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
                && !f.is_test_code(i)
            {
                hits.push((fi, i));
            }
        }
    }
    for (fi, i) in hits {
        let f = &files[fi];
        let TokenKind::Number(label) = &f.tokens[i + 2].kind else {
            continue;
        };
        let key = (f.crate_name.clone(), normalize_number(label));
        let line = f.tokens[i].line;
        if let Some((first_file, first_line)) = seen.get(&key) {
            out.push(diag(
                f,
                "rng-fork-label-unique",
                line,
                format!(
                    "fork label {} already used at {first_file}:{first_line} in crate `{}`; duplicate labels correlate the child streams",
                    key.1, f.crate_name
                ),
            ));
        } else {
            seen.insert(key, (f.rel.clone(), line));
        }
    }
}

/// **raw-db-arithmetic** — inline `powf(x/10.0)`- or `10.0*log10`-style
/// dB conversions outside `crates/math/src/db.rs`. A 10-vs-20 slip
/// (power vs amplitude) silently skews every figure; all conversions go
/// through the audited helpers.
fn raw_db_arithmetic(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.rel == "crates/math/src/db.rs" {
        return;
    }
    const HINT: &str =
        "use movr_math::db (db_to_linear / linear_to_db / db_to_amplitude / amplitude_to_db); the 10-vs-20 factor is audited there once";
    for (i, t) in f.tokens.iter().enumerate() {
        if f.is_test_code(i) {
            continue;
        }
        // powf(... / 10.0 ...) or powf(... / 20.0 ...)
        if t.is_ident("powf") && f.tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let close = match_paren(&f.tokens, i + 1);
            let args = &f.tokens[i + 2..close.min(f.tokens.len())];
            let divides_by_db_factor = args.windows(2).any(|w| {
                w[0].is_punct('/')
                    && matches!(&w[1].kind, TokenKind::Number(n) if is_db_factor(n))
            });
            if divides_by_db_factor {
                out.push(diag(f, "raw-db-arithmetic", t.line, HINT));
            }
        }
        // 10.0 * (...).log10()  /  (...).log10() * 20.0  (same line)
        if t.is_ident("log10") {
            let line = t.line;
            let line_toks: Vec<&Token> =
                f.tokens.iter().filter(|t| t.line == line).collect();
            let multiplied = line_toks.windows(2).any(|w| {
                (w[0].is_punct('*')
                    && matches!(&w[1].kind, TokenKind::Number(n) if is_db_factor(n)))
                    || (w[1].is_punct('*')
                        && matches!(&w[0].kind, TokenKind::Number(n) if is_db_factor(n)))
            });
            if multiplied {
                out.push(diag(f, "raw-db-arithmetic", line, HINT));
            }
        }
    }
}

/// **float-exact-eq** — `==`/`!=` against a float literal (or a float
/// constant like `f64::INFINITY`) outside test code. Exact float
/// comparison is almost always a tolerance bug in simulation code;
/// intentional exact guards live in the baseline.
fn float_exact_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..f.tokens.len().saturating_sub(1) {
        let is_eq = f.tokens[i].is_punct('=') && f.tokens[i + 1].is_punct('=');
        let is_ne = f.tokens[i].is_punct('!') && f.tokens[i + 1].is_punct('=');
        if !(is_eq || is_ne) || f.is_test_code(i) {
            continue;
        }
        // `<=`, `>=`, and `a == = b` cannot appear; `=>` is ('=','>').
        if i >= 1 && (f.tokens[i - 1].is_punct('<') || f.tokens[i - 1].is_punct('>')) {
            continue;
        }
        let before = i.checked_sub(1).map(|j| &f.tokens[j]);
        // A leading unary minus on the right-hand side (`x == -1.0`).
        let after_idx = if f.tokens.get(i + 2).is_some_and(|t| t.is_punct('-')) {
            i + 3
        } else {
            i + 2
        };
        let after = f.tokens.get(after_idx);
        let floaty = |t: Option<&Token>, side_after: bool| -> bool {
            match t.map(|t| &t.kind) {
                Some(TokenKind::Number(n)) => is_float_literal(n),
                // f64::INFINITY on the right reads Ident(f64) :: Ident(INFINITY):
                // the token adjacent to `==` is `f64`; on the left it is the
                // constant name.
                Some(TokenKind::Ident(name)) => {
                    if side_after {
                        (name == "f64" || name == "f32")
                            && f.tokens.get(after_idx + 1).is_some_and(|t| t.is_punct(':'))
                    } else {
                        matches!(name.as_str(), "INFINITY" | "NEG_INFINITY" | "NAN" | "EPSILON")
                    }
                }
                _ => false,
            }
        };
        if floaty(before, false) || floaty(after, true) {
            out.push(diag(
                f,
                "float-exact-eq",
                f.tokens[i].line,
                "compare floats with a tolerance (or is_nan/is_infinite); if the exact guard is intentional, it belongs in the baseline",
            ));
        }
    }
}

/// **recorded-pairing** — every `fn foo_recorded(...)` in library code
/// must be paired with a plain `fn foo(...)` in the same file (the PR 2
/// contract: observability is always optional). Two sound shapes:
/// either the recorded variant's own body delegates to the plain
/// primitive (a default trait method watching `current()`), or the file
/// wires a `NullRecorder` / `movr_obs::null_capture()` through outside
/// tests — delegation may be transitive (`run_session` →
/// `run_session_on` → `run_session_on_recorded`), so that check is
/// file-scoped.
fn recorded_pairing(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.kind != FileKind::Lib {
        return;
    }
    // Collect fn definition sites by name.
    let mut defs: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, t) in f.tokens.iter().enumerate() {
        if t.is_ident("fn") {
            if let Some(TokenKind::Ident(name)) = f.tokens.get(i + 1).map(|t| &t.kind) {
                defs.entry(name.as_str()).or_default().push(i);
            }
        }
    }
    let mut recorded: Vec<&str> = defs
        .keys()
        .copied()
        .filter(|n| n.ends_with("_recorded"))
        .collect();
    recorded.sort_unstable();
    let has_null_delegation = f
        .tokens
        .iter()
        .enumerate()
        .any(|(i, t)| {
            (t.is_ident("NullRecorder") || t.is_ident("null_capture")) && !f.in_cfg_test(i)
        });
    for name in recorded {
        let base = name.trim_end_matches("_recorded");
        let def_idx = defs[name][0];
        if f.in_cfg_test(def_idx) {
            continue;
        }
        let line = f.tokens[def_idx].line;
        if !defs.contains_key(base) {
            out.push(diag(
                f,
                "recorded-pairing",
                line,
                format!("`{name}` has no plain `{base}` wrapper in this file; add one delegating with NullRecorder or null_capture()"),
            ));
            continue;
        }
        // Inverse delegation: any `X_recorded` body that calls plain `X`
        // is sound by construction (observability layered over the
        // primitive, e.g. a default trait method).
        let wraps_plain = defs[name].iter().any(|&di| {
            fn_body(f, di).is_some_and(|(open, close)| {
                f.tokens[open..=close].iter().any(|t| t.is_ident(base))
            })
        });
        if !wraps_plain && !has_null_delegation {
            out.push(diag(
                f,
                "recorded-pairing",
                line,
                format!("plain `{base}` exists but nothing in this file delegates with NullRecorder or null_capture(); the plain API must be the recorded one observed by nobody"),
            ));
        }
    }
}

/// **unwrap-in-lib** — `.unwrap()` in library code. Hot paths must
/// either state the invariant (`expect("…")`) or return a `Result`.
/// Existing unwraps are pinned in the baseline and can only shrink.
fn unwrap_in_lib(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.kind != FileKind::Lib {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.is_ident("unwrap")
            && i >= 1
            && f.tokens[i - 1].is_punct('.')
            && !f.is_test_code(i)
        {
            out.push(diag(
                f,
                "unwrap-in-lib",
                t.line,
                "state the invariant with expect(\"…\") or return a Result; bare unwrap hides which invariant broke",
            ));
        }
    }
}

/// **raw-numeric-cast** — `as <numeric type>` in library code. `as`
/// silently truncates, wraps, and loses precision; prefer
/// `From`/`TryFrom` where lossless. Existing casts are baselined and
/// ratcheted downward.
fn raw_numeric_cast(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    // `movr_math::convert` is the audited home for the casts that must
    // exist somewhere (quantizer ranges, counter→f64 means), mirroring
    // the db.rs exemption in raw-db-arithmetic.
    if f.kind != FileKind::Lib || f.rel == "crates/math/src/convert.rs" {
        return;
    }
    const NUMERIC: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
        "isize", "f32", "f64",
    ];
    for (i, t) in f.tokens.iter().enumerate() {
        if t.is_ident("as")
            && matches!(f.tokens.get(i + 1).map(|t| &t.kind),
                Some(TokenKind::Ident(n)) if NUMERIC.contains(&n.as_str()))
            && !f.is_test_code(i)
        {
            out.push(diag(
                f,
                "raw-numeric-cast",
                t.line,
                "prefer From/TryFrom (lossless, checked); if the cast is deliberate the ratchet keeps it pinned",
            ));
        }
    }
}

/// **unjustified-allow** — every `#[allow(...)]` / `#![allow(...)]`
/// must carry a trailing `// lint: <why>` justification on the line its
/// attribute closes on. An allow without a reason is a suppressed
/// warning nobody can audit.
fn unjustified_allow(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if !t.is_punct('#') {
            continue;
        }
        let mut j = i + 1;
        if f.tokens.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !f.tokens.get(j).is_some_and(|t| t.is_punct('['))
            || !f.tokens.get(j + 1).is_some_and(|t| t.is_ident("allow"))
        {
            continue;
        }
        // The justification must sit on the line where the attribute
        // closes (attributes in this codebase are single-line).
        let line = t.line;
        let justified = f
            .lines
            .get(line - 1)
            .is_some_and(|l| l.contains("// lint:"));
        if !justified {
            out.push(diag(
                f,
                "unjustified-allow",
                line,
                "append `// lint: <why this allow is sound>` or remove the allow",
            ));
        }
    }
}

/// Body token range `(open_brace, close_brace)` of the fn whose `fn`
/// keyword is at `def_idx`; `None` for a body-less trait signature
/// (`fn x(...);`).
fn fn_body(f: &SourceFile, def_idx: usize) -> Option<(usize, usize)> {
    for k in def_idx..f.tokens.len() {
        if f.tokens[k].is_punct(';') {
            return None;
        }
        if f.tokens[k].is_punct('{') {
            return Some((k, crate::source::match_brace(&f.tokens, k)));
        }
    }
    None
}

/// Index of the `)` matching `tokens[open]` (which must be `(`).
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if let TokenKind::Punct(c) = t.kind {
            if c == '(' {
                depth += 1;
            } else if c == ')' {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// True for the dB conversion factors `10` / `20` in any spelling
/// (`10`, `10.0`, `10f64`, `20.0_f64`, …).
fn is_db_factor(text: &str) -> bool {
    matches!(normalize_number(text).as_str(), "10" | "20")
}

/// Strips underscores, type suffixes, and a trailing `.0…0` so numeric
/// spellings compare equal (`10.0_f64` → `10`).
fn normalize_number(text: &str) -> String {
    let no_underscore: String = text.chars().filter(|&c| c != '_').collect();
    let lower = no_underscore.to_ascii_lowercase();
    let without_suffix = lower
        .strip_suffix("f64")
        .or_else(|| lower.strip_suffix("f32"))
        .unwrap_or(&lower);
    match without_suffix.split_once('.') {
        Some((int, frac)) if frac.chars().all(|c| c == '0') => int.to_string(),
        _ => without_suffix.to_string(),
    }
}

/// True if a numeric literal is float-typed: has a fraction, an
/// exponent, or an `f32`/`f64` suffix.
fn is_float_literal(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0o") || lower.starts_with("0b") {
        return false;
    }
    lower.contains('.') || lower.contains('e') || lower.ends_with("f32") || lower.ends_with("f64")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> SourceFile {
        SourceFile::parse("crates/demo/src/lib.rs", src)
    }

    fn rules_hit(src: &str) -> Vec<(&'static str, usize)> {
        run_all(&[lib(src)], None)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn every_rule_has_exactly_one_doc_in_catalogue_order() {
        let doc_ids: Vec<&str> = RULE_DOCS.iter().map(|(id, _)| *id).collect();
        assert_eq!(doc_ids, RULES, "RULE_DOCS must mirror RULES exactly");
        for (id, doc) in RULE_DOCS {
            assert!(!doc.is_empty(), "{id} has an empty doc");
            assert_eq!(rule_doc(id), Some(*doc));
        }
        assert_eq!(rule_doc("not-a-rule"), None);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(rules_hit("fn f() { x.unwrap_or(0); }").is_empty());
        assert_eq!(rules_hit("fn f() { x.unwrap(); }"), [("unwrap-in-lib", 1)]);
    }

    #[test]
    fn db_factor_spellings() {
        assert!(is_db_factor("10.0"));
        assert!(is_db_factor("20"));
        assert!(is_db_factor("10f64"));
        assert!(is_db_factor("10.0_f64"));
        assert!(!is_db_factor("100.0"));
        assert!(!is_db_factor("2.0"));
        assert!(!is_db_factor("10.5"));
    }

    #[test]
    fn powf_only_flags_db_divisors() {
        assert_eq!(
            rules_hit("fn f(x: f64) -> f64 { 10f64.powf(x / 10.0) }"),
            [("raw-db-arithmetic", 1)]
        );
        assert!(rules_hit("fn f(x: f64) -> f64 { 2f64.powf(x / 3.0) }").is_empty());
        assert!(rules_hit("fn f(x: f64) -> f64 { x.powf(1.0 / 3.0) }").is_empty());
    }

    #[test]
    fn log10_needs_the_factor_on_the_same_line() {
        assert_eq!(
            rules_hit("fn f(x: f64) -> f64 { 20.0 * x.log10() }"),
            [("raw-db-arithmetic", 1)]
        );
        assert!(rules_hit("fn f(x: f64) -> f64 { x.log10() }").is_empty());
    }

    #[test]
    fn float_eq_on_enum_compare_is_fine() {
        assert!(rules_hit("fn f(a: Mode, b: Mode) -> bool { a == b }").is_empty());
        assert_eq!(
            rules_hit("fn f(a: f64) -> bool { a == 0.0 }"),
            [("float-exact-eq", 1)]
        );
        assert_eq!(
            rules_hit("fn f(a: f64) -> bool { a != f64::INFINITY }"),
            [("float-exact-eq", 1)]
        );
        assert!(rules_hit("fn f(a: f64) -> bool { a <= 1.0 }").is_empty());
    }

    #[test]
    fn fork_labels_deduplicate_per_crate() {
        let a = SourceFile::parse(
            "crates/demo/src/a.rs",
            "fn f(r: &mut SimRng) { let x = r.fork(1); let y = r.fork(2); }",
        );
        let b = SourceFile::parse(
            "crates/demo/src/b.rs",
            "fn g(r: &mut SimRng) { let z = r.fork(1); }",
        );
        let other = SourceFile::parse(
            "crates/other/src/lib.rs",
            "fn h(r: &mut SimRng) { let w = r.fork(1); }",
        );
        let hits: Vec<_> = run_all(&[a, b, other], None)
            .into_iter()
            .map(|d| (d.file, d.line))
            .collect();
        assert_eq!(hits, [("crates/demo/src/b.rs".to_string(), 1)]);
    }

    #[test]
    fn recorded_without_wrapper_flags() {
        let src = "pub fn foo_recorded(rec: &mut dyn Recorder) {}";
        assert_eq!(rules_hit(src), [("recorded-pairing", 1)]);
        let good = "pub fn foo() { foo_recorded(&mut NullRecorder) }\npub fn foo_recorded(rec: &mut dyn Recorder) {}";
        assert!(rules_hit(good).is_empty());
    }

    #[test]
    fn recorded_default_method_wrapping_plain_is_sound() {
        // Inverse delegation: the recorded variant calls the plain
        // primitive — no NullRecorder needed anywhere.
        let src = "trait T {\n  fn go(&mut self) -> u32;\n  fn go_recorded(&mut self, rec: &mut dyn Recorder) -> u32 { self.go() }\n}";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn recorded_delegation_via_null_capture_is_sound() {
        // The Capture-era wrapper shape: the plain fn hands the recorded
        // variant a silent capture instead of a literal NullRecorder.
        let src = "pub fn sweep() { sweep_recorded(null_capture()) }\npub fn sweep_recorded(cap: Capture<'_>) { let _ = cap; }";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn allow_requires_lint_justification() {
        assert_eq!(
            rules_hit("#[allow(dead_code)]\nfn f() {}"),
            [("unjustified-allow", 1)]
        );
        assert!(rules_hit("#[allow(dead_code)] // lint: fixture\nfn f() {}").is_empty());
    }

    #[test]
    fn test_code_is_exempt_where_documented() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); let b = a == 0.0; } }";
        assert!(rules_hit(src).is_empty());
        // …but wall clocks are banned even in tests.
        let clocky = "#[cfg(test)]\nmod tests { use std::time::Instant; }";
        assert_eq!(rules_hit(clocky), [("no-wall-clock", 2)]);
    }
}
