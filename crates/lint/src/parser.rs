//! Item-level parser: just enough structure on top of the token stream
//! for the semantic analyses. It recognises `fn` signatures (names,
//! params with their flattened types, return type, body token range),
//! `use` declarations (crate root + imported leaf names), and `struct`
//! definitions (field names and types). There is deliberately **no**
//! expression grammar — the unit-flow and RNG-dataflow analyses walk
//! raw tokens inside the body ranges this parser hands them.
//!
//! Robustness contract mirrors the lexer's: anything the parser cannot
//! make sense of degrades to a skipped item, never a panic and never a
//! bogus signature.

use crate::lexer::{Token, TokenKind};
use crate::source::match_brace;

/// A parameter (or struct field): pattern name and flattened type text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Binding name (`rng`, `gain_db`); empty for destructuring
    /// patterns and tuple-struct fields.
    pub name: String,
    /// Flattened type: idents space-separated, punctuation verbatim
    /// (`& mut SimRng`, `Vec < f64 >`). Empty when elided.
    pub ty: String,
    /// 1-based line the parameter/field starts on (0 when synthetic).
    pub line: usize,
}

impl Param {
    /// Last path segment of the type (`movr_sim::SimTime` → `SimTime`),
    /// the ident unit/type classification keys on.
    pub fn ty_last_ident(&self) -> Option<&str> {
        self.ty.split(|c: char| !c.is_alphanumeric() && c != '_')
            .filter(|s| !s.is_empty())
            .filter(|s| !matches!(*s, "mut" | "dyn" | "impl" | "const"))
            .next_back()
    }
}

/// A parsed `fn` signature plus the token range of its body.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True for unrestricted `pub` (not `pub(crate)` etc.).
    pub is_pub: bool,
    /// True when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Parameters in order, `self` excluded.
    pub params: Vec<Param>,
    /// Flattened return type, `None` for `()`-returning fns.
    pub ret: Option<String>,
    /// Inclusive token range `(open_brace, close_brace)` of the body;
    /// `None` for trait-signature declarations.
    pub body: Option<(usize, usize)>,
    /// Self type of the innermost enclosing `impl` block (`impl Foo` or
    /// `impl Trait for Foo` both yield `Foo`); `None` for free fns and
    /// body-less trait signatures.
    pub owner: Option<String>,
}

/// One imported leaf from a `use` declaration: `use movr_math::db::{a,
/// b as c}` yields leaves `a` and `c`, both rooted at `movr_math`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseLeaf {
    /// First path segment (`movr_math`, `std`, `crate`, `super`).
    pub root: String,
    /// The name the import binds locally (alias-aware); `*` for globs.
    pub name: String,
    /// 1-based line of the `use` keyword.
    pub line: usize,
}

/// A parsed `struct` definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<Param>,
}

/// A closure expression: `|i, &x| body`, `move || { … }`. The parser
/// records parameter binding names and the body token range; the
/// parallel-capture analysis walks the body the same way the other
/// semantic passes walk `fn` bodies.
#[derive(Debug, Clone)]
pub struct ClosureExpr {
    /// 1-based line of the opening `|`.
    pub line: usize,
    /// Token index of the opening `|`.
    pub start: usize,
    /// Binding idents across all parameter patterns (`|_, &seed|` →
    /// `["_", "seed"]`; `mut`/`ref` and type annotations excluded).
    pub params: Vec<String>,
    /// Inclusive token range of the body: the `{ … }` block when the
    /// body is braced, otherwise the trailing expression up to the
    /// enclosing `,`, `;`, or closing delimiter.
    pub body: (usize, usize),
}

/// Everything the item-level parser extracted from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` in the file, including nested and `impl`/trait fns.
    pub fns: Vec<FnSig>,
    /// Every leaf bound by a `use` declaration.
    pub uses: Vec<UseLeaf>,
    /// Every `struct` definition.
    pub structs: Vec<StructDef>,
    /// Every closure expression, in source order (nested closures
    /// included — a `.map(|x| …)` inside a spawned closure gets its own
    /// entry).
    pub closures: Vec<ClosureExpr>,
}

impl ParsedFile {
    /// The crate a locally-imported name resolves to, if any `use`
    /// brought it in (`SimRng` → `movr_math`).
    pub fn use_root_of(&self, name: &str) -> Option<&str> {
        self.uses
            .iter()
            .find(|u| u.name == name)
            .map(|u| u.root.as_str())
    }
}

/// Parses the token stream of one file. Never panics.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Ident(w) if w == "use" => {
                i = parse_use(tokens, i, &mut out.uses);
            }
            TokenKind::Ident(w) if w == "fn" => {
                i = parse_fn(tokens, i, &mut out.fns);
            }
            TokenKind::Ident(w) if w == "struct" => {
                i = parse_struct(tokens, i, &mut out.structs);
            }
            TokenKind::Punct('|') => {
                // Resume just past the parameter list so closures nested
                // inside the body are still visited by this loop.
                if let Some((closure, resume)) = parse_closure(tokens, i) {
                    out.closures.push(closure);
                    i = resume;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // Attach impl-block owners: a fn whose body opens inside an `impl`
    // block belongs to that block's self type. Innermost block wins
    // (nested impls do not occur in this codebase, but be safe).
    let impls = scan_impls(tokens);
    for f in &mut out.fns {
        if let Some((open, _)) = f.body {
            f.owner = impls
                .iter()
                .filter(|(lo, hi, _)| *lo < open && open <= *hi)
                .min_by_key(|(lo, hi, _)| hi - lo)
                .map(|(_, _, name)| name.clone());
        }
    }
    out
}

/// Finds every `impl` block: `(open_brace, close_brace, self_type)`.
/// The self type is the first ident at zero angle depth after the
/// keyword — or, for `impl Trait for Type`, the first ident after
/// `for`. Headers the scanner cannot make sense of are skipped.
fn scan_impls(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut angle = 0i32;
        let mut name: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut j = i + 1;
        let open = loop {
            let Some(t) = tokens.get(j) else { break None };
            match &t.kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle = (angle - 1).max(0),
                TokenKind::Punct('{') if angle == 0 => break Some(j),
                TokenKind::Punct(';') if angle == 0 => break None,
                TokenKind::Ident(w) if angle == 0 => match w.as_str() {
                    "for" => saw_for = true,
                    "where" => {}
                    "dyn" | "const" | "unsafe" | "mut" => {}
                    w => {
                        if saw_for {
                            after_for.get_or_insert_with(|| w.to_string());
                        } else {
                            name.get_or_insert_with(|| w.to_string());
                        }
                    }
                },
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let close = match_brace(tokens, open);
        if let Some(owner) = after_for.or(name) {
            out.push((open, close, owner));
        }
        // Resume just inside the block so nested impls are still seen.
        i = open + 1;
    }
    out
}

/// Parses `use <tree>;` starting at the `use` keyword; returns the
/// index one past the terminating `;`.
fn parse_use(tokens: &[Token], use_idx: usize, out: &mut Vec<UseLeaf>) -> usize {
    let line = tokens[use_idx].line;
    // Find the terminating `;` (depth-free: `use` trees have no parens).
    let mut end = use_idx + 1;
    while end < tokens.len() && !tokens[end].is_punct(';') {
        end += 1;
    }
    let tree = &tokens[use_idx + 1..end.min(tokens.len())];
    collect_use_leaves(tree, line, &[], out);
    end + 1
}

/// Recursively walks a use-tree token slice, accumulating leaves.
/// `prefix` carries the path segments seen so far.
fn collect_use_leaves(tree: &[Token], line: usize, prefix: &[String], out: &mut Vec<UseLeaf>) {
    let mut path: Vec<String> = prefix.to_vec();
    let mut i = 0;
    while i < tree.len() {
        match &tree[i].kind {
            TokenKind::Ident(w) if w == "as" => {
                // Alias: the next ident is the bound name.
                if let Some(TokenKind::Ident(alias)) = tree.get(i + 1).map(|t| &t.kind) {
                    if let Some(root) = path.first() {
                        out.push(UseLeaf { root: root.clone(), name: alias.clone(), line });
                    }
                }
                return;
            }
            TokenKind::Ident(w) => {
                path.push(w.clone());
                i += 1;
            }
            TokenKind::Punct(':') => i += 1,
            TokenKind::Punct('*') => {
                if let Some(root) = path.first() {
                    out.push(UseLeaf { root: root.clone(), name: "*".to_string(), line });
                }
                return;
            }
            TokenKind::Punct('{') => {
                // Group: split the balanced interior at top-level commas
                // and recurse into each branch with the current prefix.
                let close = match_brace_slice(tree, i);
                let interior = &tree[i + 1..close.min(tree.len())];
                for branch in split_top_level(interior, ',') {
                    collect_use_leaves(branch, line, &path, out);
                }
                return;
            }
            _ => i += 1,
        }
    }
    // Plain path: the last segment is the leaf.
    if let (Some(root), Some(leaf)) = (path.first(), path.last()) {
        // `use movr_math;` binds the crate name itself.
        out.push(UseLeaf { root: root.clone(), name: leaf.clone(), line });
    }
}

/// Parses a `fn` item starting at the `fn` keyword; returns the index
/// to resume scanning from (just past the signature, so nested items
/// inside the body are still visited by the main loop).
fn parse_fn(tokens: &[Token], fn_idx: usize, out: &mut Vec<FnSig>) -> usize {
    let line = tokens[fn_idx].line;
    let Some(TokenKind::Ident(name)) = tokens.get(fn_idx + 1).map(|t| &t.kind) else {
        return fn_idx + 1; // `fn` in a type position (`fn(f64) -> f64`)
    };
    let name = name.clone();
    let is_pub = leading_pub(tokens, fn_idx);
    let mut i = fn_idx + 2;
    // Skip generics `<...>` (every `<`/`>` counted; const-generic
    // comparisons inside are not a thing in this codebase).
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens[i].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    if !tokens.get(i).is_some_and(|t| t.is_punct('(')) {
        return fn_idx + 2;
    }
    let open = i;
    let close = match_paren_slice(tokens, open);
    let mut has_self = false;
    let mut params = Vec::new();
    let interior = &tokens[open + 1..close.min(tokens.len())];
    for (pi, part) in split_top_level(interior, ',').into_iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if pi == 0 && part.iter().any(|t| t.is_ident("self")) && !part.iter().any(|t| t.is_punct(':'))
        {
            has_self = true;
            continue;
        }
        params.push(parse_param(part));
    }
    // Return type: `-> Type` up to `{`, `;`, or `where`.
    let mut j = close + 1;
    let mut ret = None;
    if tokens.get(j).is_some_and(|t| t.is_punct('-'))
        && tokens.get(j + 1).is_some_and(|t| t.is_punct('>'))
    {
        let start = j + 2;
        let mut k = start;
        let mut depth = 0i32;
        while k < tokens.len() {
            match &tokens[k].kind {
                TokenKind::Punct('{') if depth == 0 => break,
                TokenKind::Punct(';') if depth == 0 => break,
                TokenKind::Ident(w) if w == "where" && depth == 0 => break,
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        ret = Some(flatten(&tokens[start..k.min(tokens.len())]));
        j = k;
    }
    // Body: skip any where clause, then `{ ... }` or `;`.
    let mut body = None;
    while j < tokens.len() {
        if tokens[j].is_punct(';') {
            break;
        }
        if tokens[j].is_punct('{') {
            body = Some((j, match_brace(tokens, j)));
            break;
        }
        j += 1;
    }
    out.push(FnSig { name, line, is_pub, has_self, params, ret, body, owner: None });
    // Resume just past the signature so nested fns are still seen.
    close + 1
}

/// Parses one comma-separated parameter: `mut name: Type`, `&mut self`,
/// or a destructuring pattern (name left empty).
fn parse_param(part: &[Token]) -> Param {
    let colon = split_point(part, ':');
    let (pat, ty) = match colon {
        Some(c) => (&part[..c], &part[c + 1..]),
        None => (part, &part[part.len()..]),
    };
    let mut names: Vec<&str> = Vec::new();
    let mut destructured = false;
    for t in pat {
        match &t.kind {
            TokenKind::Ident(w) if w == "mut" || w == "ref" => {}
            TokenKind::Ident(w) => names.push(w),
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                destructured = true;
            }
            _ => {}
        }
    }
    let name = if !destructured && names.len() == 1 {
        names[0].to_string()
    } else {
        String::new()
    };
    let line = part.first().map_or(0, |t| t.line);
    Param { name, ty: flatten(ty), line }
}

/// Parses a `struct` item starting at the keyword; returns the resume
/// index (past the item for braced/unit structs).
fn parse_struct(tokens: &[Token], kw_idx: usize, out: &mut Vec<StructDef>) -> usize {
    let line = tokens[kw_idx].line;
    let Some(TokenKind::Ident(name)) = tokens.get(kw_idx + 1).map(|t| &t.kind) else {
        return kw_idx + 1;
    };
    let name = name.clone();
    let mut i = kw_idx + 2;
    // Skip generics.
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens[i].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut fields = Vec::new();
    let resume;
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct('{')) => {
            let close = match_brace(tokens, i);
            let interior = &tokens[i + 1..close.min(tokens.len())];
            for part in split_top_level(interior, ',') {
                if part.is_empty() {
                    continue;
                }
                // Drop visibility and attributes on the field.
                let part = strip_field_prefix(part);
                if part.iter().any(|t| t.is_punct(':')) {
                    fields.push(parse_param(part));
                }
            }
            resume = close + 1;
        }
        Some(TokenKind::Punct('(')) => {
            // Tuple struct: record types without names.
            let close = match_paren_slice(tokens, i);
            let interior = &tokens[i + 1..close.min(tokens.len())];
            for part in split_top_level(interior, ',') {
                let part = strip_field_prefix(part);
                if !part.is_empty() {
                    fields.push(Param {
                        name: String::new(),
                        ty: flatten(part),
                        line: part[0].line,
                    });
                }
            }
            resume = close + 1;
        }
        _ => resume = i, // unit struct `struct X;` or something exotic
    }
    out.push(StructDef { name, line, fields });
    resume
}

/// Parses a closure expression whose opening `|` is at `open`; returns
/// the closure and the index to resume scanning from (just past the
/// parameter list, so nested closures in the body are still seen).
///
/// Disambiguation from binary `|`/`||` is positional: a closure can only
/// start where an *expression* starts, i.e. after an opening delimiter,
/// a separator (`,` `;` `=` `>` from `=>`), `&`, or one of the keywords
/// `move`/`return`/`else`/`in`. A `|` preceded by an ident, number, or
/// closing paren is an operator and is skipped. Anything that still
/// fails to close (e.g. a leading-pipe match arm with no second `|`)
/// degrades to `None`, never a bogus closure.
fn parse_closure(tokens: &[Token], open: usize) -> Option<(ClosureExpr, usize)> {
    if !closure_position(tokens, open) {
        return None;
    }
    // Closing `|` of the parameter list: adjacent for `||`, otherwise
    // the first `|` at zero delimiter depth.
    let close = if tokens.get(open + 1).is_some_and(|t| t.is_punct('|')) {
        open + 1
    } else {
        let mut depth = 0i32;
        let mut j = open + 1;
        loop {
            let t = tokens.get(j)?;
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    if depth == 0 {
                        return None; // operator `|` after all
                    }
                    depth -= 1;
                }
                TokenKind::Punct('|') if depth == 0 => break j,
                TokenKind::Punct(';') if depth == 0 => return None,
                _ => {}
            }
            j += 1;
        }
    };
    let mut params = Vec::new();
    for part in split_top_level(&tokens[open + 1..close], ',') {
        // Idents of the pattern only — everything past a `:` is a type.
        let pat = match split_point(part, ':') {
            Some(c) => &part[..c],
            None => part,
        };
        for t in pat {
            if let TokenKind::Ident(w) = &t.kind {
                if w != "mut" && w != "ref" {
                    params.push(w.clone());
                }
            }
        }
    }
    // Body: a brace block, or the expression up to the enclosing
    // `,`/`;`/closing delimiter at zero depth.
    let body = match tokens.get(close + 1).map(|t| &t.kind) {
        Some(TokenKind::Punct('{')) => (close + 1, match_brace(tokens, close + 1)),
        Some(_) => {
            let mut depth = 0i32;
            let mut k = close + 1;
            let end = loop {
                let Some(t) = tokens.get(k) else {
                    break tokens.len() - 1;
                };
                match t.kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                        depth += 1
                    }
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                        if depth == 0 {
                            break k - 1;
                        }
                        depth -= 1;
                    }
                    TokenKind::Punct(',') | TokenKind::Punct(';') if depth == 0 => break k - 1,
                    _ => {}
                }
                k += 1;
            };
            if end <= close {
                return None; // empty body (`|x|)` — not a closure)
            }
            (close + 1, end)
        }
        None => return None,
    };
    let closure = ClosureExpr { line: tokens[open].line, start: open, params, body };
    Some((closure, close + 1))
}

/// True when a `|` at `open` sits in expression-start position.
fn closure_position(tokens: &[Token], open: usize) -> bool {
    let Some(prev) = open.checked_sub(1).map(|i| &tokens[i]) else {
        return true;
    };
    match &prev.kind {
        TokenKind::Punct(c) => matches!(c, '(' | ',' | '=' | '{' | ';' | '[' | '>' | '&' | ':'),
        TokenKind::Ident(w) => matches!(w.as_str(), "move" | "return" | "else" | "in"),
        _ => false,
    }
}

/// Strips leading `pub`/`pub(...)` and `#[...]` attributes from a field.
fn strip_field_prefix(mut part: &[Token]) -> &[Token] {
    loop {
        match part.first().map(|t| &t.kind) {
            Some(TokenKind::Punct('#')) => {
                // Attribute: skip to past the matching `]`.
                let j = 1;
                if part.get(j).is_some_and(|t| t.is_punct('[')) {
                    let close = match_delim_slice(part, j, '[', ']');
                    part = &part[close + 1..];
                } else {
                    part = &part[1..];
                }
            }
            Some(TokenKind::Ident(w)) if w == "pub" => {
                if part.get(1).is_some_and(|t| t.is_punct('(')) {
                    let close = match_paren_slice(part, 1);
                    part = &part[close + 1..];
                } else {
                    part = &part[1..];
                }
            }
            _ => return part,
        }
    }
}

/// True when the tokens just before `fn` make it an unrestricted `pub`
/// item (`pub fn`, `pub const fn`, `pub unsafe fn` — but not
/// `pub(crate) fn`, which is crate-internal).
fn leading_pub(tokens: &[Token], fn_idx: usize) -> bool {
    let mut i = fn_idx;
    let mut steps = 0;
    while i > 0 && steps < 6 {
        i -= 1;
        steps += 1;
        match &tokens[i].kind {
            TokenKind::Ident(w) if matches!(w.as_str(), "const" | "unsafe" | "async" | "extern") => {}
            TokenKind::Str => {} // `extern "C"`
            TokenKind::Punct(')') => {
                // Possibly the `(crate)` of a restricted pub: walk to
                // its `(` and keep looking left.
                let mut depth = 1;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match tokens[i].kind {
                        TokenKind::Punct(')') => depth += 1,
                        TokenKind::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
                // `pub(...)`: restricted, not public API.
                if i > 0 && tokens[i - 1].is_ident("pub") {
                    return false;
                }
                return false;
            }
            TokenKind::Ident(w) if w == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Splits `tokens` at occurrences of `sep` that sit at zero
/// paren/bracket/brace/angle depth.
fn split_top_level(tokens: &[Token], sep: char) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0;
    for (k, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle = (angle - 1).max(0),
            TokenKind::Punct(c) if c == sep && depth == 0 && angle == 0 => {
                out.push(&tokens[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    out.push(&tokens[start..]);
    out
}

/// Index of the first `sep` at zero depth, if any.
fn split_point(tokens: &[Token], sep: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut angle = 0i32;
    for (k, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle = (angle - 1).max(0),
            TokenKind::Punct(c) if c == sep && depth == 0 && angle == 0 => {
                // `::` is a path separator, not a type-ascription colon.
                if sep == ':'
                    && (tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        || (k > 0 && tokens[k - 1].is_punct(':')))
                {
                    continue;
                }
                return Some(k);
            }
            _ => {}
        }
    }
    None
}

/// Flattens a token slice into readable type text: idents separated by
/// spaces, punctuation run together (`& mut Vec < f64 >`).
fn flatten(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        let piece = match &t.kind {
            TokenKind::Ident(s) => s.as_str(),
            TokenKind::Number(s) => s.as_str(),
            TokenKind::Lifetime => "'_",
            TokenKind::Str => "\"\"",
            TokenKind::Char => "'_'",
            TokenKind::Punct(c) => {
                if !out.is_empty() && !out.ends_with(' ') {
                    out.push(' ');
                }
                out.push(*c);
                continue;
            }
        };
        if !out.is_empty() && !out.ends_with(' ') {
            out.push(' ');
        }
        out.push_str(piece);
    }
    out
}

/// Paren matcher usable on slices (same contract as `source::match_brace`).
fn match_paren_slice(tokens: &[Token], open: usize) -> usize {
    match_delim_slice(tokens, open, '(', ')')
}

fn match_brace_slice(tokens: &[Token], open: usize) -> usize {
    match_delim_slice(tokens, open, '{', '}')
}

fn match_delim_slice(tokens: &[Token], open: usize, lo: char, hi: char) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if let TokenKind::Punct(c) = t.kind {
            if c == lo {
                depth += 1;
            } else if c == hi {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn fn_signature_params_and_ret() {
        let p = parse_src("pub fn apply_gain(gain_db: f64, rng: &mut SimRng) -> f64 { 0.0 }");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "apply_gain");
        assert!(f.is_pub);
        assert!(!f.has_self);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "gain_db");
        assert_eq!(f.params[0].ty, "f64");
        assert_eq!(f.params[1].name, "rng");
        assert_eq!(f.params[1].ty, "& mut SimRng");
        assert_eq!(f.params[1].ty_last_ident(), Some("SimRng"));
        assert_eq!(f.ret.as_deref(), Some("f64"));
        assert!(f.body.is_some());
    }

    #[test]
    fn method_with_self_and_generics() {
        let p = parse_src(
            "impl Foo { pub(crate) fn push<T: Into<f64>>(&mut self, snr_db: T) -> Option<f64> { None } }",
        );
        let f = &p.fns[0];
        assert_eq!(f.name, "push");
        assert!(!f.is_pub, "pub(crate) is not public API");
        assert!(f.has_self);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].name, "snr_db");
        assert_eq!(f.ret.as_deref(), Some("Option < f64 >"));
    }

    #[test]
    fn trait_signature_has_no_body() {
        let p = parse_src("trait T { fn probe(&mut self, label: u64) -> f64; }");
        assert!(p.fns[0].body.is_none());
        assert_eq!(p.fns[0].params[0].name, "label");
    }

    #[test]
    fn use_groups_aliases_and_globs() {
        let p = parse_src(
            "use movr_math::{db, rng::SimRng};\nuse movr_sim::SimTime as T;\nuse movr_obs::*;",
        );
        let names: Vec<(&str, &str)> = p
            .uses
            .iter()
            .map(|u| (u.root.as_str(), u.name.as_str()))
            .collect();
        assert_eq!(
            names,
            [("movr_math", "db"), ("movr_math", "SimRng"), ("movr_sim", "T"), ("movr_obs", "*")]
        );
        assert_eq!(p.use_root_of("SimRng"), Some("movr_math"));
    }

    #[test]
    fn struct_fields_with_attrs_and_vis() {
        let p = parse_src(
            "pub struct Link { pub snr_db: f64, #[doc(hidden)] raw: Vec<u8>, }\nstruct P(f64, u32);\nstruct U;",
        );
        assert_eq!(p.structs.len(), 3);
        let link = &p.structs[0];
        assert_eq!(link.name, "Link");
        assert_eq!(link.fields.len(), 2);
        assert_eq!(link.fields[0].name, "snr_db");
        assert_eq!(link.fields[1].name, "raw");
        assert_eq!(p.structs[1].fields.len(), 2);
        assert!(p.structs[2].fields.is_empty());
    }

    #[test]
    fn nested_fns_are_found_and_destructured_params_skipped() {
        let p = parse_src("fn outer((a, b): (f64, f64)) { fn inner(x_db: f64) {} }");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        assert_eq!(p.fns[0].params[0].name, "", "destructuring pattern has no single name");
    }

    #[test]
    fn where_clause_does_not_swallow_the_body() {
        let p = parse_src("fn f<T>(x: T) -> u32 where T: Copy { 1 }");
        assert_eq!(p.fns[0].ret.as_deref(), Some("u32"));
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn struct_fields_carry_their_lines() {
        let p = parse_src("struct S {\n  a: u32,\n  b: f64,\n}");
        assert_eq!(p.structs[0].fields[0].line, 2);
        assert_eq!(p.structs[0].fields[1].line, 3);
    }

    #[test]
    fn closure_params_and_expression_body() {
        let p = parse_src("fn f() { par_map(&v, 4, |i, &x| x + i) }");
        assert_eq!(p.closures.len(), 1);
        let c = &p.closures[0];
        assert_eq!(c.params, ["i", "x"]);
        // Body covers `x + i` and stops at the call's closing paren.
        assert_eq!(c.body.1 - c.body.0, 2);
    }

    #[test]
    fn closure_block_body_and_move() {
        let p = parse_src("fn f() { scope.spawn(move || { work(); more() }); }");
        assert_eq!(p.closures.len(), 1);
        let c = &p.closures[0];
        assert!(c.params.is_empty());
        let toks = lex("fn f() { scope.spawn(move || { work(); more() }); }");
        assert!(toks[c.body.0].is_punct('{'));
        assert!(toks[c.body.1].is_punct('}'));
    }

    #[test]
    fn nested_closures_are_both_found() {
        let p = parse_src("fn f() { outer(|a| inner(|b: &str| b.len() + a)) }");
        let params: Vec<_> = p.closures.iter().map(|c| c.params.clone()).collect();
        assert_eq!(params, [vec!["a".to_string()], vec!["b".to_string()]]);
    }

    #[test]
    fn operator_pipes_are_not_closures() {
        assert!(parse_src("fn f(a: u32, b: u32) -> u32 { a | b }").closures.is_empty());
        assert!(parse_src("fn f(a: bool, b: bool) -> bool { a || b }").closures.is_empty());
        assert!(parse_src("fn f(m: M) -> u32 { match m { M::A | M::B => 1, _ => 0 } }")
            .closures
            .is_empty());
    }

    #[test]
    fn impl_owner_is_attached_to_methods() {
        let p = parse_src(
            "impl Session { pub fn step(&mut self) -> u64 { 0 } }\nfn free() {}\nimpl Display for Frame { fn fmt(&self) -> u8 { 1 } }",
        );
        let owners: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            owners,
            [("step", Some("Session")), ("free", None), ("fmt", Some("Frame"))]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let p = parse_src(
            "impl<T: Into<f64>> Histogram<T> where T: Copy { fn push(&mut self, v: T) {} }",
        );
        assert_eq!(p.fns[0].owner.as_deref(), Some("Histogram"));
    }

    #[test]
    fn typed_closure_params_exclude_the_type() {
        let p = parse_src("fn f() { let rel = |path: &Path| path.display(); }");
        assert_eq!(p.closures[0].params, ["path"]);
    }
}
