//! Transitive effect inference over the call graph, and the four v4
//! contract rules built on it.
//!
//! Each node gets a *direct* effect set from a token-vocabulary scan of
//! its own body (nested fns excluded — they are their own nodes), then
//! effects propagate caller-ward to a fixpoint: `effects(f) =
//! direct(f) ∪ ⋃ effects(callees(f))`. The lattice is a six-bit set
//! joined by union, so the fixpoint is the unique least one and the
//! result is independent of file or worklist order — a property the
//! test suite pins by permuting the file list.
//!
//! The effect vocabulary:
//!
//! * `rng-draw` — a draw or fork on some `SimRng` stream (`.next_u64(`,
//!   `.uniform(`, `.fork(`, …). Seeding a fresh local stream is *not* a
//!   draw: it consumes no shared state.
//! * `wall-clock` — `Instant` / `SystemTime` (the transitive companion
//!   of the site-local `no-wall-clock` rule).
//! * `blocking-io` — file/stdio/net types, `sleep`, and the print
//!   macro family.
//! * `panic` — `.unwrap(` / `.expect(`, the panic macro family
//!   (`panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`
//!   and friends; `debug_assert*` compiles out of release builds and is
//!   exempt), and indexing (`x[i]` can panic; `.get` cannot). A panic
//!   site whose line carries a `// lint:` justification is exempt —
//!   the same escape hatch `unjustified-allow` standardises.
//! * `sink-write` — a Recorder-vocabulary method call (`.record(`,
//!   `.start_span(`, `.end_span(`). Modeled as an effect instead of
//!   resolved dispatch so `recorded-effect-divergence` can ignore it.
//! * `interior-mut` — the `RefCell`/`Cell`/`Rc`/`MemoPattern`
//!   vocabulary shared with the v3 capture pass.
//!
//! Witnesses: for every (node, effect) with a direct site, the first
//! site is remembered; diagnostics walk the graph from the root to a
//! direct site (smallest node id first — deterministic) and print the
//! call path, so a finding like "panic reachable from decode" names
//! the exact `expect` five calls down.

use crate::callgraph::{CallGraph, SINK_METHODS};
use crate::lexer::TokenKind;
use crate::par_capture::{closure_locals, parallel_closures, INTERIOR_MUT};
use crate::rules::Diagnostic;
use crate::source::{match_delim_pub, FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// A set of the six effect kinds, joined by union.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EffectSet(u8);

/// Effect bit indices, in display order.
pub const EFFECT_NAMES: &[&str] = &[
    "rng-draw",
    "wall-clock",
    "blocking-io",
    "panic",
    "sink-write",
    "interior-mut",
];

pub const RNG_DRAW: u8 = 0;
pub const WALL_CLOCK: u8 = 1;
pub const BLOCKING_IO: u8 = 2;
pub const PANIC: u8 = 3;
pub const SINK_WRITE: u8 = 4;
pub const INTERIOR_MUT_FX: u8 = 5;

impl EffectSet {
    /// The empty set.
    pub const EMPTY: EffectSet = EffectSet(0);

    /// Set containing only `bit`.
    pub fn just(bit: u8) -> EffectSet {
        EffectSet(1 << bit)
    }

    /// True when `bit` is present.
    pub fn has(self, bit: u8) -> bool {
        self.0 & (1 << bit) != 0
    }

    /// Union join.
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Self with `bit` cleared.
    pub fn without(self, bit: u8) -> EffectSet {
        EffectSet(self.0 & !(1 << bit))
    }

    /// Bits in `self` missing from `other`, as display names.
    pub fn diff_names(self, other: EffectSet) -> Vec<&'static str> {
        EFFECT_NAMES
            .iter()
            .enumerate()
            .filter(|&(b, _)| self.0 & (1 << b) != 0 && other.0 & (1 << b) == 0)
            .map(|(_, name)| *name)
            .collect()
    }
}

/// Draw/fork methods on a `SimRng` stream (`crates/math/src/rng.rs`).
const RNG_METHODS: &[&str] = &[
    "next_u64", "next_u32", "fill_bytes", "unit_f64", "uniform", "uniform_usize",
    "std_normal", "normal", "chance", "phase", "fork",
];

/// Types whose mention means blocking I/O.
const IO_TYPES: &[&str] = &["File", "OpenOptions", "TcpStream", "TcpListener", "UdpSocket"];

/// Free functions / handles that mean blocking I/O.
const IO_CALLS: &[&str] = &["stdin", "stdout", "stderr", "sleep"];

/// Macros that print (stdio is blocking I/O).
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Macros that panic. `debug_assert*` is exempt (release builds strip it).
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// A remembered direct-effect site.
#[derive(Debug, Clone)]
pub struct Witness {
    /// 1-based line of the site.
    pub line: usize,
    /// What the site is (`` `expect` ``, `` indexing `[` ``, …).
    pub what: String,
}

/// Per-node direct effects plus first-site witnesses.
pub struct DirectEffects {
    /// `direct[n]` = effects of node `n`'s own body.
    pub direct: Vec<EffectSet>,
    /// `witness[n][bit]` = first site of that effect in `n`, if any.
    pub witness: Vec<[Option<Witness>; 6]>,
}

/// Scans every node's own tokens for the direct-effect vocabulary.
pub fn direct_effects(files: &[SourceFile], graph: &CallGraph) -> DirectEffects {
    let mut direct = vec![EffectSet::EMPTY; graph.nodes.len()];
    let mut witness: Vec<[Option<Witness>; 6]> = vec![Default::default(); graph.nodes.len()];
    let mut add = |node: usize, bit: u8, line: usize, what: &str| {
        direct[node] = direct[node].union(EffectSet::just(bit));
        let slot = &mut witness[node][usize::from(bit)];
        if slot.is_none() {
            *slot = Some(Witness { line, what: what.to_string() });
        }
    };
    for (fi, f) in files.iter().enumerate() {
        if f.kind != FileKind::Lib {
            continue;
        }
        for j in 0..f.tokens.len() {
            let Some(node) = graph.node_at(fi, j) else { continue };
            if f.in_cfg_test(j) {
                continue;
            }
            let t = &f.tokens[j];
            let line = t.line;
            match &t.kind {
                TokenKind::Ident(name) => {
                    let after_dot = j >= 1 && f.tokens[j - 1].is_punct('.');
                    let called = f.tokens.get(j + 1).is_some_and(|t| t.is_punct('('));
                    let is_macro = f.tokens.get(j + 1).is_some_and(|t| t.is_punct('!'));
                    if after_dot && called {
                        if RNG_METHODS.contains(&name.as_str()) {
                            add(node, RNG_DRAW, line, &format!("`.{name}(`"));
                        }
                        if SINK_METHODS.contains(&name.as_str()) {
                            add(node, SINK_WRITE, line, &format!("`.{name}(`"));
                        }
                        if (name == "unwrap" || name == "expect") && !line_justified(f, line) {
                            add(node, PANIC, line, &format!("`.{name}(`"));
                        }
                    }
                    if called && IO_CALLS.contains(&name.as_str()) {
                        add(node, BLOCKING_IO, line, &format!("`{name}(`"));
                    }
                    if name == "Instant" || name == "SystemTime" {
                        add(node, WALL_CLOCK, line, &format!("`{name}`"));
                    }
                    if IO_TYPES.contains(&name.as_str()) {
                        add(node, BLOCKING_IO, line, &format!("`{name}`"));
                    }
                    if INTERIOR_MUT.contains(&name.as_str()) {
                        add(node, INTERIOR_MUT_FX, line, &format!("`{name}`"));
                    }
                    if is_macro {
                        if PRINT_MACROS.contains(&name.as_str()) {
                            add(node, BLOCKING_IO, line, &format!("`{name}!`"));
                        }
                        if PANIC_MACROS.contains(&name.as_str()) && !line_justified(f, line) {
                            add(node, PANIC, line, &format!("`{name}!`"));
                        }
                    }
                }
                TokenKind::Punct('[') => {
                    // Indexing: `x[i]`, `f()[i]`, `a[0][1]` — but not
                    // slice types (`&[u8]`), attributes, or array
                    // literals in expression position.
                    let indexes = j >= 1
                        && matches!(
                            &f.tokens[j - 1].kind,
                            TokenKind::Ident(w) if !KEYWORD_BEFORE_BRACKET.contains(&w.as_str())
                        )
                        || j >= 1
                            && matches!(f.tokens[j - 1].kind, TokenKind::Punct(')') | TokenKind::Punct(']'));
                    if indexes && !line_justified(f, line) {
                        add(node, PANIC, line, "indexing `[`");
                    }
                }
                _ => {}
            }
        }
    }
    DirectEffects { direct, witness }
}

/// Idents before `[` that denote types/patterns, not indexable values.
const KEYWORD_BEFORE_BRACKET: &[&str] =
    &["mut", "dyn", "in", "return", "break", "else", "let"];

/// True when a line carries the `// lint:` justification marker.
fn line_justified(f: &SourceFile, line: usize) -> bool {
    f.lines
        .get(line.wrapping_sub(1))
        .is_some_and(|l| l.contains("// lint:"))
}

/// Propagates direct effects caller-ward to the least fixpoint.
pub fn fixpoint(graph: &CallGraph, direct: &[EffectSet]) -> Vec<EffectSet> {
    let callers = graph.callers();
    let mut effects = direct.to_vec();
    let mut queue: Vec<usize> = (0..graph.nodes.len()).collect();
    let mut queued = vec![true; graph.nodes.len()];
    while let Some(n) = queue.pop() {
        queued[n] = false;
        let mut merged = direct[n];
        for &c in &graph.callees[n] {
            merged = merged.union(effects[c]);
        }
        if merged != effects[n] {
            effects[n] = merged;
            for &caller in &callers[n] {
                if !queued[caller] {
                    queued[caller] = true;
                    queue.push(caller);
                }
            }
        }
    }
    effects
}

/// A witness for a transitive effect: the call chain from a root to
/// the first direct site, rendered for a hint.
fn explain(
    graph: &CallGraph,
    fx: &DirectEffects,
    effects: &[EffectSet],
    files: &[SourceFile],
    root: usize,
    bit: u8,
) -> String {
    // DFS toward a node with the *direct* effect, smallest ids first —
    // deterministic for a given graph.
    let mut path = vec![root];
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    visited.insert(root);
    'outer: while let Some(&cur) = path.last() {
        if let Some(w) = &fx.witness[cur][usize::from(bit)] {
            let site = &graph.nodes[cur];
            let chain: Vec<&str> = path.iter().map(|&n| graph.nodes[n].name.as_str()).collect();
            return format!(
                "via {}; {} at {}:{}",
                chain.join(" -> "),
                w.what,
                files[site.file].rel,
                w.line
            );
        }
        for &c in &graph.callees[cur] {
            if effects[c].has(bit) && visited.insert(c) {
                path.push(c);
                continue 'outer;
            }
        }
        path.pop();
    }
    // Unreachable when effects[root] truly has the bit; degrade politely.
    EFFECT_NAMES[usize::from(bit)].to_string()
}

/// Function names treated as hot-loop roots: the per-frame step and the
/// alignment-sweep kernels (`movr-serve`'s event loop will call exactly
/// these). `Session::step` is owner-qualified so unrelated `step` fns
/// elsewhere do not become roots by name collision.
const HOT_ROOTS: &[&str] = &[
    "step_frame",
    "step_frame_recorded",
    "estimate_incidence",
    "estimate_incidence_recorded",
    "estimate_incidence_hierarchical",
    "estimate_incidence_hierarchical_recorded",
    "estimate_reflection",
    "estimate_reflection_recorded",
];

fn is_hot_root(node: &crate::callgraph::Node) -> bool {
    HOT_ROOTS.contains(&node.name.as_str())
        || (node.name == "step" && node.owner.as_deref() == Some("Session"))
}

fn is_decode_root(node: &crate::callgraph::Node) -> bool {
    node.name.starts_with("decode") || node.name.starts_with("restore")
}

/// Runs every v4 rule. One `CallGraph` + fixpoint serves all four.
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let graph = CallGraph::build(files);
    let fx = direct_effects(files, &graph);
    let effects = fixpoint(&graph, &fx.direct);
    panic_reachable_from_decode(files, &graph, &fx, &effects, out);
    blocking_in_hot_loop(files, &graph, &fx, &effects, out);
    recorded_effect_divergence(files, &graph, &effects, out);
    rng_reaches_par_unforked(files, &graph, &effects, out);
}

/// **panic-reachable-from-decode** — a `decode*`/`restore*` fn whose
/// transitive call tree contains a panic site. The checkpoint contract
/// (PR 6) is that corrupt input yields `SnapshotError`, never a panic;
/// a helper's `expect` five calls down breaks it invisibly.
fn panic_reachable_from_decode(
    files: &[SourceFile],
    graph: &CallGraph,
    fx: &DirectEffects,
    effects: &[EffectSet],
    out: &mut Vec<Diagnostic>,
) {
    for (id, node) in graph.nodes.iter().enumerate() {
        if !is_decode_root(node) || !effects[id].has(PANIC) {
            continue;
        }
        let f = &files[node.file];
        out.push(Diagnostic {
            rule: "panic-reachable-from-decode",
            file: f.rel.clone(),
            line: node.line,
            snippet: f.snippet(node.line),
            hint: format!(
                "`{}` can panic on malformed input ({}); decode paths must return a structured error — or justify the site with `// lint: <why>`",
                node.name,
                explain(graph, fx, effects, files, id, PANIC)
            ),
        });
    }
}

/// **blocking-in-hot-loop** — a hot-loop root (frame step, sweep
/// kernel) transitively reaching blocking I/O or the wall clock. The
/// motion-to-photon budget is milliseconds; one buried `println!` or
/// `Instant::now()` inside the per-frame path blows it (and the wall
/// clock additionally breaks bit determinism).
fn blocking_in_hot_loop(
    files: &[SourceFile],
    graph: &CallGraph,
    fx: &DirectEffects,
    effects: &[EffectSet],
    out: &mut Vec<Diagnostic>,
) {
    for (id, node) in graph.nodes.iter().enumerate() {
        if !is_hot_root(node) {
            continue;
        }
        let f = &files[node.file];
        for bit in [BLOCKING_IO, WALL_CLOCK] {
            if !effects[id].has(bit) {
                continue;
            }
            out.push(Diagnostic {
                rule: "blocking-in-hot-loop",
                file: f.rel.clone(),
                line: node.line,
                snippet: f.snippet(node.line),
                hint: format!(
                    "hot-loop root `{}` reaches {} ({}); per-frame code must stay compute-only — move the effect behind a Recorder sink or out of the frame path",
                    node.name,
                    EFFECT_NAMES[usize::from(bit)],
                    explain(graph, fx, effects, files, id, bit)
                ),
            });
        }
    }
}

/// **recorded-effect-divergence** — a `foo`/`foo_recorded` pair whose
/// transitive effect sets differ beyond `sink-write`. The PR 2 contract
/// says observability is *optional*: the recorded twin may write to its
/// sink, but if it also blocks, panics, or draws extra randomness, the
/// instrumented run is no longer the plain run being observed.
fn recorded_effect_divergence(
    files: &[SourceFile],
    graph: &CallGraph,
    effects: &[EffectSet],
    out: &mut Vec<Diagnostic>,
) {
    // (file, base name) -> (plain union, recorded union, recorded line).
    let mut pairs: BTreeMap<(usize, String), (Option<EffectSet>, Option<(EffectSet, usize)>)> =
        BTreeMap::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if let Some(base) = node.name.strip_suffix("_recorded") {
            let entry = pairs.entry((node.file, base.to_string())).or_default();
            let merged = match entry.1 {
                Some((fx0, line)) => (fx0.union(effects[id]), line),
                None => (effects[id], node.line),
            };
            entry.1 = Some(merged);
        } else {
            let entry = pairs.entry((node.file, node.name.clone())).or_default();
            entry.0 = Some(entry.0.unwrap_or(EffectSet::EMPTY).union(effects[id]));
        }
    }
    for ((fi, base), (plain, recorded)) in pairs {
        let (Some(plain), Some((recorded, line))) = (plain, recorded) else { continue };
        let plain = plain.without(SINK_WRITE);
        let recorded = recorded.without(SINK_WRITE);
        if plain == recorded {
            continue;
        }
        let f = &files[fi];
        let extra = recorded.diff_names(plain);
        let missing = plain.diff_names(recorded);
        let mut detail = Vec::new();
        if !extra.is_empty() {
            detail.push(format!("recorded adds {}", extra.join(", ")));
        }
        if !missing.is_empty() {
            detail.push(format!("plain adds {}", missing.join(", ")));
        }
        out.push(Diagnostic {
            rule: "recorded-effect-divergence",
            file: f.rel.clone(),
            line,
            snippet: f.snippet(line),
            hint: format!(
                "`{base}` and `{base}_recorded` diverge beyond sink-write: {}; the recorded twin must be the plain computation plus events only",
                detail.join("; ")
            ),
        });
    }
}

/// **rng-reaches-par-unforked** — the transitive version of v3's
/// `rng-unforked-in-par`: a parallel closure hands an *rng-carrying*
/// binding (a struct holding a `SimRng`, or the stream itself hidden
/// behind a helper) to a function that transitively draws, without a
/// per-item fork. v3 sees only direct draws on `SimRng`-typed bindings;
/// this pass follows the draw through any number of helper calls.
fn rng_reaches_par_unforked(
    files: &[SourceFile],
    graph: &CallGraph,
    effects: &[EffectSet],
    out: &mut Vec<Diagnostic>,
) {
    let carriers = rng_carrier_types(files);
    for (fi, f) in files.iter().enumerate() {
        if f.kind != FileKind::Lib {
            continue;
        }
        for c in parallel_closures(f) {
            if f.in_cfg_test(c.start) {
                continue;
            }
            let bindings = carrier_bindings(f, c.start, &carriers);
            if bindings.is_empty() {
                continue;
            }
            let locals = closure_locals(f, c);
            let (lo, hi) = c.body;
            let hi = hi.min(f.tokens.len().saturating_sub(1));
            let mut reported: BTreeSet<String> = BTreeSet::new();
            for j in lo..=hi {
                let TokenKind::Ident(_) = &f.tokens[j].kind else { continue };
                if !f.tokens.get(j + 1).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
                let callees = graph.resolve_at(files, fi, j);
                if !callees.iter().any(|&id| effects[id].has(RNG_DRAW)) {
                    continue;
                }
                // Which carrier binding flows into the call? Arguments
                // for plain/path calls; the receiver for method calls.
                let close = match_delim_pub(&f.tokens, j + 1, '(', ')').min(hi);
                let mut flows: Vec<&str> = f.tokens[j + 1..=close]
                    .iter()
                    .filter_map(|t| match &t.kind {
                        TokenKind::Ident(w) => Some(w.as_str()),
                        _ => None,
                    })
                    .collect();
                if j >= 2 && f.tokens[j - 1].is_punct('.') {
                    if let TokenKind::Ident(recv) = &f.tokens[j - 2].kind {
                        flows.push(recv.as_str());
                    }
                }
                for w in flows {
                    if !bindings.contains(w) || locals.contains(w) {
                        continue;
                    }
                    if reported.insert(w.to_string()) {
                        let callee = &graph.nodes[*callees
                            .iter()
                            .find(|&&id| effects[id].has(RNG_DRAW))
                            .expect("checked above")];
                        out.push(Diagnostic {
                            rule: "rng-reaches-par-unforked",
                            file: f.rel.clone(),
                            line: f.tokens[j].line,
                            snippet: f.snippet(f.tokens[j].line),
                            hint: format!(
                                "`{w}` carries an RNG stream into `{}` (which transitively draws) inside a parallel closure; draws interleave in worker order — fork a per-item child (`….fork(<label from the item index>)`) inside the closure and pass that instead",
                                callee.name
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Struct names that (transitively) hold a `SimRng` field, plus
/// `SimRng` itself. One fixpoint over the workspace's struct defs.
fn rng_carrier_types(files: &[SourceFile]) -> BTreeSet<String> {
    let mut carriers: BTreeSet<String> = BTreeSet::new();
    carriers.insert("SimRng".to_string());
    loop {
        let mut grew = false;
        for f in files {
            if f.kind != FileKind::Lib {
                continue;
            }
            for st in &f.parsed.structs {
                if carriers.contains(&st.name) {
                    continue;
                }
                let holds = st.fields.iter().any(|field| {
                    field
                        .ty
                        .split(|c: char| !c.is_alphanumeric() && c != '_')
                        .any(|seg| carriers.contains(seg))
                });
                if holds {
                    carriers.insert(st.name.clone());
                    grew = true;
                }
            }
        }
        if !grew {
            return carriers;
        }
    }
}

/// Enclosing bindings of rng-*carrier* type visible at token `start`:
/// parameters and `let`s of the innermost enclosing fn whose type or
/// initializer mentions a carrier struct — but not bare `SimRng`
/// bindings, which v3's `rng-unforked-in-par` already covers.
fn carrier_bindings(f: &SourceFile, start: usize, carriers: &BTreeSet<String>) -> BTreeSet<String> {
    let toks = &f.tokens;
    let mut out = BTreeSet::new();
    let sig = f
        .parsed
        .fns
        .iter()
        .filter(|s| s.body.is_some_and(|(open, close)| open <= start && start <= close))
        .min_by_key(|s| {
            let (open, close) = s.body.expect("filtered on body");
            close - open
        });
    let Some(sig) = sig else { return out };
    let is_carrier_ty = |ty: &str| {
        let mut segs = ty.split(|c: char| !c.is_alphanumeric() && c != '_');
        !ty.contains("SimRng") && segs.any(|seg| carriers.contains(seg))
    };
    for p in &sig.params {
        if !p.name.is_empty() && is_carrier_ty(&p.ty) {
            out.insert(p.name.clone());
        }
    }
    let (open, _) = sig.body.expect("filtered on body");
    let mut i = open;
    while i < start {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(TokenKind::Ident(name)) = toks.get(j).map(|t| &t.kind) {
                let mut k = j + 1;
                while k < toks.len() && !toks[k].is_punct(';') {
                    k += 1;
                }
                let rest = &toks[j + 1..k.min(toks.len())];
                let mentions_carrier = rest.iter().any(
                    |t| matches!(&t.kind, TokenKind::Ident(w) if carriers.contains(w.as_str())),
                );
                let mentions_simrng = rest.iter().any(|t| t.is_ident("SimRng"));
                if mentions_carrier && !mentions_simrng {
                    out.insert(name.clone());
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<(&'static str, String, usize)> {
        let parsed: Vec<SourceFile> =
            files.iter().map(|(rel, src)| SourceFile::parse(rel, src)).collect();
        let mut out = Vec::new();
        check(&parsed, &mut out);
        out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
        out.into_iter().map(|d| (d.rule, d.file, d.line)).collect()
    }

    #[test]
    fn panic_two_hops_below_decode_is_found_and_justified_sites_pass() {
        let src = "pub fn decode_frame(b: &[u8]) -> u64 { head(b) }\nfn head(b: &[u8]) -> u64 { u64::from(b[0]) }\npub fn decode_ok(b: &[u8]) -> u64 {\n  probe(b)\n}\nfn probe(b: &[u8]) -> u64 { b[0].into() // lint: caller pins non-empty\n}";
        let hits = run(&[("crates/codec/src/lib.rs", src)]);
        assert_eq!(hits, [("panic-reachable-from-decode", "crates/codec/src/lib.rs".to_string(), 1)]);
    }

    #[test]
    fn hot_root_reaching_io_and_wall_clock_flags_each() {
        let src = "pub fn step_frame(t: u64) -> u64 { log_tick(t); warm() }\nfn log_tick(t: u64) { println!(\"t={t}\"); }\nfn warm() -> u64 { let _x = Instant::now(); 0 }";
        let hits = run(&[("crates/hot/src/lib.rs", src)]);
        // no-wall-clock is a v1 rule; here only the v4 pass runs, so the
        // two hot-loop findings (io + wall) are the full list.
        assert_eq!(
            hits,
            [
                ("blocking-in-hot-loop", "crates/hot/src/lib.rs".to_string(), 1),
                ("blocking-in-hot-loop", "crates/hot/src/lib.rs".to_string(), 1),
            ]
        );
    }

    #[test]
    fn session_step_is_owner_qualified() {
        let hot = "pub struct Session { t: u64 }\nimpl Session { pub fn step(&mut self) { audit(); } }\nfn audit() { let _ = File::create(\"log\"); }";
        let hits = run(&[("crates/hot/src/lib.rs", hot)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "blocking-in-hot-loop");
        // The same fn named `step` on another type is not a root.
        let cold = "pub struct Cursor { t: u64 }\nimpl Cursor { pub fn step(&mut self) { audit(); } }\nfn audit() { let _ = File::create(\"log\"); }";
        assert!(run(&[("crates/hot/src/lib.rs", cold)]).is_empty());
    }

    #[test]
    fn recorded_twin_with_extra_io_diverges_and_sink_is_ignored() {
        let bad = "pub fn load(t: u64) -> u64 { t }\npub fn load_recorded(t: u64, r: &mut R) -> u64 {\n  let v = load(t); r.record(v); let _ = File::open(\"a\"); v\n}";
        let hits = run(&[("crates/codec/src/lib.rs", bad)]);
        assert_eq!(hits, [("recorded-effect-divergence", "crates/codec/src/lib.rs".to_string(), 2)]);
        let ok = "pub fn load(t: u64) -> u64 { t }\npub fn load_recorded(t: u64, r: &mut R) -> u64 {\n  let v = load(t); r.record(v); v\n}";
        assert!(run(&[("crates/codec/src/lib.rs", ok)]).is_empty());
    }

    #[test]
    fn carrier_struct_reaching_par_closure_through_helper_flags() {
        let src = "pub struct Ctx { pub rng: SimRng }\nfn jitter(x: u64, ctx: &mut Ctx) -> u64 { x ^ ctx.rng.next_u64() }\npub fn batched(items: &[u64], ctx: &mut Ctx) -> Vec<u64> {\n  par_map(items, 4, |_, &x| jitter(x, ctx))\n}";
        let hits = run(&[("crates/par/src/lib.rs", src)]);
        assert_eq!(hits, [("rng-reaches-par-unforked", "crates/par/src/lib.rs".to_string(), 4)]);
    }

    #[test]
    fn per_item_fork_from_the_carrier_is_clean() {
        let src = "pub struct Ctx { pub rng: SimRng }\nfn scramble(x: u64, r: &mut SimRng) -> u64 { x ^ r.next_u64() }\npub fn batched(items: &[u64], ctx: &mut Ctx) -> Vec<u64> {\n  par_map(items, 4, |i, &x| { let mut child = ctx.rng.fork(4000 + i); scramble(x, &mut child) })\n}";
        assert!(run(&[("crates/par/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn effect_fixpoint_is_file_order_independent() {
        let a = ("crates/a/src/lib.rs", "use movr_b::down;\npub fn decode_top(x: u64) -> u64 { down(x) }");
        let b = ("crates/b/src/lib.rs", "use movr_c::deep;\npub fn down(x: u64) -> u64 { deep(x) }");
        let c = ("crates/c/src/lib.rs", "pub fn deep(x: u64) -> u64 { assert!(x > 0); x }");
        let orders: [&[(&str, &str)]; 3] = [&[a, b, c], &[c, a, b], &[b, c, a]];
        let base = run(orders[0]);
        assert_eq!(base.len(), 1, "{base:?}");
        assert_eq!(base[0].0, "panic-reachable-from-decode");
        for order in &orders[1..] {
            assert_eq!(run(order), base, "fixpoint drifted under file reordering");
        }
    }

    #[test]
    fn recursion_reaches_the_same_fixpoint() {
        // Mutually recursive decode helpers with one panic inside the
        // cycle: the worklist must terminate and still see it.
        let src = "pub fn decode_a(n: u64) -> u64 { if n == 0 { 0 } else { decode_b(n) } }\npub fn decode_b(n: u64) -> u64 { lookup(n); decode_a(n - 1) }\nfn lookup(n: u64) -> u64 { [1u64, 2][0] + n }";
        let hits = run(&[("crates/codec/src/lib.rs", src)]);
        let rules: Vec<_> = hits.iter().map(|h| (h.0, h.2)).collect();
        assert_eq!(
            rules,
            [("panic-reachable-from-decode", 1), ("panic-reachable-from-decode", 2)]
        );
    }
}

