//! The ratcheting baseline: existing violations pinned in
//! `lint-baseline.toml` as `(file, rule) -> count`. New violations fail
//! the gate; fixing violations without shrinking the baseline also
//! fails (a *stale* entry), so counts can only go down.
//!
//! The file is a deliberately tiny TOML subset — `[[entry]]` tables with
//! `file`, `rule`, and `count` keys — parsed in-tree so the analyzer
//! stays dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Pinned violation counts keyed by `(file, rule)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// An empty baseline (everything is a new violation).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// The pinned count for `(file, rule)`, 0 if absent.
    pub fn allowed(&self, file: &str, rule: &str) -> usize {
        self.entries
            .get(&(file.to_string(), rule.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates pinned entries as `((file, rule), count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), usize)> {
        self.entries.iter().map(|(k, &v)| (k, v))
    }

    /// Number of pinned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses the TOML subset. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let mut cur: Option<(Option<String>, Option<String>, Option<usize>)> = None;
        let mut flush = |cur: &mut Option<(Option<String>, Option<String>, Option<usize>)>,
                         lineno: usize|
         -> Result<(), String> {
            if let Some((file, rule, count)) = cur.take() {
                match (file, rule, count) {
                    (Some(f), Some(r), Some(c)) => {
                        if entries.insert((f.clone(), r.clone()), c).is_some() {
                            return Err(format!(
                                "line {lineno}: duplicate baseline entry for {f} / {r}"
                            ));
                        }
                        Ok(())
                    }
                    _ => Err(format!(
                        "entry ending before line {lineno} is missing file/rule/count"
                    )),
                }
            } else {
                Ok(())
            }
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut cur, lineno)?;
                cur = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`, got `{line}`"));
            };
            let Some(cur) = cur.as_mut() else {
                return Err(format!("line {lineno}: `{key}` outside an [[entry]] table"));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "file" => cur.0 = Some(unquote(value, lineno)?),
                "rule" => cur.1 = Some(unquote(value, lineno)?),
                "count" => {
                    cur.2 = Some(value.parse().map_err(|_| {
                        format!("line {lineno}: count must be a non-negative integer")
                    })?);
                }
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        flush(&mut cur, text.lines().count() + 1)?;
        Ok(Baseline { entries })
    }

    /// Renders counts grouped by `(file, rule)` into the committed
    /// format, sorted for stable diffs.
    pub fn render(counts: &BTreeMap<(String, String), usize>) -> String {
        let mut out = String::from(
            "# movr-lint ratcheting baseline.\n\
             #\n\
             # Each entry pins the number of pre-existing violations of one rule in\n\
             # one file. The gate fails if a file exceeds its pinned count (new\n\
             # violation) OR comes in under it (stale entry: shrink the count so the\n\
             # ratchet only ever tightens). Regenerate after fixing violations with:\n\
             #\n\
             #   cargo run -p movr-lint -- --write-baseline\n\n",
        );
        for ((file, rule), count) in counts {
            if *count == 0 {
                continue;
            }
            let _ = writeln!(out, "[[entry]]");
            let _ = writeln!(out, "file = \"{file}\"");
            let _ = writeln!(out, "rule = \"{rule}\"");
            let _ = writeln!(out, "count = {count}\n");
        }
        out
    }
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string"))?;
    Ok(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut counts = BTreeMap::new();
        counts.insert(
            ("crates/core/src/session.rs".to_string(), "unwrap-in-lib".to_string()),
            3,
        );
        counts.insert(
            ("crates/math/src/vec2.rs".to_string(), "float-exact-eq".to_string()),
            2,
        );
        // Zero-count entries are dropped on render.
        counts.insert(("x.rs".to_string(), "unwrap-in-lib".to_string()), 0);
        let text = Baseline::render(&counts);
        let parsed = Baseline::parse(&text).expect("rendered baseline parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.allowed("crates/core/src/session.rs", "unwrap-in-lib"), 3);
        assert_eq!(parsed.allowed("crates/math/src/vec2.rs", "float-exact-eq"), 2);
        assert_eq!(parsed.allowed("x.rs", "unwrap-in-lib"), 0);
    }

    #[test]
    fn parse_errors_name_the_line() {
        assert!(Baseline::parse("file = \"a\"").unwrap_err().contains("line 1"));
        assert!(Baseline::parse("[[entry]]\nfile = \"a\"\n")
            .unwrap_err()
            .contains("missing"));
        assert!(Baseline::parse("[[entry]]\nfile = \"a\"\nrule = \"r\"\ncount = x\n")
            .unwrap_err()
            .contains("integer"));
        let dup = "[[entry]]\nfile = \"a\"\nrule = \"r\"\ncount = 1\n\n[[entry]]\nfile = \"a\"\nrule = \"r\"\ncount = 2\n";
        assert!(Baseline::parse(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\n[[entry]]\n# inner\nfile = \"a.rs\"\nrule = \"r\"\ncount = 7\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.allowed("a.rs", "r"), 7);
    }
}
