//! Order-sensitivity analysis: unordered container iteration feeding
//! output paths.
//!
//! Every artifact the repo pins — JSONL timelines, rollup JSON,
//! fingerprints, golden fixtures, SARIF — is compared byte-for-byte.
//! `HashMap`/`HashSet` iteration order varies per process (SipHash keys
//! are randomized), so one unordered loop in a rendering path turns a
//! stable gate into a coin flip. The obs reducer avoided this purely by
//! convention (sorted-key JSON, `BTreeMap` everywhere); this pass makes
//! the convention checkable.
//!
//! **`unordered-iter-in-output`** — a `for … in` loop or iterator
//! method chain (`.iter()`, `.keys()`, `.values()`, …) over a binding
//! or field of `HashMap`/`HashSet` type, where the iteration feeds an
//! output path: either the enclosing function's name marks it as a
//! renderer (`json`, `render`, `write`, `fingerprint`, `rollup`, …) or
//! the loop body contains a sink call (`writeln!`, `push_str`,
//! `format!`, …). Pure lookups, `.len()`, and iteration that only
//! aggregates (`.values().sum()`) in a non-output fn stay clean —
//! commutative folds are order-insensitive, and flagging every
//! HashMap use would drown the signal.
//!
//! Known approximation (documented in DESIGN.md): the sink test is
//! syntactic, so an order-dependent fold without a sink in a
//! non-output-named fn escapes (under-approximation), while a sorted
//! collect inside a loop that also writes is still flagged
//! (over-approximation) — switch the container to `BTreeMap`/`BTreeSet`
//! or collect-and-sort before entering the output path.

use crate::lexer::{Token, TokenKind};
use crate::rules::Diagnostic;
use crate::source::{match_delim_pub, FileKind, SourceFile};
use std::collections::BTreeSet;

/// Enclosing-fn name fragments that mark a rendering/output path.
const OUTPUT_FN_MARKERS: &[&str] = &[
    "json", "render", "write", "emit", "encode", "serialize", "fingerprint", "rollup",
    "sarif", "dump", "print",
];

/// Macro/method idents inside an iteration that mark it as producing
/// output text or bytes.
const SINKS: &[&str] = &["write", "writeln", "push_str", "print", "println", "format"];

/// Iterator-producing methods on the unordered containers.
const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];

/// Runs the order-sensitivity analysis over library code. Tests are
/// exempt (they assert on their own output), and benches/examples are
/// covered transitively through the library paths they call.
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for f in files {
        if f.kind != FileKind::Lib {
            continue;
        }
        check_file(f, out);
    }
}

fn check_file(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let fields = unordered_fields(f);
    let toks = &f.tokens;
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for sig in &f.parsed.fns {
        let Some((open, close)) = sig.body else { continue };
        if f.in_cfg_test(open) {
            continue;
        }
        let unordered = fn_unordered_names(f, sig, &fields);
        if unordered.is_empty() {
            continue;
        }
        let close = close.min(toks.len().saturating_sub(1));
        let fn_is_output = {
            let lower = sig.name.to_lowercase();
            OUTPUT_FN_MARKERS.iter().any(|m| lower.contains(m))
        };
        for j in open..=close {
            let TokenKind::Ident(name) = &toks[j].kind else { continue };
            if !unordered.contains(name.as_str()) {
                continue;
            }
            let Some(range) = iteration_range(toks, j, close) else { continue };
            if !seen.insert(j) {
                continue;
            }
            if fn_is_output || has_sink(&toks[range.0..=range.1]) {
                out.push(Diagnostic {
                    rule: "unordered-iter-in-output",
                    file: f.rel.clone(),
                    line: toks[j].line,
                    snippet: f.snippet(toks[j].line),
                    hint: format!(
                        "iterating `{name}` (HashMap/HashSet) feeds an output path; hash order varies per process and poisons byte-identical artifacts — use BTreeMap/BTreeSet or collect-and-sort first"
                    ),
                });
            }
        }
    }
}

/// Struct-field names of `HashMap`/`HashSet` type, file-wide (so
/// `self.index` is recognized in any method).
fn unordered_fields(f: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for st in &f.parsed.structs {
        for field in &st.fields {
            if !field.name.is_empty()
                && (field.ty.contains("HashMap") || field.ty.contains("HashSet"))
            {
                names.insert(field.name.clone());
            }
        }
    }
    names
}

/// Names unordered *within one fn*: its own `HashMap`/`HashSet`-typed
/// params and `let` bindings, plus the file-wide fields. Scoping per fn
/// keeps a `BTreeMap` param clean even when another fn reuses the name
/// for a hash container.
fn fn_unordered_names(
    f: &SourceFile,
    sig: &crate::parser::FnSig,
    fields: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut names = fields.clone();
    let unordered_ty = |s: &str| s.contains("HashMap") || s.contains("HashSet");
    for p in &sig.params {
        if !p.name.is_empty() && unordered_ty(&p.ty) {
            names.insert(p.name.clone());
        }
    }
    let Some((open, close)) = sig.body else {
        return names;
    };
    let toks = &f.tokens;
    let close = close.min(toks.len().saturating_sub(1));
    let mut i = open;
    while i <= close {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(TokenKind::Ident(name)) = toks.get(j).map(|t| &t.kind) {
                let mut k = j + 1;
                let mut mentions = false;
                while k <= close && !toks[k].is_punct(';') {
                    if matches!(&toks[k].kind, TokenKind::Ident(w) if w == "HashMap" || w == "HashSet")
                    {
                        mentions = true;
                    }
                    k += 1;
                }
                if mentions {
                    names.insert(name.clone());
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    names
}

/// If the reference at `j` starts an iteration, returns the inclusive
/// token range of that iteration (loop body, or the statement the
/// method chain belongs to). `None` for lookups and other uses.
fn iteration_range(toks: &[Token], j: usize, fn_close: usize) -> Option<(usize, usize)> {
    // `for pat in name …{ body }` — preceded by `in` (possibly through
    // `&`/`mut`), loop body is the next top-level brace block.
    let mut p = j;
    while p >= 1 && (toks[p - 1].is_punct('&') || toks[p - 1].is_ident("mut")) {
        p -= 1;
    }
    if p >= 1 && toks[p - 1].is_ident("in") {
        let mut k = j + 1;
        let mut depth = 0i32;
        while k <= fn_close {
            match &toks[k].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => {
                    return Some((k, match_delim_pub(toks, k, '{', '}').min(fn_close)));
                }
                _ => {}
            }
            k += 1;
        }
        return None;
    }
    // `name.iter()…` / `name.keys()…` — range runs to the end of the
    // statement (`;` at depth 0) or through a trailing block.
    if toks.get(j + 1).is_some_and(|t| t.is_punct('.')) {
        if let Some(TokenKind::Ident(m)) = toks.get(j + 2).map(|t| &t.kind) {
            if ITER_METHODS.contains(&m.as_str())
                && toks.get(j + 3).is_some_and(|t| t.is_punct('('))
            {
                let mut k = j + 3;
                let mut depth = 0i32;
                while k <= fn_close {
                    match &toks[k].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                        TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                        TokenKind::Punct(';') if depth == 0 => return Some((j, k)),
                        TokenKind::Punct('{') if depth == 0 => {
                            return Some((j, match_delim_pub(toks, k, '{', '}').min(fn_close)));
                        }
                        TokenKind::Punct('}') if depth <= 0 => return Some((j, k)),
                        _ => {}
                    }
                    if depth < 0 {
                        return Some((j, k));
                    }
                    k += 1;
                }
                return Some((j, fn_close));
            }
        }
    }
    None
}

fn has_sink(range: &[Token]) -> bool {
    range
        .iter()
        .any(|t| matches!(&t.kind, TokenKind::Ident(w) if SINKS.contains(&w.as_str())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(src: &str) -> Vec<usize> {
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        let mut out = Vec::new();
        check(std::slice::from_ref(&f), &mut out);
        assert!(out.iter().all(|d| d.rule == "unordered-iter-in-output"));
        out.into_iter().map(|d| d.line).collect()
    }

    #[test]
    fn for_loop_in_output_named_fn_flags() {
        let src = "use std::collections::HashMap;\nfn render_json(m: &HashMap<String, u64>) -> String {\n  let mut s = String::new();\n  for (k, v) in m {\n    s += k;\n  }\n  s\n}";
        assert_eq!(hits(src), [4]);
    }

    #[test]
    fn sink_in_loop_body_flags_regardless_of_fn_name() {
        let src = "fn tally(seen: &HashSet<u64>) {\n  for v in seen.iter() {\n    writeln!(out, \"{v}\").unwrap();\n  }\n}";
        assert_eq!(hits(src), [2]);
    }

    #[test]
    fn let_bound_hashmap_method_chain_flags() {
        let src = "fn encode(xs: &[u64]) -> String {\n  let mut m = HashMap::new();\n  m.keys().map(|k| format!(\"{k}\")).collect()\n}";
        assert_eq!(hits(src), [3]);
    }

    #[test]
    fn struct_field_iteration_flags() {
        let src = "struct Idx { by_name: HashMap<String, u64> }\nimpl Idx {\n  fn dump(&self) -> String {\n    let mut s = String::new();\n    for (k, _) in self.by_name.iter() {\n      s.push_str(k);\n    }\n    s\n  }\n}";
        assert_eq!(hits(src), [5]);
    }

    #[test]
    fn lookups_and_commutative_folds_are_clean() {
        let src = "fn total(m: &HashMap<String, u64>, key: &str) -> u64 {\n  let one = m.get(key).copied().unwrap_or(0);\n  one + m.values().sum::<u64>()\n}";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn btreemap_output_is_clean() {
        let src = "fn render_json(m: &BTreeMap<String, u64>) -> String {\n  let mut s = String::new();\n  for (k, v) in m {\n    s += k;\n  }\n  s\n}";
        assert!(hits(src).is_empty());
    }

    #[test]
    fn name_reuse_across_fns_stays_scoped() {
        let src = "fn render_a(m: &HashMap<String, u64>) -> String {\n  m.keys().map(|k| format!(\"{k}\")).collect()\n}\nfn render_b(m: &BTreeMap<String, u64>) -> String {\n  m.keys().map(|k| format!(\"{k}\")).collect()\n}";
        assert_eq!(hits(src), [2]);
    }

    #[test]
    fn cfg_test_iteration_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn render(m: &HashMap<u8, u8>) -> String {\n    m.keys().map(|k| format!(\"{k}\")).collect()\n  }\n}";
        assert!(hits(src).is_empty());
    }
}
