//! movr-lint: in-tree determinism & unit-safety static analyzer.
//!
//! The whole reproduction rests on two machine-checkable invariants:
//! every run is bit-deterministic under `SimRng` + `SimTime`, and all
//! link-budget arithmetic goes through the audited `movr_math::db`
//! helpers (a 10-vs-20-log10 slip silently skews every figure). This
//! crate enforces those invariants — plus general hygiene (unwraps,
//! lossy casts, unjustified allows) — as structured diagnostics over a
//! hand-rolled Rust lexer, with a committed ratcheting baseline so
//! pre-existing violations can only shrink.
//!
//! Three front doors:
//! * the `movr-lint` binary (human and `--json` output, `--write-baseline`),
//! * `check_workspace` called from the root package's `tests/lint_gate.rs`
//!   so `cargo test` runs the gate,
//! * a `verify.sh` stage that fails CI on any non-baseline diagnostic.

mod baseline;
mod callgraph;
mod effects;
mod layers;
mod lexer;
mod order_io;
mod par_capture;
mod parser;
mod rng_flow;
mod rules;
mod snapshot_cov;
pub mod sarif;
mod source;
mod units;

pub use baseline::Baseline;
pub use layers::{LayerSpec, LAYERS_FILE};
pub use rules::{rule_doc, Diagnostic, RULES, RULE_DOCS};
pub use source::SourceFile;
pub use units::UnitClass;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// A baseline entry that no longer matches reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// Workspace-relative file path of the pinned entry.
    pub file: String,
    /// Rule id of the pinned entry.
    pub rule: String,
    /// The count the baseline pins.
    pub pinned: usize,
    /// The count actually found (strictly less than `pinned`).
    pub actual: usize,
}

/// The outcome of a full workspace run, after the ratchet is applied.
#[derive(Debug, Default)]
pub struct Report {
    /// Every diagnostic found, baselined or not, sorted by location.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics in `(file, rule)` groups that exceed their pinned
    /// count — these fail the gate.
    pub new: Vec<Diagnostic>,
    /// Baseline entries whose pinned count exceeds reality — these also
    /// fail the gate (shrink the baseline; the ratchet only tightens).
    pub stale: Vec<StaleEntry>,
    /// Number of diagnostics absorbed by the baseline.
    pub baselined: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace is exactly at its pinned state: no new
    /// violations and no stale entries.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }

    /// Actual violation counts grouped by `(file, rule)`, for
    /// `--write-baseline`.
    pub fn counts(&self) -> BTreeMap<(String, String), usize> {
        let mut counts = BTreeMap::new();
        for d in &self.diagnostics {
            *counts
                .entry((d.file.clone(), d.rule.to_string()))
                .or_insert(0) += 1;
        }
        counts
    }

    /// Human-readable rendering: new diagnostics, stale entries, then a
    /// one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.new {
            let _ = writeln!(out, "{}:{}: [{}] {}", d.file, d.line, d.rule, d.snippet);
            let _ = writeln!(out, "    hint: {}", d.hint);
        }
        for s in &self.stale {
            let _ = writeln!(
                out,
                "{}: [{}] stale baseline: pins {} but only {} found — run `cargo run -p movr-lint -- --write-baseline` to tighten the ratchet",
                s.file, s.rule, s.pinned, s.actual
            );
        }
        let _ = writeln!(
            out,
            "movr-lint: {} file(s), {} diagnostic(s) ({} baselined, {} new), {} stale baseline entr(ies)",
            self.files_scanned,
            self.diagnostics.len(),
            self.baselined,
            self.new.len(),
            self.stale.len()
        );
        out
    }

    /// Machine-readable rendering: one JSON object (hand-rolled, no
    /// dependencies) with `new`, `stale`, and summary fields.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"new\": [");
        for (i, d) in self.new.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \"hint\": \"{}\"}}",
                json_escape(d.rule),
                json_escape(&d.file),
                d.line,
                json_escape(&d.snippet),
                json_escape(&d.hint)
            );
        }
        out.push_str("\n  ],\n  \"stale\": [");
        for (i, s) in self.stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"pinned\": {}, \"actual\": {}}}",
                json_escape(&s.rule),
                json_escape(&s.file),
                s.pinned,
                s.actual
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"files_scanned\": {},\n  \"diagnostics\": {},\n  \"baselined\": {},\n  \"clean\": {}\n}}",
            self.files_scanned,
            self.diagnostics.len(),
            self.baselined,
            self.is_clean()
        );
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

/// Collects the workspace-relative paths of every `.rs` file under
/// `root`, skipping `target/`, `.git/`, hidden directories, and any
/// directory named `fixtures` (lint self-test corpora carry seeded
/// violations by design).
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lexes and classifies every workspace source file under `root`,
/// using one worker thread.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    load_workspace_threaded(root, 1)
}

/// Lexes and classifies every workspace source file under `root` with
/// `threads` workers. Output order (and therefore every downstream
/// report) is byte-identical for any thread count: the sorted path list
/// is split into contiguous index chunks, one per worker, and the
/// chunks are reassembled in order.
pub fn load_workspace_threaded(root: &Path, threads: usize) -> io::Result<Vec<SourceFile>> {
    let paths = collect_files(root)?;
    let rel_of = |path: &Path| {
        path.strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/")
    };
    let threads = threads.max(1).min(paths.len().max(1));
    if threads == 1 {
        let mut files = Vec::with_capacity(paths.len());
        for path in &paths {
            let src = fs::read_to_string(path)?;
            files.push(SourceFile::parse(&rel_of(path), &src));
        }
        return Ok(files);
    }
    let chunk = paths.len().div_ceil(threads);
    let mut results: Vec<io::Result<Vec<SourceFile>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = paths
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(|| {
                    slice
                        .iter()
                        .map(|path| {
                            let src = fs::read_to_string(path)?;
                            Ok(SourceFile::parse(&rel_of(path), &src))
                        })
                        .collect::<io::Result<Vec<SourceFile>>>()
                })
            })
            .collect();
        // Joined in spawn order, so chunk 0's files come first: the
        // final Vec is exactly the single-threaded ordering.
        results = handles
            .into_iter()
            .map(|h| h.join().expect("lint worker thread panicked"))
            .collect();
    });
    let mut files = Vec::with_capacity(paths.len());
    for r in results {
        files.extend(r?);
    }
    Ok(files)
}

/// Loads and validates `lint-layers.toml` from `root`. A missing file
/// is `Ok(None)` — the layering analysis is simply skipped, so
/// `analyze` keeps working on roots without a spec (e.g. ad-hoc runs on
/// a subdirectory). A present-but-invalid file is an error: a typo in
/// the spec must not silently disable the analysis.
pub fn load_layer_spec(root: &Path) -> io::Result<Option<LayerSpec>> {
    let path = root.join(LAYERS_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let text = fs::read_to_string(&path)?;
    LayerSpec::parse(&text)
        .map(Some)
        .map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
        })
}

/// Runs every rule over the workspace at `root` with no baseline
/// applied: the raw diagnostic list.
pub fn analyze(root: &Path) -> io::Result<Report> {
    analyze_threaded(root, 1)
}

/// [`analyze`] with a worker-thread count for the parse stage. The
/// report is byte-identical for any `threads` value.
pub fn analyze_threaded(root: &Path, threads: usize) -> io::Result<Report> {
    let files = load_workspace_threaded(root, threads)?;
    let layers = load_layer_spec(root)?;
    let diagnostics = rules::run_all(&files, layers.as_ref());
    Ok(Report {
        new: diagnostics.clone(),
        diagnostics,
        stale: Vec::new(),
        baselined: 0,
        files_scanned: files.len(),
    })
}

/// Runs only the v3 semantic passes (parallel-capture,
/// snapshot-coverage, order-sensitivity) over already-loaded files,
/// sorted by (file, line, rule). This is the bench harness's isolated
/// datum for the passes added on top of the v2 engine; `analyze` runs
/// them as part of the full rule catalogue.
pub fn run_v3_passes(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    par_capture::check(files, &mut out);
    snapshot_cov::check(files, &mut out);
    order_io::check(files, &mut out);
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    out
}

/// Runs only the v4 interprocedural passes (call-graph construction,
/// effect fixpoint, and the four transitive contract rules) over
/// already-loaded files, sorted by (file, line, rule). This is the
/// bench harness's isolated datum for the whole-program analysis;
/// `analyze` runs it as part of the full rule catalogue.
pub fn run_v4_passes(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    effects::check(files, &mut out);
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    out
}

/// Lexes every workspace file under `root` without parsing or running
/// any analysis; returns the total token count. This is the bench
/// harness's lexer-only datum (lexer cost vs full semantic `analyze`).
pub fn lex_workspace(root: &Path) -> io::Result<usize> {
    let mut tokens = 0usize;
    for path in collect_files(root)? {
        let src = fs::read_to_string(&path)?;
        tokens += lexer::lex(&src).len();
    }
    Ok(tokens)
}

/// Applies the ratchet: groups `diagnostics` by `(file, rule)` and
/// splits them against `baseline` into new / baselined / stale.
pub fn apply_baseline(mut report: Report, baseline: &Baseline) -> Report {
    let counts = report.counts();
    report.new = report
        .diagnostics
        .iter()
        .filter(|d| {
            let actual = counts[&(d.file.clone(), d.rule.to_string())];
            actual > baseline.allowed(&d.file, d.rule)
        })
        .cloned()
        .collect();
    report.baselined = report.diagnostics.len() - report.new.len();
    report.stale = baseline
        .iter()
        .filter_map(|((file, rule), pinned)| {
            let actual = counts
                .get(&(file.clone(), rule.clone()))
                .copied()
                .unwrap_or(0);
            (actual < pinned).then(|| StaleEntry {
                file: file.clone(),
                rule: rule.clone(),
                pinned,
                actual,
            })
        })
        .collect();
    report
}

/// The full gate: analyze `root`, load `lint-baseline.toml` from it
/// (missing file = empty baseline), and apply the ratchet. This is what
/// the root package's `tests/lint_gate.rs` and `verify.sh` call.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    check_workspace_threaded(root, 1)
}

/// [`check_workspace`] with a worker-thread count for the parse stage.
/// The report is byte-identical for any `threads` value.
pub fn check_workspace_threaded(root: &Path, threads: usize) -> io::Result<Report> {
    let report = analyze_threaded(root, threads)?;
    let baseline_path = root.join(BASELINE_FILE);
    let baseline = if baseline_path.exists() {
        let text = fs::read_to_string(&baseline_path)?;
        Baseline::parse(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", baseline_path.display()),
            )
        })?
    } else {
        Baseline::empty()
    };
    Ok(apply_baseline(report, &baseline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn d(file: &str, rule: &'static str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            snippet: String::new(),
            hint: String::new(),
        }
    }

    fn report_with(diags: Vec<Diagnostic>) -> Report {
        Report {
            new: diags.clone(),
            diagnostics: diags,
            stale: Vec::new(),
            baselined: 0,
            files_scanned: 1,
        }
    }

    #[test]
    fn ratchet_matching_count_is_clean() {
        let r = report_with(vec![d("a.rs", "unwrap-in-lib", 1), d("a.rs", "unwrap-in-lib", 9)]);
        let mut counts = BTreeMap::new();
        counts.insert(("a.rs".to_string(), "unwrap-in-lib".to_string()), 2);
        let b = Baseline::parse(&Baseline::render(&counts)).expect("baseline");
        let r = apply_baseline(r, &b);
        assert!(r.is_clean(), "{}", r.render_human());
        assert_eq!(r.baselined, 2);
    }

    #[test]
    fn ratchet_excess_is_new_and_deficit_is_stale() {
        let r = report_with(vec![d("a.rs", "unwrap-in-lib", 1)]);
        let mut counts = BTreeMap::new();
        counts.insert(("a.rs".to_string(), "unwrap-in-lib".to_string()), 2);
        counts.insert(("gone.rs".to_string(), "float-exact-eq".to_string()), 1);
        let b = Baseline::parse(&Baseline::render(&counts)).expect("baseline");
        let r = apply_baseline(r, &b);
        assert!(!r.is_clean());
        assert!(r.new.is_empty(), "under-count is stale, not new");
        assert_eq!(r.stale.len(), 2);
        let pinned: Vec<_> = r.stale.iter().map(|s| (s.pinned, s.actual)).collect();
        assert!(pinned.contains(&(2, 1)) && pinned.contains(&(1, 0)));
    }

    #[test]
    fn ratchet_new_violation_fails() {
        let r = report_with(vec![d("a.rs", "no-wall-clock", 3)]);
        let r = apply_baseline(r, &Baseline::empty());
        assert!(!r.is_clean());
        assert_eq!(r.new.len(), 1);
        assert!(r.render_human().contains("no-wall-clock"));
    }

    #[test]
    fn json_rendering_escapes() {
        let mut diag = d("a.rs", "unwrap-in-lib", 1);
        diag.snippet = "say \"hi\"\\".to_string();
        let r = apply_baseline(report_with(vec![diag]), &Baseline::empty());
        let json = r.render_json();
        assert!(json.contains("say \\\"hi\\\"\\\\"));
        assert!(json.contains("\"clean\": false"));
    }
}
