//! SARIF 2.1.0 output and the in-tree schema checker.
//!
//! CI annotators (GitHub code scanning and friends) ingest SARIF; this
//! module renders a [`crate::Report`] as a single-run SARIF log —
//! hand-rolled like every serializer in the workspace — and, because we
//! cannot ship the real JSON Schema validator offline, pairs it with a
//! small structural checker: a dependency-free JSON parser plus the
//! SARIF shape rules the annotators actually rely on (version string,
//! tool driver, rule index integrity, result locations with relative
//! URIs and 1-based lines).
//!
//! New diagnostics render as `error` results; stale baseline entries as
//! `warning` results under the synthetic `stale-baseline-entry` rule,
//! so a ratchet that needs tightening still shows up on the PR.

use crate::rules::{Diagnostic, RULES};
use crate::{Report, StaleEntry};
use std::fmt::Write as _;

/// The rule id used for stale baseline entries in SARIF output.
pub const STALE_RULE_ID: &str = "stale-baseline-entry";

/// Renders the report as a SARIF 2.1.0 log (pretty-printed, stable
/// field order, byte-deterministic for a given report).
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"movr-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/movr-sim/movr\",\n");
    out.push_str("          \"rules\": [\n");
    let mut rule_ids: Vec<&str> = RULES.to_vec();
    rule_ids.push(STALE_RULE_ID);
    for (i, id) in rule_ids.iter().enumerate() {
        let _ = write!(out, "            {{\"id\": \"{}\"}}", escape(id));
        out.push_str(if i + 1 < rule_ids.len() { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    let mut first = true;
    for d in &report.new {
        push_sep(&mut out, &mut first);
        render_diag(&mut out, d);
    }
    for s in &report.stale {
        push_sep(&mut out, &mut first);
        render_stale(&mut out, s);
    }
    if first {
        out.push_str("]\n");
    } else {
        out.push_str("\n      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        out.push('\n');
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn render_diag(out: &mut String, d: &Diagnostic) {
    let _ = write!(
        out,
        "        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \"region\": {{\"startLine\": {}}}\n              }}\n            }}\n          ]\n        }}",
        escape(d.rule),
        escape(&format!("{} — {}", d.snippet, d.hint)),
        escape(&d.file),
        d.line
    );
}

fn render_stale(out: &mut String, s: &StaleEntry) {
    let _ = write!(
        out,
        "        {{\n          \"ruleId\": \"{STALE_RULE_ID}\",\n          \"level\": \"warning\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \"region\": {{\"startLine\": 1}}\n              }}\n            }}\n          ]\n        }}",
        escape(&format!(
            "baseline pins {} `{}` finding(s) but only {} remain; shrink the baseline",
            s.pinned, s.rule, s.actual
        )),
        escape(&s.file)
    );
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

// --- In-tree structural validation -----------------------------------

/// A parsed JSON value (just enough for validation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 is plenty for line numbers).
    Num(f64),
    /// String with escapes decoded.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut i = 0;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing content at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut members = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, i);
                let Json::Str(key) = parse_value(b, i)? else {
                    return Err(format!("object key at byte {i} is not a string", i = *i));
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected `:` at byte {}", *i));
                }
                *i += 1;
                let val = parse_value(b, i)?;
                members.push((key, val));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *i)),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *i)),
                }
            }
        }
        Some(b'"') => {
            *i += 1;
            let mut s = String::new();
            while *i < b.len() {
                match b[*i] {
                    b'"' => {
                        *i += 1;
                        return Ok(Json::Str(s));
                    }
                    b'\\' => {
                        *i += 1;
                        match b.get(*i) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*i + 1..*i + 5)
                                    .ok_or_else(|| format!("truncated \\u escape at byte {}", *i))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| format!("bad \\u escape at byte {}", *i))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape at byte {}", *i))?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *i += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", *i)),
                        }
                        *i += 1;
                    }
                    _ => {
                        // Copy a full UTF-8 sequence.
                        let start = *i;
                        *i += 1;
                        while *i < b.len() && b[*i] & 0xC0 == 0x80 {
                            *i += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&b[start..*i])
                                .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                        );
                    }
                }
            }
            Err("unterminated string".to_string())
        }
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *i;
            while *i < b.len()
                && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *i += 1;
            }
            let text = std::str::from_utf8(&b[start..*i])
                .map_err(|_| format!("bad number at byte {start}"))?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

/// Structurally validates a SARIF 2.1.0 document: the invariants CI
/// annotators depend on. Returns every violation found (empty = valid).
pub fn validate(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse_json(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    let mut errs = Vec::new();
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        errs.push("`version` must be the string \"2.1.0\"".to_string());
    }
    if let Some(schema) = doc.get("$schema").and_then(Json::as_str) {
        if !schema.contains("sarif-2.1.0") {
            errs.push("`$schema` does not reference sarif-2.1.0".to_string());
        }
    } else {
        errs.push("`$schema` is missing or not a string".to_string());
    }
    let Some(runs) = doc.get("runs").and_then(Json::as_arr) else {
        errs.push("`runs` must be an array".to_string());
        return Err(errs);
    };
    if runs.is_empty() {
        errs.push("`runs` must not be empty".to_string());
    }
    for (ri, run) in runs.iter().enumerate() {
        let driver = run.get("tool").and_then(|t| t.get("driver"));
        let Some(driver) = driver else {
            errs.push(format!("runs[{ri}] has no tool.driver"));
            continue;
        };
        if driver.get("name").and_then(Json::as_str).is_none_or(str::is_empty) {
            errs.push(format!("runs[{ri}] tool.driver.name missing or empty"));
        }
        let mut rule_ids: Vec<&str> = Vec::new();
        if let Some(rules) = driver.get("rules").and_then(Json::as_arr) {
            for (qi, rule) in rules.iter().enumerate() {
                match rule.get("id").and_then(Json::as_str) {
                    Some(id) if !id.is_empty() => {
                        if rule_ids.contains(&id) {
                            errs.push(format!("runs[{ri}] duplicate rule id `{id}`"));
                        }
                        rule_ids.push(id);
                    }
                    _ => errs.push(format!("runs[{ri}] rules[{qi}] has no string id")),
                }
            }
        }
        let Some(results) = run.get("results").and_then(Json::as_arr) else {
            errs.push(format!("runs[{ri}].results must be an array"));
            continue;
        };
        for (xi, result) in results.iter().enumerate() {
            let at = format!("runs[{ri}].results[{xi}]");
            match result.get("ruleId").and_then(Json::as_str) {
                Some(id) => {
                    if !rule_ids.is_empty() && !rule_ids.contains(&id) {
                        errs.push(format!("{at}: ruleId `{id}` not in driver.rules"));
                    }
                }
                None => errs.push(format!("{at}: ruleId missing")),
            }
            if let Some(level) = result.get("level").and_then(Json::as_str) {
                if !matches!(level, "none" | "note" | "warning" | "error") {
                    errs.push(format!("{at}: invalid level `{level}`"));
                }
            }
            if result
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str)
                .is_none_or(str::is_empty)
            {
                errs.push(format!("{at}: message.text missing or empty"));
            }
            let Some(locations) = result.get("locations").and_then(Json::as_arr) else {
                errs.push(format!("{at}: locations missing"));
                continue;
            };
            for (li, loc) in locations.iter().enumerate() {
                let at = format!("{at}.locations[{li}]");
                let phys = loc.get("physicalLocation");
                let uri = phys
                    .and_then(|p| p.get("artifactLocation"))
                    .and_then(|a| a.get("uri"))
                    .and_then(Json::as_str);
                match uri {
                    Some(u) if u.starts_with('/') => {
                        errs.push(format!("{at}: uri must be workspace-relative, got `{u}`"));
                    }
                    Some(_) => {}
                    None => errs.push(format!("{at}: physicalLocation.artifactLocation.uri missing")),
                }
                match phys
                    .and_then(|p| p.get("region"))
                    .and_then(|r| r.get("startLine"))
                {
                    Some(Json::Num(n)) if *n >= 1.0 && *n == n.trunc() => {}
                    Some(_) => errs.push(format!("{at}: region.startLine must be an integer ≥ 1")),
                    None => errs.push(format!("{at}: region.startLine missing")),
                }
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(diags: Vec<Diagnostic>) -> Report {
        Report {
            new: diags.clone(),
            diagnostics: diags,
            stale: vec![StaleEntry {
                file: "crates/demo/src/lib.rs".to_string(),
                rule: "unwrap-in-lib".to_string(),
                pinned: 2,
                actual: 1,
            }],
            baselined: 0,
            files_scanned: 1,
        }
    }

    fn demo_diag() -> Diagnostic {
        Diagnostic {
            rule: "no-wall-clock",
            file: "crates/demo/src/lib.rs".to_string(),
            line: 7,
            snippet: "let t = Instant::now(); // \"bad\"".to_string(),
            hint: "use SimTime".to_string(),
        }
    }

    #[test]
    fn rendered_sarif_validates() {
        let sarif = render(&report_with(vec![demo_diag()]));
        validate(&sarif).expect("rendered SARIF is structurally valid");
        assert!(sarif.contains("\"ruleId\": \"no-wall-clock\""));
        assert!(sarif.contains(STALE_RULE_ID));
        assert!(sarif.contains("\"startLine\": 7"));
    }

    #[test]
    fn empty_report_validates() {
        let sarif = render(&Report::default());
        validate(&sarif).expect("empty SARIF log is valid");
        assert!(sarif.contains("\"results\": []"));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"version\": \"2.1.0\"}").is_err(), "runs missing");
        let wrong_version = render(&Report::default()).replace("2.1.0", "2.0.0");
        assert!(validate(&wrong_version).is_err());
        let absolute_uri =
            render(&report_with(vec![demo_diag()])).replace("\"crates/", "\"/crates/");
        let errs = validate(&absolute_uri).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("workspace-relative")), "{errs:?}");
        let unknown_rule =
            render(&report_with(vec![demo_diag()])).replace("\"ruleId\": \"no-wall-clock\"", "\"ruleId\": \"ghost\"");
        assert!(validate(&unknown_rule).is_err());
    }

    #[test]
    fn json_parser_roundtrips_escapes() {
        let v = parse_json("{\"a\": [1, -2.5e1, \"x\\n\\\"y\\u0041\"], \"b\": {\"c\": true, \"d\": null}}")
            .expect("parses");
        let arr = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-25.0));
        assert_eq!(arr[2], Json::Str("x\n\"yA".to_string()));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("{} trailing").is_err());
    }
}
