//! Unit-flow analysis: dB vs. linear power vs. angles vs. sim-time.
//!
//! The §4.2 saturation condition (`G_dB − L_dB < 0`) is meaningless if
//! a linear gain leaks into a dB expression, and the type system can't
//! see it — everything is `f64`. This analysis recovers unit classes
//! from the workspace's *naming conventions* (`_db`, `_dbm`, `_linear`,
//! `_deg`, `_rad` suffixes; `SimTime`/`AngleDeg` types) and flags three
//! kinds of cross-class flow in library code:
//!
//! * **`unit-mix-assign`** — `let x_db = y_linear`, `x_db = y_linear`,
//!   compound assignment, and struct-literal field bindings
//!   (`Params { gain_db: leak_linear }`).
//! * **`unit-mix-arith`** — `+`/`-`/`*` with classified operands of
//!   incompatible classes (`snr_db + leak_linear`). dB and dBm combine
//!   freely under `+`/`-` (power plus gain, power difference).
//! * **`unit-mix-call`** — an argument whose class contradicts the
//!   callee parameter's class (`apply_gain(leak_linear)` where the
//!   signature says `gain_db: f64`), resolved through a workspace-wide
//!   signature table built by the item parser.
//!
//! `crates/math/src/db.rs` is exempt: it is the one audited site where
//! dB and linear values legitimately meet.
//!
//! Classification is deliberately conservative: a finding needs *both*
//! sides classified, so untagged locals (`margin`, `acc`) never fire.

use crate::lexer::TokenKind;
use crate::rules::Diagnostic;
use crate::source::{FileKind, SourceFile};
use std::collections::HashMap;

/// The audited conversion site where classes may mix freely.
const EXEMPT_FILE: &str = "crates/math/src/db.rs";

/// A recovered unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitClass {
    /// Relative power ratio in decibels (`_db`).
    Db,
    /// Absolute power referenced to 1 mW (`_dbm`).
    Dbm,
    /// Linear power or amplitude ratio (`_linear`, `_lin`).
    Linear,
    /// Angle in radians (`_rad`, `_radians`, `to_radians`).
    Radians,
    /// Angle in degrees (`_deg`, `_degrees`, `to_degrees`, `AngleDeg`).
    Degrees,
    /// Simulation time (`SimTime`-typed values).
    SimTime,
}

impl UnitClass {
    fn name(self) -> &'static str {
        match self {
            UnitClass::Db => "dB",
            UnitClass::Dbm => "dBm",
            UnitClass::Linear => "linear",
            UnitClass::Radians => "radians",
            UnitClass::Degrees => "degrees",
            UnitClass::SimTime => "SimTime",
        }
    }
}

/// Classifies an identifier by naming convention. Exact unit words
/// (`db`) and suffixed names (`min_snr_db`) both classify; conversion
/// helpers land on their *output* class (`linear_to_db` → dB).
pub fn classify_name(name: &str) -> Option<UnitClass> {
    let suffix = |s: &str| name == s || name.ends_with(&format!("_{s}"));
    if suffix("dbm") {
        Some(UnitClass::Dbm)
    } else if suffix("db") {
        Some(UnitClass::Db)
    } else if suffix("linear") || suffix("lin") {
        Some(UnitClass::Linear)
    } else if suffix("radians") || suffix("rad") {
        Some(UnitClass::Radians)
    } else if suffix("degrees") || suffix("deg") {
        Some(UnitClass::Degrees)
    } else {
        None
    }
}

/// Classifies a type by its final path segment (`SimTime`, `AngleDeg`).
pub fn classify_type(last_ident: &str) -> Option<UnitClass> {
    match last_ident {
        "SimTime" => Some(UnitClass::SimTime),
        "AngleDeg" => Some(UnitClass::Degrees),
        _ => None,
    }
}

/// The class of a parameter: the name convention wins, the type
/// convention backs it up.
fn classify_param(p: &crate::parser::Param) -> Option<UnitClass> {
    classify_name(&p.name).or_else(|| p.ty_last_ident().and_then(classify_type))
}

/// Whether two classes may meet under an operator (or assignment,
/// encoded as `op == '='`). dB and dBm combine under `+`/`-` — power
/// plus gain is the whole point of a link budget.
fn compatible(a: UnitClass, b: UnitClass, op: char) -> bool {
    if a == b {
        return true;
    }
    let db_family = |c| matches!(c, UnitClass::Db | UnitClass::Dbm);
    (op == '+' || op == '-') && db_family(a) && db_family(b)
}

/// A workspace-wide callable signature: parameter classes in order.
struct SigEntry {
    has_self: bool,
    param_classes: Vec<Option<UnitClass>>,
    /// Ambiguous names (defined twice with different class signatures)
    /// are dropped from checking.
    ambiguous: bool,
}

/// Builds the global `fn name → parameter classes` table from every
/// library file. Names whose definitions disagree are marked ambiguous.
fn build_sig_table(files: &[SourceFile]) -> HashMap<String, SigEntry> {
    let mut table: HashMap<String, SigEntry> = HashMap::new();
    for f in files {
        if f.kind != FileKind::Lib {
            continue;
        }
        for sig in &f.parsed.fns {
            let classes: Vec<Option<UnitClass>> = sig.params.iter().map(classify_param).collect();
            if classes.iter().all(Option::is_none) {
                // Nothing to check against; but still poison duplicates
                // so a classified same-name sibling isn't misapplied.
                if let Some(e) = table.get_mut(&sig.name) {
                    if e.param_classes != classes || e.has_self != sig.has_self {
                        e.ambiguous = true;
                    }
                }
                table.entry(sig.name.clone()).or_insert(SigEntry {
                    has_self: sig.has_self,
                    param_classes: classes,
                    ambiguous: false,
                });
                continue;
            }
            match table.get_mut(&sig.name) {
                Some(e) => {
                    if e.param_classes != classes || e.has_self != sig.has_self {
                        e.ambiguous = true;
                    }
                }
                None => {
                    table.insert(
                        sig.name.clone(),
                        SigEntry { has_self: sig.has_self, param_classes: classes, ambiguous: false },
                    );
                }
            }
        }
    }
    table
}

/// Runs the whole unit-flow analysis over the workspace.
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let sigs = build_sig_table(files);
    for f in files {
        if f.kind != FileKind::Lib || f.rel == EXEMPT_FILE {
            continue;
        }
        check_assignments(f, out);
        check_arithmetic(f, out);
        check_calls(f, &sigs, out);
    }
}

fn diag(
    f: &SourceFile,
    rule: &'static str,
    line: usize,
    hint: String,
) -> Diagnostic {
    Diagnostic { rule, file: f.rel.clone(), line, snippet: f.snippet(line), hint }
}

/// The classified first term of an expression starting at `i`:
/// `(class, end_index_exclusive)`. Walks one path / call / field chain,
/// letting classified method calls re-classify the chain
/// (`x_db.to_radians()` → radians) and unclassified ones (`.max(…)`)
/// keep the receiver's class. Field access re-classifies by field name
/// (unknown fields drop to unclassified — conservative).
fn term_class(f: &SourceFile, start: usize) -> (Option<UnitClass>, usize) {
    let toks = &f.tokens;
    let mut i = start;
    // Leading sign / reference / deref sugar.
    while toks
        .get(i)
        .is_some_and(|t| t.is_punct('-') || t.is_punct('&') || t.is_punct('*') || t.is_ident("mut"))
    {
        i += 1;
    }
    let mut cls;
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Number(_)) => {
            return (None, i + 1);
        }
        Some(TokenKind::Ident(_)) => {}
        Some(TokenKind::Punct('(')) => {
            // Parenthesised subexpression: opaque.
            return (None, crate::source::match_delim_pub(toks, i, '(', ')') + 1);
        }
        _ => return (None, i + 1),
    }
    // Path: a::b::c — the final segment names the value or callee.
    let mut last = String::new();
    while let Some(TokenKind::Ident(w)) = toks.get(i).map(|t| &t.kind) {
        last = w.clone();
        i += 1;
        if toks.get(i).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokenKind::Ident(_)))
        {
            i += 2;
        } else {
            break;
        }
    }
    if toks.get(i).is_some_and(|t| t.is_punct('(')) {
        // Call: class of the callee name.
        cls = classify_name(&last);
        i = crate::source::match_delim_pub(toks, i, '(', ')') + 1;
    } else {
        cls = classify_name(&last).or_else(|| classify_type(&last));
    }
    // Trailing `.field` / `.method(...)` / `.0` chain.
    while toks.get(i).is_some_and(|t| t.is_punct('.')) {
        match toks.get(i + 1).map(|t| &t.kind) {
            Some(TokenKind::Ident(w)) => {
                let w = w.clone();
                if toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                    // Method: classified methods convert, the rest
                    // (max, clamp, abs, …) preserve the class — except
                    // combinators taking a closure (`.map(|g| …)`),
                    // where the closure decides the value's class and
                    // we can't see inside it.
                    let close = crate::source::match_delim_pub(toks, i + 2, '(', ')');
                    if let Some(c) = classify_name(&w) {
                        cls = Some(c);
                    } else if toks[i + 3..close.min(toks.len())]
                        .iter()
                        .any(|t| t.is_punct('|'))
                    {
                        cls = None;
                    }
                    i = close + 1;
                } else {
                    // Field access: class follows the field name.
                    cls = classify_name(&w);
                    i += 2;
                }
            }
            Some(TokenKind::Number(_)) => i += 2, // tuple index keeps class
            _ => break,
        }
    }
    (cls, i)
}

/// The class of the value *ending* at token `end` (the left operand of
/// an operator): a bare ident, a field (`a.b_db`), or a call
/// (`linear_to_db(x)`).
fn left_class(f: &SourceFile, end: usize) -> Option<UnitClass> {
    let toks = &f.tokens;
    match toks.get(end).map(|t| &t.kind) {
        Some(TokenKind::Ident(w)) => classify_name(w),
        Some(TokenKind::Punct(')')) => {
            // Walk back to the matching `(`; the ident before it is the
            // callee (grouping parens have none → unclassified).
            let mut depth = 0i32;
            let mut k = end;
            loop {
                match toks[k].kind {
                    TokenKind::Punct(')') => depth += 1,
                    TokenKind::Punct('(') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            match k.checked_sub(1).map(|j| &toks[j].kind) {
                Some(TokenKind::Ident(w)) => classify_name(w),
                _ => None,
            }
        }
        _ => None,
    }
}

/// `let` bindings, plain assignments, compound assignments, and
/// struct-literal / pattern field bindings.
fn check_assignments(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if f.is_test_code(i) {
            continue;
        }
        // -- `let [mut] name [: Type] = term`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(TokenKind::Ident(name)) = toks.get(j).map(|t| &t.kind) else {
                continue;
            };
            let mut lhs = classify_name(name);
            j += 1;
            if toks.get(j).is_some_and(|t| t.is_punct(':'))
                && !toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            {
                // Annotated: the type classifies too; walk to `=`.
                let mut k = j + 1;
                let mut ann_last = None;
                while k < toks.len() && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
                    if let TokenKind::Ident(w) = &toks[k].kind {
                        ann_last = Some(w.clone());
                    }
                    k += 1;
                }
                if lhs.is_none() {
                    lhs = ann_last.as_deref().and_then(classify_type);
                }
                j = k;
            }
            if !toks.get(j).is_some_and(|t| t.is_punct('='))
                || toks.get(j + 1).is_some_and(|t| t.is_punct('='))
            {
                continue;
            }
            let (rhs, _) = term_class(f, j + 1);
            if let (Some(a), Some(b)) = (lhs, rhs) {
                if !compatible(a, b, '=') {
                    out.push(diag(
                        f,
                        "unit-mix-assign",
                        toks[i].line,
                        format!(
                            "binding classified as {} is initialised from a {} value; convert through movr_math::db / movr_math::AngleDeg first",
                            a.name(),
                            b.name()
                        ),
                    ));
                }
            }
            continue;
        }
        // -- plain `name = term` and compound `name op= term`
        if toks[i].is_punct('=')
            && !toks.get(i + 1).is_some_and(|t| t.is_punct('='))
            && i >= 1
        {
            let prev = &toks[i - 1];
            // Exclude comparisons (`==`, `<=`, `>=`, `!=`) and arrows.
            if matches!(prev.kind, TokenKind::Punct('=') | TokenKind::Punct('<') | TokenKind::Punct('>') | TokenKind::Punct('!')) {
                continue;
            }
            let (lhs_end, op) = if matches!(
                prev.kind,
                TokenKind::Punct('+') | TokenKind::Punct('-') | TokenKind::Punct('*')
            ) {
                let TokenKind::Punct(c) = prev.kind else { unreachable!() };
                (i.checked_sub(2), c)
            } else {
                (i.checked_sub(1), '=')
            };
            let Some(lhs_end) = lhs_end else { continue };
            // `let` bindings were handled above — skip a statement that
            // opens with `let` within a short lookback window.
            let mut k = lhs_end;
            let mut is_let = false;
            for _ in 0..8 {
                if toks[k].is_punct(';') || toks[k].is_punct('{') || toks[k].is_punct('}') {
                    break;
                }
                if toks[k].is_ident("let") {
                    is_let = true;
                    break;
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            if is_let {
                continue;
            }
            let lhs = left_class(f, lhs_end);
            let (rhs, _) = term_class(f, i + 1);
            if let (Some(a), Some(b)) = (lhs, rhs) {
                if !compatible(a, b, op) {
                    out.push(diag(
                        f,
                        "unit-mix-assign",
                        toks[i].line,
                        format!(
                            "assignment stores a {} value into a {} slot; convert through the audited helpers first",
                            b.name(),
                            a.name()
                        ),
                    ));
                }
            }
            continue;
        }
        // -- struct-literal / pattern field binding `name_db: term`
        if toks[i].is_punct(':')
            && i >= 1
            && !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks[i - 1].is_punct(':')
        {
            let Some(TokenKind::Ident(field)) = toks.get(i - 1).map(|t| &t.kind) else {
                continue;
            };
            let Some(a) = classify_name(field) else { continue };
            let (rhs, _) = term_class(f, i + 1);
            let Some(b) = rhs else { continue };
            if !compatible(a, b, '=') {
                out.push(diag(
                    f,
                    "unit-mix-assign",
                    toks[i].line,
                    format!(
                        "field `{field}` ({}) is bound to a {} value",
                        a.name(),
                        b.name()
                    ),
                ));
            }
        }
    }
}

/// Binary `+`/`-`/`*` with classified operands of incompatible classes.
fn check_arithmetic(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let TokenKind::Punct(op @ ('+' | '-' | '*')) = toks[i].kind else {
            continue;
        };
        if f.is_test_code(i) {
            continue;
        }
        // Compound assignment handled by check_assignments; arrow `->`
        // and unary uses are not binary operators.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('=') || t.is_punct('>')) {
            continue;
        }
        let Some(prev) = i.checked_sub(1) else { continue };
        let binary = matches!(
            toks[prev].kind,
            TokenKind::Ident(_) | TokenKind::Number(_) | TokenKind::Punct(')') | TokenKind::Punct(']')
        );
        if !binary {
            continue;
        }
        let lhs = left_class(f, prev);
        let (rhs, _) = term_class(f, i + 1);
        if let (Some(a), Some(b)) = (lhs, rhs) {
            if !compatible(a, b, op) {
                out.push(diag(
                    f,
                    "unit-mix-arith",
                    toks[i].line,
                    format!(
                        "`{op}` combines a {} operand with a {} operand; only same-class (or dB±dBm) arithmetic is sound",
                        a.name(),
                        b.name()
                    ),
                ));
            }
        }
    }
}

/// Call-argument bindings checked against the workspace signature table.
fn check_calls(f: &SourceFile, sigs: &HashMap<String, SigEntry>, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let TokenKind::Ident(name) = &toks[i].kind else { continue };
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) || f.is_test_code(i) {
            continue;
        }
        // Skip definitions and macro invocations.
        if i >= 1 && (toks[i - 1].is_ident("fn") || toks.get(i + 1).is_some_and(|t| t.is_punct('!'))) {
            continue;
        }
        let Some(entry) = sigs.get(name.as_str()) else { continue };
        if entry.ambiguous || entry.param_classes.iter().all(Option::is_none) {
            continue;
        }
        let is_method_call = i >= 1 && toks[i - 1].is_punct('.');
        // Methods must be called as methods, free fns as free fns —
        // anything else we cannot align positionally.
        if entry.has_self != is_method_call {
            continue;
        }
        let open = i + 1;
        let close = crate::source::match_delim_pub(toks, open, '(', ')');
        let mut arg_start = open + 1;
        let mut arg_idx = 0usize;
        while arg_start < close && arg_idx < entry.param_classes.len() {
            let (cls, _) = term_class(f, arg_start);
            // Only flag when the whole argument is that single term —
            // a following `,` or the closing paren. Composite args
            // (`a_db - b_db`) are the arithmetic checker's business.
            let (_, end) = term_class(f, arg_start);
            let simple = end >= close || toks.get(end).is_some_and(|t| t.is_punct(','));
            if simple {
                if let (Some(want), Some(got)) = (entry.param_classes[arg_idx], cls) {
                    if !compatible(want, got, '=') {
                        out.push(diag(
                            f,
                            "unit-mix-call",
                            toks[i].line,
                            format!(
                                "argument {} of `{name}` wants {} but receives {}",
                                arg_idx + 1,
                                want.name(),
                                got.name()
                            ),
                        ));
                    }
                }
            }
            // Advance to the next top-level comma.
            let mut depth = 0i32;
            let mut k = arg_start;
            while k < close {
                match toks[k].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                        depth += 1;
                    }
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                        depth -= 1;
                    }
                    TokenKind::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            arg_start = k + 1;
            arg_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(src: &str) -> Vec<(&'static str, usize)> {
        let f = SourceFile::parse("crates/demo/src/lib.rs", src);
        let mut out = Vec::new();
        check(std::slice::from_ref(&f), &mut out);
        out.into_iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn classify_conventions() {
        assert_eq!(classify_name("min_snr_db"), Some(UnitClass::Db));
        assert_eq!(classify_name("tx_power_dbm"), Some(UnitClass::Dbm));
        assert_eq!(classify_name("db_to_linear"), Some(UnitClass::Linear));
        assert_eq!(classify_name("linear_to_db"), Some(UnitClass::Db));
        assert_eq!(classify_name("to_radians"), Some(UnitClass::Radians));
        assert_eq!(classify_name("boresight_deg"), Some(UnitClass::Degrees));
        assert_eq!(classify_name("margin"), None);
        assert_eq!(classify_name("update"), None, "`update` must not read as _deg/_db");
        assert_eq!(classify_type("SimTime"), Some(UnitClass::SimTime));
    }

    #[test]
    fn let_binding_mix_flags() {
        assert_eq!(
            hits("fn f(leak_linear: f64) { let total_db = leak_linear; }"),
            [("unit-mix-assign", 1)]
        );
        assert!(hits("fn f(gain_db: f64) { let total_db = gain_db; }").is_empty());
        assert!(hits("fn f(leak_linear: f64) { let total_db = linear_to_db(leak_linear); }").is_empty());
    }

    #[test]
    fn db_dbm_sum_is_fine_but_assignment_is_not() {
        assert!(hits("fn f(p_dbm: f64, g_db: f64) { let rx_dbm = p_dbm + g_db; }").is_empty());
        assert_eq!(
            hits("fn f(p_dbm: f64) { let g_db = p_dbm; }"),
            [("unit-mix-assign", 1)]
        );
    }

    #[test]
    fn arithmetic_mix_flags() {
        assert_eq!(
            hits("fn f(snr_db: f64, leak_linear: f64) -> f64 { snr_db + leak_linear }"),
            [("unit-mix-arith", 1)]
        );
        assert_eq!(
            hits("fn f(yaw_deg: f64, tilt_rad: f64) -> f64 { yaw_deg - tilt_rad }"),
            [("unit-mix-arith", 1)]
        );
        assert!(hits("fn f(a_db: f64, b_db: f64) -> f64 { a_db - b_db }").is_empty());
        assert!(hits("fn f(a_db: f64, n: f64) -> f64 { a_db * n }").is_empty());
    }

    #[test]
    fn method_chain_preserves_or_converts_class() {
        assert!(hits("fn f(a_deg: f64, b_deg: f64) -> f64 { a_deg.max(0.0) - b_deg }").is_empty());
        assert_eq!(
            hits("fn f(a_deg: f64, b_deg: f64) -> f64 { a_deg.to_radians() - b_deg }"),
            [("unit-mix-arith", 1)]
        );
    }

    #[test]
    fn closure_combinators_erase_the_class() {
        // `.map(|g| …)` computes whatever the closure computes — the
        // receiver's class must not leak through it.
        assert!(hits(
            "fn f(gain_db: Option<f64>, p_dbm: f64) { let out_dbm = gain_db.map(|g| p_dbm + g); }"
        )
        .is_empty());
    }

    #[test]
    fn call_binding_mix_flags() {
        let src = "fn apply(gain_db: f64) -> f64 { gain_db }\n\
                   fn f(leak_linear: f64) -> f64 { apply(leak_linear) }";
        assert_eq!(hits(src), [("unit-mix-call", 2)]);
        let ok = "fn apply(gain_db: f64) -> f64 { gain_db }\n\
                  fn f(g_db: f64) -> f64 { apply(g_db) }";
        assert!(hits(ok).is_empty());
    }

    #[test]
    fn struct_literal_field_mix_flags() {
        assert_eq!(
            hits("fn f(leak_linear: f64) -> P { P { gain_db: leak_linear } }"),
            [("unit-mix-assign", 1)]
        );
        assert!(hits("fn f(g: f64) -> P { P { gain_db: g } }").is_empty());
    }

    #[test]
    fn unclassified_operands_never_fire() {
        assert!(hits("fn f(a: f64, b: f64) -> f64 { let c = a + b; c * 2.0 }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f(a_db: f64, b_linear: f64) -> f64 { a_db + b_linear } }";
        assert!(hits(src).is_empty());
    }
}
