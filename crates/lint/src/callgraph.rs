//! Workspace-wide call graph over the item parser's `fn` signatures.
//!
//! Nodes are the non-test `fn`s of library files; edges are resolved
//! call sites. There is no type checker underneath, so resolution is
//! heuristic — the approximations are documented here and in DESIGN.md
//! § "Interprocedural effects (v4)", in the same spirit as the v3
//! capture model:
//!
//! * **Plain calls** (`helper(x)`) resolve to a same-file `fn` first,
//!   then any same-crate `fn`, then — when the name was imported — the
//!   `fn`s of the crate the `use` map roots it at. Unimported names
//!   with no workspace definition (std, closures) produce no edge.
//! * **Method calls** (`.push(…)`) resolve to *every* workspace `fn`
//!   with that name and a `self` receiver — a name-collision
//!   over-approximation (two unrelated `fn len(&self)` items merge),
//!   accepted because effect union is monotone: merging can only add
//!   effects, never hide one.
//! * **Path calls** (`Type::name(…)`) filter by the impl-block owner
//!   the parser records when the qualifier matches one; `crate::`/
//!   `self::`/`super::` restrict to the calling crate; `movr_*::`
//!   qualifiers restrict to that crate; a well-known std qualifier
//!   (`Vec`, `u64`, …) produces no edge; anything else falls back to
//!   same-crate-then-anywhere. A `self.name(…)` call inside an impl
//!   prefers same-owner candidates before the name-wide fan-out.
//! * **Recorder trait dispatch** (`.record(…)`, `.start_span(…)`,
//!   `.end_span(…)`) is deliberately *not* resolved: those sites become
//!   the `sink-write` effect in `effects.rs` instead of edges, so a
//!   file-backed recorder's I/O does not poison every `*_recorded`
//!   caller (the sink is the caller's *choice*, not its effect).
//! * **Macros** never produce edges (`name!(…)` is not a call); the
//!   panic/print vocabulary is handled as direct effects.
//!
//! Token-to-node attribution handles nested `fn`s: every token belongs
//! to the *innermost* enclosing body, so an outer `fn` is not charged
//! for calls its nested helper makes (it gains them only if it calls
//! the helper).

use crate::lexer::TokenKind;
use crate::rng_flow::crate_of_extern_root;
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// Method names modeled as the `sink-write` effect instead of edges.
pub const SINK_METHODS: &[&str] = &["record", "start_span", "end_span"];

/// Std qualifiers whose associated functions never enter workspace
/// code — their path calls (`Vec::new()`, `u64::from_le_bytes(…)`)
/// produce no edge instead of falling back to the name-wide
/// over-approximation.
const STD_QUALIFIERS: &[&str] = &[
    "Vec", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "BinaryHeap", "String",
    "Box", "Rc", "Arc", "Cell", "RefCell", "Mutex", "RwLock", "Option", "Result", "Cow",
    "PathBuf", "OsString", "Duration", "Instant", "Ordering", "Range", "Wrapping", "Default",
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64", "bool", "char", "str",
];

/// Keywords that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let",
    "fn", "as", "in", "move", "mut", "ref", "unsafe", "use", "pub", "impl", "struct",
    "enum", "trait", "where", "dyn", "static", "const", "type", "mod", "extern", "async",
    "await", "self", "Self", "super", "crate",
];

/// One call-graph node: a non-test `fn` in a library file.
#[derive(Debug)]
pub struct Node {
    /// Index into the analyzed file slice.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Impl-block self type, when the fn is a method.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Inclusive body token range.
    pub body: (usize, usize),
    /// True when the first parameter is a `self` receiver.
    pub has_self: bool,
}

/// The resolved call graph.
pub struct CallGraph {
    /// All nodes, in (file, fn) declaration order — ids are stable for
    /// a given file list, which keeps every downstream report
    /// deterministic.
    pub nodes: Vec<Node>,
    /// `callees[n]` = sorted, deduplicated node ids `n` calls.
    pub callees: Vec<Vec<usize>>,
    /// Per file: token index → innermost enclosing node id.
    owner_of: Vec<Vec<Option<usize>>>,
    /// Function name → node ids bearing it.
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over `files`. Only `FileKind::Lib` files
    /// contribute nodes (tests/benches/examples are exempt territory
    /// for every v4 rule), and `#[cfg(test)]` fns are skipped.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            if f.kind != FileKind::Lib {
                continue;
            }
            for sig in &f.parsed.fns {
                let Some(body) = sig.body else { continue };
                if f.in_cfg_test(body.0) {
                    continue;
                }
                nodes.push(Node {
                    file: fi,
                    name: sig.name.clone(),
                    owner: sig.owner.clone(),
                    line: sig.line,
                    body,
                    has_self: sig.has_self,
                });
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.clone()).or_default().push(id);
        }
        // Innermost-wins token attribution: paint widest bodies first,
        // narrower bodies overwrite.
        let mut owner_of: Vec<Vec<Option<usize>>> =
            files.iter().map(|f| vec![None; f.tokens.len()]).collect();
        let mut by_span: Vec<usize> = (0..nodes.len()).collect();
        by_span.sort_by_key(|&id| std::cmp::Reverse(nodes[id].body.1 - nodes[id].body.0));
        for id in by_span {
            let n = &nodes[id];
            let hi = n.body.1.min(owner_of[n.file].len().saturating_sub(1));
            for slot in &mut owner_of[n.file][n.body.0..=hi] {
                *slot = Some(id);
            }
        }
        let mut graph = CallGraph { nodes, callees: Vec::new(), owner_of, by_name };
        graph.callees = vec![Vec::new(); graph.nodes.len()];
        for (fi, f) in files.iter().enumerate() {
            if f.kind != FileKind::Lib {
                continue;
            }
            for j in 0..f.tokens.len() {
                let Some(caller) = graph.owner_of[fi][j] else { continue };
                for callee in graph.resolve_at(files, fi, j) {
                    graph.callees[caller].push(callee);
                }
            }
        }
        for list in &mut graph.callees {
            list.sort_unstable();
            list.dedup();
        }
        graph
    }

    /// `callers[n]` for the fixpoint worklist: the inverse edge lists.
    pub fn callers(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (caller, callees) in self.callees.iter().enumerate() {
            for &callee in callees {
                out[callee].push(caller);
            }
        }
        out
    }

    /// The innermost node containing token `j` of file `fi`, if any.
    pub fn node_at(&self, fi: usize, j: usize) -> Option<usize> {
        self.owner_of.get(fi)?.get(j).copied().flatten()
    }

    /// Resolves the call site at token `j` of file `fi` (an ident
    /// immediately followed by `(`) to candidate node ids. Returns an
    /// empty list for non-call tokens, macros, definitions, keywords,
    /// sink-vocabulary methods, and names with no workspace definition.
    pub fn resolve_at(&self, files: &[SourceFile], fi: usize, j: usize) -> Vec<usize> {
        let f = &files[fi];
        let toks = &f.tokens;
        let TokenKind::Ident(name) = &toks[j].kind else { return Vec::new() };
        if !toks.get(j + 1).is_some_and(|t| t.is_punct('(')) {
            return Vec::new();
        }
        if KEYWORDS.contains(&name.as_str()) {
            return Vec::new();
        }
        if j >= 1 && toks[j - 1].is_ident("fn") {
            return Vec::new(); // definition, not a call
        }
        let candidates = match self.by_name.get(name.as_str()) {
            Some(ids) => ids.as_slice(),
            None => return Vec::new(),
        };
        // Method call: `.name(` — every same-named fn with a receiver,
        // except the Recorder sink vocabulary (effect, not edge). One
        // precise special case: when the receiver is literally `self`
        // inside an impl, the method lives in the caller's own impl, so
        // a same-owner candidate (when one exists) beats the name-wide
        // fan-out.
        if j >= 1 && toks[j - 1].is_punct('.') {
            if SINK_METHODS.contains(&name.as_str()) {
                return Vec::new();
            }
            let with_self: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&id| self.nodes[id].has_self)
                .collect();
            let self_recv = j >= 2 && toks[j - 2].is_ident("self");
            if self_recv {
                if let Some(caller) = self.node_at(fi, j) {
                    if let Some(owner) = self.nodes[caller].owner.clone() {
                        let same_owner: Vec<usize> = with_self
                            .iter()
                            .copied()
                            .filter(|&id| self.nodes[id].owner.as_deref() == Some(owner.as_str()))
                            .collect();
                        if !same_owner.is_empty() {
                            return same_owner;
                        }
                    }
                }
            }
            return with_self;
        }
        // Path call: `Qual::name(` — the qualifier narrows candidates.
        if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
            let qual = match j.checked_sub(3).map(|q| &toks[q].kind) {
                Some(TokenKind::Ident(q)) => Some(q.as_str()),
                _ => None,
            };
            return self.resolve_path(files, fi, qual, candidates);
        }
        // Plain call: same file, then same crate, then the use map.
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&id| self.nodes[id].file == fi)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let same_crate = self.in_crate(files, candidates, &f.crate_name);
        if !same_crate.is_empty() {
            return same_crate;
        }
        match f.parsed.use_root_of(name) {
            Some(root) => self.in_extern_root(files, candidates, &f.crate_name, root),
            None => Vec::new(),
        }
    }

    fn resolve_path(
        &self,
        files: &[SourceFile],
        fi: usize,
        qual: Option<&str>,
        candidates: &[usize],
    ) -> Vec<usize> {
        let f = &files[fi];
        if let Some(q) = qual {
            // Impl owner match is the strongest signal.
            let owned: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&id| self.nodes[id].owner.as_deref() == Some(q))
                .collect();
            if !owned.is_empty() {
                return owned;
            }
            if matches!(q, "crate" | "self" | "Self" | "super") {
                return self.in_crate(files, candidates, &f.crate_name);
            }
            if q == "movr" || q.starts_with("movr_") {
                return self.in_extern_root(files, candidates, &f.crate_name, q);
            }
            // An imported type used as qualifier narrows to its crate.
            if let Some(root) = f.parsed.use_root_of(q) {
                let narrowed = self.in_extern_root(files, candidates, &f.crate_name, root);
                if !narrowed.is_empty() {
                    return narrowed;
                }
            }
            // A well-known std container/primitive qualifier never
            // dispatches into workspace code: `Vec::new()` is not any
            // local `fn new`. Without this cut-off every decode path
            // "reaches" every constructor in the workspace.
            if STD_QUALIFIERS.contains(&q) {
                return Vec::new();
            }
        }
        // Unknown qualifier (module path, turbofish): same crate first,
        // then every same-named fn — the monotone over-approximation.
        let same_crate = self.in_crate(files, candidates, &f.crate_name);
        if !same_crate.is_empty() {
            return same_crate;
        }
        candidates.to_vec()
    }

    fn in_crate(&self, files: &[SourceFile], candidates: &[usize], krate: &str) -> Vec<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&id| files[self.nodes[id].file].crate_name == krate)
            .collect()
    }

    /// Candidates in the crate a `use`/path root maps to. `crate`/
    /// `self`/`super` roots stay in the calling crate.
    fn in_extern_root(
        &self,
        files: &[SourceFile],
        candidates: &[usize],
        own_crate: &str,
        root: &str,
    ) -> Vec<usize> {
        if matches!(root, "crate" | "self" | "super") {
            return self.in_crate(files, candidates, own_crate);
        }
        match crate_of_extern_root(root) {
            Some(target) => self.in_crate(files, candidates, &target),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_for(files: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let parsed: Vec<SourceFile> =
            files.iter().map(|(rel, src)| SourceFile::parse(rel, src)).collect();
        let graph = CallGraph::build(&parsed);
        (parsed, graph)
    }

    fn edges(graph: &CallGraph) -> Vec<(String, Vec<String>)> {
        graph
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| {
                (
                    n.name.clone(),
                    graph.callees[id]
                        .iter()
                        .map(|&c| graph.nodes[c].name.clone())
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn self_receiver_methods_resolve_within_the_callers_impl() {
        let (_, g) = graph_for(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Reader;\nimpl Reader {\n    pub fn word(&mut self) -> u64 { self.chunk() }\n    fn chunk(&mut self) -> u64 { 0 }\n}",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct Parser;\nimpl Parser {\n    pub fn chunk(&mut self) -> u64 { 1 }\n}",
            ),
        ]);
        let e = edges(&g);
        let word = e.iter().find(|(n, _)| n == "word").unwrap();
        assert_eq!(word.1, ["chunk"], "exactly one edge");
        let id = g.callees[g.nodes.iter().position(|n| n.name == "word").unwrap()][0];
        assert_eq!(g.nodes[id].owner.as_deref(), Some("Reader"), "same-owner chunk wins");
        assert_eq!(g.nodes[id].file, 0);
    }

    #[test]
    fn non_self_receiver_methods_still_fan_out_by_name() {
        let (_, g) = graph_for(&[
            (
                "crates/a/src/lib.rs",
                "pub fn top(p: movr_b::Parser) { p.chunk(); }",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct Parser;\nimpl Parser {\n    pub fn chunk(&mut self) -> u64 { 1 }\n}\npub struct Other;\nimpl Other {\n    pub fn chunk(&mut self) -> u64 { 2 }\n}",
            ),
        ]);
        let e = edges(&g);
        let top = e.iter().find(|(n, _)| n == "top").unwrap();
        assert_eq!(top.1, ["chunk", "chunk"], "unknown receiver keeps the fan-out");
    }

    #[test]
    fn plain_calls_prefer_same_file() {
        let (_, g) = graph_for(&[
            ("crates/a/src/lib.rs", "pub fn top() { helper() }\nfn helper() {}"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let e = edges(&g);
        assert_eq!(e[0], ("top".to_string(), vec!["helper".to_string()]));
        let top_callees = &g.callees[0];
        assert_eq!(g.nodes[top_callees[0]].file, 0, "same-file helper wins");
    }

    #[test]
    fn use_map_resolves_cross_crate_calls() {
        let (_, g) = graph_for(&[
            (
                "crates/a/src/lib.rs",
                "use movr_b::helper;\npub fn top() { helper() }",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        assert_eq!(edges(&g)[0].1, ["helper"]);
        // Without the import the call is unresolved, not guessed.
        let (_, g2) = graph_for(&[
            ("crates/a/src/lib.rs", "pub fn top() { helper() }"),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        assert!(g2.callees[0].is_empty());
    }

    #[test]
    fn method_calls_need_a_receiver_and_skip_sinks() {
        let (_, g) = graph_for(&[(
            "crates/a/src/lib.rs",
            "pub struct S;\nimpl S { pub fn go(&mut self) {} }\nfn free_go() {}\npub fn top(s: &mut S, rec: &mut R) { s.go(); rec.record(1); }",
        )]);
        let e = edges(&g);
        let top = e.iter().find(|(n, _)| n == "top").expect("top node");
        assert_eq!(top.1, ["go"], "method resolves to has_self fns only; record is a sink");
    }

    #[test]
    fn path_calls_filter_by_impl_owner() {
        let (_, g) = graph_for(&[(
            "crates/a/src/lib.rs",
            "pub struct A;\npub struct B;\nimpl A { pub fn make() -> u32 { 0 } }\nimpl B { pub fn make() -> u32 { 1 } }\npub fn top() -> u32 { A::make() }",
        )]);
        let top_id = g.nodes.iter().position(|n| n.name == "top").expect("top");
        let callees = &g.callees[top_id];
        assert_eq!(callees.len(), 1);
        assert_eq!(g.nodes[callees[0]].owner.as_deref(), Some("A"));
    }

    #[test]
    fn nested_fn_calls_belong_to_the_inner_node() {
        let (_, g) = graph_for(&[(
            "crates/a/src/lib.rs",
            "fn leaf() {}\npub fn outer() {\n  fn inner() { leaf() }\n  inner()\n}",
        )]);
        let e = edges(&g);
        let outer = e.iter().find(|(n, _)| n == "outer").expect("outer");
        assert_eq!(outer.1, ["inner"], "outer is not charged for inner's call to leaf");
        let inner = e.iter().find(|(n, _)| n == "inner").expect("inner");
        assert_eq!(inner.1, ["leaf"]);
    }

    #[test]
    fn cfg_test_fns_and_non_lib_files_are_excluded() {
        let (_, g) = graph_for(&[
            (
                "crates/a/src/lib.rs",
                "pub fn lib_fn() {}\n#[cfg(test)]\nmod tests { fn t() { lib_fn() } }",
            ),
            ("crates/a/tests/it.rs", "fn test_helper() {}"),
        ]);
        let names: Vec<&str> = g.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["lib_fn"]);
    }

    #[test]
    fn macros_and_definitions_are_not_calls() {
        let (_, g) = graph_for(&[(
            "crates/a/src/lib.rs",
            "fn assert_ready() {}\npub fn top(v: &[u64]) { vec![1]; assert_ready(); }",
        )]);
        let e = edges(&g);
        let top = e.iter().find(|(n, _)| n == "top").expect("top");
        assert_eq!(top.1, ["assert_ready"], "vec! is a macro, fn defs are not calls");
    }
}

