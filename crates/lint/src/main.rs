//! The `movr-lint` CLI.
//!
//! ```text
//! movr-lint [--root DIR] [--json] [--write-baseline] [--no-baseline]
//! ```
//!
//! Exit codes: 0 = clean (exactly at the pinned baseline), 1 = new
//! violations or stale baseline entries, 2 = usage or I/O error.

use movr_lint::{analyze, apply_baseline, check_workspace, Baseline, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut write_baseline = false;
    let mut no_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--no-baseline" => no_baseline = true,
            "--help" | "-h" => {
                println!(
                    "movr-lint: determinism & unit-safety analyzer for the MoVR workspace\n\n\
                     USAGE: movr-lint [--root DIR] [--json] [--write-baseline] [--no-baseline]\n\n\
                     --root DIR         workspace root (default: current directory)\n\
                     --json             machine-readable report on stdout\n\
                     --write-baseline   regenerate {BASELINE_FILE} from current findings\n\
                     --no-baseline      report every diagnostic, ignoring the baseline"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !root.join("Cargo.toml").exists() {
        return usage(&format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }

    if write_baseline {
        let report = match analyze(&root) {
            Ok(r) => r,
            Err(e) => return fail(&format!("analysis failed: {e}")),
        };
        let text = Baseline::render(&report.counts());
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, text) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
        println!(
            "movr-lint: pinned {} diagnostic(s) across {} file(s) into {}",
            report.diagnostics.len(),
            report.files_scanned,
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let report = if no_baseline {
        analyze(&root).map(|r| apply_baseline(r, &Baseline::empty()))
    } else {
        check_workspace(&root)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => return fail(&format!("analysis failed: {e}")),
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("movr-lint: {msg} (try --help)");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("movr-lint: {msg}");
    ExitCode::from(2)
}
