//! The `movr-lint` CLI.
//!
//! ```text
//! movr-lint [--root DIR] [--json] [--sarif PATH] [--check-sarif PATH]
//!           [--threads N] [--write-baseline] [--no-baseline]
//!           [--explain RULE]
//! ```
//!
//! Exit codes: 0 = clean (exactly at the pinned baseline), 1 = new
//! violations or stale baseline entries, 2 = usage or I/O error (or a
//! SARIF document failing validation under `--check-sarif`).

use movr_lint::{
    analyze_threaded, apply_baseline, check_workspace_threaded, rule_doc, sarif, Baseline,
    BASELINE_FILE, RULES,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut write_baseline = false;
    let mut no_baseline = false;
    let mut sarif_out: Option<PathBuf> = None;
    let mut check_sarif: Option<PathBuf> = None;
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--sarif" => match args.next() {
                Some(path) => sarif_out = Some(PathBuf::from(path)),
                None => return usage("--sarif needs an output path"),
            },
            "--check-sarif" => match args.next() {
                Some(path) => check_sarif = Some(PathBuf::from(path)),
                None => return usage("--check-sarif needs a file path"),
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => return usage("--threads needs a positive integer"),
            },
            "--write-baseline" => write_baseline = true,
            "--no-baseline" => no_baseline = true,
            "--explain" => match args.next() {
                Some(rule) => {
                    return match rule_doc(&rule) {
                        Some(doc) => {
                            println!("{rule}\n\n{doc}");
                            ExitCode::SUCCESS
                        }
                        None => {
                            eprintln!("movr-lint: unknown rule `{rule}`; known rules:");
                            for id in RULES {
                                eprintln!("  {id}");
                            }
                            ExitCode::from(2)
                        }
                    };
                }
                None => return usage("--explain needs a rule id"),
            },
            "--help" | "-h" => {
                println!(
                    "movr-lint: determinism & unit-safety analyzer for the MoVR workspace\n\n\
                     USAGE: movr-lint [--root DIR] [--json] [--sarif PATH] [--check-sarif PATH]\n\
                            [--threads N] [--write-baseline] [--no-baseline] [--explain RULE]\n\n\
                     --root DIR         workspace root (default: current directory)\n\
                     --json             machine-readable report on stdout\n\
                     --sarif PATH       also write the report as SARIF 2.1.0 (self-validated)\n\
                     --check-sarif PATH validate an existing SARIF file and exit (0 ok, 2 invalid)\n\
                     --threads N        parse with N worker threads (output is identical for any N)\n\
                     --write-baseline   regenerate {BASELINE_FILE} from current findings\n\
                     --no-baseline      report every diagnostic, ignoring the baseline\n\
                     --explain RULE     print the doc string for a rule id and exit"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Validation mode needs no workspace at all.
    if let Some(path) = check_sarif {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("reading {}: {e}", path.display())),
        };
        return match sarif::validate(&text) {
            Ok(()) => {
                println!("movr-lint: {} is structurally valid SARIF 2.1.0", path.display());
                ExitCode::SUCCESS
            }
            Err(errs) => {
                for e in &errs {
                    eprintln!("movr-lint: {}: {e}", path.display());
                }
                ExitCode::from(2)
            }
        };
    }

    if !root.join("Cargo.toml").exists() {
        return usage(&format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }

    if write_baseline {
        let report = match analyze_threaded(&root, threads) {
            Ok(r) => r,
            Err(e) => return fail(&format!("analysis failed: {e}")),
        };
        let text = Baseline::render(&report.counts());
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, text) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
        println!(
            "movr-lint: pinned {} diagnostic(s) across {} file(s) into {}",
            report.diagnostics.len(),
            report.files_scanned,
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let report = if no_baseline {
        analyze_threaded(&root, threads).map(|r| apply_baseline(r, &Baseline::empty()))
    } else {
        check_workspace_threaded(&root, threads)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => return fail(&format!("analysis failed: {e}")),
    };
    if let Some(path) = sarif_out {
        let text = sarif::render(&report);
        if let Err(errs) = sarif::validate(&text) {
            // Self-check: a renderer bug must fail loudly, not emit a
            // log the CI annotator silently drops.
            for e in &errs {
                eprintln!("movr-lint: generated SARIF invalid: {e}");
            }
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(&path, &text) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
    }
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("movr-lint: {msg} (try --help)");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("movr-lint: {msg}");
    ExitCode::from(2)
}
