//! Snapshot-coverage analysis: every field of the checkpointed session
//! state must be touched by both sides of the snapshot codec.
//!
//! PR 6's resume guarantee ("cut at any frame, restore, byte-identical
//! to the uninterrupted run") rests on `crates/core/src/snapshot.rs`
//! encoding and decoding *every* field of `SessionState` and the
//! `*Checkpoint` structs it contains. The codec is hand-rolled — there
//! is no derive to keep it honest — so a new field added to the state
//! compiles cleanly, snapshots silently drop it, and the bug surfaces
//! only when a golden resume fixture diverges. This pass turns that
//! test-time fixture break into a lint-time failure.
//!
//! **`snapshot-field-uncovered`** — a named field of `SessionState` or
//! any `*Checkpoint` struct in the core crate is never referenced as a
//! field (`.name`) inside the codec's encode functions, or never bound
//! as an identifier inside its decode functions. One diagnostic per
//! missing side, anchored at the field's declaration line.
//!
//! The contract (documented in DESIGN.md): encode coverage means the
//! field name appears after a `.` inside the body of a non-test fn
//! named `encode*` or `capture` in the codec file; decode coverage
//! means the name appears at all inside a fn named `decode*` or
//! `restore*` (decoders bind locals and build struct literals, so a
//! bare-ident match is the right granularity). Name-level matching is
//! an over-approximation — a field encoded but written to the wrong
//! offset still passes — but the golden snapshot fixture pins the byte
//! layout; this pass pins *presence*.

use crate::lexer::TokenKind;
use crate::rules::Diagnostic;
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;

/// Path of the codec file this pass cross-checks against.
const CODEC_FILE: &str = "crates/core/src/snapshot.rs";

/// Runs the snapshot-coverage analysis. A workspace with no codec file
/// (or one whose codec exposes no encode/decode fns yet) produces no
/// diagnostics — the pass arms itself only once both sides exist.
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let Some(codec) = files.iter().find(|f| f.rel == CODEC_FILE) else {
        return;
    };
    let (encoded, decoded) = codec_coverage(codec);
    if encoded.is_empty() && decoded.is_empty() {
        return;
    }
    for f in files {
        if f.crate_name != "core" || f.kind != FileKind::Lib {
            continue;
        }
        for st in &f.parsed.structs {
            if st.name != "SessionState" && !st.name.ends_with("Checkpoint") {
                continue;
            }
            for field in &st.fields {
                if field.name.is_empty() {
                    continue;
                }
                if !encoded.contains(field.name.as_str()) {
                    out.push(diag(f, field.line, &st.name, &field.name, "encode"));
                }
                if !decoded.contains(field.name.as_str()) {
                    out.push(diag(f, field.line, &st.name, &field.name, "decode"));
                }
            }
        }
    }
}

fn diag(f: &SourceFile, line: usize, st: &str, field: &str, side: &str) -> Diagnostic {
    let hint = match side {
        "encode" => format!(
            "`{st}.{field}` is never written by the encode path in {CODEC_FILE}; snapshots silently drop it and resume diverges — add it to the codec and bump the format version"
        ),
        _ => format!(
            "`{st}.{field}` is never rebound on the decode path in {CODEC_FILE}; restored sessions lose it — add it to the codec and bump the format version"
        ),
    };
    Diagnostic {
        rule: "snapshot-field-uncovered",
        file: f.rel.clone(),
        line,
        snippet: f.snippet(line),
        hint,
    }
}

/// Field names covered by the codec: (`.name` refs in encode fns,
/// all idents in decode fns).
fn codec_coverage(codec: &SourceFile) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut encoded = BTreeSet::new();
    let mut decoded = BTreeSet::new();
    for sig in &codec.parsed.fns {
        let Some((open, close)) = sig.body else { continue };
        if codec.in_cfg_test(open) {
            continue;
        }
        let is_enc = sig.name.starts_with("encode") || sig.name == "capture";
        let is_dec = sig.name.starts_with("decode") || sig.name.starts_with("restore");
        if !is_enc && !is_dec {
            continue;
        }
        let close = close.min(codec.tokens.len().saturating_sub(1));
        for j in open..=close {
            let TokenKind::Ident(name) = &codec.tokens[j].kind else { continue };
            if is_dec {
                decoded.insert(name.clone());
            }
            if is_enc && j >= 1 && codec.tokens[j - 1].is_punct('.') {
                encoded.insert(name.clone());
            }
        }
    }
    (encoded, decoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<(String, usize, String)> {
        let parsed: Vec<SourceFile> =
            files.iter().map(|(rel, src)| SourceFile::parse(rel, src)).collect();
        let mut out = Vec::new();
        check(&parsed, &mut out);
        out.into_iter().map(|d| (d.file, d.line, d.hint)).collect()
    }

    const STATE: &str = "pub struct SessionState {\n  pub frames: u64,\n  pub snr_sum: f64,\n}\npub struct TrackerCheckpoint {\n  pub last_update: u64,\n}";

    #[test]
    fn fully_covered_state_is_clean() {
        let codec = "fn encode_state(st: &SessionState, cp: &TrackerCheckpoint) {\n  put(st.frames); put(st.snr_sum); put(cp.last_update);\n}\nfn decode_state(b: &[u8]) {\n  let frames = get(b); let snr_sum = get(b); let last_update = get(b);\n}";
        assert!(run(&[
            ("crates/core/src/session.rs", STATE),
            ("crates/core/src/snapshot.rs", codec),
        ])
        .is_empty());
    }

    #[test]
    fn field_missing_from_both_sides_yields_two_diagnostics() {
        let codec = "fn encode_state(st: &SessionState, cp: &TrackerCheckpoint) {\n  put(st.frames); put(cp.last_update);\n}\nfn decode_state(b: &[u8]) {\n  let frames = get(b); let last_update = get(b);\n}";
        let hits = run(&[
            ("crates/core/src/session.rs", STATE),
            ("crates/core/src/snapshot.rs", codec),
        ]);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|(f, l, _)| f == "crates/core/src/session.rs" && *l == 3));
        assert!(hits[0].2.contains("encode path"));
        assert!(hits[1].2.contains("decode path"));
    }

    #[test]
    fn checkpoint_field_missing_from_decode_only() {
        let codec = "fn encode_state(st: &SessionState, cp: &TrackerCheckpoint) {\n  put(st.frames); put(st.snr_sum); put(cp.last_update);\n}\nfn decode_state(b: &[u8]) {\n  let frames = get(b); let snr_sum = get(b);\n}";
        let hits = run(&[
            ("crates/core/src/session.rs", STATE),
            ("crates/core/src/snapshot.rs", codec),
        ]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, 6);
        assert!(hits[0].2.contains("decode path"));
    }

    #[test]
    fn pass_is_inert_without_a_codec_or_codec_fns() {
        assert!(run(&[("crates/core/src/session.rs", STATE)]).is_empty());
        let stub = "// codec not written yet\npub fn version() -> u32 { 1 }";
        assert!(run(&[
            ("crates/core/src/session.rs", STATE),
            ("crates/core/src/snapshot.rs", stub),
        ])
        .is_empty());
    }

    #[test]
    fn other_crates_and_non_checkpoint_structs_are_ignored() {
        let codec = "fn encode_state(st: &SessionState, cp: &TrackerCheckpoint) { put(st.frames); put(st.snr_sum); put(cp.last_update); }\nfn decode_state(b: &[u8]) { let frames = get(b); let snr_sum = get(b); let last_update = get(b); }";
        let other = "pub struct SessionState { pub ghost: u64 }";
        let plain = "pub struct Config { pub uncovered: u64 }";
        assert!(run(&[
            ("crates/core/src/session.rs", STATE),
            ("crates/core/src/snapshot.rs", codec),
            ("crates/alpha/src/lib.rs", other),
            ("crates/core/src/config.rs", plain),
        ])
        .is_empty());
    }
}
