//! Architecture layering: the workspace dependency DAG, declared once
//! in `lint-layers.toml` and enforced against every `movr_*` reference
//! in library code. Cargo already rejects dependency *cycles*, but it
//! happily accepts a new edge that inverts the architecture (say,
//! `rfsim` reaching up into `radio`); this analysis fails the gate on
//! any reference not on the declared edge list, so back-edges need an
//! explicit spec change to land.
//!
//! The spec is the same dependency-free TOML subset the baseline uses:
//!
//! ```toml
//! [[crate]]
//! name = "radio"
//! layer = 2
//! allowed = ["math", "sim", "rfsim", "phased-array", "obs"]
//! ```
//!
//! Parsing validates the graph shape itself: every `allowed` target
//! must be declared, and must sit on a *strictly lower* layer — which
//! makes the declared graph a DAG by construction.

use crate::lexer::TokenKind;
use crate::rng_flow::crate_of_extern_root;
use crate::rules::Diagnostic;
use crate::source::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Name of the committed layer spec at the workspace root.
pub const LAYERS_FILE: &str = "lint-layers.toml";

/// One crate's declared position and allowed dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateSpec {
    /// Layer index; edges must point to strictly lower layers.
    pub layer: u32,
    /// Crate directory names this crate's library code may reference.
    pub allowed: BTreeSet<String>,
}

/// The parsed, validated layer declaration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayerSpec {
    crates: BTreeMap<String, CrateSpec>,
}

impl LayerSpec {
    /// Looks up a crate's declaration by directory name.
    pub fn get(&self, name: &str) -> Option<&CrateSpec> {
        self.crates.get(name)
    }

    /// Number of declared crates.
    pub fn len(&self) -> usize {
        self.crates.len()
    }

    /// True when no crates are declared.
    pub fn is_empty(&self) -> bool {
        self.crates.is_empty()
    }

    /// Parses and validates the TOML subset. Errors carry line numbers
    /// for syntax problems and name/layer detail for graph problems.
    pub fn parse(text: &str) -> Result<LayerSpec, String> {
        let mut crates: BTreeMap<String, CrateSpec> = BTreeMap::new();
        let mut cur: Option<(Option<String>, Option<u32>, Option<BTreeSet<String>>)> = None;
        let flush = |cur: &mut Option<(Option<String>, Option<u32>, Option<BTreeSet<String>>)>,
                         crates: &mut BTreeMap<String, CrateSpec>,
                         lineno: usize|
         -> Result<(), String> {
            if let Some((name, layer, allowed)) = cur.take() {
                let name = name
                    .ok_or_else(|| format!("[[crate]] ending before line {lineno} has no name"))?;
                let layer = layer
                    .ok_or_else(|| format!("crate `{name}` has no layer"))?;
                if crates
                    .insert(name.clone(), CrateSpec { layer, allowed: allowed.unwrap_or_default() })
                    .is_some()
                {
                    return Err(format!("crate `{name}` declared twice"));
                }
            }
            Ok(())
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[crate]]" {
                flush(&mut cur, &mut crates, lineno)?;
                cur = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`, got `{line}`"));
            };
            let Some(cur) = cur.as_mut() else {
                return Err(format!("line {lineno}: `{}` outside a [[crate]] table", key.trim()));
            };
            let value = value.trim();
            match key.trim() {
                "name" => cur.0 = Some(unquote(value, lineno)?),
                "layer" => {
                    cur.1 = Some(value.parse().map_err(|_| {
                        format!("line {lineno}: layer must be a non-negative integer")
                    })?);
                }
                "allowed" => {
                    let inner = value
                        .strip_prefix('[')
                        .and_then(|v| v.strip_suffix(']'))
                        .ok_or_else(|| format!("line {lineno}: allowed must be a [\"…\"] list"))?;
                    let mut set = BTreeSet::new();
                    for piece in inner.split(',') {
                        let piece = piece.trim();
                        if piece.is_empty() {
                            continue;
                        }
                        set.insert(unquote(piece, lineno)?);
                    }
                    cur.2 = Some(set);
                }
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        flush(&mut cur, &mut crates, text.lines().count() + 1)?;
        // Graph validation: targets declared, edges strictly downward.
        for (name, spec) in &crates {
            for dep in &spec.allowed {
                let Some(target) = crates.get(dep) else {
                    return Err(format!(
                        "crate `{name}` allows `{dep}`, which is not declared"
                    ));
                };
                if target.layer >= spec.layer {
                    return Err(format!(
                        "crate `{name}` (layer {}) allows `{dep}` (layer {}); edges must point to strictly lower layers — the declared graph would not be a DAG",
                        spec.layer, target.layer
                    ));
                }
            }
        }
        Ok(LayerSpec { crates })
    }
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string"))
}

/// Enforces the declared DAG over every library file: each `movr_*`
/// reference must be an allowed edge. Test ranges are exempt
/// (dev-dependencies legitimately reach testkit).
pub fn check(files: &[SourceFile], spec: &LayerSpec, out: &mut Vec<Diagnostic>) {
    for f in files {
        if f.kind != FileKind::Lib {
            continue;
        }
        let own = spec.get(&f.crate_name);
        let mut undeclared_reported = false;
        for (i, t) in f.tokens.iter().enumerate() {
            let TokenKind::Ident(name) = &t.kind else { continue };
            if !(name == "movr" || name.starts_with("movr_")) {
                continue;
            }
            // Require a path use (`movr_math::…`) or an import
            // (`use movr_math…`) so prose-like idents never fire.
            let pathish = (f.tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && f.tokens.get(i + 2).is_some_and(|t| t.is_punct(':')))
                || (i >= 1 && f.tokens[i - 1].is_ident("use"));
            if !pathish || f.in_cfg_test(i) {
                continue;
            }
            let Some(target) = crate_of_extern_root(name) else { continue };
            if target == f.crate_name {
                continue;
            }
            let Some(own) = own else {
                if !undeclared_reported {
                    out.push(Diagnostic {
                        rule: "layer-violation",
                        file: f.rel.clone(),
                        line: t.line,
                        snippet: f.snippet(t.line),
                        hint: format!(
                            "crate `{}` is not declared in {LAYERS_FILE}; add a [[crate]] entry with its layer and allowed dependencies",
                            f.crate_name
                        ),
                    });
                    undeclared_reported = true;
                }
                continue;
            };
            if spec.get(&target).is_none() {
                out.push(Diagnostic {
                    rule: "layer-violation",
                    file: f.rel.clone(),
                    line: t.line,
                    snippet: f.snippet(t.line),
                    hint: format!(
                        "reference to `{target}`, which is not declared in {LAYERS_FILE}"
                    ),
                });
                continue;
            }
            if !own.allowed.contains(&target) {
                out.push(Diagnostic {
                    rule: "layer-violation",
                    file: f.rel.clone(),
                    line: t.line,
                    snippet: f.snippet(t.line),
                    hint: format!(
                        "`{}` → `{target}` is not a declared edge in {LAYERS_FILE}; layering back-edges need an explicit spec change",
                        f.crate_name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
[[crate]]
name = \"math\"
layer = 0
allowed = []

[[crate]]
name = \"rfsim\"
layer = 1
allowed = [\"math\"]

[[crate]]
name = \"radio\"
layer = 2
allowed = [\"math\", \"rfsim\"]
";

    fn hits(rel: &str, src: &str) -> Vec<(String, usize)> {
        let spec = LayerSpec::parse(SPEC).expect("spec parses");
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(std::slice::from_ref(&f), &spec, &mut out);
        out.into_iter().map(|d| (d.hint, d.line)).collect()
    }

    #[test]
    fn allowed_edges_pass_and_back_edges_fail() {
        assert!(hits("crates/radio/src/lib.rs", "use movr_rfsim::Scene;").is_empty());
        let bad = hits("crates/rfsim/src/lib.rs", "use movr_radio::Mcs;");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].0.contains("`rfsim` → `radio`"), "{}", bad[0].0);
    }

    #[test]
    fn undeclared_crates_are_reported_once() {
        let bad = hits(
            "crates/mystery/src/lib.rs",
            "use movr_math::db;\nuse movr_rfsim::Scene;",
        );
        assert_eq!(bad.len(), 1, "one report per undeclared crate, not per use");
        assert!(bad[0].0.contains("not declared"));
    }

    #[test]
    fn test_code_and_non_path_mentions_are_exempt() {
        assert!(hits(
            "crates/rfsim/src/lib.rs",
            "#[cfg(test)]\nmod t { use movr_radio::Mcs; }"
        )
        .is_empty());
        assert!(hits("crates/rfsim/src/lib.rs", "fn f() { let movr_radio = 1; }").is_empty());
    }

    #[test]
    fn spec_validation_rejects_bad_graphs() {
        let undeclared = "[[crate]]\nname = \"a\"\nlayer = 1\nallowed = [\"ghost\"]\n";
        assert!(LayerSpec::parse(undeclared).unwrap_err().contains("ghost"));
        let upward = "\
[[crate]]
name = \"a\"
layer = 0
allowed = [\"b\"]

[[crate]]
name = \"b\"
layer = 1
allowed = []
";
        assert!(LayerSpec::parse(upward).unwrap_err().contains("DAG"));
        let dup = "[[crate]]\nname = \"a\"\nlayer = 0\n\n[[crate]]\nname = \"a\"\nlayer = 1\n";
        assert!(LayerSpec::parse(dup).unwrap_err().contains("twice"));
    }

    #[test]
    fn core_crate_maps_from_bare_movr() {
        let spec = LayerSpec::parse(
            "[[crate]]\nname = \"core\"\nlayer = 1\nallowed = []\n[[crate]]\nname = \"vr\"\nlayer = 0\nallowed = []\n",
        )
        .expect("parses");
        let f = SourceFile::parse("crates/vr/src/lib.rs", "use movr::session::run_session;");
        let mut out = Vec::new();
        check(std::slice::from_ref(&f), &spec, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].hint.contains("`vr` → `core`"));
    }
}
