//! Antenna directivity patterns.
//!
//! The propagation core only needs one question answered: *how much gain
//! does this antenna apply toward a given direction?* The [`Pattern`] trait
//! captures that; `movr-phased-array` supplies the steerable array
//! implementation through an adapter in `movr-radio`, and the simple
//! patterns here serve as probes and test fixtures.

use movr_math::wrap_deg_180;

/// Directional gain of an antenna, queried by absolute direction in the
/// room plane (degrees, counter-clockwise from +x).
pub trait Pattern {
    /// Gain in dBi toward `direction_deg`.
    fn gain_dbi(&self, direction_deg: f64) -> f64;

    /// The peak gain over all directions, in dBi. Default scans at 0.5°.
    fn peak_gain_dbi(&self) -> f64 {
        let mut best = f64::NEG_INFINITY;
        let mut a = -180.0;
        while a < 180.0 {
            best = best.max(self.gain_dbi(a));
            a += 0.5;
        }
        best
    }
}

/// An ideal isotropic radiator: 0 dBi everywhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct IsotropicPattern;

impl Pattern for IsotropicPattern {
    fn gain_dbi(&self, _direction_deg: f64) -> f64 {
        0.0
    }
    fn peak_gain_dbi(&self) -> f64 {
        0.0
    }
}

/// An idealised sector beam: flat `gain_dbi` inside the half-power
/// beamwidth around `boresight_deg`, a fixed floor outside.
///
/// This is the textbook "flat-top" model; it is useful where a test wants
/// beam-steering semantics without array-factor sidelobe structure.
#[derive(Debug, Clone, Copy)]
pub struct SectorPattern {
    /// Beam centre, degrees.
    pub boresight_deg: f64,
    /// Full beamwidth, degrees.
    pub beamwidth_deg: f64,
    /// Gain inside the beam, dBi.
    pub gain_dbi: f64,
    /// Gain outside the beam (sidelobe floor), dBi.
    pub floor_dbi: f64,
}

impl SectorPattern {
    /// A sector with a typical mmWave front-to-sidelobe ratio of 25 dB.
    pub fn new(boresight_deg: f64, beamwidth_deg: f64, gain_dbi: f64) -> Self {
        assert!(beamwidth_deg > 0.0, "beamwidth must be positive");
        SectorPattern {
            boresight_deg,
            beamwidth_deg,
            gain_dbi,
            floor_dbi: gain_dbi - 25.0,
        }
    }

    /// Re-steers the sector to a new boresight.
    pub fn steered_to(&self, boresight_deg: f64) -> Self {
        SectorPattern {
            boresight_deg,
            ..*self
        }
    }
}

impl Pattern for SectorPattern {
    fn gain_dbi(&self, direction_deg: f64) -> f64 {
        let off = wrap_deg_180(direction_deg - self.boresight_deg).abs();
        if off <= self.beamwidth_deg / 2.0 {
            self.gain_dbi
        } else {
            self.floor_dbi
        }
    }

    fn peak_gain_dbi(&self) -> f64 {
        self.gain_dbi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_is_flat() {
        let p = IsotropicPattern;
        for a in [-180.0, -37.0, 0.0, 90.0, 179.0] {
            assert_eq!(p.gain_dbi(a), 0.0);
        }
        assert_eq!(p.peak_gain_dbi(), 0.0);
    }

    #[test]
    fn sector_in_and_out_of_beam() {
        let p = SectorPattern::new(90.0, 10.0, 15.0);
        assert_eq!(p.gain_dbi(90.0), 15.0);
        assert_eq!(p.gain_dbi(94.9), 15.0);
        assert_eq!(p.gain_dbi(96.0), -10.0);
        assert_eq!(p.gain_dbi(-90.0), -10.0);
    }

    #[test]
    fn sector_wraps_around() {
        let p = SectorPattern::new(179.0, 10.0, 12.0);
        // -178° is only 3° away from 179° going through ±180.
        assert_eq!(p.gain_dbi(-178.0), 12.0);
    }

    #[test]
    fn steering_moves_the_beam() {
        let p = SectorPattern::new(0.0, 10.0, 15.0).steered_to(45.0);
        assert_eq!(p.gain_dbi(45.0), 15.0);
        assert_eq!(p.gain_dbi(0.0), p.floor_dbi);
    }

    #[test]
    fn default_peak_scan_matches_sector_gain() {
        let p = SectorPattern::new(30.0, 12.0, 18.0);
        // Use the trait's default scanning implementation.
        struct Wrap<'a>(&'a SectorPattern);
        impl Pattern for Wrap<'_> {
            fn gain_dbi(&self, d: f64) -> f64 {
                self.0.gain_dbi(d)
            }
        }
        assert!((Wrap(&p).peak_gain_dbi() - 18.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beamwidth")]
    fn zero_beamwidth_rejected() {
        SectorPattern::new(0.0, 0.0, 10.0);
    }
}
