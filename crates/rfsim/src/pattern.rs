//! Antenna directivity patterns.
//!
//! The propagation core only needs one question answered: *how much gain
//! does this antenna apply toward a given direction?* The [`Pattern`] trait
//! captures that; `movr-phased-array` supplies the steerable array
//! implementation through an adapter in `movr-radio`, and the simple
//! patterns here serve as probes and test fixtures.

use movr_math::wrap_deg_180;
use std::cell::RefCell;

/// Directional gain of an antenna, queried by absolute direction in the
/// room plane (degrees, counter-clockwise from +x).
pub trait Pattern {
    /// Gain in dBi toward `direction_deg`.
    fn gain_dbi(&self, direction_deg: f64) -> f64;

    /// The peak gain over all directions, in dBi. Default scans at 0.5°.
    fn peak_gain_dbi(&self) -> f64 {
        let mut best = f64::NEG_INFINITY;
        let mut a = -180.0;
        while a < 180.0 {
            best = best.max(self.gain_dbi(a));
            a += 0.5;
        }
        best
    }
}

/// An ideal isotropic radiator: 0 dBi everywhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct IsotropicPattern;

impl Pattern for IsotropicPattern {
    fn gain_dbi(&self, _direction_deg: f64) -> f64 {
        0.0
    }
    fn peak_gain_dbi(&self) -> f64 {
        0.0
    }
}

/// An idealised sector beam: flat `gain_dbi` inside the half-power
/// beamwidth around `boresight_deg`, a fixed floor outside.
///
/// This is the textbook "flat-top" model; it is useful where a test wants
/// beam-steering semantics without array-factor sidelobe structure.
#[derive(Debug, Clone, Copy)]
pub struct SectorPattern {
    /// Beam centre, degrees.
    pub boresight_deg: f64,
    /// Full beamwidth, degrees.
    pub beamwidth_deg: f64,
    /// Gain inside the beam, dBi.
    pub gain_dbi: f64,
    /// Gain outside the beam (sidelobe floor), dBi.
    pub floor_dbi: f64,
}

impl SectorPattern {
    /// A sector with a typical mmWave front-to-sidelobe ratio of 25 dB.
    pub fn new(boresight_deg: f64, beamwidth_deg: f64, gain_dbi: f64) -> Self {
        assert!(beamwidth_deg > 0.0, "beamwidth must be positive");
        SectorPattern {
            boresight_deg,
            beamwidth_deg,
            gain_dbi,
            floor_dbi: gain_dbi - 25.0,
        }
    }

    /// Re-steers the sector to a new boresight.
    pub fn steered_to(&self, boresight_deg: f64) -> Self {
        SectorPattern {
            boresight_deg,
            ..*self
        }
    }
}

impl Pattern for SectorPattern {
    fn gain_dbi(&self, direction_deg: f64) -> f64 {
        let off = wrap_deg_180(direction_deg - self.boresight_deg).abs();
        if off <= self.beamwidth_deg / 2.0 {
            self.gain_dbi
        } else {
            self.floor_dbi
        }
    }

    fn peak_gain_dbi(&self) -> f64 {
        self.gain_dbi
    }
}

/// Memoizes the gain queries of an inner pattern.
///
/// A link sweep with frozen path geometry queries the *same* handful of
/// departure/arrival angles over and over — once per beam combination.
/// Wrapping each candidate pattern in a `MemoPattern` scoped to the part
/// of the sweep where its steering is fixed turns all but the first
/// query per angle into a table lookup. Results are **bit-identical** to
/// the inner pattern: the memo stores and replays the exact `f64` the
/// inner pattern produced, keyed by the query angle's bit pattern.
///
/// The table is a linear-scanned `Vec` — sweeps query only a few dozen
/// distinct angles, where a hash map would cost more than it saves.
pub struct MemoPattern<'a> {
    inner: &'a dyn Pattern,
    memo: RefCell<Vec<(u64, f64)>>,
}

impl<'a> MemoPattern<'a> {
    /// Wraps `inner`. The memo starts empty and only ever grows; drop
    /// the wrapper (or build a fresh one) when the inner pattern's
    /// steering changes.
    pub fn new(inner: &'a dyn Pattern) -> Self {
        MemoPattern {
            inner,
            memo: RefCell::new(Vec::new()),
        }
    }
}

impl Pattern for MemoPattern<'_> {
    fn gain_dbi(&self, direction_deg: f64) -> f64 {
        let key = direction_deg.to_bits();
        let mut memo = self.memo.borrow_mut();
        if let Some(&(_, gain)) = memo.iter().find(|&&(k, _)| k == key) {
            return gain;
        }
        let gain = self.inner.gain_dbi(direction_deg);
        memo.push((key, gain));
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_is_flat() {
        let p = IsotropicPattern;
        for a in [-180.0, -37.0, 0.0, 90.0, 179.0] {
            assert_eq!(p.gain_dbi(a), 0.0);
        }
        assert_eq!(p.peak_gain_dbi(), 0.0);
    }

    #[test]
    fn sector_in_and_out_of_beam() {
        let p = SectorPattern::new(90.0, 10.0, 15.0);
        assert_eq!(p.gain_dbi(90.0), 15.0);
        assert_eq!(p.gain_dbi(94.9), 15.0);
        assert_eq!(p.gain_dbi(96.0), -10.0);
        assert_eq!(p.gain_dbi(-90.0), -10.0);
    }

    #[test]
    fn sector_wraps_around() {
        let p = SectorPattern::new(179.0, 10.0, 12.0);
        // -178° is only 3° away from 179° going through ±180.
        assert_eq!(p.gain_dbi(-178.0), 12.0);
    }

    #[test]
    fn steering_moves_the_beam() {
        let p = SectorPattern::new(0.0, 10.0, 15.0).steered_to(45.0);
        assert_eq!(p.gain_dbi(45.0), 15.0);
        assert_eq!(p.gain_dbi(0.0), p.floor_dbi);
    }

    #[test]
    fn default_peak_scan_matches_sector_gain() {
        let p = SectorPattern::new(30.0, 12.0, 18.0);
        // Use the trait's default scanning implementation.
        struct Wrap<'a>(&'a SectorPattern);
        impl Pattern for Wrap<'_> {
            fn gain_dbi(&self, d: f64) -> f64 {
                self.0.gain_dbi(d)
            }
        }
        assert!((Wrap(&p).peak_gain_dbi() - 18.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beamwidth")]
    fn zero_beamwidth_rejected() {
        SectorPattern::new(0.0, 0.0, 10.0);
    }

    #[test]
    fn memo_replays_bit_identical_and_computes_once() {
        use std::cell::Cell;
        struct Counting(Cell<usize>);
        impl Pattern for Counting {
            fn gain_dbi(&self, d: f64) -> f64 {
                self.0.set(self.0.get() + 1);
                d * 0.5 - 1.0
            }
        }
        let inner = Counting(Cell::new(0));
        let memo = MemoPattern::new(&inner);
        for _ in 0..5 {
            assert_eq!(
                memo.gain_dbi(37.25).to_bits(),
                (37.25_f64 * 0.5 - 1.0).to_bits()
            );
            assert_eq!(memo.gain_dbi(-12.5), -12.5 * 0.5 - 1.0);
        }
        // Two distinct angles → exactly two inner computations.
        assert_eq!(inner.0.get(), 2);
    }
}
