//! Specular path tracing with the image method.
//!
//! In a convex room the multipath structure at mmWave is dominated by the
//! line of sight plus a handful of low-order specular wall bounces —
//! everything else is tens of dB down. The tracer enumerates:
//!
//! * the LOS path,
//! * every first-order path (TX → wall → RX), by mirroring the TX across
//!   each wall and intersecting the image ray with the wall segment,
//! * every second-order path (TX → wall A → wall B → RX), by mirroring
//!   twice, for distinct wall pairs.
//!
//! Each returned [`Path`] carries its geometry (vertices, departure and
//! arrival bearings) and its loss budget excluding antenna gains and FSPL:
//! the sum of per-bounce reflection losses and per-segment obstacle
//! shadowing. Higher layers add Friis loss and antenna gains.

use crate::geometry::{Room, Segment, Surface, Wall};
use crate::obstacle::{total_shadow_loss_db, Obstacle};
use movr_math::Vec2;

/// How a path got from TX to RX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Direct line of sight.
    LineOfSight,
    /// Specular reflection path with the given bounce count (1 or 2).
    Reflected {
        /// Number of specular bounces along the path.
        order: usize,
    },
}

/// The maximum number of vertices a traced path can have: TX, up to two
/// bounces, RX.
pub const MAX_PATH_VERTICES: usize = 4;

/// A path's vertex chain, stored inline (no heap allocation) since the
/// tracer emits at most [`MAX_PATH_VERTICES`] points per path. Derefs to
/// `&[Vec2]`, so slice methods (`len`, `windows`, indexing, iteration)
/// work unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vertices {
    buf: [Vec2; MAX_PATH_VERTICES],
    len: u8,
}

impl Vertices {
    /// The vertices as a slice, `[tx, bounce…, rx]`.
    pub fn as_slice(&self) -> &[Vec2] {
        &self.buf[..usize::from(self.len)] // lint: len <= MAX_PATH_VERTICES by construction of every Vertices value
    }
}

impl std::ops::Deref for Vertices {
    type Target = [Vec2];

    fn deref(&self) -> &[Vec2] {
        self.as_slice()
    }
}

impl From<[Vec2; 2]> for Vertices {
    fn from(v: [Vec2; 2]) -> Self {
        Vertices {
            buf: [v[0], v[1], Vec2::ZERO, Vec2::ZERO], // lint: literal indices into a [Vec2; 2] parameter
            len: 2,
        }
    }
}

impl From<[Vec2; 3]> for Vertices {
    fn from(v: [Vec2; 3]) -> Self {
        Vertices {
            buf: [v[0], v[1], v[2], Vec2::ZERO], // lint: literal indices into a [Vec2; 3] parameter
            len: 3,
        }
    }
}

impl From<[Vec2; 4]> for Vertices {
    fn from(v: [Vec2; 4]) -> Self {
        Vertices { buf: v, len: 4 }
    }
}

impl<'a> IntoIterator for &'a Vertices {
    type Item = &'a Vec2;
    type IntoIter = std::slice::Iter<'a, Vec2>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One propagation path between a transmitter and a receiver.
///
/// `PartialEq` is exact (bitwise on every float field) — equality means
/// "the very same traced path", which is what cache-consistency checks
/// need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Path {
    /// Whether this is the LoS path or a reflection (and its order).
    pub kind: PathKind,
    /// Geometry: `[tx, bounce…, rx]`.
    pub vertices: Vertices,
    /// Total geometric length, metres.
    pub length_m: f64,
    /// Bearing (degrees) of the first segment leaving the TX — where the
    /// TX must point its beam to launch energy onto this path.
    pub departure_deg: f64,
    /// Bearing (degrees) from the RX toward the last bounce (or the TX for
    /// LOS) — where the RX must point its beam to collect this path.
    pub arrival_deg: f64,
    /// Sum of per-bounce reflection losses, dB.
    pub reflection_loss_db: f64,
    /// Sum of obstacle shadowing losses over all segments, dB.
    pub shadow_loss_db: f64,
}

impl Path {
    /// Combined excess loss of the path (reflection + shadowing), dB.
    /// FSPL and antenna gains are *not* included.
    pub fn excess_loss_db(&self) -> f64 {
        self.reflection_loss_db + self.shadow_loss_db
    }

    /// True if this path is currently blocked at all (any shadow loss).
    pub fn is_shadowed(&self) -> bool {
        self.shadow_loss_db > 0.0
    }

    /// The path's segments in order.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Maximum reflection order to enumerate (0 = LOS only, max 2).
    pub max_order: usize,
    /// Paths with more excess loss than this are discarded early.
    pub max_excess_loss_db: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            max_order: 2,
            max_excess_loss_db: 80.0,
        }
    }
}

/// Enumerates propagation paths between `tx` and `rx` in `room`, applying
/// shadowing from `obstacles`.
///
/// Both endpoints must be inside the room. Paths are returned in
/// deterministic order: LOS first, then first-order bounces in wall order,
/// then second-order in wall-pair order.
pub fn trace_paths(
    room: &Room,
    obstacles: &[Obstacle],
    tx: Vec2,
    rx: Vec2,
    config: &TraceConfig,
) -> Vec<Path> {
    assert!(room.contains(tx), "tx must be inside the room");
    assert!(room.contains(rx), "rx must be inside the room");

    let surfaces = room.surfaces();
    let mut paths = Vec::new();

    // In a non-convex room a geometrically-constructed path can pass
    // through a wall; such candidates are discarded outright (walls are
    // thick — this is not the thin-panel penetration case).
    let admissible = |p: &Path| {
        p.excess_loss_db() <= config.max_excess_loss_db
            && (room.is_convex() || !crosses_any_wall(room.walls(), &p.vertices))
    };

    if let Some(p) = make_path(
        PathKind::LineOfSight,
        [tx, rx].into(),
        &[],
        obstacles,
        surfaces,
    ) {
        if admissible(&p) {
            paths.push(p);
        }
    }

    if config.max_order >= 1 {
        for wall in room.walls() {
            if let Some(p) = first_order_path(wall, obstacles, surfaces, tx, rx) {
                if admissible(&p) {
                    paths.push(p);
                }
            }
        }
        // First-order bounces off interior panels (furniture).
        for surface in surfaces {
            if let Some(p) = surface_path(surface, obstacles, surfaces, tx, rx) {
                if admissible(&p) {
                    paths.push(p);
                }
            }
        }
    }

    if config.max_order >= 2 {
        let walls = room.walls();
        for (i, wa) in walls.iter().enumerate() {
            for (j, wb) in walls.iter().enumerate() {
                if i == j {
                    continue;
                }
                if let Some(p) = second_order_path(wa, wb, obstacles, surfaces, tx, rx) {
                    if admissible(&p) {
                        paths.push(p);
                    }
                }
            }
        }
    }

    paths
}

/// True if any leg of the vertex chain crosses a wall's interior. Legs
/// that merely *end* on a wall (their own bounce point) do not count —
/// interior intersection tests exclude endpoint grazes.
fn crosses_any_wall(walls: &[Wall], vertices: &[Vec2]) -> bool {
    for leg in vertices.windows(2) {
        let seg = Segment::new(leg[0], leg[1]);
        for w in walls {
            if seg.intersect_interior(&w.segment).is_some() {
                return true;
            }
        }
    }
    false
}

/// Penetration loss (dB) the interior panels inflict on a vertex chain:
/// every leg that crosses a panel's interior pays that panel's material
/// penetration loss. Legs *ending on* a panel (its own bounce point) are
/// excluded automatically because interior intersection tests reject
/// endpoint grazes.
fn surface_occlusion_db(surfaces: &[Surface], vertices: &[Vec2]) -> f64 {
    let mut loss = 0.0;
    for leg in vertices.windows(2) {
        let seg = Segment::new(leg[0], leg[1]);
        for s in surfaces {
            if seg.intersect_interior(&s.segment).is_some() {
                loss += s.material.penetration_loss_db();
            }
        }
    }
    loss
}

/// Builds a path from its vertex chain, computing geometry and shadowing.
/// Returns `None` for degenerate (zero-length) chains.
fn make_path(
    kind: PathKind,
    vertices: Vertices,
    bounce_losses_db: &[f64],
    obstacles: &[Obstacle],
    surfaces: &[Surface],
) -> Option<Path> {
    debug_assert!(vertices.len() >= 2);
    let mut length = 0.0;
    for w in vertices.windows(2) {
        length += w[0].distance(w[1]);
    }
    if length < 1e-6 {
        return None;
    }
    let departure_deg = vertices[0].bearing_deg_to(vertices[1]);
    let n = vertices.len();
    let arrival_deg = vertices[n - 1].bearing_deg_to(vertices[n - 2]);
    let reflection_loss_db: f64 = bounce_losses_db.iter().sum();
    let shadow_loss_db: f64 = vertices
        .windows(2)
        .map(|w| total_shadow_loss_db(obstacles, &Segment::new(w[0], w[1])))
        .sum::<f64>()
        + surface_occlusion_db(surfaces, &vertices);
    Some(Path {
        kind,
        vertices,
        length_m: length,
        departure_deg,
        arrival_deg,
        reflection_loss_db,
        shadow_loss_db,
    })
}

/// TX → `wall` → RX via the image method: mirror the TX across the wall,
/// draw image→RX, and bounce where that line crosses the wall segment.
fn first_order_path(
    wall: &Wall,
    obstacles: &[Obstacle],
    surfaces: &[Surface],
    tx: Vec2,
    rx: Vec2,
) -> Option<Path> {
    let image = wall.mirror_point(tx);
    let bounce = wall_hit(&wall.segment, image, rx)?;
    make_path(
        PathKind::Reflected { order: 1 },
        [tx, bounce, rx].into(),
        &[wall.material.reflection_loss_db()],
        obstacles,
        surfaces,
    )
}

/// TX → interior panel → RX: the image method off a two-sided furniture
/// face.
fn surface_path(
    surface: &Surface,
    obstacles: &[Obstacle],
    surfaces: &[Surface],
    tx: Vec2,
    rx: Vec2,
) -> Option<Path> {
    let image = surface.mirror_point(tx);
    let bounce = wall_hit(&surface.segment, image, rx)?;
    // A specular bounce requires TX and RX on the same side of the panel.
    let d = surface.segment.direction();
    let side_tx = d.cross(tx - surface.segment.a);
    let side_rx = d.cross(rx - surface.segment.a);
    if side_tx * side_rx <= 0.0 {
        return None;
    }
    make_path(
        PathKind::Reflected { order: 1 },
        [tx, bounce, rx].into(),
        &[surface.material.reflection_loss_db()],
        obstacles,
        surfaces,
    )
}

/// TX → `wa` → `wb` → RX: mirror TX across `wa`, mirror that image across
/// `wb`, intersect backwards.
fn second_order_path(
    wa: &Wall,
    wb: &Wall,
    obstacles: &[Obstacle],
    surfaces: &[Surface],
    tx: Vec2,
    rx: Vec2,
) -> Option<Path> {
    let image1 = wa.mirror_point(tx);
    let image2 = wb.mirror_point(image1);
    // Last bounce: where image2 → rx crosses wall B.
    let b2 = wall_hit(&wb.segment, image2, rx)?;
    // First bounce: where image1 → b2 crosses wall A.
    let b1 = wall_hit(&wa.segment, image1, b2)?;
    // The leg tx→b1 must leave the room interior correctly: with a convex
    // room it cannot exit, but b1 == b2 degeneracies (corner hits) are
    // rejected by a minimum segment length.
    if b1.distance(b2) < 1e-6 || tx.distance(b1) < 1e-6 || b2.distance(rx) < 1e-6 {
        return None;
    }
    make_path(
        PathKind::Reflected { order: 2 },
        [tx, b1, b2, rx].into(),
        &[
            wa.material.reflection_loss_db(),
            wb.material.reflection_loss_db(),
        ],
        obstacles,
        surfaces,
    )
}

/// Where the segment `from → to` crosses `target`, if it does so
/// strictly in the interiors of both.
fn wall_hit(target: &Segment, from: Vec2, to: Vec2) -> Option<Vec2> {
    let ray = Segment::new(from, to);
    let (t, _u) = ray.intersect_interior(target)?;
    Some(ray.point_at(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;
    use crate::obstacle::BodyPart;

    fn office() -> Room {
        Room::paper_office()
    }

    #[test]
    fn los_path_geometry() {
        let room = office();
        let tx = Vec2::new(1.0, 1.0);
        let rx = Vec2::new(4.0, 1.0);
        let paths = trace_paths(&room, &[], tx, rx, &TraceConfig::default());
        let los = paths
            .iter()
            .find(|p| p.kind == PathKind::LineOfSight)
            .expect("LOS exists");
        assert!((los.length_m - 3.0).abs() < 1e-9);
        assert!((los.departure_deg - 0.0).abs() < 1e-9);
        assert!((los.arrival_deg.abs() - 180.0).abs() < 1e-9);
        assert_eq!(los.excess_loss_db(), 0.0);
    }

    #[test]
    fn first_order_count_in_open_room() {
        // Between two interior points of a rectangle, all four walls give a
        // valid single-bounce path.
        let room = office();
        let paths = trace_paths(
            &room,
            &[],
            Vec2::new(1.0, 2.0),
            Vec2::new(4.0, 3.0),
            &TraceConfig {
                max_order: 1,
                max_excess_loss_db: 100.0,
            },
        );
        let first: Vec<_> = paths
            .iter()
            .filter(|p| p.kind == (PathKind::Reflected { order: 1 }))
            .collect();
        assert_eq!(first.len(), 4);
        for p in first {
            assert_eq!(p.vertices.len(), 3);
            assert!(p.reflection_loss_db > 0.0);
            // Reflected paths are longer than LOS.
            assert!(p.length_m > paths[0].length_m);
        }
    }

    #[test]
    fn image_method_equal_angles() {
        // Symmetric placement about a wall midpoint: bounce at the midpoint,
        // angle in == angle out.
        let room = office();
        let tx = Vec2::new(2.0, 1.0);
        let rx = Vec2::new(3.0, 1.0);
        let paths = trace_paths(
            &room,
            &[],
            tx,
            rx,
            &TraceConfig {
                max_order: 1,
                max_excess_loss_db: 100.0,
            },
        );
        // South wall (y=0) bounce must land at x=2.5.
        let south = paths
            .iter()
            .find(|p| {
                matches!(p.kind, PathKind::Reflected { order: 1 }) && p.vertices[1].y.abs() < 1e-9
            })
            .expect("south-wall bounce");
        assert!((south.vertices[1].x - 2.5).abs() < 1e-9);
        // Path length = 2 * sqrt(0.5² + 1²).
        let expect = 2.0 * (0.25f64 + 1.0).sqrt();
        assert!((south.length_m - expect).abs() < 1e-9);
    }

    #[test]
    fn second_order_paths_exist_and_are_longer() {
        let room = office();
        let tx = Vec2::new(1.0, 2.5);
        let rx = Vec2::new(4.0, 2.5);
        let paths = trace_paths(&room, &[], tx, rx, &TraceConfig::default());
        let los_len = paths[0].length_m;
        let second: Vec<_> = paths
            .iter()
            .filter(|p| p.kind == (PathKind::Reflected { order: 2 }))
            .collect();
        assert!(!second.is_empty(), "expected double-bounce paths");
        for p in &second {
            assert_eq!(p.vertices.len(), 4);
            assert!(p.length_m > los_len);
            // Two bounces, two reflection losses.
            assert!(p.reflection_loss_db >= 2.0 * Material::Drywall.reflection_loss_db() - 1e-9);
        }
    }

    #[test]
    fn obstacle_on_los_shadows_only_los() {
        let room = office();
        let tx = Vec2::new(1.0, 2.5);
        let rx = Vec2::new(4.0, 2.5);
        let hand = Obstacle::new(BodyPart::Hand, Vec2::new(2.5, 2.5));
        let paths = trace_paths(&room, &[hand], tx, rx, &TraceConfig::default());
        let los = paths
            .iter()
            .find(|p| p.kind == PathKind::LineOfSight)
            .unwrap();
        assert!(los.is_shadowed());
        assert!((los.shadow_loss_db - BodyPart::Hand.shadow_loss_db()).abs() < 1e-9);
        // Wall-bounce paths swing wide of a centred hand: at least one
        // reflected path must be clear.
        assert!(paths
            .iter()
            .filter(|p| p.kind != PathKind::LineOfSight)
            .any(|p| !p.is_shadowed()));
    }

    #[test]
    fn loss_cap_prunes_paths() {
        let room = office();
        let tx = Vec2::new(1.0, 2.5);
        let rx = Vec2::new(4.0, 2.5);
        let all = trace_paths(
            &room,
            &[],
            tx,
            rx,
            &TraceConfig {
                max_order: 2,
                max_excess_loss_db: 100.0,
            },
        );
        let pruned = trace_paths(
            &room,
            &[],
            tx,
            rx,
            &TraceConfig {
                max_order: 2,
                max_excess_loss_db: 10.0,
            },
        );
        // A 10 dB cap keeps LOS and drops every drywall double-bounce
        // (2 × 9 dB = 18 dB).
        assert!(pruned.len() < all.len());
        assert!(pruned
            .iter()
            .all(|p| p.kind != PathKind::Reflected { order: 2 }));
    }

    #[test]
    fn max_order_zero_is_los_only() {
        let room = office();
        let paths = trace_paths(
            &room,
            &[],
            Vec2::new(1.0, 1.0),
            Vec2::new(3.0, 3.0),
            &TraceConfig {
                max_order: 0,
                max_excess_loss_db: 100.0,
            },
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
    }

    #[test]
    fn deterministic_ordering() {
        let room = office();
        let a = trace_paths(
            &room,
            &[],
            Vec2::new(1.1, 2.2),
            Vec2::new(3.9, 1.7),
            &TraceConfig::default(),
        );
        let b = trace_paths(
            &room,
            &[],
            Vec2::new(1.1, 2.2),
            Vec2::new(3.9, 1.7),
            &TraceConfig::default(),
        );
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.kind, pb.kind);
            assert_eq!(pa.length_m, pb.length_m);
        }
    }

    #[test]
    #[should_panic(expected = "inside the room")]
    fn tx_outside_room_panics() {
        trace_paths(
            &office(),
            &[],
            Vec2::new(-1.0, 1.0),
            Vec2::new(3.0, 3.0),
            &TraceConfig::default(),
        );
    }

    #[test]
    fn surface_adds_a_bounce_path() {
        let mut room = office();
        // A metal panel parallel to the LOS, offset north.
        room.add_surface(crate::geometry::Surface::new(
            Segment::new(Vec2::new(1.5, 4.0), Vec2::new(3.5, 4.0)),
            Material::Metal,
        ));
        let tx = Vec2::new(1.0, 2.0);
        let rx = Vec2::new(4.0, 2.0);
        let furnished = trace_paths(&room, &[], tx, rx, &TraceConfig::default());
        // The panel bounce reflects at y=4 and pays only metal's tiny loss.
        let panel_path = furnished
            .iter()
            .find(|p| {
                p.vertices.len() == 3 && (p.vertices[1].y - 4.0).abs() < 1e-9
            })
            .expect("panel bounce");
        assert!(
            (panel_path.reflection_loss_db - Material::Metal.reflection_loss_db()).abs() < 1e-9
        );
        // And the panel shadows the north-wall bounce behind it: that
        // path (bounce at y=5) either got pruned or pays penetration.
        let north = furnished
            .iter()
            .find(|p| p.vertices.len() == 3 && (p.vertices[1].y - 5.0).abs() < 1e-9);
        assert!(
            north.is_none() || north.unwrap().shadow_loss_db > 0.0,
            "panel must shadow the wall behind it"
        );
    }

    #[test]
    fn surface_occludes_paths_crossing_it() {
        let mut room = office();
        // A metal cabinet square across the LOS.
        room.add_surface(crate::geometry::Surface::new(
            Segment::new(Vec2::new(2.5, 1.5), Vec2::new(2.5, 2.5)),
            Material::Metal,
        ));
        let tx = Vec2::new(1.0, 2.0);
        let rx = Vec2::new(4.0, 2.0);
        let paths = trace_paths(&room, &[], tx, rx, &TraceConfig::default());
        let los = paths
            .iter()
            .find(|p| p.kind == PathKind::LineOfSight)
            .unwrap();
        assert!(
            (los.shadow_loss_db - Material::Metal.penetration_loss_db()).abs() < 1e-9,
            "LOS must pay the panel's penetration loss: {}",
            los.shadow_loss_db
        );
        // Wall bounces over the top (north wall) clear the cabinet.
        assert!(paths
            .iter()
            .any(|p| p.kind != PathKind::LineOfSight && p.shadow_loss_db == 0.0));
    }

    #[test]
    fn surface_bounce_requires_same_side() {
        let mut room = office();
        room.add_surface(crate::geometry::Surface::new(
            Segment::new(Vec2::new(2.5, 1.5), Vec2::new(2.5, 2.5)),
            Material::Metal,
        ));
        // TX and RX on opposite sides of the panel: no specular bounce
        // off it (only occlusion) — no path may reflect at x = 2.5.
        let tx = Vec2::new(1.0, 2.0);
        let rx = Vec2::new(4.0, 2.0);
        let furnished = trace_paths(&room, &[], tx, rx, &TraceConfig::default());
        assert!(!furnished.iter().any(|p| {
            p.vertices.len() == 3
                && (p.vertices[1].x - 2.5).abs() < 1e-9
                && p.vertices[1].y > 1.4
                && p.vertices[1].y < 2.6
        }));
    }

    #[test]
    fn metal_panel_beats_the_drywall_bounce() {
        // A metal panel just inside the north wall: its bounce is ~6 dB
        // stronger than the drywall wall bounce on the same geometry —
        // why a furnished office is kinder to NLOS schemes.
        let mut room = office();
        room.add_surface(crate::geometry::Surface::new(
            Segment::new(Vec2::new(1.5, 4.9), Vec2::new(3.5, 4.9)),
            Material::Metal,
        ));
        let tx = Vec2::new(1.0, 2.5);
        let rx = Vec2::new(4.0, 2.5);
        let blocker = Obstacle::new(BodyPart::Torso, Vec2::new(2.5, 2.5));
        let paths = trace_paths(&room, &[blocker], tx, rx, &TraceConfig::default());
        let best_clear = paths
            .iter()
            .filter(|p| p.kind != PathKind::LineOfSight && p.shadow_loss_db == 0.0)
            .min_by(|a, b| a.excess_loss_db().partial_cmp(&b.excess_loss_db()).unwrap())
            .expect("a clear bounce exists");
        assert!(
            (best_clear.reflection_loss_db - Material::Metal.reflection_loss_db()).abs() < 1e-9,
            "the metal panel should be the best clear path, got {} dB",
            best_clear.reflection_loss_db
        );
    }

    #[test]
    fn furnished_office_has_panels_and_traces() {
        let room = Room::furnished_office();
        assert_eq!(room.surfaces().len(), 3);
        let paths = trace_paths(
            &room,
            &[],
            Vec2::new(1.0, 2.5),
            Vec2::new(4.0, 2.5),
            &TraceConfig::default(),
        );
        assert!(!paths.is_empty());
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
    }

    #[test]
    fn l_shaped_room_blocks_around_the_corner() {
        // TX deep in the north leg, RX deep in the east leg: the straight
        // line passes through the bitten-out corner, so there is no line
        // of sight, and every surviving path must avoid the notch walls.
        let room = Room::l_shaped_studio();
        let tx = Vec2::new(2.5, 4.5);
        let rx = Vec2::new(4.5, 2.5);
        let paths = trace_paths(&room, &[], tx, rx, &TraceConfig::default());
        assert!(
            !paths.iter().any(|p| p.kind == PathKind::LineOfSight),
            "the corner must kill the LOS"
        );
        // Around-the-corner bounce paths can exist; all must be clear of
        // every wall interior.
        for p in &paths {
            for leg in p.vertices.windows(2) {
                let seg = Segment::new(leg[0], leg[1]);
                for w in room.walls() {
                    assert!(
                        seg.intersect_interior(&w.segment).is_none(),
                        "leg {:?} crosses a wall",
                        leg
                    );
                }
            }
        }
    }

    #[test]
    fn l_shaped_room_clear_pairs_keep_los() {
        // Two points in the main (west) body see each other normally.
        let room = Room::l_shaped_studio();
        let paths = trace_paths(
            &room,
            &[],
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 4.0),
            &TraceConfig::default(),
        );
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
        assert!(paths.len() > 1, "bounces exist too");
    }

    #[test]
    fn segments_iterator_matches_vertices() {
        let room = office();
        let paths = trace_paths(
            &room,
            &[],
            Vec2::new(1.0, 1.0),
            Vec2::new(4.0, 4.0),
            &TraceConfig::default(),
        );
        for p in paths {
            let segs: Vec<_> = p.segments().collect();
            assert_eq!(segs.len(), p.vertices.len() - 1);
            let sum: f64 = segs.iter().map(Segment::length).sum();
            assert!((sum - p.length_m).abs() < 1e-9);
        }
    }
}
