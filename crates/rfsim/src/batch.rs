//! Row-batched link evaluation: precompute everything that does not
//! depend on the antenna weighting, then evaluate whole probe rows as
//! slice passes.
//!
//! A beam sweep reweights the *same* traced path set thousands of times;
//! the geometry (taps, bearings) and the noise budget are loop
//! invariants. [`LinkBatch`] hoists them once so the per-probe work
//! shrinks to one multiply-accumulate pass over the taps. Every hoist is
//! a pure recomputation of the scalar pipeline's intermediates — no
//! algebraic rewrite — so batched results are bit-identical to
//! [`Scene::eval_paths`](crate::Scene::eval_paths) by construction, the
//! same contract `tests/cache_equivalence.rs` pins for [`TracedLink`].
//!
//! [`TracedLink`]: crate::TracedLink

use crate::noise::NoiseModel;
use crate::scene::LinkEval;
use movr_math::{db_to_linear, linear_to_db, C64};

/// A traced link frozen into structure-of-arrays form for row
/// evaluation: one complex tap plus departure/arrival bearings per path,
/// and the receiver noise budget folded to two constants.
///
/// Built by [`TracedLink::batch`](crate::TracedLink::batch). Callers
/// evaluate by handing in per-path gain slices (typically rows of a
/// `GainPage` computed with the phased-array batch kernels).
#[derive(Debug, Clone)]
pub struct LinkBatch {
    taps: Vec<C64>,
    departure_deg: Vec<f64>,
    arrival_deg: Vec<f64>,
    noise_floor_dbm: f64,
    implementation_loss_db: f64,
}

impl LinkBatch {
    pub(crate) fn new(
        taps: Vec<C64>,
        departure_deg: Vec<f64>,
        arrival_deg: Vec<f64>,
        noise: &NoiseModel,
    ) -> Self {
        LinkBatch {
            taps,
            departure_deg,
            arrival_deg,
            // Loop-invariant hoist: `NoiseModel::snr_db` recomputes the
            // floor per call from the same fields, so precomputing it
            // yields identical bits.
            noise_floor_dbm: noise.noise_floor_dbm(),
            implementation_loss_db: noise.implementation_loss_db,
        }
    }

    /// Number of taps (== traced paths).
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True if tracing pruned every path.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Departure bearing of each path (absolute degrees, path order).
    /// Feed these to the TX side's gain kernel.
    pub fn departure_deg(&self) -> &[f64] {
        &self.departure_deg
    }

    /// Arrival bearing of each path (absolute degrees, path order).
    /// Feed these to the RX side's gain kernel.
    pub fn arrival_deg(&self) -> &[f64] {
        &self.arrival_deg
    }

    /// Replaces the noise budget (e.g. a relay front end instead of the
    /// scene's receiver). Taps and bearings are unchanged.
    pub fn with_noise(mut self, noise: &NoiseModel) -> Self {
        self.noise_floor_dbm = noise.noise_floor_dbm();
        self.implementation_loss_db = noise.implementation_loss_db;
        self
    }

    /// Received power (dBm) under per-path TX/RX gains in dBi.
    ///
    /// `tx_gains_dbi[i]`/`rx_gains_dbi[i]` weight path `i`; the coherent
    /// sum replicates [`Channel::combined_gain`](crate::Channel::combined_gain)
    /// term-for-term (gain weighting first, fold from zero in path
    /// order), so the result is bit-identical to the scalar pipeline.
    ///
    /// # Panics
    /// Panics if either gain slice's length differs from [`LinkBatch::len`].
    pub fn received_dbm(
        &self,
        tx_power_dbm: f64,
        tx_gains_dbi: &[f64],
        rx_gains_dbi: &[f64],
    ) -> f64 {
        assert_eq!(
            tx_gains_dbi.len(),
            self.taps.len(),
            "tx gain row length must match the tap count"
        );
        assert_eq!(
            rx_gains_dbi.len(),
            self.taps.len(),
            "rx gain row length must match the tap count"
        );
        let mut sum = C64::ZERO;
        let weighted = self.taps.iter().zip(tx_gains_dbi).zip(rx_gains_dbi);
        for ((tap, gt), gr) in weighted {
            sum += *tap * db_to_linear(gt + gr).sqrt();
        }
        tx_power_dbm + linear_to_db(sum.norm_sq())
    }

    /// SNR (dB) for a received power under this batch's noise budget.
    /// Same op order as [`NoiseModel::snr_db`]: `(r − floor) − impl`.
    pub fn snr_db(&self, received_dbm: f64) -> f64 {
        received_dbm - self.noise_floor_dbm - self.implementation_loss_db
    }

    /// Full link evaluation: [`LinkBatch::received_dbm`] plus
    /// [`LinkBatch::snr_db`], mirroring
    /// [`Scene::eval_paths`](crate::Scene::eval_paths).
    ///
    /// # Panics
    /// Panics if either gain slice's length differs from [`LinkBatch::len`].
    pub fn eval(
        &self,
        tx_power_dbm: f64,
        tx_gains_dbi: &[f64],
        rx_gains_dbi: &[f64],
    ) -> LinkEval {
        let received_dbm = self.received_dbm(tx_power_dbm, tx_gains_dbi, rx_gains_dbi);
        LinkEval {
            received_dbm,
            snr_db: self.snr_db(received_dbm),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::obstacle::{BodyPart, Obstacle};
    use crate::pattern::{IsotropicPattern, Pattern, SectorPattern};
    use crate::scene::Scene;
    use movr_math::Vec2;

    fn gains(p: &dyn Pattern, bearings: &[f64]) -> Vec<f64> {
        bearings.iter().map(|&d| p.gain_dbi(d)).collect()
    }

    #[test]
    fn batch_eval_bit_identical_to_eval_paths() {
        let mut scene = Scene::paper_office();
        scene.add_obstacle(Obstacle::new(BodyPart::Hand, Vec2::new(2.4, 2.5)));
        let endpoints = [
            (Vec2::new(0.5, 2.5), Vec2::new(4.5, 2.5)),
            (Vec2::new(1.0, 4.75), Vec2::new(4.0, 2.0)),
            (Vec2::new(1.0, 1.0), Vec2::new(1.2, 1.0)),
        ];
        let txp = SectorPattern::new(0.0, 10.0, 15.0);
        let rxp = SectorPattern::new(180.0, 10.0, 15.0);
        for (tx, rx) in endpoints {
            let link = scene.trace_link(tx, rx);
            let batch = link.batch();
            assert_eq!(batch.len(), link.paths().len());
            for power in [-10.0, 0.0, 23.0] {
                let scalar = link.evaluate(&txp, power, &rxp);
                let rowed = batch.eval(
                    power,
                    &gains(&txp, batch.departure_deg()),
                    &gains(&rxp, batch.arrival_deg()),
                );
                assert_eq!(rowed.received_dbm.to_bits(), scalar.received_dbm.to_bits());
                assert_eq!(rowed.snr_db.to_bits(), scalar.snr_db.to_bits());
            }
        }
    }

    #[test]
    fn empty_path_set_yields_silent_link() {
        // Zero taps must reproduce the scalar pipeline's empty case:
        // |0|² → −∞ dBm received.
        let scene = Scene::paper_office();
        let batch = super::LinkBatch::new(vec![], vec![], vec![], scene.noise());
        assert!(batch.is_empty());
        let scalar = scene.eval_paths(&[], &IsotropicPattern, 10.0, &IsotropicPattern);
        let rowed = batch.eval(10.0, &[], &[]);
        assert_eq!(rowed.received_dbm.to_bits(), scalar.received_dbm.to_bits());
        assert_eq!(rowed.snr_db.to_bits(), scalar.snr_db.to_bits());
    }

    #[test]
    fn with_noise_swaps_the_budget_only() {
        let scene = Scene::paper_office();
        let link = scene.trace_link(Vec2::new(0.5, 2.5), Vec2::new(4.0, 2.0));
        let quiet = crate::noise::NoiseModel {
            bandwidth_hz: 100e6,
            noise_figure_db: 4.0,
            implementation_loss_db: 0.0,
            temperature_k: 290.0,
        };
        let batch = link.batch().with_noise(&quiet);
        let iso = IsotropicPattern;
        let r = batch.received_dbm(
            10.0,
            &gains(&iso, batch.departure_deg()),
            &gains(&iso, batch.arrival_deg()),
        );
        assert_eq!(batch.snr_db(r).to_bits(), quiet.snr_db(r).to_bits());
        let plain = link.batch();
        assert_eq!(plain.snr_db(r).to_bits(), scene.noise().snr_db(r).to_bits());
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn gain_row_length_mismatch_rejected() {
        let scene = Scene::paper_office();
        let link = scene.trace_link(Vec2::new(0.5, 2.5), Vec2::new(4.0, 2.0));
        link.batch().received_dbm(0.0, &[], &[]);
    }
}
