//! Traced-path caching: separate the expensive geometry (ray tracing)
//! from the cheap per-beam reweighting.
//!
//! A 101×101 alignment sweep evaluates the same TX/RX positions 10,201
//! times with different beam weights; the image-method trace is identical
//! for every probe. [`TracedLink`] traces once and reweights per query.
//! [`LinkCache`] is the owning form for callers that outlive a single
//! scene borrow: it keys entries on (tx, rx) and invalidates the whole
//! cache when [`Scene::generation`] moves (obstacles changed).
//!
//! Both forms evaluate through [`Scene::eval_paths`] — the same routine
//! `Scene::link_budget` uses — so cached and uncached results are
//! bit-identical by construction (same float op order).

use crate::batch::LinkBatch;
use crate::pattern::Pattern;
use crate::raytrace::Path;
use crate::scene::{LinkBudget, LinkEval, Scene};
use movr_math::Vec2;

/// A link whose paths were traced once and can be reweighted cheaply.
///
/// Holds a shared borrow of the [`Scene`], so the scene cannot be mutated
/// (no obstacle can move) while this exists — a stale-generation read is
/// impossible by construction, not by runtime check.
#[derive(Debug)]
pub struct TracedLink<'s> {
    scene: &'s Scene,
    tx: Vec2,
    rx: Vec2,
    paths: Vec<Path>,
}

impl<'s> TracedLink<'s> {
    pub(crate) fn new(scene: &'s Scene, tx: Vec2, rx: Vec2) -> Self {
        let paths = scene.paths_between(tx, rx);
        TracedLink {
            scene,
            tx,
            rx,
            paths,
        }
    }

    /// The scene the paths were traced in.
    pub fn scene(&self) -> &'s Scene {
        self.scene
    }

    /// Transmitter position.
    pub fn tx(&self) -> Vec2 {
        self.tx
    }

    /// Receiver position.
    pub fn rx(&self) -> Vec2 {
        self.rx
    }

    /// The traced paths (post pruning), in deterministic tracer order.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Freezes the traced paths into a [`LinkBatch`]: complex taps and
    /// departure/arrival bearings in path order, plus the scene's noise
    /// budget. The batch owns its data (no scene borrow) and evaluates
    /// bit-identically to [`TracedLink::evaluate`] given the same
    /// per-path gains.
    pub fn batch(&self) -> LinkBatch {
        let channel = self.scene.channel();
        let mut taps = Vec::with_capacity(self.paths.len());
        let mut departure = Vec::with_capacity(self.paths.len());
        let mut arrival = Vec::with_capacity(self.paths.len());
        for p in &self.paths {
            taps.push(channel.path_gain(p).coefficient);
            departure.push(p.departure_deg);
            arrival.push(p.arrival_deg);
        }
        LinkBatch::new(taps, departure, arrival, self.scene.noise())
    }

    /// Reweights the traced paths under the given patterns and transmit
    /// power. O(paths), no ray tracing.
    pub fn evaluate(
        &self,
        tx_pattern: &dyn Pattern,
        tx_power_dbm: f64,
        rx_pattern: &dyn Pattern,
    ) -> LinkEval {
        self.scene
            .eval_paths(&self.paths, tx_pattern, tx_power_dbm, rx_pattern)
    }

    /// Like [`TracedLink::evaluate`] but returns a full [`LinkBudget`]
    /// (clones the path list).
    pub fn budget(
        &self,
        tx_pattern: &dyn Pattern,
        tx_power_dbm: f64,
        rx_pattern: &dyn Pattern,
    ) -> LinkBudget {
        let eval = self.evaluate(tx_pattern, tx_power_dbm, rx_pattern);
        LinkBudget {
            received_dbm: eval.received_dbm,
            snr_db: eval.snr_db,
            paths: self.paths.clone(),
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    tx: Vec2,
    rx: Vec2,
    paths: Vec<Path>,
}

/// An owning cache of traced paths keyed on (tx, rx, obstacle epoch).
///
/// Unlike [`TracedLink`] this does not borrow the scene, so it can live
/// across frames: every lookup compares its recorded generation against
/// [`Scene::generation`] and drops all entries if the obstacles moved.
#[derive(Debug, Clone, Default)]
pub struct LinkCache {
    generation: u64,
    entries: Vec<CacheEntry>,
}

impl LinkCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        LinkCache::default()
    }

    /// Number of cached (tx, rx) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn sync(&mut self, scene: &Scene) {
        if self.generation != scene.generation() {
            self.entries.clear();
            self.generation = scene.generation();
        }
    }

    /// The traced paths for `tx → rx` under the scene's current obstacle
    /// set, tracing on the first miss. Positions are matched exactly.
    pub fn paths(&mut self, scene: &Scene, tx: Vec2, rx: Vec2) -> &[Path] {
        self.sync(scene);
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.tx == tx && e.rx == rx)
        {
            return &self.entries[i].paths;
        }
        let paths = scene.paths_between(tx, rx);
        self.entries.push(CacheEntry { tx, rx, paths });
        &self.entries[self.entries.len() - 1].paths
    }

    /// Cached equivalent of [`Scene::link_budget`] minus the owned path
    /// list: traces on miss, reweights on hit. Bit-identical to the
    /// uncached evaluation.
    pub fn evaluate(
        &mut self,
        scene: &Scene,
        tx: Vec2,
        tx_pattern: &dyn Pattern,
        tx_power_dbm: f64,
        rx: Vec2,
        rx_pattern: &dyn Pattern,
    ) -> LinkEval {
        let paths = self.paths(scene, tx, rx);
        scene.eval_paths(paths, tx_pattern, tx_power_dbm, rx_pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstacle::{BodyPart, Obstacle};
    use crate::pattern::{IsotropicPattern, SectorPattern};

    #[test]
    fn traced_link_matches_link_budget_bitwise() {
        let mut scene = Scene::paper_office();
        scene.add_obstacle(Obstacle::new(BodyPart::Hand, Vec2::new(2.4, 2.5)));
        let tx = Vec2::new(0.5, 2.5);
        let rx = Vec2::new(4.5, 2.5);
        let txp = SectorPattern::new(0.0, 10.0, 15.0);
        let rxp = SectorPattern::new(180.0, 10.0, 15.0);
        let link = scene.trace_link(tx, rx);
        let cached = link.evaluate(&txp, 10.0, &rxp);
        let plain = scene.link_budget(tx, &txp, 10.0, rx, &rxp);
        assert_eq!(cached.received_dbm, plain.received_dbm);
        assert_eq!(cached.snr_db, plain.snr_db);
        assert_eq!(link.paths().len(), plain.paths.len());
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut scene = Scene::paper_office();
        let g0 = scene.generation();
        let idx = scene.add_obstacle(Obstacle::new(BodyPart::Torso, Vec2::new(2.0, 2.0)));
        assert_eq!(scene.generation(), g0 + 1);
        scene.move_obstacle(idx, Vec2::new(3.0, 3.0));
        assert_eq!(scene.generation(), g0 + 2);
        scene.set_obstacles(vec![]);
        assert_eq!(scene.generation(), g0 + 3);
        scene.clear_obstacles();
        assert_eq!(scene.generation(), g0 + 4);
    }

    #[test]
    fn link_cache_invalidates_on_obstacle_motion() {
        let mut scene = Scene::paper_office();
        let idx = scene.add_obstacle(Obstacle::new(BodyPart::Hand, Vec2::new(2.5, 2.5)));
        let tx = Vec2::new(0.5, 2.5);
        let rx = Vec2::new(4.5, 2.5);
        let iso = IsotropicPattern;
        let mut cache = LinkCache::new();
        let before = cache.evaluate(&scene, tx, &iso, 10.0, rx, &iso);
        assert_eq!(cache.len(), 1);
        // Move the blocker off the LOS: the cache must re-trace, not
        // serve the stale shadowed paths.
        scene.move_obstacle(idx, Vec2::new(2.5, 0.5));
        let after = cache.evaluate(&scene, tx, &iso, 10.0, rx, &iso);
        let fresh = scene.link_budget(tx, &iso, 10.0, rx, &iso);
        assert_eq!(after.received_dbm, fresh.received_dbm);
        assert_eq!(after.snr_db, fresh.snr_db);
        assert!(after.snr_db > before.snr_db, "unblocking must help");
    }

    #[test]
    fn link_cache_hits_do_not_grow() {
        let scene = Scene::paper_office();
        let tx = Vec2::new(1.0, 1.0);
        let rx = Vec2::new(4.0, 4.0);
        let iso = IsotropicPattern;
        let mut cache = LinkCache::new();
        for _ in 0..5 {
            cache.evaluate(&scene, tx, &iso, 0.0, rx, &iso);
        }
        assert_eq!(cache.len(), 1);
        cache.evaluate(&scene, rx, &iso, 0.0, tx, &iso);
        assert_eq!(cache.len(), 2);
    }
}
