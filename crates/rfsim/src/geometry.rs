//! Room geometry: segments, walls, and rectangular rooms.
//!
//! The paper's testbed is a 5 m × 5 m office. [`Room`] models it as four
//! [`Wall`]s (line segments with a material and an inward-facing normal);
//! the ray tracer mirrors transmitters across walls to enumerate specular
//! reflection paths.

use crate::material::Material;
use movr_math::Vec2;

/// Numerical slack for geometric predicates (metres).
pub const GEOM_EPS: f64 = 1e-9;

/// A directed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Vec2,
    /// End point.
    pub b: Vec2,
}

impl Segment {
    /// Creates a segment from `a` to `b`.
    pub const fn new(a: Vec2, b: Vec2) -> Self {
        Segment { a, b }
    }

    /// Segment length in metres.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Direction from `a` to `b` (unit vector; zero for a degenerate
    /// segment).
    pub fn direction(&self) -> Vec2 {
        (self.b - self.a).normalized()
    }

    /// The point at parameter `t ∈ [0,1]` along the segment.
    pub fn point_at(&self, t: f64) -> Vec2 {
        self.a.lerp(self.b, t)
    }

    /// Intersection with another segment, as the parameter `t` along
    /// `self` and `u` along `other`, both strictly inside `(ε, 1−ε)`.
    ///
    /// Endpoint grazes are excluded on purpose: a reflection path's bounce
    /// point coincides with the wall it bounces off, and must not be
    /// reported as the wall "occluding" the path.
    pub fn intersect_interior(&self, other: &Segment) -> Option<(f64, f64)> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom.abs() < GEOM_EPS {
            return None; // parallel or degenerate
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let lo = 1e-6;
        let hi = 1.0 - 1e-6;
        if t > lo && t < hi && u > lo && u < hi {
            Some((t, u))
        } else {
            None
        }
    }

    /// Shortest distance from a point to this segment, and the parameter
    /// `t ∈ [0,1]` of the closest point.
    pub fn distance_to_point(&self, p: Vec2) -> (f64, f64) {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq < GEOM_EPS * GEOM_EPS {
            return (self.a.distance(p), 0.0);
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        (self.point_at(t).distance(p), t)
    }
}

/// A wall: a segment, its material, and the inward normal of the room.
#[derive(Debug, Clone, Copy)]
pub struct Wall {
    /// The wall span in room coordinates.
    pub segment: Segment,
    /// What the wall is made of (sets reflection/penetration loss).
    pub material: Material,
    /// Unit normal pointing into the room (the side rays arrive from).
    pub normal: Vec2,
}

impl Wall {
    /// Creates a wall; the normal is normalised defensively.
    pub fn new(segment: Segment, material: Material, normal: Vec2) -> Self {
        Wall {
            segment,
            material,
            normal: normal.normalized(),
        }
    }

    /// Mirrors a point across the (infinite) line carrying this wall — the
    /// image-method primitive for specular reflection paths.
    pub fn mirror_point(&self, p: Vec2) -> Vec2 {
        let a = self.segment.a;
        let d = self.segment.direction();
        let ap = p - a;
        let along = d * ap.dot(d);
        let across = ap - along;
        a + along - across
    }
}

/// A free-standing reflective panel inside the room: a whiteboard, a
/// metal cabinet side, a bookshelf face. Unlike a [`Wall`] it is
/// two-sided — rays can bounce off either face — and it also *occludes*
/// paths that cross it (by its material's penetration loss).
#[derive(Debug, Clone, Copy)]
pub struct Surface {
    /// The panel span in room coordinates.
    pub segment: Segment,
    /// What the panel is made of (sets reflection/penetration loss).
    pub material: Material,
}

impl Surface {
    /// Creates a panel.
    pub fn new(segment: Segment, material: Material) -> Self {
        Surface { segment, material }
    }

    /// Mirrors a point across the panel's carrying line (image method).
    pub fn mirror_point(&self, p: Vec2) -> Vec2 {
        let a = self.segment.a;
        let d = self.segment.direction();
        let ap = p - a;
        let along = d * ap.dot(d);
        let across = ap - along;
        a + along - across
    }
}

/// A room bounded by a simple polygon of material walls (CCW vertex
/// order), optionally furnished with interior reflective [`Surface`]s.
/// Rectangular rooms are the common case; non-convex shapes (an L-shaped
/// studio) are supported — the ray tracer discards paths whose legs
/// would pass through a wall.
#[derive(Debug, Clone)]
pub struct Room {
    vertices: Vec<Vec2>,
    width: f64,
    depth: f64,
    convex: bool,
    walls: Vec<Wall>,
    surfaces: Vec<Surface>,
}

impl Room {
    /// Creates a `width × depth` room with all four walls of one material.
    ///
    /// # Panics
    /// Panics if either dimension is not strictly positive.
    pub fn rectangular(width: f64, depth: f64, material: Material) -> Self {
        Room::with_wall_materials(width, depth, [material; 4])
    }

    /// Creates a room with per-wall materials, ordered
    /// `[south (y=0), east (x=width), north (y=depth), west (x=0)]`.
    pub fn with_wall_materials(width: f64, depth: f64, materials: [Material; 4]) -> Self {
        assert!( // lint: constructor contract on scene-geometry constants
            width > 0.0 && depth > 0.0,
            "room dimensions must be positive"
        );
        let vertices = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(width, 0.0),
            Vec2::new(width, depth),
            Vec2::new(0.0, depth),
        ];
        Room::polygon_with_materials(vertices, &materials)
    }

    /// A room bounded by an arbitrary simple polygon given in
    /// counter-clockwise order, all walls of one material.
    ///
    /// # Panics
    /// Panics with fewer than 3 vertices or clockwise/degenerate winding.
    pub fn polygon(vertices: Vec<Vec2>, material: Material) -> Self {
        let n = vertices.len();
        Room::polygon_with_materials(vertices, &vec![material; n])
    }

    /// Polygon room with one material per wall (wall `i` runs from
    /// vertex `i` to vertex `i+1`).
    pub fn polygon_with_materials(vertices: Vec<Vec2>, materials: &[Material]) -> Self {
        assert!(vertices.len() >= 3, "a room needs at least 3 vertices"); // lint: documented constructor contract on scene geometry
        assert_eq!( // lint: documented constructor contract on scene geometry
            materials.len(),
            vertices.len(),
            "one material per wall required"
        );
        // Signed area (shoelace): positive = counter-clockwise.
        let mut area2 = 0.0;
        for i in 0..vertices.len() {
            let a = vertices[i]; // lint: i ranges over 0..vertices.len()
            let b = vertices[(i + 1) % vertices.len()]; // lint: index reduced mod vertices.len()
            area2 += a.cross(b);
        }
        assert!( // lint: documented constructor contract — winding is fixed at scene-definition time
            area2 > GEOM_EPS,
            "vertices must wind counter-clockwise around a positive area"
        );

        let mut walls = Vec::with_capacity(vertices.len());
        let mut convex = true;
        for i in 0..vertices.len() {
            let a = vertices[i]; // lint: i ranges over 0..vertices.len()
            let b = vertices[(i + 1) % vertices.len()]; // lint: index reduced mod vertices.len()
            let c = vertices[(i + 2) % vertices.len()]; // lint: index reduced mod vertices.len()
            let seg = Segment::new(a, b);
            // CCW winding puts the interior on the left of each edge.
            let normal = seg.direction().perp();
            walls.push(Wall::new(seg, materials[i], normal)); // lint: materials.len() == vertices.len() is asserted above
            if (b - a).cross(c - b) < -GEOM_EPS {
                convex = false;
            }
        }
        let width = vertices.iter().map(|v| v.x).fold(f64::NEG_INFINITY, f64::max);
        let depth = vertices.iter().map(|v| v.y).fold(f64::NEG_INFINITY, f64::max);
        Room {
            vertices,
            width,
            depth,
            convex,
            walls,
            surfaces: Vec::new(),
        }
    }

    /// An L-shaped studio: the 5 m × 5 m office with a 2 m × 2 m corner
    /// bitten out of the north-east — a non-convex room where some
    /// point pairs have no line of sight at all.
    pub fn l_shaped_studio() -> Self {
        Room::polygon(
            vec![
                Vec2::new(0.0, 0.0),
                Vec2::new(5.0, 0.0),
                Vec2::new(5.0, 3.0),
                Vec2::new(3.0, 3.0),
                Vec2::new(3.0, 5.0),
                Vec2::new(0.0, 5.0),
            ],
            Material::Drywall,
        )
    }

    /// The paper's 5 m × 5 m drywall office (bare walls).
    pub fn paper_office() -> Self {
        Room::rectangular(5.0, 5.0, Material::Drywall)
    }

    /// The paper's office "with standard furniture": a metal whiteboard
    /// on the north wall, a wooden bookshelf along the south wall, and a
    /// metal cabinet side near the south-west. The metal faces are the
    /// good reflectors a real office offers NLOS beam-switching schemes —
    /// placed on walls a player facing the (west-wall) AP can actually
    /// beamform toward.
    pub fn furnished_office() -> Self {
        let mut room = Room::paper_office();
        room.add_surface(Surface::new(
            Segment::new(Vec2::new(1.5, 4.9), Vec2::new(3.2, 4.9)),
            Material::Metal,
        ));
        room.add_surface(Surface::new(
            Segment::new(Vec2::new(1.5, 0.15), Vec2::new(3.0, 0.15)),
            Material::Wood,
        ));
        room.add_surface(Surface::new(
            Segment::new(Vec2::new(0.15, 1.0), Vec2::new(0.8, 0.6)),
            Material::Metal,
        ));
        room
    }

    /// Adds an interior reflective panel.
    pub fn add_surface(&mut self, surface: Surface) {
        self.surfaces.push(surface);
    }

    /// The interior panels.
    pub fn surfaces(&self) -> &[Surface] {
        &self.surfaces
    }

    /// Bounding-box width (max x extent) in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Bounding-box depth (max y extent) in metres.
    pub fn depth(&self) -> f64 {
        self.depth
    }

    /// The boundary walls, one per polygon edge.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// The boundary vertices (CCW).
    pub fn vertices(&self) -> &[Vec2] {
        &self.vertices
    }

    /// True if the room is convex (every interior segment then stays
    /// clear of the walls automatically).
    pub fn is_convex(&self) -> bool {
        self.convex
    }

    /// True if `p` lies strictly inside the room (even-odd ray cast,
    /// with points on or within [`GEOM_EPS`]-ish of a wall excluded).
    pub fn contains(&self, p: Vec2) -> bool {
        // Exclude the boundary band first.
        for w in &self.walls {
            if w.segment.distance_to_point(p).0 <= GEOM_EPS {
                return false;
            }
        }
        // Even-odd crossing count with a horizontal ray toward +x.
        let mut inside = false;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i]; // lint: i ranges over 0..vertices.len()
            let b = self.vertices[(i + 1) % n]; // lint: index reduced mod vertices.len()
            let crosses = (a.y > p.y) != (b.y > p.y);
            if crosses {
                let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if x_at > p.x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// The polygon centroid (vertex average — adequate for nudging
    /// points inward).
    pub fn centroid(&self) -> Vec2 {
        let sum = self
            .vertices
            .iter()
            .fold(Vec2::ZERO, |acc, &v| acc + v);
        sum / movr_math::convert::usize_to_f64(self.vertices.len())
    }

    /// Clamps a point to lie inside the room with at least `margin` to
    /// every wall. For points outside (or too close to a wall) the point
    /// is pulled toward the centroid until it qualifies.
    pub fn clamp_inside(&self, p: Vec2, margin: f64) -> Vec2 {
        let ok = |q: Vec2| {
            self.contains(q)
                && self
                    .walls
                    .iter()
                    .all(|w| w.segment.distance_to_point(q).0 >= margin)
        };
        if ok(p) {
            return p;
        }
        let centre = self.centroid();
        // Walk toward the centroid; the centroid region of any sane room
        // satisfies the margin, so the walk terminates.
        let mut t = 0.05;
        while t < 1.0 {
            let q = p.lerp(centre, t);
            if ok(q) {
                return q;
            }
            t += 0.05;
        }
        centre
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn segment_basics() {
        let s = Segment::new(Vec2::new(0.0, 0.0), Vec2::new(3.0, 4.0));
        assert!(close(s.length(), 5.0));
        assert!(close(s.direction().norm(), 1.0));
        assert_eq!(s.point_at(0.5), Vec2::new(1.5, 2.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        let a = Segment::new(Vec2::new(0.0, 0.0), Vec2::new(2.0, 2.0));
        let b = Segment::new(Vec2::new(0.0, 2.0), Vec2::new(2.0, 0.0));
        let (t, u) = a.intersect_interior(&b).expect("must cross");
        assert!(close(t, 0.5));
        assert!(close(u, 0.5));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let a = Segment::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0));
        let b = Segment::new(Vec2::new(0.0, 1.0), Vec2::new(1.0, 1.0));
        assert!(a.intersect_interior(&b).is_none());
    }

    #[test]
    fn endpoint_graze_is_not_an_intersection() {
        // `b` starts exactly on `a`'s endpoint: must not count, else a
        // reflection path would be occluded by its own bounce wall.
        let a = Segment::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0));
        let b = Segment::new(Vec2::new(1.0, 0.0), Vec2::new(1.0, 1.0));
        assert!(a.intersect_interior(&b).is_none());
    }

    #[test]
    fn disjoint_segments() {
        let a = Segment::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0));
        let b = Segment::new(Vec2::new(2.0, -1.0), Vec2::new(2.0, 1.0));
        assert!(a.intersect_interior(&b).is_none());
    }

    #[test]
    fn point_segment_distance() {
        let s = Segment::new(Vec2::new(0.0, 0.0), Vec2::new(2.0, 0.0));
        let (d, t) = s.distance_to_point(Vec2::new(1.0, 1.0));
        assert!(close(d, 1.0));
        assert!(close(t, 0.5));
        // Beyond the endpoint the distance is to the endpoint.
        let (d2, t2) = s.distance_to_point(Vec2::new(3.0, 0.0));
        assert!(close(d2, 1.0));
        assert!(close(t2, 1.0));
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = Segment::new(Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0));
        let (d, t) = s.distance_to_point(Vec2::new(4.0, 5.0));
        assert!(close(d, 5.0));
        assert_eq!(t, 0.0);
    }

    #[test]
    fn mirror_across_south_wall() {
        let room = Room::paper_office();
        let south = &room.walls()[0];
        let p = Vec2::new(2.0, 1.5);
        let m = south.mirror_point(p);
        assert!(close(m.x, 2.0));
        assert!(close(m.y, -1.5));
        // Mirroring twice returns the original point.
        let back = south.mirror_point(m);
        assert!(close(back.x, p.x) && close(back.y, p.y));
    }

    #[test]
    fn mirror_across_east_wall() {
        let room = Room::paper_office();
        let east = &room.walls()[1];
        let m = east.mirror_point(Vec2::new(4.0, 2.0));
        assert!(close(m.x, 6.0));
        assert!(close(m.y, 2.0));
    }

    #[test]
    fn room_contains() {
        let room = Room::paper_office();
        assert!(room.contains(Vec2::new(2.5, 2.5)));
        assert!(!room.contains(Vec2::new(-0.1, 2.5)));
        assert!(!room.contains(Vec2::new(2.5, 5.1)));
        assert!(!room.contains(Vec2::new(5.0, 2.5))); // on the wall
    }

    #[test]
    fn room_clamp() {
        let room = Room::paper_office();
        // Inside with margin: unchanged.
        let q = Vec2::new(2.0, 2.0);
        assert_eq!(room.clamp_inside(q, 0.25), q);
        // Outside: pulled to an interior point respecting the margin.
        let p = room.clamp_inside(Vec2::new(-3.0, 9.0), 0.25);
        assert!(room.contains(p));
        for w in room.walls() {
            assert!(w.segment.distance_to_point(p).0 >= 0.25);
        }
    }

    #[test]
    fn polygon_room_ccw_required() {
        let cw = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.0, 5.0),
            Vec2::new(5.0, 5.0),
            Vec2::new(5.0, 0.0),
        ];
        let r = std::panic::catch_unwind(|| Room::polygon(cw, Material::Drywall));
        assert!(r.is_err(), "clockwise winding must be rejected");
    }

    #[test]
    fn l_shaped_room_geometry() {
        let room = Room::l_shaped_studio();
        assert!(!room.is_convex());
        assert_eq!(room.walls().len(), 6);
        // Inside the main body and inside the leg.
        assert!(room.contains(Vec2::new(1.0, 4.0)));
        assert!(room.contains(Vec2::new(4.0, 1.0)));
        // Inside the bitten-out corner: outside the room.
        assert!(!room.contains(Vec2::new(4.0, 4.0)));
        // The rectangle test points still behave.
        assert!(room.contains(Vec2::new(2.0, 2.0)));
        assert!(!room.contains(Vec2::new(-0.1, 2.5)));
    }

    #[test]
    fn l_shaped_normals_point_inward() {
        let room = Room::l_shaped_studio();
        for wall in room.walls() {
            let mid = wall.segment.point_at(0.5);
            let stepped = mid + wall.normal * 0.05;
            assert!(
                room.contains(stepped),
                "normal at {mid} must step into the interior"
            );
        }
    }

    #[test]
    fn l_shaped_clamp_respects_the_notch() {
        let room = Room::l_shaped_studio();
        // A point in the notch gets pulled into the room.
        let p = room.clamp_inside(Vec2::new(4.5, 4.5), 0.3);
        assert!(room.contains(p));
        for w in room.walls() {
            assert!(w.segment.distance_to_point(p).0 >= 0.3);
        }
    }

    #[test]
    fn walls_normals_point_inward() {
        let room = Room::paper_office();
        let centre = Vec2::new(2.5, 2.5);
        for wall in room.walls() {
            let mid = wall.segment.point_at(0.5);
            // Moving from the wall along the normal gets closer to centre.
            let stepped = mid + wall.normal * 0.1;
            assert!(stepped.distance(centre) < mid.distance(centre));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_room_rejected() {
        Room::rectangular(0.0, 5.0, Material::Drywall);
    }
}
