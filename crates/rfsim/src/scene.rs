//! Scenes: a room, a carrier, obstacles, and link-budget evaluation.
//!
//! [`Scene`] is the façade the rest of the workspace talks to: place a
//! transmitter and a receiver, hand over their antenna patterns, and get a
//! [`LinkBudget`] back — received power, SNR, and the path breakdown.

use crate::cache::TracedLink;
use crate::channel::Channel;
use crate::geometry::Room;
use crate::noise::NoiseModel;
use crate::obstacle::Obstacle;
use crate::pattern::Pattern;
use crate::raytrace::{trace_paths, Path, TraceConfig};
use movr_math::{linear_to_db, Vec2};

/// The cheap half of a link evaluation: received power and SNR for one
/// weighting of an already-traced path set. [`LinkBudget`] is this plus
/// the owned path list.
#[derive(Debug, Clone, Copy)]
pub struct LinkEval {
    /// Received signal power, dBm (coherent sum over paths).
    pub received_dbm: f64,
    /// SNR at the receiver, dB.
    pub snr_db: f64,
}

/// The result of evaluating a link in a scene.
#[derive(Debug, Clone)]
pub struct LinkBudget {
    /// Received signal power, dBm (coherent sum over paths).
    pub received_dbm: f64,
    /// SNR at the receiver, dB.
    pub snr_db: f64,
    /// The traced paths that contributed (post pruning).
    pub paths: Vec<Path>,
}

impl LinkBudget {
    /// The single strongest path by per-path power gain (before antenna
    /// weighting), if any survived tracing.
    pub fn dominant_path(&self) -> Option<&Path> {
        self.paths.iter().min_by(|a, b| {
            (a.length_m + a.excess_loss_db())
                .partial_cmp(&(b.length_m + b.excess_loss_db()))
                .expect("finite path metrics")
        })
    }
}

/// A simulation scene: geometry, carrier, noise and mutable obstacles.
#[derive(Debug, Clone)]
pub struct Scene {
    room: Room,
    channel: Channel,
    noise: NoiseModel,
    trace: TraceConfig,
    obstacles: Vec<Obstacle>,
    /// Bumped on every obstacle mutation; lets path caches detect that
    /// previously-traced geometry is stale.
    generation: u64,
}

impl Scene {
    /// Creates a scene.
    pub fn new(room: Room, channel: Channel, noise: NoiseModel) -> Self {
        Scene {
            room,
            channel,
            noise,
            trace: TraceConfig::default(),
            obstacles: Vec::new(),
            generation: 0,
        }
    }

    /// The paper's setup: 5 m × 5 m drywall office, 24 GHz carrier,
    /// 802.11ad-class receiver noise.
    pub fn paper_office() -> Self {
        Scene::new(
            Room::paper_office(),
            Channel::new(24.0e9),
            NoiseModel::ieee_802_11ad(),
        )
    }

    /// The same office "with standard furniture" (§5): interior
    /// reflective panels that both occlude paths and offer extra specular
    /// bounces — notably a metal whiteboard, the best NLOS reflector a
    /// real office has.
    pub fn furnished_office() -> Self {
        Scene::new(
            Room::furnished_office(),
            Channel::new(24.0e9),
            NoiseModel::ieee_802_11ad(),
        )
    }

    /// Overrides the trace configuration.
    pub fn with_trace_config(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// The room geometry.
    pub fn room(&self) -> &Room {
        &self.room
    }

    /// The channel (carrier) model.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// The noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Current obstacles.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// The obstacle epoch: incremented on every obstacle mutation.
    /// Path caches keyed on (tx, rx, generation) invalidate correctly
    /// when the hand/head blockers move.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Adds an obstacle, returning its index for later updates.
    pub fn add_obstacle(&mut self, o: Obstacle) -> usize {
        self.generation += 1;
        self.obstacles.push(o);
        self.obstacles.len() - 1
    }

    /// Moves an existing obstacle.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn move_obstacle(&mut self, index: usize, center: Vec2) {
        self.generation += 1;
        let o = self.obstacles[index];
        self.obstacles[index] = o.moved_to(center);
    }

    /// Removes all obstacles.
    pub fn clear_obstacles(&mut self) {
        self.generation += 1;
        self.obstacles.clear();
    }

    /// Replaces the whole obstacle set (used by motion traces each tick).
    pub fn set_obstacles(&mut self, obstacles: Vec<Obstacle>) {
        self.generation += 1;
        self.obstacles = obstacles;
    }

    /// Restores the obstacle set *and* the epoch counter exactly, for
    /// checkpoint restore. Unlike [`Scene::set_obstacles`], this does not
    /// bump the generation: a resumed session must observe the same epoch
    /// sequence as the uninterrupted run, or (generation-keyed) path
    /// caches would diverge between the two.
    pub fn restore_obstacle_state(&mut self, obstacles: Vec<Obstacle>, generation: u64) {
        self.obstacles = obstacles;
        self.generation = generation;
    }

    /// Traces propagation paths between two points under the current
    /// obstacle set.
    pub fn paths_between(&self, tx: Vec2, rx: Vec2) -> Vec<Path> {
        trace_paths(&self.room, &self.obstacles, tx, rx, &self.trace)
    }

    /// Traces the `tx → rx` link once and returns a [`TracedLink`] whose
    /// paths can be reweighted cheaply under different antenna patterns.
    /// The borrow of `self` makes a stale read impossible by construction:
    /// the scene cannot be mutated while the traced link is alive.
    pub fn trace_link(&self, tx: Vec2, rx: Vec2) -> TracedLink<'_> {
        TracedLink::new(self, tx, rx)
    }

    /// Reweights an already-traced path set under the given patterns and
    /// transmit power. This is the single evaluation routine shared by
    /// [`Scene::link_budget`] and the cached forms ([`TracedLink`],
    /// [`crate::LinkCache`]), so cached and uncached results are
    /// bit-identical by construction.
    pub fn eval_paths(
        &self,
        paths: &[Path],
        tx_pattern: &dyn Pattern,
        tx_power_dbm: f64,
        rx_pattern: &dyn Pattern,
    ) -> LinkEval {
        let combined = self.channel.combined_gain(
            paths,
            |deg| tx_pattern.gain_dbi(deg),
            |deg| rx_pattern.gain_dbi(deg),
        );
        let received_dbm = tx_power_dbm + linear_to_db(combined.norm_sq());
        LinkEval {
            received_dbm,
            snr_db: self.noise.snr_db(received_dbm),
        }
    }

    /// Evaluates the full link budget for a transmitter at `tx_pos`
    /// radiating `tx_power_dbm` through `tx_pattern`, received at `rx_pos`
    /// through `rx_pattern`.
    pub fn link_budget(
        &self,
        tx_pos: Vec2,
        tx_pattern: &dyn Pattern,
        tx_power_dbm: f64,
        rx_pos: Vec2,
        rx_pattern: &dyn Pattern,
    ) -> LinkBudget {
        let paths = self.paths_between(tx_pos, rx_pos);
        let eval = self.eval_paths(&paths, tx_pattern, tx_power_dbm, rx_pattern);
        LinkBudget {
            received_dbm: eval.received_dbm,
            snr_db: eval.snr_db,
            paths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstacle::BodyPart;
    use crate::pattern::{IsotropicPattern, SectorPattern};

    #[test]
    fn closer_is_stronger() {
        let scene = Scene::paper_office();
        let iso = IsotropicPattern;
        let near = scene.link_budget(
            Vec2::new(1.0, 2.5),
            &iso,
            10.0,
            Vec2::new(2.0, 2.5),
            &iso,
        );
        let far = scene.link_budget(
            Vec2::new(1.0, 2.5),
            &iso,
            10.0,
            Vec2::new(4.5, 2.5),
            &iso,
        );
        assert!(near.snr_db > far.snr_db);
    }

    #[test]
    fn blockage_drops_snr_substantially() {
        let mut scene = Scene::paper_office();
        let tx = Vec2::new(0.5, 2.5);
        let rx = Vec2::new(4.5, 2.5);
        // Narrow beams pointed at each other, as the paper's radios are.
        let tx_beam = SectorPattern::new(0.0, 10.0, 15.0);
        let rx_beam = SectorPattern::new(180.0, 10.0, 15.0);
        let clear = scene.link_budget(tx, &tx_beam, 10.0, rx, &rx_beam);
        scene.add_obstacle(Obstacle::new(BodyPart::Hand, Vec2::new(2.5, 2.5)));
        let blocked = scene.link_budget(tx, &tx_beam, 10.0, rx, &rx_beam);
        let drop = clear.snr_db - blocked.snr_db;
        // §3: hand blockage costs ≳14 dB.
        assert!(drop > 10.0, "drop={drop}");
    }

    #[test]
    fn dominant_path_is_los_when_clear() {
        let scene = Scene::paper_office();
        let lb = scene.link_budget(
            Vec2::new(1.0, 1.0),
            &IsotropicPattern,
            10.0,
            Vec2::new(4.0, 4.0),
            &IsotropicPattern,
        );
        let dom = lb.dominant_path().expect("paths exist");
        assert_eq!(dom.kind, crate::raytrace::PathKind::LineOfSight);
    }

    #[test]
    fn obstacle_management() {
        let mut scene = Scene::paper_office();
        let idx = scene.add_obstacle(Obstacle::new(BodyPart::Torso, Vec2::new(2.0, 2.0)));
        assert_eq!(scene.obstacles().len(), 1);
        scene.move_obstacle(idx, Vec2::new(3.0, 3.0));
        assert_eq!(scene.obstacles()[0].center, Vec2::new(3.0, 3.0));
        scene.clear_obstacles();
        assert!(scene.obstacles().is_empty());
    }

    #[test]
    fn directional_beams_beat_isotropic() {
        let scene = Scene::paper_office();
        let tx = Vec2::new(1.0, 2.5);
        let rx = Vec2::new(4.0, 2.5);
        let iso = scene.link_budget(tx, &IsotropicPattern, 10.0, rx, &IsotropicPattern);
        let tx_beam = SectorPattern::new(0.0, 10.0, 15.0);
        let rx_beam = SectorPattern::new(180.0, 10.0, 15.0);
        let dir = scene.link_budget(tx, &tx_beam, 10.0, rx, &rx_beam);
        // Directional link gains roughly Gt+Gr over isotropic; multipath
        // structure changes too (sidelobe-suppressed bounces), so allow a
        // loose band.
        let gain = dir.snr_db - iso.snr_db;
        assert!(gain > 20.0, "gain={gain}");
    }

    #[test]
    fn misaimed_beam_loses_link() {
        let scene = Scene::paper_office();
        let tx = Vec2::new(1.0, 2.5);
        let rx = Vec2::new(4.0, 2.5);
        let aimed = SectorPattern::new(0.0, 10.0, 15.0);
        let misaimed = SectorPattern::new(90.0, 10.0, 15.0);
        let rx_beam = SectorPattern::new(180.0, 10.0, 15.0);
        let good = scene.link_budget(tx, &aimed, 10.0, rx, &rx_beam);
        let bad = scene.link_budget(tx, &misaimed, 10.0, rx, &rx_beam);
        assert!(good.snr_db - bad.snr_db > 15.0);
    }
}
