//! Obstacles: human body parts and furniture that shadow mmWave paths.
//!
//! The paper's §3 blockage scenarios — the player's hand, the player's
//! head, another person walking through — are modelled as circles in the
//! horizontal plane. A path segment passing through a circle picks up the
//! body part's shadowing loss; a near-graze picks up a reduced, distance-
//! tapered loss standing in for knife-edge diffraction around the edge.

use crate::geometry::Segment;
use crate::material::Material;
use movr_math::Vec2;

/// The kind of blocker, with per-kind shadowing characteristics.
///
/// Shadowing losses are calibrated to the paper's Fig. 3: hand blockage
/// degrades SNR by "more than 14 dB", head and body by more, and all of
/// them take the link below the VR requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BodyPart {
    /// The player's raised hand — small but sufficient to kill the link.
    Hand,
    /// The player's head (after a head turn puts it in the beam).
    Head,
    /// A full torso: the player's own or another person walking through.
    Torso,
    /// Wooden furniture (desk, shelf).
    Furniture,
    /// Metal cabinet / whiteboard.
    MetalFurniture,
}

impl BodyPart {
    /// Physical radius of the blocking cross-section, metres.
    pub fn radius_m(self) -> f64 {
        match self {
            BodyPart::Hand => 0.06,
            BodyPart::Head => 0.10,
            BodyPart::Torso => 0.22,
            BodyPart::Furniture => 0.40,
            BodyPart::MetalFurniture => 0.40,
        }
    }

    /// Shadowing loss when the path passes through the centre region, dB.
    pub fn shadow_loss_db(self) -> f64 {
        match self {
            BodyPart::Hand => 17.0,
            BodyPart::Head => 22.0,
            BodyPart::Torso => 30.0,
            BodyPart::Furniture => Material::Wood.penetration_loss_db(),
            BodyPart::MetalFurniture => Material::Metal.penetration_loss_db(),
        }
    }

    /// The material the blocker is made of.
    pub fn material(self) -> Material {
        match self {
            BodyPart::Hand | BodyPart::Head | BodyPart::Torso => Material::HumanTissue,
            BodyPart::Furniture => Material::Wood,
            BodyPart::MetalFurniture => Material::Metal,
        }
    }
}

/// A circular obstacle at a position in the room.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstacle {
    /// What the obstacle is (sets radius and shadow loss).
    pub kind: BodyPart,
    /// Centre position in room coordinates, metres.
    pub center: Vec2,
}

/// Fraction of the radius beyond which the diffraction taper begins: a ray
/// within `CORE_FRACTION·r` of the centre takes the full shadow loss.
const CORE_FRACTION: f64 = 1.0;

/// The taper extends out to `TAPER_FRACTION·r`; beyond that the obstacle
/// contributes nothing. This models energy leaking around the edge
/// (knife-edge diffraction) without a full Fresnel computation.
const TAPER_FRACTION: f64 = 1.6;

impl Obstacle {
    /// Creates an obstacle of the given kind at `center`.
    pub fn new(kind: BodyPart, center: Vec2) -> Self {
        Obstacle { kind, center }
    }

    /// Shadowing loss (dB) this obstacle inflicts on a path segment.
    ///
    /// * Ray passes within the physical radius → full shadow loss.
    /// * Ray grazes within the taper band → linearly reduced loss.
    /// * Ray clears the taper band → 0 dB.
    pub fn shadow_loss_on(&self, seg: &Segment) -> f64 {
        let r = self.kind.radius_m();
        let (dist, _t) = seg.distance_to_point(self.center);
        let core = CORE_FRACTION * r;
        let edge = TAPER_FRACTION * r;
        if dist <= core {
            self.kind.shadow_loss_db()
        } else if dist < edge {
            let frac = (edge - dist) / (edge - core);
            self.kind.shadow_loss_db() * frac
        } else {
            0.0
        }
    }

    /// True if the segment takes *any* loss from this obstacle.
    pub fn blocks(&self, seg: &Segment) -> bool {
        self.shadow_loss_on(seg) > 0.0
    }

    /// Moves the obstacle to a new position (used by motion traces).
    pub fn moved_to(&self, center: Vec2) -> Obstacle {
        Obstacle {
            kind: self.kind,
            center,
        }
    }
}

/// Total shadowing loss (dB) a set of obstacles inflicts on a segment.
/// Losses add in dB: each body the ray penetrates attenuates what is left.
pub fn total_shadow_loss_db(obstacles: &[Obstacle], seg: &Segment) -> f64 {
    obstacles.iter().map(|o| o.shadow_loss_on(seg)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Vec2::new(ax, ay), Vec2::new(bx, by))
    }

    #[test]
    fn dead_centre_hit_takes_full_loss() {
        let hand = Obstacle::new(BodyPart::Hand, Vec2::new(1.0, 0.0));
        let s = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(hand.shadow_loss_on(&s), BodyPart::Hand.shadow_loss_db());
        assert!(hand.blocks(&s));
    }

    #[test]
    fn clear_miss_costs_nothing() {
        let hand = Obstacle::new(BodyPart::Hand, Vec2::new(1.0, 1.0));
        let s = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(hand.shadow_loss_on(&s), 0.0);
        assert!(!hand.blocks(&s));
    }

    #[test]
    fn graze_takes_partial_loss() {
        let hand = Obstacle::new(BodyPart::Hand, Vec2::new(1.0, 0.08));
        // 0.08 m is between radius (0.06) and taper edge (0.096).
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let loss = hand.shadow_loss_on(&s);
        assert!(loss > 0.0 && loss < BodyPart::Hand.shadow_loss_db());
    }

    #[test]
    fn taper_is_monotone_in_distance() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let y = i as f64 * 0.01;
            let o = Obstacle::new(BodyPart::Head, Vec2::new(1.0, y));
            let loss = o.shadow_loss_on(&s);
            assert!(loss <= prev + 1e-12, "loss must not grow with distance");
            prev = loss;
        }
    }

    #[test]
    fn bigger_parts_block_more() {
        assert!(BodyPart::Torso.shadow_loss_db() > BodyPart::Head.shadow_loss_db());
        assert!(BodyPart::Head.shadow_loss_db() > BodyPart::Hand.shadow_loss_db());
        assert!(BodyPart::Torso.radius_m() > BodyPart::Hand.radius_m());
    }

    #[test]
    fn hand_loss_matches_paper() {
        // §3: hand blockage degrades SNR by more than 14 dB.
        assert!(BodyPart::Hand.shadow_loss_db() > 14.0);
    }

    #[test]
    fn losses_accumulate_across_obstacles() {
        let s = seg(0.0, 0.0, 4.0, 0.0);
        let obs = vec![
            Obstacle::new(BodyPart::Hand, Vec2::new(1.0, 0.0)),
            Obstacle::new(BodyPart::Torso, Vec2::new(3.0, 0.0)),
        ];
        let total = total_shadow_loss_db(&obs, &s);
        let expect = BodyPart::Hand.shadow_loss_db() + BodyPart::Torso.shadow_loss_db();
        assert!((total - expect).abs() < 1e-9);
    }

    #[test]
    fn obstacle_off_segment_extension_does_not_block() {
        // The obstacle sits on the line's extension beyond the endpoint —
        // the *segment* is clear.
        let o = Obstacle::new(BodyPart::Torso, Vec2::new(5.0, 0.0));
        let s = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(o.shadow_loss_on(&s), 0.0);
    }

    #[test]
    fn moved_obstacle_keeps_kind() {
        let o = Obstacle::new(BodyPart::Head, Vec2::ZERO).moved_to(Vec2::new(1.0, 1.0));
        assert_eq!(o.kind, BodyPart::Head);
        assert_eq!(o.center, Vec2::new(1.0, 1.0));
    }
}
