//! mmWave propagation simulator.
//!
//! This crate is the physical substrate the MoVR paper evaluated on in
//! hardware: a 5 m × 5 m furnished office with a 24 GHz link between an AP,
//! a reflector and a headset. It models:
//!
//! * **Geometry** — a rectangular room with walls ([`geometry`]), circular
//!   obstacles for furniture and human body parts ([`obstacle`]).
//! * **Propagation** — free-space path loss (Friis), specular wall
//!   reflections found with the image method up to second order
//!   ([`raytrace`]), per-material reflection and penetration losses
//!   ([`material`]).
//! * **Blockage** — body parts intersecting a path segment attenuate it by
//!   the material's penetration loss; this is what turns a 25 dB LOS link
//!   into an undecodable one when the player raises a hand (paper §3).
//! * **Channel** — each surviving path contributes a complex gain
//!   (amplitude from the loss budget, phase from the electrical length);
//!   paths combine coherently at the receiver ([`channel`]).
//! * **Noise** — thermal floor plus receiver noise figure ([`noise`]).
//!
//! The crate is purely geometric/electromagnetic: it knows nothing about
//! phased arrays, modulation or protocols. Antenna directivity enters
//! through the [`Pattern`] trait so higher layers can plug in anything from
//! an isotropic probe to a steered array.

pub mod batch;
pub mod cache;
pub mod channel;
pub mod geometry;
pub mod material;
pub mod noise;
pub mod obstacle;
pub mod pattern;
pub mod raytrace;
pub mod scene;
pub mod wideband;

pub use batch::LinkBatch;
pub use cache::{LinkCache, TracedLink};
pub use channel::{Channel, PathGain};
pub use geometry::{Room, Segment, Surface, Wall};
pub use material::Material;
pub use noise::NoiseModel;
pub use obstacle::{BodyPart, Obstacle};
pub use pattern::{IsotropicPattern, MemoPattern, Pattern, SectorPattern};
pub use raytrace::{trace_paths, Path, PathKind, TraceConfig, Vertices, MAX_PATH_VERTICES};
pub use scene::{LinkBudget, LinkEval, Scene};
pub use wideband::{wideband_snr_db, WidebandBudget};

/// Speed of light in vacuum (m/s).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Wavelength (metres) at a carrier frequency (Hz).
pub fn wavelength_m(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT / freq_hz
}

/// Free-space path loss in dB at distance `d_m` metres and frequency
/// `freq_hz` (Friis): `20·log10(4π·d / λ)`.
///
/// Clamps distances below one wavelength to one wavelength — the far-field
/// formula is meaningless closer than that and would report a gain.
pub fn fspl_db(d_m: f64, freq_hz: f64) -> f64 {
    let lambda = wavelength_m(freq_hz);
    let d = d_m.max(lambda);
    movr_math::db::amplitude_to_db(4.0 * std::f64::consts::PI * d / lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_at_24ghz() {
        let l = wavelength_m(24.0e9);
        assert!((l - 0.01249).abs() < 1e-4, "λ={l}");
    }

    #[test]
    fn fspl_known_values() {
        // 24 GHz at 1 m ≈ 60.1 dB; each distance doubling adds ~6 dB.
        let l1 = fspl_db(1.0, 24.0e9);
        assert!((l1 - 60.08).abs() < 0.1, "l1={l1}");
        let l2 = fspl_db(2.0, 24.0e9);
        assert!((l2 - l1 - 6.02).abs() < 0.01);
        // 60 GHz at 1 m ≈ 68.0 dB.
        let l60 = fspl_db(1.0, 60.0e9);
        assert!((l60 - 68.0).abs() < 0.1, "l60={l60}");
    }

    #[test]
    fn fspl_never_negative() {
        // Inside one wavelength the loss clamps instead of turning into gain.
        assert!(fspl_db(1e-6, 24.0e9) >= 0.0);
        assert_eq!(fspl_db(0.0, 24.0e9), fspl_db(wavelength_m(24.0e9), 24.0e9));
    }
}
