//! Wideband (frequency-selective) link evaluation.
//!
//! A narrowband budget evaluates the multipath channel at the carrier
//! only — but an 802.11ad channel is 2.16 GHz wide, and indoor multipath
//! with nanosecond-scale delay spread is *frequency-selective* across
//! it: two paths that cancel at the carrier reinforce a few hundred MHz
//! away. OFDM exploits exactly this. [`wideband_snr_db`] samples the
//! channel at sub-frequencies across the band and reports the effective
//! SNR an OFDM receiver with ideal bit-loading achieves — the mean mutual
//! information over tones, mapped back to an equivalent flat SNR.

use crate::channel::Channel;
use crate::pattern::Pattern;
use crate::raytrace::Path;
use crate::scene::Scene;
use movr_math::{db_to_linear, linear_to_db, Vec2};

/// Per-tone SNRs across the band plus the effective aggregate.
#[derive(Debug, Clone)]
pub struct WidebandBudget {
    /// SNR per sampled tone, dB, lowest frequency first.
    pub tone_snr_db: Vec<f64>,
    /// Effective SNR: the flat SNR whose capacity matches the average
    /// capacity over tones, dB.
    pub effective_snr_db: f64,
    /// Worst tone, dB (what a single-carrier equaliser fights).
    pub min_tone_snr_db: f64,
    /// Best tone, dB.
    pub max_tone_snr_db: f64,
}

/// Evaluates the link at `n_tones` frequencies spanning `bandwidth_hz`
/// around the scene's carrier.
///
/// # Panics
/// Panics if `n_tones == 0`.
pub fn wideband_snr_db(
    scene: &Scene,
    tx_pos: Vec2,
    tx_pattern: &dyn Pattern,
    tx_power_dbm: f64,
    rx_pos: Vec2,
    rx_pattern: &dyn Pattern,
    n_tones: usize,
) -> WidebandBudget {
    assert!(n_tones >= 1, "need at least one tone");
    let paths: Vec<Path> = scene.paths_between(tx_pos, rx_pos);
    let carrier = scene.channel().freq_hz();
    let bw = scene.noise().bandwidth_hz;
    // Per-tone noise: the tone carries 1/n of the power against 1/n of
    // the noise, so the per-tone SNR uses the full-band floor unchanged.
    let mut tone_snr_db = Vec::with_capacity(n_tones);
    for k in 0..n_tones {
        let frac = if n_tones == 1 {
            0.0
        } else {
            k as f64 / (n_tones - 1) as f64 - 0.5
        };
        let f = carrier + frac * bw;
        let ch = Channel::new(f);
        let h = ch.combined_gain(
            &paths,
            |deg| tx_pattern.gain_dbi(deg),
            |deg| rx_pattern.gain_dbi(deg),
        );
        let received = tx_power_dbm + linear_to_db(h.norm_sq());
        tone_snr_db.push(scene.noise().snr_db(received));
    }

    // Effective SNR via mean capacity: C̄ = mean(log2(1+snr)),
    // snr_eff = 2^C̄ − 1.
    let mean_capacity = tone_snr_db
        .iter()
        .map(|&s| (1.0 + db_to_linear(s)).log2())
        .sum::<f64>()
        / n_tones as f64;
    let effective = linear_to_db(2f64.powf(mean_capacity) - 1.0);

    let min = tone_snr_db.iter().copied().fold(f64::INFINITY, f64::min);
    let max = tone_snr_db
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    WidebandBudget {
        tone_snr_db,
        effective_snr_db: effective,
        min_tone_snr_db: min,
        max_tone_snr_db: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{IsotropicPattern, SectorPattern};

    #[test]
    fn single_tone_matches_narrowband() {
        let scene = Scene::paper_office();
        let tx = Vec2::new(1.0, 2.5);
        let rx = Vec2::new(4.0, 2.5);
        let iso = IsotropicPattern;
        let narrow = scene.link_budget(tx, &iso, 0.0, rx, &iso).snr_db;
        let wide = wideband_snr_db(&scene, tx, &iso, 0.0, rx, &iso, 1);
        assert!((wide.effective_snr_db - narrow).abs() < 1e-9);
        assert_eq!(wide.tone_snr_db.len(), 1);
    }

    #[test]
    fn band_shows_frequency_selectivity() {
        // With isotropic antennas the wall bounces are strong enough to
        // produce visible ripple across 2.16 GHz.
        let scene = Scene::paper_office();
        let tx = Vec2::new(1.0, 2.0);
        let rx = Vec2::new(4.0, 3.0);
        let iso = IsotropicPattern;
        let wide = wideband_snr_db(&scene, tx, &iso, 0.0, rx, &iso, 64);
        let ripple = wide.max_tone_snr_db - wide.min_tone_snr_db;
        assert!(ripple > 1.0, "expected selectivity, ripple {ripple}");
        // The effective SNR sits inside the tone range.
        assert!(wide.effective_snr_db <= wide.max_tone_snr_db + 1e-9);
        assert!(wide.effective_snr_db >= wide.min_tone_snr_db - 1e-9);
    }

    #[test]
    fn directional_beams_flatten_the_channel() {
        // Narrow beams suppress the bounces, so the ripple shrinks — why
        // mmWave links are nearly flat in practice.
        let scene = Scene::paper_office();
        let tx = Vec2::new(1.0, 2.0);
        let rx = Vec2::new(4.0, 3.0);
        let iso_r = wideband_snr_db(
            &scene,
            tx,
            &IsotropicPattern,
            0.0,
            rx,
            &IsotropicPattern,
            64,
        );
        let t_beam = SectorPattern::new(tx.bearing_deg_to(rx), 10.0, 15.0);
        let r_beam = SectorPattern::new(rx.bearing_deg_to(tx), 10.0, 15.0);
        let dir_r = wideband_snr_db(&scene, tx, &t_beam, 0.0, rx, &r_beam, 64);
        let iso_ripple = iso_r.max_tone_snr_db - iso_r.min_tone_snr_db;
        let dir_ripple = dir_r.max_tone_snr_db - dir_r.min_tone_snr_db;
        assert!(
            dir_ripple < iso_ripple,
            "beamforming should flatten: {dir_ripple} vs {iso_ripple}"
        );
    }

    #[test]
    fn effective_snr_is_fade_robust() {
        // Even if one tone fades hard, the effective SNR stays close to
        // the typical tone (OFDM averages over the band).
        let scene = Scene::paper_office();
        let tx = Vec2::new(1.0, 2.0);
        let rx = Vec2::new(3.9, 2.9);
        let iso = IsotropicPattern;
        let wide = wideband_snr_db(&scene, tx, &iso, 0.0, rx, &iso, 128);
        let sorted = {
            let mut v = wide.tone_snr_db.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        let median = sorted[sorted.len() / 2];
        assert!(
            (wide.effective_snr_db - median).abs() < 3.0,
            "effective {} vs median {median}",
            wide.effective_snr_db
        );
    }

    #[test]
    #[should_panic(expected = "at least one tone")]
    fn zero_tones_rejected() {
        let scene = Scene::paper_office();
        wideband_snr_db(
            &scene,
            Vec2::new(1.0, 1.0),
            &IsotropicPattern,
            0.0,
            Vec2::new(2.0, 2.0),
            &IsotropicPattern,
            0,
        );
    }
}
