//! Receiver noise model.
//!
//! SNR in this workspace is always `received power − noise floor`, with the
//! floor set by thermal noise over the channel bandwidth plus the
//! receiver's noise figure and implementation loss. Implementation loss
//! folds in everything a real front-end wastes (quantisation, phase noise,
//! imperfect filters) and is the knob used to calibrate absolute SNR to
//! the paper's reported 25 dB LOS mean.

use movr_math::db::thermal_noise_dbm;

/// Thermal + receiver noise description.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Channel bandwidth, Hz.
    pub bandwidth_hz: f64,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// Implementation loss applied to SNR, dB.
    pub implementation_loss_db: f64,
    /// Ambient temperature, kelvin.
    pub temperature_k: f64,
}

impl NoiseModel {
    /// A noise model for one 2.16 GHz 802.11ad channel with a typical
    /// consumer-grade mmWave front end.
    pub fn ieee_802_11ad() -> Self {
        NoiseModel {
            bandwidth_hz: 2.16e9,
            noise_figure_db: 7.0,
            implementation_loss_db: 9.0,
            temperature_k: 290.0,
        }
    }

    /// Effective noise floor in dBm: `kTB + NF`.
    pub fn noise_floor_dbm(&self) -> f64 {
        thermal_noise_dbm(self.bandwidth_hz, self.temperature_k) + self.noise_figure_db
    }

    /// SNR (dB) for a given received signal power, including the
    /// implementation loss.
    pub fn snr_db(&self, received_dbm: f64) -> f64 {
        received_dbm - self.noise_floor_dbm() - self.implementation_loss_db
    }

    /// The received power (dBm) needed to achieve a target SNR.
    pub fn required_power_dbm(&self, target_snr_db: f64) -> f64 {
        target_snr_db + self.noise_floor_dbm() + self.implementation_loss_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ad_noise_floor() {
        // kTB over 2.16 GHz ≈ -80.6 dBm; +7 dB NF ≈ -73.6 dBm.
        let n = NoiseModel::ieee_802_11ad();
        let floor = n.noise_floor_dbm();
        assert!((floor - (-73.6)).abs() < 0.3, "floor={floor}");
    }

    #[test]
    fn snr_is_signal_minus_floor_minus_impl() {
        let n = NoiseModel::ieee_802_11ad();
        let snr = n.snr_db(-50.0);
        let expect = -50.0 - n.noise_floor_dbm() - n.implementation_loss_db;
        assert!((snr - expect).abs() < 1e-12);
    }

    #[test]
    fn required_power_roundtrip() {
        let n = NoiseModel::ieee_802_11ad();
        for target in [0.0, 10.0, 25.0] {
            let p = n.required_power_dbm(target);
            assert!((n.snr_db(p) - target).abs() < 1e-12);
        }
    }

    #[test]
    fn wider_band_raises_floor() {
        let narrow = NoiseModel {
            bandwidth_hz: 100e6,
            ..NoiseModel::ieee_802_11ad()
        };
        let wide = NoiseModel::ieee_802_11ad();
        assert!(wide.noise_floor_dbm() > narrow.noise_floor_dbm());
        // 2.16 GHz / 100 MHz ≈ 13.3 dB difference.
        let diff = wide.noise_floor_dbm() - narrow.noise_floor_dbm();
        assert!((diff - 13.34).abs() < 0.1);
    }
}
