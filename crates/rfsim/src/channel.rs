//! Complex channel gains from traced paths.
//!
//! Each geometric [`Path`] becomes one tap of a narrowband multipath
//! channel: an amplitude set by the loss budget (Friis + reflections +
//! shadowing) and a phase set by the electrical length. Taps combine
//! *coherently* — two paths half a wavelength apart in length cancel —
//! which is what makes mmWave links so sensitive to geometry.

use crate::raytrace::Path;
use crate::{fspl_db, wavelength_m};
use movr_math::{db_to_linear, linear_to_db, C64};
use std::f64::consts::PI;

/// The complex gain contributed by one path, before antenna gains.
#[derive(Debug, Clone, Copy)]
pub struct PathGain {
    /// Complex amplitude gain (dimensionless field ratio).
    pub coefficient: C64,
    /// Power gain of this path alone, dB (negative = loss).
    pub power_gain_db: f64,
}

/// A narrowband channel evaluator at a fixed carrier frequency.
#[derive(Debug, Clone, Copy)]
pub struct Channel {
    freq_hz: f64,
}

impl Channel {
    /// Creates a channel at `freq_hz` (e.g. `24.0e9` for the paper's
    /// prototype, `60.48e9` for 802.11ad channel 2).
    pub fn new(freq_hz: f64) -> Self {
        assert!(freq_hz > 0.0, "carrier frequency must be positive"); // lint: constructor contract on a deployment constant
        Channel { freq_hz }
    }

    /// Carrier frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Wavelength in metres.
    pub fn wavelength_m(&self) -> f64 {
        wavelength_m(self.freq_hz)
    }

    /// The complex gain of one path: amplitude from FSPL plus the path's
    /// excess loss, phase from the electrical length `-2π·L/λ`.
    pub fn path_gain(&self, path: &Path) -> PathGain {
        let loss_db = fspl_db(path.length_m, self.freq_hz) + path.excess_loss_db();
        let amplitude = db_to_linear(-loss_db).sqrt();
        let phase = -2.0 * PI * path.length_m / self.wavelength_m();
        PathGain {
            coefficient: C64::from_polar(amplitude, phase),
            power_gain_db: -loss_db,
        }
    }

    /// Coherent channel gain over a set of paths, weighting each path by
    /// the TX/RX antenna gains toward its departure/arrival bearings.
    ///
    /// `tx_gain_dbi` and `rx_gain_dbi` map an absolute bearing (degrees) to
    /// an antenna gain in dBi; amplitude weighting uses the 20·log10
    /// convention (antenna gain is a power gain applied to the field as
    /// its square root).
    pub fn combined_gain(
        &self,
        paths: &[Path],
        tx_gain_dbi: impl Fn(f64) -> f64,
        rx_gain_dbi: impl Fn(f64) -> f64,
    ) -> C64 {
        paths
            .iter()
            .map(|p| {
                let tap = self.path_gain(p);
                let g_db = tx_gain_dbi(p.departure_deg) + rx_gain_dbi(p.arrival_deg);
                tap.coefficient * db_to_linear(g_db).sqrt()
            })
            .sum()
    }

    /// Received power in dBm for a transmit power and the combined complex
    /// gain returned by [`Channel::combined_gain`].
    pub fn received_power_dbm(tx_power_dbm: f64, combined: C64) -> f64 {
        tx_power_dbm + linear_to_db(combined.norm_sq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raytrace::PathKind;
    use movr_math::Vec2;

    fn los_path(len: f64) -> Path {
        Path {
            kind: PathKind::LineOfSight,
            vertices: [Vec2::ZERO, Vec2::new(len, 0.0)].into(),
            length_m: len,
            departure_deg: 0.0,
            arrival_deg: 180.0,
            reflection_loss_db: 0.0,
            shadow_loss_db: 0.0,
        }
    }

    #[test]
    fn single_path_power_matches_friis() {
        let ch = Channel::new(24.0e9);
        let p = los_path(4.0);
        let g = ch.path_gain(&p);
        let expect = -fspl_db(4.0, 24.0e9);
        assert!((g.power_gain_db - expect).abs() < 1e-9);
        assert!((linear_to_db(g.coefficient.norm_sq()) - expect).abs() < 1e-6);
    }

    #[test]
    fn excess_loss_reduces_amplitude() {
        let ch = Channel::new(24.0e9);
        let mut p = los_path(4.0);
        let clean = ch.path_gain(&p).coefficient.abs();
        p.shadow_loss_db = 20.0;
        let shadowed = ch.path_gain(&p).coefficient.abs();
        // 20 dB power = 10× amplitude.
        assert!((clean / shadowed - 10.0).abs() < 1e-9);
    }

    #[test]
    fn phase_advances_with_length() {
        let ch = Channel::new(24.0e9);
        let lambda = ch.wavelength_m();
        // A full wavelength of extra travel returns the same phase.
        let a = ch.path_gain(&los_path(1.0)).coefficient.arg();
        let b = ch.path_gain(&los_path(1.0 + lambda)).coefficient.arg();
        assert!((a - b).abs() < 1e-6 || (a - b).abs() > 2.0 * PI - 1e-6);
        // Half a wavelength flips the phase.
        let c = ch.path_gain(&los_path(1.0 + lambda / 2.0)).coefficient;
        let ratio = c / ch.path_gain(&los_path(1.0)).coefficient;
        assert!(ratio.re < 0.0);
    }

    #[test]
    fn two_paths_can_cancel() {
        let ch = Channel::new(24.0e9);
        let lambda = ch.wavelength_m();
        let p1 = los_path(2.0);
        let p2 = los_path(2.0 + lambda / 2.0);
        let combined = ch.combined_gain(&[p1.clone(), p2], |_| 0.0, |_| 0.0);
        // Near-perfect destructive combining (amplitudes differ slightly
        // because of the tiny distance difference).
        let single = ch.path_gain(&p1).coefficient.abs();
        assert!(combined.abs() < 0.02 * single);
    }

    #[test]
    fn antenna_gain_weighting() {
        let ch = Channel::new(24.0e9);
        let p = los_path(3.0);
        let iso = ch.combined_gain(std::slice::from_ref(&p), |_| 0.0, |_| 0.0);
        let directional = ch.combined_gain(std::slice::from_ref(&p), |_| 10.0, |_| 10.0);
        // +20 dB total power = 10× amplitude.
        assert!((directional.abs() / iso.abs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn directional_nulling_removes_path() {
        let ch = Channel::new(24.0e9);
        let p = los_path(3.0);
        // RX pattern with a null toward the arrival bearing.
        let combined = ch.combined_gain(
            std::slice::from_ref(&p),
            |_| 0.0,
            |deg| if (deg - 180.0).abs() < 1.0 { -200.0 } else { 0.0 },
        );
        assert!(combined.abs() < 1e-8);
    }

    #[test]
    fn received_power_formula() {
        let p = Channel::received_power_dbm(10.0, C64::new(0.1, 0.0));
        // |0.1|² = -20 dB → 10 dBm - 20 dB = -10 dBm.
        assert!((p - (-10.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        Channel::new(0.0);
    }
}
