//! Surface and body materials with mmWave loss characteristics.
//!
//! At 24–60 GHz, walls are poor mirrors and human tissue is nearly opaque.
//! The values here are representative of published indoor mmWave
//! measurements and are calibrated so the full pipeline reproduces the
//! paper's §3 numbers: hand blockage costs ≳14 dB, head/body more, and the
//! best wall-reflected (NLOS) path sits ~16–17 dB under the line of sight.

/// A material a radio wave can reflect off or pass through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Material {
    /// Painted drywall / plasterboard — the paper's office walls.
    Drywall,
    /// Poured concrete (exterior wall, floor slab).
    Concrete,
    /// Window glass.
    Glass,
    /// Sheet metal (whiteboard backing, cabinets). Excellent reflector,
    /// impenetrable — this is what \[34\]'s data-center ceiling mirror used.
    Metal,
    /// Wooden furniture.
    Wood,
    /// Human tissue (hand, head, torso). Essentially opaque at mmWave.
    HumanTissue,
}

impl Material {
    /// Power lost on a specular reflection off this surface, in dB.
    ///
    /// mmWave reflections scatter much of the energy; only metal behaves
    /// like a mirror. These are the per-bounce penalties the paper's §3
    /// blames for NLOS paths failing to carry VR traffic.
    pub fn reflection_loss_db(self) -> f64 {
        match self {
            Material::Drywall => 6.5,
            Material::Concrete => 7.0,
            Material::Glass => 8.5,
            Material::Metal => 0.5,
            Material::Wood => 11.0,
            Material::HumanTissue => 25.0,
        }
    }

    /// Power lost passing *through* this material, in dB.
    ///
    /// Human-tissue penetration is effectively a hard block (§3: "even a
    /// small obstacle like the player's hand can block the signal"). The
    /// per-body-part shadowing values used by the blockage model live in
    /// [`crate::obstacle::BodyPart`]; this is the generic material number.
    pub fn penetration_loss_db(self) -> f64 {
        match self {
            Material::Drywall => 6.5,
            Material::Concrete => 40.0,
            Material::Glass => 3.5,
            Material::Metal => 60.0,
            Material::Wood => 9.0,
            Material::HumanTissue => 35.0,
        }
    }

    /// True when a reflection off this material can plausibly carry a
    /// usable mmWave link at all (used to prune hopeless paths early).
    pub fn is_reflective(self) -> bool {
        self.reflection_loss_db() < 20.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Material; 6] = [
        Material::Drywall,
        Material::Concrete,
        Material::Glass,
        Material::Metal,
        Material::Wood,
        Material::HumanTissue,
    ];

    #[test]
    fn losses_are_nonnegative() {
        for m in ALL {
            assert!(m.reflection_loss_db() >= 0.0, "{m:?}");
            assert!(m.penetration_loss_db() >= 0.0, "{m:?}");
        }
    }

    #[test]
    fn metal_is_the_best_reflector() {
        for m in ALL {
            if m != Material::Metal {
                assert!(
                    m.reflection_loss_db() > Material::Metal.reflection_loss_db(),
                    "{m:?}"
                );
            }
        }
    }

    #[test]
    fn tissue_blocks_hard() {
        // The §3 observation: a hand in the beam costs >14 dB. The generic
        // tissue penetration must be well above that.
        assert!(Material::HumanTissue.penetration_loss_db() > 14.0);
        assert!(!Material::HumanTissue.is_reflective());
    }

    #[test]
    fn interior_walls_reflect_usably() {
        // Opt-NLOS in the paper still decodes *something*: interior
        // surfaces must not be treated as absorbers.
        assert!(Material::Drywall.is_reflective());
        assert!(Material::Concrete.is_reflective());
        assert!(Material::Glass.is_reflective());
    }
}
